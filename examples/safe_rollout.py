#!/usr/bin/env python
"""Safe policy rollout: a broken policy is canaried, caught, rolled back.

The paper's injection path (``ceph tell mds.* injectargs ...``) swaps the
balancer on every rank at once, so a bad policy melts the whole cluster
(the Greedy Spill scenario, Fig 10 bottom).  Here the same bad policy goes
through the safe lifecycle instead: greedy-spill runs live, the broken
candidate is staged on a single canary rank, its Lua errors are caught
inside the health window, and the cluster automatically rolls back to the
known-good version kept in the RADOS-backed policy store.  The workload
finishes unharmed.

Run:  python examples/safe_rollout.py
"""

from repro import ClusterConfig, SimulatedCluster
from repro.core.api import MantlePolicy
from repro.core.policies import greedy_spill_policy
from repro.workloads import CreateWorkload

CANARY_AT = 3.0      # stage the candidate at the ~4s heartbeat
CANARY_WINDOW = 3.5  # judge its health at the ~8s heartbeat


def broken_policy() -> MantlePolicy:
    # Indexes a rank that does not exist: every tick raises a Lua error.
    return MantlePolicy(name="broken-candidate",
                        when="go = MDSs[99]['load'] > 0")


def main() -> int:
    config = ClusterConfig(num_mds=3, num_clients=4, seed=7,
                           heartbeat_interval=2.0, dir_split_size=2000,
                           stability_guard=True)
    cluster = SimulatedCluster(config, policy=greedy_spill_policy())
    controller = cluster.arm_canary(broken_policy(), at=CANARY_AT,
                                    window=CANARY_WINDOW)
    workload = CreateWorkload(num_clients=4, files_per_client=15_000,
                              shared_dir=True)
    report = cluster.run_workload(workload)

    print(report.summary_line())
    print()
    print("lifecycle trace:")
    for event in report.lifecycle_events:
        who = f"mds{event.rank}" if event.rank >= 0 else "cluster"
        print(f"  t={event.time:6.2f}s  {event.kind:<18} "
              f"{who}: {event.detail}")
    print()
    print("policy store (every transition is a version):")
    for version in report.policy_log:
        note = f"  ({version.note})" if version.note else ""
        print(f"  v{version.version}  '{version.name}'{note}")
    print()

    outcome = controller.phase
    print(f"canary outcome: {outcome}")
    ok = (outcome == "rolled-back"
          and report.policy_log[-1].source == report.policy_log[0].source
          and not report.policy_tripped)
    print("workload finished on the known-good policy: "
          f"{'OK' if ok else 'SOMETHING IS WRONG'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
