#!/usr/bin/env python
"""MDS failover under load: crash the authority mid-run, watch the standby
take over.

A create-heavy workload hammers rank 0 (the initial authority for the
whole namespace), then rank 0 dies.  Requests to the dead rank bounce and
retry; the standby (rank 2) replays the dead rank's journal, assumes
authority over its subtrees, and the cluster recovers.  The report shows
the throughput dip and the measured recovery time.

Run:  python examples/mds_failover.py
"""

from repro import ClusterConfig, SimulatedCluster
from repro.faults import CrashMds, FaultSchedule, check_invariants
from repro.workloads import CreateWorkload

CRASH_AT = 4.0
TAKEOVER_AFTER = 2.0  # seconds after the crash


def main() -> int:
    config = ClusterConfig(num_mds=3, num_clients=4, seed=7,
                           mds_beacon_grace=4.0)
    schedule = FaultSchedule([
        CrashMds(at=CRASH_AT, rank=0, takeover_by=2,
                 takeover_after=TAKEOVER_AFTER),
    ])
    cluster = SimulatedCluster(config, fault_schedule=schedule)
    workload = CreateWorkload(num_clients=4, files_per_client=25_000)
    cluster.run_workload(workload)
    cluster.quiesce()
    report = cluster._report()

    print(report.summary_line())
    print()
    print("fault trace:")
    for event in report.fault_events:
        where = f"mds{event.rank}" if event.rank >= 0 else "cluster"
        detail = f"  ({event.detail})" if event.detail else ""
        print(f"  t={event.time:6.2f}s  {event.kind:<14} {where}{detail}")
    print()

    recovered = CRASH_AT + TAKEOVER_AFTER
    windows = [("before the crash", 0.0, CRASH_AT),
               ("during the outage", CRASH_AT, recovered),
               ("after takeover", recovered, report.makespan)]
    print("throughput:")
    for label, t0, t1 in windows:
        rate = report.throughput_between(t0, t1)
        bar = "#" * int(rate / 250)
        print(f"  {label:<18} {rate:8.0f} ops/s {bar}")
    print()

    for rank, seconds in sorted(report.recovery_times().items()):
        print(f"recovery: mds{rank} authority restored after "
              f"{seconds:.2f}s")

    problems = check_invariants(cluster)
    print(f"post-run invariants: {'OK' if not problems else problems}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
