#!/usr/bin/env python
"""Metadata hotspots and the locality trade-off (paper Figs 1 and 3).

Compiles a Linux-like source tree on the simulated cluster, printing the
per-directory heat map as it evolves (untar sweep -> compile hotspots in
arch/kernel/fs/mm -> link flash crowd), then shows why distributing this
workload can hurt: the same job, spread over 3 ranks by a live balancer,
pays forwards and coherency traffic.

Run:  python examples/compile_locality.py
"""

from repro import ClusterConfig, SimulatedCluster
from repro.core.policies import original_policy
from repro.workloads import CompileWorkload

SCALE = 6  # ~50k metadata ops; a couple of simulated minutes


def run_with_heat():
    config = ClusterConfig(num_mds=1, num_clients=1, seed=3,
                           client_think_time=0.0002)
    cluster = SimulatedCluster(config, heat_sampling=3.0)
    workload = CompileWorkload(num_clients=1, scale=SCALE, seed=11)
    result = cluster.run_workload(workload)
    return result


def print_heat(result) -> None:
    heat = result.heat
    picks = [len(heat.samples) // 6, len(heat.samples) // 2,
             len(heat.samples) - 1]
    labels = ["untar phase", "compile phase", "link phase"]
    for label, index in zip(labels, picks):
        print(f"--- {label} (t={heat.times[index]:.0f}s), hottest "
              "directories ---")
        for path, value in heat.hottest(index, top=6):
            bar = "#" * max(1, int(value / 80))
            print(f"  {path:<28.28} {value:9.1f} {bar}")
        print()


def run_spread():
    config = ClusterConfig(num_mds=3, num_clients=1, seed=3,
                           client_think_time=0.0002)
    cluster = SimulatedCluster(config, policy=original_policy())
    workload = CompileWorkload(num_clients=1, scale=SCALE, seed=11)
    return cluster.run_workload(workload)


def main() -> None:
    print("== one client compiling on one MDS (high locality) ==")
    local = run_with_heat()
    print_heat(local)
    print(local.summary_line())
    print()

    print("== the same job on 3 MDS ranks with the original balancer ==")
    spread = run_spread()
    print(spread.summary_line())
    print()

    forwards = (spread.total_forwards
                + spread.metrics.total_prefix_traversals)
    slowdown = spread.makespan / local.makespan - 1
    print(f"distribution cost: {forwards} forwarded/remote traversals, "
          f"{spread.total_migrations} migrations, "
          f"{slowdown:+.1%} runtime vs keeping everything local")
    print("(the paper's Fig 3: unnecessary distribution only hurts)")


if __name__ == "__main__":
    main()
