#!/usr/bin/env python
"""Record a workload once, replay it against different balancers.

The paper's methodology is to compare *strategies* on the same system and
the same traffic.  This example records every metadata op of a mixed
workload (a checkpoint/restart job), saves the trace, then replays the
identical op stream under three different balancers and compares.

Run:  python examples/record_replay.py
"""

import tempfile
from pathlib import Path

from repro import ClusterConfig, SimulatedCluster, run_experiment
from repro.core.policies import adaptable_policy, greedy_spill_policy
from repro.metrics import TraceRecorder, record_run
from repro.workloads import CheckpointWorkload


def main() -> None:
    config = ClusterConfig(num_mds=1, num_clients=4,
                           dir_split_size=20_000, seed=7)
    workload = CheckpointWorkload(num_clients=4, rounds=4,
                                  files_per_round=10_000)

    print("== recording the baseline run (1 MDS) ==")
    recorder, baseline = record_run(SimulatedCluster(config), workload)
    print(baseline.summary_line())
    print(f"captured {len(recorder.events)} ops; "
          f"summary: {recorder.summary()}")

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "checkpoint.jsonl"
        recorder.save(trace_path)
        print(f"trace saved to {trace_path} "
              f"({trace_path.stat().st_size // 1024} KiB)")
        reloaded = TraceRecorder.load(trace_path)

    replay_workload = reloaded.to_workload()
    print()
    print("== replaying the identical ops under different balancers ==")
    for num_mds, policy, label in (
        (2, greedy_spill_policy(), "greedy spill, 2 MDS"),
        (3, adaptable_policy(), "adaptable, 3 MDS"),
    ):
        report = run_experiment(
            ClusterConfig(num_mds=num_mds, num_clients=4,
                          dir_split_size=20_000, seed=7),
            reloaded.to_workload(),
            policy=policy,
        )
        speedup = baseline.makespan / report.makespan - 1
        print(f"{label:<22} makespan={report.makespan:6.2f}s "
              f"({speedup:+.1%} vs baseline) "
              f"migrations={report.total_migrations} "
              f"per_mds={report.per_mds_ops()}")
    del replay_workload


if __name__ == "__main__":
    main()
