#!/usr/bin/env python
"""Quickstart: inject a Mantle policy and balance a create storm.

Builds a 2-rank simulated CephFS metadata cluster, validates and injects
the paper's Greedy Spill policy (Listing 1), runs a 4-client create storm
into one shared directory, and prints what the balancer did.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, SimulatedCluster, validate_policy
from repro.core.policies import greedy_spill_policy
from repro.workloads import CreateWorkload


def main() -> None:
    # 1. A policy is just Lua source wired to the four Mantle hooks.
    policy = greedy_spill_policy()
    print(policy.describe())
    print()

    # 2. Always validate before injecting (paper §4.4: a bad policy used
    #    to be able to take the whole MDS down).
    report = validate_policy(policy)
    print(f"validator: ok={report.ok} warnings={report.warnings}")
    print(f"  dry-run: go={report.sample_go} "
          f"targets={report.sample_targets}")
    print()

    # 3. Build the cluster and inject.
    config = ClusterConfig(
        num_mds=2,
        num_clients=4,
        dir_split_size=10_000,  # shared dir fragments into 8 dirfrags here
        seed=7,
    )
    cluster = SimulatedCluster(config, policy=policy)

    # 4. Run the paper's stress workload: every client creates files in
    #    the same directory.
    workload = CreateWorkload(num_clients=4, files_per_client=20_000,
                              shared_dir=True)
    result = cluster.run_workload(workload)

    # 5. What happened?
    print(result.summary_line())
    print()
    print("balancing decisions:")
    for decision in result.decisions:
        if not decision.exports:
            continue
        for path, load, target in decision.exports:
            print(f"  t={decision.time:6.1f}s  mds{decision.rank} exported "
                  f"{path} (load {load:.0f}) -> mds{target}")
    print()
    for rank, ops in result.per_mds_ops().items():
        print(f"  mds{rank} served {ops} ops")
    lat = result.latency_summary()
    print(f"  mean latency {lat.mean * 1e3:.2f} ms, "
          f"p99 {lat.p99 * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
