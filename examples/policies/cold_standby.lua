-- An example Mantle policy file for `mantle-sim run --policy <file>`.
--
-- "Cold standby": keep everything on rank 1 until it is badly overloaded,
-- then dump exactly the overload onto the last rank (kept cold as a
-- standby), preferring big dirfrags so few migrations are needed.
--
-- Try:
--   mantle-sim validate examples/policies/cold_standby.lua
--   mantle-sim run --policy examples/policies/cold_standby.lua \
--       --mds 3 --clients 4 --files 30000 --shared --split-size 15000

-- @name cold-standby
-- @need_min 1.0
-- @min_unit_load 0.001

-- @metaload
IRD + 2*IWR

-- @mdsload
MDSs[i]["all"] + 100*MDSs[i]["q"]

-- @when
-- Fire only on sustained pressure: queue backed up or CPU pinned for two
-- consecutive ticks (WRstate keeps the streak).
hot = MDSs[whoami]["cpu"] > 85 or MDSs[whoami]["q"] > 8
streak = RDstate() or 0
if hot then WRstate(streak + 1) else WRstate(0) end
standby = #MDSs
go = whoami ~= standby and streak >= 2
     and MDSs[standby]["load"] < MDSs[whoami]["load"]/10

-- @where
-- Send the overload (everything above 120% of the cluster average) to
-- the standby rank.
avg = total/#MDSs
overload = MDSs[whoami]["load"] - 1.2*avg
if overload > 0 then
  targets[standby] = overload
end

-- @howmuch
big_first, big_small
