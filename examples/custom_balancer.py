#!/usr/bin/env python
"""Write your own balancer in Mantle-Lua and race it against the stock ones.

This is the whole point of Mantle: balancing logic is injected source, so a
new strategy is a string, not a CephFS patch.  The custom policy below is a
"queue-guarded spill": it watches queue lengths (not loads), spills to the
*least* loaded rank instead of a fixed neighbour, uses WRstate hysteresis,
and registers a custom dirfrag selector that aims for 60% of the target.

Run:  python examples/custom_balancer.py
"""

from repro import ClusterConfig, MantlePolicy, SimulatedCluster, validate_policy
from repro.core.policies import fill_spill_policy, greedy_spill_policy
from repro.core.selectors import register_selector
from repro.workloads import CreateWorkload


def sixty_percent(units, target):
    """Custom dirfrag selector: biggest-first toward 60% of the target
    (deliberately conservative -- leave load behind)."""
    chosen, shipped = [], 0.0
    for unit, load in sorted(units, key=lambda pair: pair[1], reverse=True):
        if shipped >= 0.6 * target:
            break
        if load > 0:
            chosen.append((unit, load))
            shipped += load
    return chosen


def build_custom_policy() -> MantlePolicy:
    try:
        register_selector("sixty_percent", sixty_percent)
    except ValueError:
        pass  # already registered on a previous run
    return MantlePolicy(
        name="queue-guarded-spill",
        metaload="IWR + IRD",
        mdsload='MDSs[i]["all"] + 50*MDSs[i]["q"]',
        when="""
            -- Spill only if my queue has been non-trivial for two straight
            -- ticks (WRstate hysteresis), and someone is clearly idler.
            hot = MDSs[whoami]["q"] > 0 or MDSs[whoami]["cpu"] > 70
            streak = RDstate() or 0
            if hot then WRstate(streak + 1) else WRstate(0) end
            minload = math.huge
            for i = 1, #MDSs do
                minload = min(minload, MDSs[i]["load"])
            end
            go = hot and streak >= 1
                 and MDSs[whoami]["load"] > 2 * (minload + 1)
        """,
        where="""
            -- Send to the least-loaded rank, proportionally to the gap.
            best, bestload = whoami, math.huge
            for i = 1, #MDSs do
                if MDSs[i]["load"] < bestload then
                    best, bestload = i, MDSs[i]["load"]
                end
            end
            if best ~= whoami then
                targets[best] = (MDSs[whoami]["load"] - bestload) / 2
            end
        """,
        howmuch=("sixty_percent", "big_small"),
    )


def race(policy, label, num_mds=4):
    config = ClusterConfig(num_mds=num_mds, num_clients=4,
                           dir_split_size=25_000, seed=7)
    cluster = SimulatedCluster(config, policy=policy)
    workload = CreateWorkload(num_clients=4, files_per_client=50_000,
                              shared_dir=True)
    result = cluster.run_workload(workload)
    print(f"{label:<24} makespan={result.makespan:7.2f}s "
          f"tput={result.throughput:6.0f}/s "
          f"migrations={result.total_migrations:2d} "
          f"per_mds={result.per_mds_ops()}")
    return result


def main() -> None:
    custom = build_custom_policy()
    report = validate_policy(custom)
    print(f"validator: ok={report.ok} problems={report.problems} "
          f"warnings={report.warnings}")
    assert report.ok
    print()

    race(None, "no balancer (1 rank)", num_mds=1)
    race(greedy_spill_policy(), "greedy spill (Listing 1)")
    race(fill_spill_policy(cpu_threshold=80), "fill & spill (Listing 3)")
    race(custom, "queue-guarded (custom)")

    print()
    print("Change the Lua above and re-run -- no simulator (or CephFS) "
          "rebuild required.")


if __name__ == "__main__":
    main()
