#!/usr/bin/env python
"""Flash crowds and balancer aggressiveness (paper Fig 10).

Five clients compile in separate directories on five MDS ranks.  Three
variants of the Adaptable balancer (paper Listing 4) react differently:
conservative (WRstate hysteresis) holds metadata on one rank until the
spike persists; aggressive distributes immediately; too-aggressive chases
perfect balance and thrashes.

Run:  python examples/flash_crowd.py
"""

import numpy as np

from repro import ClusterConfig, SimulatedCluster
from repro.core.policies import (
    adaptable_conservative_policy,
    adaptable_policy,
    adaptable_too_aggressive_policy,
)
from repro.workloads import CompileWorkload

CLIENTS = 5
SCALE = 6


def sparkline(series, width=64):
    data = np.asarray(series, dtype=float)
    if data.size > width:
        data = np.array([chunk.mean()
                         for chunk in np.array_split(data, width)])
    peak = data.max() or 1.0
    glyphs = " .:-=+*#%@"
    return "".join(glyphs[min(9, int(v / peak * 9))] for v in data)


def run(policy, label, num_mds=5):
    config = ClusterConfig(num_mds=num_mds, num_clients=CLIENTS, seed=3,
                           client_think_time=0.0002)
    cluster = SimulatedCluster(config, policy=policy)
    workload = CompileWorkload(num_clients=CLIENTS, scale=SCALE, seed=11)
    result = cluster.run_workload(workload)
    exports = [d for d in result.decisions if d.exports]
    first = min((d.time for d in exports), default=float("nan"))
    print(f"== {label} ==")
    print(f"   makespan={result.makespan:.1f}s "
          f"migrations={result.total_migrations} "
          f"forwards={result.total_forwards} first_export={first:.1f}s")
    for rank in sorted(result.metrics.per_mds):
        series = result.metrics.timeline.series(rank, until=result.makespan)
        print(f"   mds{rank} |{sparkline(series)}|")
    print()
    return result


def main() -> None:
    single = run(None, "1 MDS (the red curve: link flash crowd hits one "
                       "rank)", num_mds=1)
    conservative = run(adaptable_conservative_policy(), "conservative")
    aggressive = run(adaptable_policy(), "aggressive (Listing 4)")
    too = run(adaptable_too_aggressive_policy(), "too aggressive")

    print("takeaways (paper §4.3):")
    print(f"  distributing early absorbs the flash crowd: aggressive "
          f"{aggressive.makespan:.1f}s vs 1 MDS {single.makespan:.1f}s")
    print(f"  chasing perfect balance thrashes: too-aggressive made "
          f"{too.total_migrations} migrations "
          f"({too.total_forwards} forwards) and finished in "
          f"{too.makespan:.1f}s")
    print(f"  hysteresis delays distribution: conservative exported "
          f"later, finishing in {conservative.makespan:.1f}s")


if __name__ == "__main__":
    main()
