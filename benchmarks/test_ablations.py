"""Ablations of the design choices DESIGN.md calls out.

Each ablation switches off (or sweeps) one mechanism and shows its effect
on a paper experiment, demonstrating which mechanism carries which result:

* scatter-gather coherency halts -> the "spilling evenly to 4 ranks loses
  40%" result (Fig 8);
* the popularity decay half-life -> balancer stability (migration churn);
* heartbeat staleness -> over-spilling by the greedy balancer;
* client pipelining -> where the Fig 5 saturation knee sits.

Runs are scaled down (these sweep many configurations).
"""

from repro.cluster import run_experiment
from repro.core.policies import (
    adaptable_too_aggressive_policy,
    greedy_spill_even_policy,
    greedy_spill_policy,
)
from repro.workloads import CreateWorkload

from harness import base_config, speedup_pct, write_report

FILES = 40_000
SPLIT = 20_000
CLIENTS = 4


def shared_create():
    return CreateWorkload(num_clients=CLIENTS, files_per_client=FILES,
                          shared_dir=True)


def run_ablations():
    out = {}

    # --- scatter-gather halts drive the even-spill collapse ---------------
    base = run_experiment(
        base_config(num_mds=1, num_clients=CLIENTS, dir_split_size=SPLIT),
        shared_create())
    even_on = run_experiment(
        base_config(num_mds=4, num_clients=CLIENTS, dir_split_size=SPLIT),
        shared_create(), policy=greedy_spill_even_policy())
    even_off = run_experiment(
        base_config(num_mds=4, num_clients=CLIENTS, dir_split_size=SPLIT,
                    scatter_gather_prob=0.0),
        shared_create(), policy=greedy_spill_even_policy())
    out["sg"] = (base, even_on, even_off)

    # --- decay half-life vs balancer churn ---------------------------------
    churn = {}
    for half_life in (0.5, 5.0, 50.0):
        report = run_experiment(
            base_config(num_mds=3, num_clients=CLIENTS,
                        dir_split_size=SPLIT, decay_half_life=half_life),
            shared_create(), policy=adaptable_too_aggressive_policy())
        churn[half_life] = report
    out["decay"] = churn

    # --- heartbeat staleness vs greedy over-spilling ------------------------
    fresh = run_experiment(
        base_config(num_mds=2, num_clients=CLIENTS, dir_split_size=SPLIT),
        shared_create(), policy=greedy_spill_policy())
    # Very stale views: the spill decision happens before the importer's
    # load shows up, so the exporter keeps shipping (§4.2's "heartbeat
    # which is a little stale" problem).
    stale = run_experiment(
        base_config(num_mds=2, num_clients=CLIENTS, dir_split_size=SPLIT,
                    heartbeat_pack_time=3.0, rebalance_delay=0.0),
        shared_create(), policy=greedy_spill_policy())
    out["staleness"] = (fresh, stale)
    return out


def test_ablations(benchmark):
    out = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    lines = ["Ablations", ""]

    base, even_on, even_off = out["sg"]
    on_pct = speedup_pct(base.makespan, even_on.makespan)
    off_pct = speedup_pct(base.makespan, even_off.makespan)
    lines += [
        "1. scatter-gather coherency halts (drives Fig 8's -40% even spill)",
        f"   even 4-way spill, halts on : {on_pct:+.1f}% vs 1 MDS",
        f"   even 4-way spill, halts off: {off_pct:+.1f}% vs 1 MDS",
        "",
    ]
    # Without coherency halts, even spilling stops being catastrophic.
    assert off_pct > on_pct + 10.0

    churn = out["decay"]
    lines.append("2. decay half-life vs migration churn (too-aggressive "
                 "balancer)")
    for half_life, report in sorted(churn.items()):
        lines.append(f"   half-life {half_life:>5.1f}s: "
                     f"{report.total_migrations:>4} migrations, "
                     f"makespan {report.makespan:.1f}s")
    lines.append("")
    # Longer smoothing must not meaningfully increase thrash (the count is
    # noisy at this scale; allow small jitter).
    assert (churn[50.0].total_migrations
            <= churn[0.5].total_migrations + 3)

    fresh, stale = out["staleness"]
    lines += [
        "3. heartbeat staleness vs greedy over-spilling",
        f"   fresh views: {fresh.total_migrations} migrations, rank0 kept "
        f"{fresh.per_mds_ops().get(0, 0)} ops",
        f"   stale views: {stale.total_migrations} migrations, rank0 kept "
        f"{stale.per_mds_ops().get(0, 0)} ops",
    ]
    # Stale views make the exporter ship at least as much (usually more).
    assert stale.total_migrations >= fresh.total_migrations

    write_report("ablations", lines)
