"""Perf smoke benchmark: regenerate the tracked BENCH_sim.json numbers.

Runs the microbenchmark suite (engine events/s, policy ticks/s, a small
Fig 8 slice) at ``REPRO_BENCH_SCALE`` and writes the results next to the
other benchmark reports.  With ``REPRO_PERF_CHECK=1`` it additionally
compares against the committed baseline ``benchmarks/perf/BENCH_sim.json``
and fails on a >30% throughput regression -- that is the CI perf gate.

Absolute numbers move with the host; only the relative comparison is
asserted, and only when explicitly requested.
"""

import json
import os
from pathlib import Path

from repro.perf.microbench import (THROUGHPUT_KEYS, collect_benchmarks,
                                   compare_benchmarks, load_benchmarks)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
#: Allowed throughput drop vs the baseline (hosts differ; CI widens this).
TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.30"))
BASELINE = Path(__file__).parent / "BENCH_sim.json"
RESULTS_DIR = Path(__file__).parent.parent / "results"


def test_perf_smoke():
    results = collect_benchmarks(scale=SCALE)

    for key in THROUGHPUT_KEYS:
        assert results[key] > 0, f"{key} did not run"
    assert results["fig8_small_wall_s"] > 0

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_current.json"
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    for key in sorted(results):
        if key != "meta":
            print(f"{key:<22} {results[key]:.1f}")

    if os.environ.get("REPRO_PERF_CHECK") == "1":
        assert BASELINE.exists(), f"missing perf baseline {BASELINE}"
        problems = compare_benchmarks(results, load_benchmarks(BASELINE),
                                      tolerance=TOLERANCE)
        assert not problems, "; ".join(problems)


def test_baseline_is_tracked_and_well_formed():
    assert BASELINE.exists(), (
        "benchmarks/perf/BENCH_sim.json must be committed; regenerate with "
        "`mantle-sim bench --json benchmarks/perf/BENCH_sim.json`"
    )
    baseline = load_benchmarks(BASELINE)
    for key in THROUGHPUT_KEYS:
        assert isinstance(baseline.get(key), (int, float)), key
        assert baseline[key] > 0, key
    assert "meta" in baseline
