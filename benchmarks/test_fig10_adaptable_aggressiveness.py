"""Figure 10: how aggressive should the Adaptable balancer be?

Paper (5 clients compiling, 5 MDS ranks): the conservative balancer keeps
metadata on one MDS until a sustained spike forces distribution; the
aggressive balancer (Listing 4) distributes immediately and absorbs the
link-phase flash crowd; the too-aggressive balancer chases perfect balance,
fragments the namespace, multiplies forwards (the paper measured 60x) and
makes both runtime and stability worse.  The 1-MDS run's throughput drops
when clients shift to linking (a readdir flash crowd).
"""

from repro.cluster import run_experiment
from repro.core.policies import (
    adaptable_conservative_policy,
    adaptable_policy,
    adaptable_too_aggressive_policy,
)
from repro.workloads import CompileWorkload

from harness import COMPILE_SCALE, compile_config, sparkline, write_report

CLIENTS = 5
NUM_MDS = 5


def run_variants():
    def workload():
        return CompileWorkload(num_clients=CLIENTS, scale=COMPILE_SCALE,
                               seed=11)

    runs = {}
    runs["1 MDS"] = run_experiment(
        compile_config(num_mds=1, num_clients=CLIENTS), workload())
    runs["conservative"] = run_experiment(
        compile_config(num_mds=NUM_MDS, num_clients=CLIENTS), workload(),
        policy=adaptable_conservative_policy())
    runs["aggressive"] = run_experiment(
        compile_config(num_mds=NUM_MDS, num_clients=CLIENTS), workload(),
        policy=adaptable_policy())
    runs["too aggressive"] = run_experiment(
        compile_config(num_mds=NUM_MDS, num_clients=CLIENTS), workload(),
        policy=adaptable_too_aggressive_policy())
    return runs


def first_export_time(report):
    times = [d.time for d in report.decisions if d.exports]
    return min(times) if times else float("inf")


def test_fig10_adaptable_aggressiveness(benchmark):
    runs = benchmark.pedantic(run_variants, rounds=1, iterations=1)

    lines = [f"Figure 10: {CLIENTS} clients compiling, {NUM_MDS} MDS",
             ""]
    for name, report in runs.items():
        forwards = report.total_forwards
        lines.append(f"{name}: makespan={report.makespan:.1f}s "
                     f"migrations={report.total_migrations} "
                     f"forwards={forwards} "
                     f"first_export={first_export_time(report):.1f}s")
        for rank in sorted(report.metrics.per_mds):
            series = report.metrics.timeline.series(rank,
                                                    until=report.makespan)
            lines.append(f"  mds{rank} |{sparkline(series)}|")
        lines.append("")

    single = runs["1 MDS"]
    conservative = runs["conservative"]
    aggressive = runs["aggressive"]
    too_aggressive = runs["too aggressive"]

    # The conservative balancer (WRstate hysteresis) distributes later
    # than the aggressive one.
    assert first_export_time(conservative) > first_export_time(aggressive)
    # Too-aggressive thrashes: an order of magnitude more migrations and
    # multiplied forwards (paper: 60x as many forwards as aggressive).
    assert (too_aggressive.total_migrations
            >= 5 * aggressive.total_migrations)
    assert too_aggressive.total_forwards >= 2 * aggressive.total_forwards
    # ...and is the slowest distributed variant.
    assert too_aggressive.makespan > aggressive.makespan
    assert too_aggressive.makespan > conservative.makespan
    # Distributing early absorbs the flash crowd: aggressive beats 1 MDS.
    assert aggressive.makespan < single.makespan
    # The 1-MDS run dips when clients shift to linking: its last-quarter
    # throughput falls below its mid-run throughput.
    series = single.metrics.timeline.total_series(until=single.makespan)
    n = len(series)
    mid = series[n // 4: n // 2].mean()
    tail = series[3 * n // 4:].mean()
    assert tail < mid, (mid, tail)

    lines.append("shape: conservative waits, aggressive absorbs the flash "
                 "crowd, too-aggressive thrashes and loses OK")
    write_report("fig10_adaptable_aggressiveness", lines)
