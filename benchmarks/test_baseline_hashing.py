"""Baseline comparison: dynamic subtree partitioning vs static hashing.

Paper §2.1/§5: hash-based distribution (PVFSv2, SkyFS, ...) achieves
perfect static balance but "locality is completely lost"; dynamic subtree
partitioning can get balance *and* locality.  This benchmark runs the
5-client compile job under (a) one MDS, (b) the Adaptable Mantle balancer,
and (c) static hash partitioning of every source directory over the ranks.
"""

from repro.cluster import SimulatedCluster
from repro.core.policies import adaptable_policy
from repro.workloads import CompileWorkload

from harness import COMPILE_SCALE, compile_config, write_report

CLIENTS = 5
NUM_MDS = 3


def run_three_ways():
    def workload():
        return CompileWorkload(num_clients=CLIENTS, scale=COMPILE_SCALE,
                               seed=11)

    runs = {}
    runs["1 MDS"] = SimulatedCluster(
        compile_config(num_mds=1, num_clients=CLIENTS)
    ).run_workload(workload())

    runs["subtree (Adaptable)"] = SimulatedCluster(
        compile_config(num_mds=NUM_MDS, num_clients=CLIENTS),
        policy=adaptable_policy(),
    ).run_workload(workload())

    # Static hashing: pre-build each client's directory skeleton, then pin
    # every leaf source directory by hash before the clients start.
    cluster = SimulatedCluster(
        compile_config(num_mds=NUM_MDS, num_clients=CLIENTS))
    wl = workload()
    wl.prepare(cluster.namespace)
    for client in range(CLIENTS):
        root = f"/src/client{client}"
        cluster.namespace.mkdirs(root)
        for rel, _files, _weight in wl.tree_dirs():
            cluster.namespace.mkdirs(f"{root}/{rel}")
    cluster.hash_partition(depth=4)  # /src/clientN/top/dXX
    runs["static hashing"] = cluster.run_workload(wl)
    return runs


def test_baseline_hashing(benchmark):
    runs = benchmark.pedantic(run_three_ways, rounds=1, iterations=1)

    lines = ["Baseline: subtree partitioning vs static hashing "
             f"({CLIENTS} clients compiling, {NUM_MDS} MDS)",
             f"{'setup':<22} {'makespan':>9} {'fwd+prefix':>11} "
             f"{'balance-cv':>11}"]
    import numpy as np

    stats = {}
    for name, report in runs.items():
        served = [m.ops_served for m in report.metrics.per_mds.values()]
        cv = (float(np.std(served) / np.mean(served))
              if len(served) > 1 else 0.0)
        crossings = (report.total_forwards
                     + report.metrics.total_prefix_traversals)
        stats[name] = {"makespan": report.makespan, "cv": cv,
                       "crossings": crossings}
        lines.append(f"{name:<22} {report.makespan:>8.1f}s "
                     f"{crossings:>11} {cv:>11.3f}")

    subtree = stats["subtree (Adaptable)"]
    hashed = stats["static hashing"]
    single = stats["1 MDS"]

    # Hashing balances at least as evenly as the subtree balancer...
    assert hashed["cv"] <= subtree["cv"] + 0.15
    # ...but loses locality: far more cross-rank traffic...
    assert hashed["crossings"] > 1.5 * max(1, subtree["crossings"])
    # ...and the subtree balancer is at least as fast.
    assert subtree["makespan"] <= hashed["makespan"] * 1.02
    # Both distributed setups beat the single saturated MDS at 5 clients.
    assert subtree["makespan"] < single["makespan"]

    lines.append("shape: hashing balances but destroys locality; subtree "
                 "partitioning gets both OK")
    write_report("baseline_hashing", lines)
