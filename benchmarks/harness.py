"""Shared benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
section: it runs the relevant simulated experiment(s), prints the same
rows/series the paper reports, asserts the *shape* claims (who wins, by
roughly what factor, where crossovers fall), and writes a text report under
``benchmarks/results/``.

Scale: ``REPRO_BENCH_SCALE`` (default 1.0) scales the workload sizes.  The
default reproduces the paper's 100 k-files-per-client runs; smaller values
run faster but let balancing events dominate a larger fraction of the run,
so shape assertions may loosen below ~0.5.
"""

from __future__ import annotations

import os
from pathlib import Path

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the simulator
    np = None

from repro.config import ClusterConfig

#: Workload scale factor (1.0 = the paper's sizes).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Paper: 100,000 creates per client (Figs 4, 7, 8).
FILES_PER_CLIENT = max(2000, int(100_000 * SCALE))
#: Paper: directories fragment at 50,000 entries (§4.1).
DIR_SPLIT_SIZE = max(1000, int(50_000 * SCALE))
#: Compile workload scale (10 -> ~84k metadata ops per client, a job a few
#: minutes long at the calibrated service times, like the paper's).
COMPILE_SCALE = max(1.0, 10 * SCALE)
#: Compile clients do real computation between metadata ops.
COMPILE_THINK = 0.0002

RESULTS_DIR = Path(__file__).parent / "results"


def base_config(**overrides) -> ClusterConfig:
    defaults = dict(dir_split_size=DIR_SPLIT_SIZE, seed=7)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def compile_config(**overrides) -> ClusterConfig:
    defaults = dict(seed=3, client_think_time=COMPILE_THINK)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def write_report(name: str, lines: list[str]) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    print()
    print(text)
    return path


def speedup_pct(baseline: float, measured: float) -> float:
    """Percent speedup of *measured* over *baseline* (positive = faster)."""
    return (baseline / measured - 1.0) * 100.0


def sparkline(series, width: int = 60) -> str:
    """Compress a series into a textual sparkline for timeline figures."""
    if np is None:  # pragma: no cover - numpy ships with the simulator
        raise RuntimeError("sparkline requires numpy")
    data = np.asarray(series, dtype=float)
    if data.size == 0:
        return ""
    if data.size > width:
        bins = np.array_split(data, width)
        data = np.array([chunk.mean() for chunk in bins])
    peak = data.max() or 1.0
    glyphs = " .:-=+*#%@"
    return "".join(
        glyphs[min(len(glyphs) - 1, int(value / peak * (len(glyphs) - 1)))]
        for value in data
    )
