"""Shared benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
section: it runs the relevant simulated experiment(s), prints the same
rows/series the paper reports, asserts the *shape* claims (who wins, by
roughly what factor, where crossovers fall), and writes a text report under
``benchmarks/results/``.

Scale: ``REPRO_BENCH_SCALE`` (default 1.0) scales the workload sizes.  The
default reproduces the paper's 100 k-files-per-client runs; smaller values
run faster but let balancing events dominate a larger fraction of the run,
so shape assertions may loosen below ~0.5.
"""

from __future__ import annotations

import os
from pathlib import Path

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the simulator
    np = None

from repro.config import ClusterConfig

#: Workload scale factor (1.0 = the paper's sizes).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Paper: 100,000 creates per client (Figs 4, 7, 8).
FILES_PER_CLIENT = max(2000, int(100_000 * SCALE))
#: Paper: directories fragment at 50,000 entries (§4.1).
DIR_SPLIT_SIZE = max(1000, int(50_000 * SCALE))
#: Compile workload scale (10 -> ~84k metadata ops per client, a job a few
#: minutes long at the calibrated service times, like the paper's).
COMPILE_SCALE = max(1.0, 10 * SCALE)
#: Compile clients do real computation between metadata ops.
COMPILE_THINK = 0.0002

RESULTS_DIR = Path(__file__).parent / "results"


def base_config(**overrides) -> ClusterConfig:
    defaults = dict(dir_split_size=DIR_SPLIT_SIZE, seed=7)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def compile_config(**overrides) -> ClusterConfig:
    defaults = dict(seed=3, client_think_time=COMPILE_THINK)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def write_report(name: str, lines: list[str]) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    print()
    print(text)
    return path


def _cell_fingerprint(config, workload, policy, max_time: float) -> str:
    """Content fingerprint of one harness cell (see repro.perf.fingerprint).

    Workload identity is its class plus all constructor-derived attributes
    (every workload stores plain data), so resizing a grid cell or editing
    a policy's Lua is a cache miss.
    """
    from dataclasses import asdict

    from repro.core.policyfile import dump_policy
    from repro.perf.fingerprint import experiment_fingerprint

    payload = {
        "config": asdict(config),
        "workload": [type(workload).__name__,
                     {key: value for key, value
                      in sorted(vars(workload).items())}],
        "policy": dump_policy(policy) if policy is not None else "",
        "max_time": max_time,
    }
    return experiment_fingerprint("harness", payload)


def _run_pending(pending, max_time: float):
    """Run the uncached cells, sharing construction + prefixes via fork."""
    from repro.cluster import SimulatedCluster, run_experiment
    from repro.perf.warmstart import CellPlan, fork_supported, run_grid

    if len(pending) <= 1 or not fork_supported():
        return {name: run_experiment(config, workload_factory(),
                                     policy=(policy_factory()
                                             if policy_factory else None),
                                     max_time=max_time)
                for _index, name, config, workload_factory, policy_factory
                in pending}

    plans = []
    for index, name, config, workload_factory, policy_factory in pending:
        workload = workload_factory()
        signature = workload.construction_signature()
        construction_key = None
        if signature is not None:
            construction_key = (signature, config.dir_split_size,
                                config.dir_split_bits,
                                config.decay_half_life)
        workload_id = tuple(sorted((key, repr(value)) for key, value
                                   in vars(workload).items()))
        prefix_key = (repr(config), type(workload).__name__,
                      workload_id, max_time)
        plans.append(CellPlan(
            index=index, construction_key=construction_key,
            prefix_key=prefix_key,
            payload=(name, config, workload_factory, policy_factory)))

    def construct(_ckey, group):
        _name, config, workload_factory, _pf = group[0].payload
        namespace = SimulatedCluster.build_namespace(config)
        workload_factory().prepare(namespace)
        return namespace

    def warm_start(namespace, _pkey, group):
        _name, config, workload_factory, _pf = group[0].payload
        cluster = SimulatedCluster(config, namespace=namespace)
        workload = workload_factory()
        cluster.begin_workload(workload, max_time=max_time,
                               skip_prepare=namespace is not None)
        cluster.run_shared_prefix(workload.shared_prefix_end(config))
        return cluster

    def execute(cluster, plan):
        name, _config, _wf, policy_factory = plan.payload
        if policy_factory is not None:
            cluster.set_policy(policy_factory())
        return name, cluster.finish_workload()

    return dict(run_grid(plans, construct=construct,
                         warm_start=warm_start, execute=execute))


def run_cells(cells, max_time: float = 36_000.0):
    """Run a named grid of benchmark cells: ``{name: SimReport}``.

    *cells* is a list of ``(name, config, workload_factory,
    policy_factory-or-None)``.  Cells already in the result cache are
    loaded instead of simulated; the rest run through the fork-based
    warm-start server (shared namespace construction + shared
    policy-independent simulation prefixes), falling back to plain
    ``run_experiment`` where ``os.fork`` is unavailable.  Reports are
    byte-identical to cold runs either way.
    """
    from repro.perf.cache import open_cache

    names = [cell[0] for cell in cells]
    if len(set(names)) != len(names):
        raise ValueError("cell names must be unique")
    cache = open_cache()
    keys = {}
    reports = {}
    pending = []
    for index, (name, config, workload_factory, policy_factory) \
            in enumerate(cells):
        policy = policy_factory() if policy_factory else None
        key = _cell_fingerprint(config, workload_factory(), policy,
                                max_time)
        keys[name] = key
        cached = cache.get_object(key) if cache is not None else None
        if cached is not None:
            reports[name] = cached
        else:
            pending.append((index, name, config, workload_factory,
                            policy_factory))
    if pending:
        for name, report in _run_pending(pending, max_time).items():
            reports[name] = report
            if cache is not None and report.heat is None:
                cache.put_object(keys[name], report)
    return {name: reports[name] for name in names}


def speedup_pct(baseline: float, measured: float) -> float:
    """Percent speedup of *measured* over *baseline* (positive = faster)."""
    return (baseline / measured - 1.0) * 100.0


def sparkline(series, width: int = 60) -> str:
    """Compress a series into a textual sparkline for timeline figures."""
    if np is None:  # pragma: no cover - numpy ships with the simulator
        raise RuntimeError("sparkline requires numpy")
    data = np.asarray(series, dtype=float)
    if data.size == 0:
        return ""
    if data.size > width:
        bins = np.array_split(data, width)
        data = np.array([chunk.mean() for chunk in bins])
    peak = data.max() or 1.0
    glyphs = " .:-=+*#%@"
    return "".join(
        glyphs[min(len(glyphs) - 1, int(value / peak * (len(glyphs) - 1)))]
        for value in data
    )
