"""Figure 5: single-MDS client scaling.

Paper: "For the create heavy workload, the throughput stops improving and
the latency continues to increase with 5, 6, or 7 clients... This indicates
that a single MDS can handle up to 4 clients without being overloaded."
Also: latency/throughput standard deviation grows with 3+ clients.
"""

import numpy as np

from repro.cluster import run_experiment
from repro.workloads import CreateWorkload

from harness import base_config, write_report

FILES = 3000  # per client; Fig 5 only needs steady-state rates
SEEDS = (7, 8, 9)


def run_scaling():
    rows = []
    for clients in range(1, 8):
        tputs, lats = [], []
        for seed in SEEDS:
            config = base_config(num_mds=1, num_clients=clients, seed=seed,
                                 dir_split_size=10**9)
            report = run_experiment(
                config,
                CreateWorkload(num_clients=clients, files_per_client=FILES),
            )
            tputs.append(report.throughput)
            lats.append(report.latency_summary().mean)
        rows.append({
            "clients": clients,
            "tput": float(np.mean(tputs)),
            "tput_std": float(np.std(tputs)),
            "lat_ms": float(np.mean(lats)) * 1000,
            "lat_std_ms": float(np.std(lats)) * 1000,
        })
    return rows


def test_fig05_single_mds_scaling(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)

    lines = ["Figure 5: single-MDS scaling (create workload)",
             f"{'clients':>8} {'req/s':>8} {'+-':>6} {'lat ms':>8} {'+-':>6}"]
    for row in rows:
        lines.append(f"{row['clients']:>8} {row['tput']:>8.0f} "
                     f"{row['tput_std']:>6.0f} {row['lat_ms']:>8.3f} "
                     f"{row['lat_std_ms']:>6.3f}")
    by_clients = {row["clients"]: row for row in rows}

    # Throughput stops improving with 5, 6, 7 clients...
    plateau = by_clients[5]["tput"]
    assert by_clients[6]["tput"] < plateau * 1.05
    assert by_clients[7]["tput"] < plateau * 1.05
    # ...while latency continues to increase.
    assert (by_clients[5]["lat_ms"] < by_clients[6]["lat_ms"]
            < by_clients[7]["lat_ms"])
    # Throughput grows healthily while under capacity.
    assert by_clients[2]["tput"] > by_clients[1]["tput"] * 1.5
    # Latency at 7 clients is far above the uncontended latency.
    assert by_clients[7]["lat_ms"] > by_clients[1]["lat_ms"] * 1.5
    lines.append("shape: plateau from ~4-5 clients, latency keeps rising OK")
    write_report("fig05_single_mds_scaling", lines)
