"""Figure 1: metadata hotspots while compiling the Linux source.

Paper: "untarring the code has high, sequential metadata load across
directories and compiling the code has hotspots in the arch, kernel, fs,
and mm directories", computed from inode reads/writes smoothed with an
exponential decay.
"""

import numpy as np

from repro.cluster import SimulatedCluster
from repro.workloads import CompileWorkload

from harness import COMPILE_SCALE, compile_config, write_report

HOT_DIRS = ("arch", "kernel", "fs", "mm")


def run_compile_with_heat():
    config = compile_config(num_mds=1, num_clients=1)
    cluster = SimulatedCluster(config, heat_sampling=2.0)
    report = cluster.run_workload(
        CompileWorkload(num_clients=1, scale=COMPILE_SCALE, seed=11)
    )
    return report


def top_level(path: str) -> str:
    parts = [p for p in path.split("/") if p]
    return parts[2] if len(parts) >= 3 else path  # /src/client0/<top>/...


def test_fig01_hotspots(benchmark):
    report = benchmark.pedantic(run_compile_with_heat, rounds=1,
                                iterations=1)
    heat = report.heat
    assert heat is not None and heat.samples

    times, dirs, matrix = heat.matrix()
    lines = [f"Figure 1: per-directory heat while compiling "
             f"(scale {COMPILE_SCALE}, decay half-life "
             f"{report.config.decay_half_life}s)", ""]

    # Aggregate heat per top-level source directory at each sample.
    top_dirs = sorted({top_level(d) for d in dirs
                       if d.startswith("/src/client0/")})
    per_top = {}
    for top in top_dirs:
        cols = [i for i, d in enumerate(dirs)
                if d.startswith("/src/client0/") and top_level(d) == top
                and d.count("/") == 3]  # the top dir itself aggregates
        if cols:
            per_top[top] = matrix[:, cols].sum(axis=1)

    mid = len(times) // 2  # compile phase sample
    lines.append(f"{'directory':<16} {'heat@mid-compile':>18}")
    ranked = sorted(per_top.items(), key=lambda kv: kv[1][mid], reverse=True)
    for name, series in ranked:
        marker = " <-- hotspot" if name in HOT_DIRS else ""
        lines.append(f"{name:<16} {series[mid]:>18.1f}{marker}")

    # The compile-phase hotspots are arch/kernel/fs/mm (+ include traffic).
    top4 = {name for name, _series in ranked[:5]}
    assert len(top4 & set(HOT_DIRS)) >= 3, ranked[:5]
    # Cold documentation tree stays cold.
    assert per_top["Documentation"][mid] < ranked[0][1][mid] / 5
    # Untar phase (earliest sample) is much flatter than the compile
    # phase: hot/median ratio grows once compilation starts.
    first = 0
    def skew(index):
        values = np.array([series[index] for series in per_top.values()])
        positive = values[values > 0]
        return (positive.max() / np.median(positive)) if positive.size else 1

    assert skew(mid) > skew(first), (skew(first), skew(mid))

    lines.append("")
    lines.append(f"untar-phase skew {skew(first):.1f}x vs compile-phase "
                 f"skew {skew(mid):.1f}x (hotspots emerge) OK")
    write_report("fig01_hotspots", lines)
