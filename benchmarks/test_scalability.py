"""Scalability analysis (paper §4.4).

Paper: "our MDS cluster is small, but today's production systems use
metadata services with a small number of nodes (often less than 5).  Our
balancers are robust until 20 nodes, at which point there is increased
variability in client performance."

This benchmark scales the MDS cluster from 2 to 20 ranks under a
many-client create storm (separate directories, so there is real
parallelism to harvest) with the Adaptable balancer, and measures
throughput and per-client runtime variability.
"""

from repro.cluster import run_experiment
from repro.core.policies import adaptable_policy
from repro.metrics.stats import coefficient_of_variation
from repro.workloads import CreateWorkload

from harness import SCALE, base_config, write_report

CLIENTS = 20
FILES = max(2000, int(20_000 * SCALE))
RANKS = (2, 5, 10, 20)


def run_scaling():
    rows = {}
    for num_mds in RANKS:
        config = base_config(num_mds=num_mds, num_clients=CLIENTS,
                             dir_split_size=10**9)
        report = run_experiment(
            config,
            CreateWorkload(num_clients=CLIENTS, files_per_client=FILES),
            policy=adaptable_policy(),
        )
        rows[num_mds] = report
    return rows


def test_scalability(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)

    lines = [f"Scalability (§4.4): {CLIENTS} create clients, separate "
             f"dirs, Adaptable balancer",
             f"{'MDS':>4} {'makespan':>9} {'tput':>8} {'active':>7} "
             f"{'client-cv':>10} {'migrations':>11}"]
    stats = {}
    for num_mds, report in sorted(rows.items()):
        runtimes = list(report.client_runtimes.values())
        cv = coefficient_of_variation(runtimes)
        active = sum(1 for ops in report.per_mds_ops().values() if ops > 0)
        stats[num_mds] = {"makespan": report.makespan, "cv": cv,
                          "active": active}
        lines.append(f"{num_mds:>4} {report.makespan:>8.1f}s "
                     f"{report.throughput:>8.0f} {active:>7} "
                     f"{cv:>10.4f} {report.total_migrations:>11}")

    # Adding ranks helps until the job becomes client-bound (20 clients
    # saturate ~5 of our ranks); beyond that the balancer must stay
    # *robust* -- not faster, but not collapsing either (paper: "robust
    # until 20 nodes").
    assert stats[5]["makespan"] < stats[2]["makespan"]
    assert stats[10]["makespan"] <= stats[5]["makespan"] * 1.35
    assert stats[20]["makespan"] <= stats[5]["makespan"] * 1.35
    # The balancer actually uses a large cluster.
    assert stats[10]["active"] >= 5
    assert stats[20]["active"] >= 8
    # Paper: at 20 ranks client-performance variability grows.  Our
    # simulator stays well-behaved at 20 ranks (client-runtime CV remains
    # ~0.2% at every size) -- it does not model the n-way communication
    # and memory-pressure pathologies the paper suspects, so we assert
    # only that variability does not collapse suspiciously (a measurement
    # bug) and record the deviation in EXPERIMENTS.md.
    small_cv = min(stats[2]["cv"], stats[5]["cv"])
    assert stats[20]["cv"] >= small_cv * 0.5

    lines.append("shape: speedup until client-bound (~5 ranks), robust "
                 "through 20 ranks OK")
    write_report("scalability", lines)
