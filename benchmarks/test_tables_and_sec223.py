"""Table 1, Table 2 and the §2.2.3 dirfrag-selector example.

These are implementation tables rather than measurement figures; the
benchmarks exercise the corresponding code end to end and print the rows
the paper presents.
"""

import pytest

from repro.core.api import CEPHFS_MDSLOAD, CEPHFS_METALOAD
from repro.core.environment import (
    build_decision_bindings,
    compile_mdsload,
    compile_metaload,
)
from repro.core.policies import original_policy
from repro.core.selectors import choose_best
from repro.core.validator import validate_policy
from repro.luapolicy import run_policy

from harness import write_report

#: §2.2.3: the problematic dirfrag loads and the target the balancer set.
SEC223_LOADS = [12.7, 13.3, 13.3, 14.6, 15.7, 13.5, 13.7, 14.6]
SEC223_TARGET = 55.6
NEED_MIN = 0.8


def run_table1():
    metaload_fn = compile_metaload(CEPHFS_METALOAD)
    mdsload_fn = compile_mdsload(CEPHFS_MDSLOAD)
    counters = {"IRD": 100.0, "IWR": 50.0, "READDIR": 10.0,
                "FETCH": 5.0, "STORE": 2.0}
    metrics = [
        {"auth": 218.0, "all": 250.0, "cpu": 80.0, "mem": 30.0,
         "q": 4.0, "req": 1500.0},
        {"auth": 10.0, "all": 12.0, "cpu": 5.0, "mem": 10.0,
         "q": 0.0, "req": 50.0},
    ]
    report = validate_policy(original_policy())
    return {
        "metaload": metaload_fn(counters),
        "mdsload0": mdsload_fn(metrics, 0),
        "mdsload1": mdsload_fn(metrics, 1),
        "validation": report,
    }


def test_tab01_original_policy(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    # metaload = IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE
    assert result["metaload"] == pytest.approx(
        100 + 2 * 50 + 10 + 2 * 5 + 4 * 2
    )
    # MDSload = 0.8*auth + 0.2*all + req + 10*q
    assert result["mdsload0"] == pytest.approx(
        0.8 * 218 + 0.2 * 250 + 1500 + 40
    )
    assert result["validation"].ok
    write_report("tab01_original_policy", [
        "Table 1: the original CephFS policies as a Mantle policy",
        f"  metaload  = {CEPHFS_METALOAD}",
        f"  -> {result['metaload']:.1f} on the sample counters",
        f"  MDSload   = {CEPHFS_MDSLOAD}",
        f"  -> rank0 {result['mdsload0']:.1f}, rank1 {result['mdsload1']:.1f}",
        "  when      = my load > total/#MDSs",
        "  where     = even out underloaded ranks",
        "  how-much  = big_first, target scaled by need_min 0.8",
        "validator: OK",
    ])


def run_table2():
    """Exercise every Table 2 metric and function from injected code."""
    state = {}
    bindings = build_decision_bindings(
        whoami=0,
        mds_metrics=[
            {"auth": 7.0, "all": 9.0, "cpu": 60.0, "mem": 20.0, "q": 2.0,
             "req": 800.0, "load": 11.0},
            {"auth": 1.0, "all": 2.0, "cpu": 5.0, "mem": 5.0, "q": 0.0,
             "req": 10.0, "load": 1.0},
        ],
        local_counters={"IRD": 3, "IWR": 4, "READDIR": 5, "FETCH": 6,
                        "STORE": 7},
        auth_metaload=42.0,
        all_metaload=43.0,
        wrstate=lambda v=None: state.__setitem__("slot", v),
        rdstate=lambda: state.get("slot"),
    )
    source = """
    probe = {}
    probe["whoami"] = whoami
    probe["authmetaload"] = authmetaload
    probe["allmetaload"] = allmetaload
    probe["IRD"] = IRD  probe["IWR"] = IWR
    probe["READDIR"] = READDIR  probe["FETCH"] = FETCH
    probe["STORE"] = STORE
    probe["auth"] = MDSs[1]["auth"]   probe["all"] = MDSs[1]["all"]
    probe["cpu"] = MDSs[1]["cpu"]     probe["mem"] = MDSs[1]["mem"]
    probe["q"] = MDSs[1]["q"]         probe["req"] = MDSs[1]["req"]
    probe["load"] = MDSs[1]["load"]   probe["total"] = total
    WRstate(99)
    probe["state"] = RDstate()
    probe["maxmin"] = max(1, 2) + min(1, 2)
    """
    return run_policy(source, bindings).python_value("probe")


def test_tab02_environment(benchmark):
    probe = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    expected = {
        "whoami": 1.0, "authmetaload": 42.0, "allmetaload": 43.0,
        "IRD": 3.0, "IWR": 4.0, "READDIR": 5.0, "FETCH": 6.0, "STORE": 7.0,
        "auth": 7.0, "all": 9.0, "cpu": 60.0, "mem": 20.0, "q": 2.0,
        "req": 800.0, "load": 11.0, "total": 12.0, "state": 99.0,
        "maxmin": 3.0,
    }
    assert probe == expected
    write_report("tab02_environment", [
        "Table 2: the Mantle environment, probed from injected Lua",
        *[f"  {key:<14} = {value}" for key, value in sorted(probe.items())],
    ])


def run_sec223():
    scaled_target = SEC223_TARGET * NEED_MIN
    units = [(f"frag{i}", load) for i, load in enumerate(SEC223_LOADS)]
    cephfs = choose_best(["big_first"], units, scaled_target)
    mantle = choose_best(["big_first", "small_first", "big_small", "half"],
                         units, SEC223_TARGET)
    return cephfs, mantle


def test_sec223_selector_example(benchmark):
    cephfs, mantle = benchmark.pedantic(run_sec223, rounds=1, iterations=1)
    # CephFS (big_first with the 0.8-scaled target) ships only 3 dirfrags:
    # 15.7 + 14.6 + 14.6 = 44.9 of the 55.6 target.
    assert cephfs.shipped == pytest.approx(44.9)
    assert len(cephfs.chosen) == 3
    # Mantle races all selectors and picks big_small, landing within 0.7 of
    # the target (the paper prints 0.5 with its rounding of the loads).
    assert mantle.name == "big_small"
    assert mantle.distance == pytest.approx(0.7, abs=0.01)
    write_report("sec223_selector_example", [
        "Section 2.2.3 example: dirfrag loads "
        f"{SEC223_LOADS}, target {SEC223_TARGET}",
        f"CephFS big_first @ 0.8 need_min: ships {cephfs.shipped:.1f} "
        f"({len(cephfs.chosen)} dirfrags) -- the paper's 3-of-8 problem",
        f"Mantle selector race: winner={mantle.name} "
        f"shipped={mantle.shipped:.1f} distance={mantle.distance:.1f} "
        "(paper: big_small, distance 0.5 with its rounding)",
    ])
