"""Figure 9: compile workload under the Adaptable balancer.

Paper: "3 clients do not saturate the system enough to make distribution
worthwhile and 5 clients with 3 MDS nodes is just as efficient as 4 or 5
MDS nodes."  The balancer "immediately moves the large subtrees, in this
case the root directory of each client, and then stops migrating".
"""

from repro.cluster import run_experiment
from repro.core.policies import adaptable_policy
from repro.workloads import CompileWorkload

from harness import COMPILE_SCALE, compile_config, speedup_pct, write_report


def run_grid():
    grid = {}
    for clients, mds_counts in ((3, (1, 3, 5)), (5, (1, 2, 3, 4, 5))):
        for num_mds in mds_counts:
            policy = adaptable_policy() if num_mds > 1 else None
            report = run_experiment(
                compile_config(num_mds=num_mds, num_clients=clients),
                CompileWorkload(num_clients=clients, scale=COMPILE_SCALE,
                                seed=11),
                policy=policy,
            )
            grid[(clients, num_mds)] = report
    return grid


def test_fig09_compile_speedup(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    lines = ["Figure 9: compile speedup vs 1 MDS (Adaptable balancer)",
             f"{'clients':>8} {'MDS':>4} {'makespan':>9} {'speedup':>9} "
             f"{'migrations':>11}"]
    speedups = {}
    for (clients, num_mds), report in sorted(grid.items()):
        base = grid[(clients, 1)].makespan
        pct = speedup_pct(base, report.makespan)
        speedups[(clients, num_mds)] = pct
        lines.append(f"{clients:>8} {num_mds:>4} {report.makespan:>8.1f}s "
                     f"{pct:>+8.1f}% {report.total_migrations:>11}")

    # 3 clients: distribution is not worthwhile (no meaningful speedup).
    assert speedups[(3, 3)] < 5.0
    assert speedups[(3, 5)] < 5.0
    # 5 clients: distribution clearly helps...
    assert speedups[(5, 3)] > 5.0
    # ...and 3 MDS is just as efficient as 4 or 5.
    assert abs(speedups[(5, 4)] - speedups[(5, 3)]) < 5.0
    assert abs(speedups[(5, 5)] - speedups[(5, 3)]) < 5.0
    # The balancer moves the big per-client subtrees and then settles: a
    # handful of migrations, not continuous churn.
    assert 1 <= grid[(5, 3)].total_migrations <= 3 * 5
    # Load actually spread: rank 0 no longer serves everything.
    served = grid[(5, 5)].per_mds_ops()
    assert sum(1 for ops in served.values() if ops > 0) >= 4

    lines.append("shape: 3 clients gain nothing, 5 clients gain ~10% and "
                 "3 MDS ~= 4 ~= 5 OK")
    write_report("fig09_compile_speedup", lines)
