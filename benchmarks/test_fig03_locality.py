"""Figure 3: locality vs. distribution for the compile job.

Paper setups (one client compiling, footnote 2): "high locality" keeps all metadata on
one MDS; "spread evenly" untars with 1 MDS and compiles with 3 (hot
metadata correctly distributed); "spread unevenly" untars AND compiles with
3 MDS (metadata incorrectly distributed, locality lost).

Fig 3a: total request count grows when metadata is distributed.
Fig 3b: path traversals end in local hits when spread evenly, but in
forwards when spread unevenly.  Keeping everything on one MDS was 18-19%
faster in the paper.
"""

from repro.cluster import SimulatedCluster
from repro.workloads import CompileWorkload

from harness import COMPILE_SCALE, compile_config, write_report

CLIENTS = 1
NUM_MDS = 3


def make_workload():
    return CompileWorkload(num_clients=CLIENTS, scale=COMPILE_SCALE, seed=11)


def untar_watcher(cluster, workload, action):
    """Run *action(cluster)* once every client finished its untar phase."""
    total_files = sum(files for _d, files, _w in workload.tree_dirs())
    fired = [False]

    def check():
        if fired[0]:
            return
        for client in range(CLIENTS):
            root = f"/src/client{client}"
            try:
                d = cluster.namespace.resolve_dir(root)
            except FileNotFoundError:
                return
            count = sum(sub.entry_count() for sub in d.walk())
            if count < total_files:
                return
        fired[0] = True
        action(cluster)

    cluster.engine.every(0.5, check)


def run_setups():
    runs = {}

    # (a) High locality: everything on one MDS.
    cluster = SimulatedCluster(compile_config(num_mds=1,
                                              num_clients=CLIENTS))
    runs["high locality"] = cluster.run_workload(make_workload())

    # (b) Spread evenly: untar on 1 MDS, then the hot top-level source
    # directories are distributed round-robin over the 3 ranks (hot
    # metadata correctly distributed).
    cluster = SimulatedCluster(compile_config(num_mds=NUM_MDS,
                                              num_clients=CLIENTS))
    workload = make_workload()

    def pin_top_dirs(c):
        for client in range(CLIENTS):
            root = c.namespace.resolve_dir(f"/src/client{client}")
            for index, name in enumerate(sorted(root.subdirs)):
                c.pin(f"/src/client{client}/{name}", index % NUM_MDS)

    untar_watcher(cluster, workload, pin_top_dirs)
    runs["spread evenly"] = cluster.run_workload(workload)

    # (c) Spread unevenly: untar AND compile with 3 MDS under the original
    # balancer (the paper's footnote 2 setup) -- metadata gets distributed
    # during the create-heavy untar phase and keeps being migrated, so the
    # workload loses locality and clients chase stale maps.
    from repro.core.policies import original_policy

    cluster = SimulatedCluster(compile_config(num_mds=NUM_MDS,
                                              num_clients=CLIENTS),
                               policy=original_policy())
    runs["spread unevenly"] = cluster.run_workload(make_workload())
    return runs


def test_fig03_locality(benchmark):
    runs = benchmark.pedantic(run_setups, rounds=1, iterations=1)

    lines = ["Figure 3: locality vs distribution, 1 client compiling",
             "",
             f"{'setup':<18} {'runtime':>8} {'requests':>9} {'hits':>8} "
             f"{'forwards':>9}"]
    stats = {}
    for name, report in runs.items():
        # Fig 3b counts path traversals ending in forwards: both client
        # requests forwarded between ranks and remote prefix traversals.
        forwards = (report.total_forwards
                    + report.metrics.total_prefix_traversals)
        requests = report.total_ops + forwards
        stats[name] = {
            "runtime": report.makespan,
            "requests": requests,
            "hits": report.metrics.total_hits,
            "forwards": forwards,
        }
        lines.append(f"{name:<18} {report.makespan:>7.1f}s "
                     f"{requests:>9} {report.metrics.total_hits:>8} "
                     f"{forwards:>9}")

    local = stats["high locality"]
    evenly = stats["spread evenly"]
    unevenly = stats["spread unevenly"]

    # Fig 3a: the number of requests increases when metadata is
    # distributed, most with bad distribution.
    assert local["requests"] <= evenly["requests"] <= unevenly["requests"]
    # Fig 3b: spreading unevenly ends far more traversals in forwards
    # (the paper's evenly case is near zero; ours pays a one-off forward
    # per directory while clients re-learn the post-untar distribution).
    assert unevenly["forwards"] > 1.5 * max(1, evenly["forwards"])
    assert unevenly["forwards"] > 100
    assert local["forwards"] == 0
    # Locality wins on runtime (paper: 18-19% speedup over the spreads).
    assert local["runtime"] <= evenly["runtime"] * 1.02
    assert local["runtime"] < unevenly["runtime"]
    assert evenly["runtime"] < unevenly["runtime"]

    slowdown = unevenly["runtime"] / local["runtime"] - 1
    lines.append("")
    lines.append(f"uneven spread is {slowdown:+.1%} slower than high "
                 "locality; forwards blow up only when hot metadata is "
                 "distributed incorrectly OK")
    write_report("fig03_locality", lines)
