"""Selector-accuracy sweep (extends the §2.2.3 analysis).

The paper argues the original balancer's single heuristic (biggest-first)
"struggles with simpler and smaller namespaces because of the noise in the
load measurements", and that racing a family of dirfrag selectors gets
closer to the target.  This micro-benchmark quantifies that: across many
randomly drawn dirfrag-load vectors and target fractions, how far from the
target does each strategy land, and how often does the racing approach
beat plain biggest-first?
"""

import numpy as np

from repro.core.selectors import choose_best, get_selector

from harness import write_report

FAMILY = ("big_first", "small_first", "big_small", "half")
TRIALS = 2000


def run_sweep():
    rng = np.random.default_rng(7)
    results = {name: [] for name in FAMILY}
    race_distance = []
    race_wins_over_big_first = 0
    winner_counts = {name: 0 for name in FAMILY}

    for _ in range(TRIALS):
        count = int(rng.integers(4, 17))
        loads = rng.lognormal(mean=2.5, sigma=0.4, size=count)
        units = [(i, float(load)) for i, load in enumerate(loads)]
        target = float(loads.sum()) * float(rng.uniform(0.2, 0.8))

        per_selector = {}
        for name in FAMILY:
            chosen = get_selector(name)(units, target)
            shipped = sum(load for _u, load in chosen)
            distance = abs(target - shipped) / target
            per_selector[name] = distance
            results[name].append(distance)

        outcome = choose_best(FAMILY, units, target)
        distance = outcome.distance / target
        race_distance.append(distance)
        winner_counts[outcome.name] += 1
        if distance < per_selector["big_first"] - 1e-12:
            race_wins_over_big_first += 1

    return results, race_distance, race_wins_over_big_first, winner_counts


def test_selector_sweep(benchmark):
    results, race, wins, winner_counts = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )

    lines = [f"Selector accuracy over {TRIALS} random dirfrag vectors "
             "(relative distance to target; lower is better)",
             f"{'strategy':<14} {'mean':>8} {'p90':>8}"]
    means = {}
    for name, distances in results.items():
        data = np.asarray(distances)
        means[name] = float(data.mean())
        lines.append(f"{name:<14} {data.mean():>8.3f} "
                     f"{np.percentile(data, 90):>8.3f}")
    race_arr = np.asarray(race)
    lines.append(f"{'RACE (Mantle)':<14} {race_arr.mean():>8.3f} "
                 f"{np.percentile(race_arr, 90):>8.3f}")
    lines.append("")
    lines.append(f"race beats plain big_first in {wins / TRIALS:.0%} of "
                 f"trials; winners: {winner_counts}")

    # Racing the family is never worse than its best member on average...
    assert race_arr.mean() <= min(means.values()) + 1e-9
    # ...and clearly better than the CephFS single heuristic.
    assert race_arr.mean() < means["big_first"] * 0.8
    # Every selector wins somewhere (that is why the family exists).
    assert all(count > 0 for count in winner_counts.values())

    write_report("selector_sweep", lines)
