"""Figure 7 + the §4.1 session table.

Paper: 4 clients creating files in the same directory.  "Greedy Spill sheds
half its metadata immediately while Fill & Spill sheds part of its metadata
when overloaded"; "spilling load unevenly with Fill & Spill has the highest
throughput, which can have up to 9% speedup over 1 MDS"; session counts
grow with distribution (157 / 323 / 458 / 788 / 936 in the paper's runs).
"""

from repro.cluster import run_experiment
from repro.core.policies import (
    fill_spill_policy,
    greedy_spill_even_policy,
    greedy_spill_policy,
)
from repro.workloads import CreateWorkload

from harness import (
    DIR_SPLIT_SIZE,
    FILES_PER_CLIENT,
    base_config,
    sparkline,
    write_report,
)

CLIENTS = 4
#: Calibrated "fill" level: our 3-client CPU utilisation (§4.2 used the
#: paper's measured 48%; ours measures ~80% -- same methodology).
FILL_CPU_THRESHOLD = 80.0


def run_configs():
    workload = lambda: CreateWorkload(num_clients=CLIENTS,
                                      files_per_client=FILES_PER_CLIENT,
                                      shared_dir=True)
    runs = {}
    runs["1 MDS"] = run_experiment(
        base_config(num_mds=1, num_clients=CLIENTS), workload())
    runs["greedy spill (4 MDS)"] = run_experiment(
        base_config(num_mds=4, num_clients=CLIENTS), workload(),
        policy=greedy_spill_policy())
    runs["greedy spill even (4 MDS)"] = run_experiment(
        base_config(num_mds=4, num_clients=CLIENTS), workload(),
        policy=greedy_spill_even_policy())
    runs["fill & spill (4 MDS)"] = run_experiment(
        base_config(num_mds=4, num_clients=CLIENTS), workload(),
        policy=fill_spill_policy(cpu_threshold=FILL_CPU_THRESHOLD))
    return runs


def first_export_time(report):
    times = [d.time for d in report.decisions if d.exports]
    return min(times) if times else float("inf")


def test_fig07_spill_timelines(benchmark):
    runs = benchmark.pedantic(run_configs, rounds=1, iterations=1)

    lines = [f"Figure 7: 4 clients creating {FILES_PER_CLIENT} files each "
             f"in one shared directory (split at {DIR_SPLIT_SIZE})", ""]
    for name, report in runs.items():
        lines.append(f"{name}: makespan={report.makespan:.1f}s "
                     f"tput={report.throughput:.0f}/s "
                     f"migrations={report.total_migrations} "
                     f"session_flushes={report.total_session_flushes} "
                     f"sessions={report.sessions_opened}")
        horizon = report.makespan
        for rank in sorted(report.metrics.per_mds):
            series = report.metrics.timeline.series(rank, until=horizon)
            lines.append(f"  mds{rank} |{sparkline(series)}|")
        lines.append("")

    base = runs["1 MDS"]
    greedy = runs["greedy spill (4 MDS)"]
    greedy_even = runs["greedy spill even (4 MDS)"]
    fill = runs["fill & spill (4 MDS)"]

    # Fill & Spill beats 1 MDS (paper: up to 9% speedup) and every greedy
    # 4-MDS variant.
    assert fill.makespan < base.makespan
    assert fill.makespan < greedy.makespan
    assert fill.makespan < greedy_even.makespan
    # Greedy spill sheds immediately (first heartbeat); Fill & Spill waits
    # for sustained overload (3 straight overloaded iterations).
    assert first_export_time(greedy) < first_export_time(fill)
    # Fill & Spill uses only a subset of the 4 available ranks.
    fill_active = sum(1 for m in fill.metrics.per_mds.values()
                      if m.ops_served > 0)
    assert fill_active == 2
    # Greedy even splits more evenly than greedy: compare the served-ops
    # imbalance across active ranks.
    def spread_cv(report):
        served = [m.ops_served for m in report.metrics.per_mds.values()]
        import numpy as np
        return float(np.std(served) / np.mean(served))
    assert spread_cv(greedy_even) < spread_cv(greedy)
    # Session flushes grow with distribution (§4.1 session counts).
    assert greedy.total_session_flushes > 0
    assert (greedy_even.total_session_flushes
            >= greedy.total_session_flushes)

    lines.append("shape: fill&spill fastest, greedy immediate vs fill&spill"
                 " delayed, sessions grow with distribution OK")
    write_report("fig07_spill_timelines", lines)
