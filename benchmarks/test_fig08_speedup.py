"""Figure 8: per-client speedup/slowdown of spilling vs 1 MDS.

Paper numbers for 4 clients creating into one shared directory:
spilling to 2 MDS ~ +10%; unevenly to 3 ~ -5%; unevenly to 4 ~ -20%;
evenly to 4 ~ up to -40% (but most stable); Fill & Spill +6..9%, with
spilling 25% of the load beating 10% (§4.2).
"""

from functools import partial

from repro.core.policies import (
    fill_spill_policy,
    greedy_spill_even_policy,
    greedy_spill_policy,
)
from repro.workloads import CreateWorkload

from harness import (
    FILES_PER_CLIENT,
    base_config,
    run_cells,
    speedup_pct,
    write_report,
)

CLIENTS = 4
FILL_CPU_THRESHOLD = 80.0


def run_grid():
    def workload():
        return CreateWorkload(num_clients=CLIENTS,
                              files_per_client=FILES_PER_CLIENT,
                              shared_dir=True)

    # All seven cells share one namespace build; the three 4-MDS policy
    # cells additionally share their pre-heartbeat simulation prefix.
    return run_cells([
        ("1 MDS (baseline)",
         base_config(num_mds=1, num_clients=CLIENTS), workload, None),
        ("greedy spill -> 2 MDS",
         base_config(num_mds=2, num_clients=CLIENTS), workload,
         greedy_spill_policy),
        ("greedy spill -> 3 MDS (uneven)",
         base_config(num_mds=3, num_clients=CLIENTS), workload,
         greedy_spill_policy),
        ("greedy spill -> 4 MDS (uneven)",
         base_config(num_mds=4, num_clients=CLIENTS), workload,
         greedy_spill_policy),
        ("greedy spill -> 4 MDS (even)",
         base_config(num_mds=4, num_clients=CLIENTS), workload,
         greedy_spill_even_policy),
        ("fill & spill 25%",
         base_config(num_mds=4, num_clients=CLIENTS), workload,
         partial(fill_spill_policy, spill_fraction=0.25,
                 cpu_threshold=FILL_CPU_THRESHOLD)),
        ("fill & spill 10%",
         base_config(num_mds=4, num_clients=CLIENTS), workload,
         partial(fill_spill_policy, spill_fraction=0.10,
                 cpu_threshold=FILL_CPU_THRESHOLD)),
    ])


def test_fig08_speedup(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    base = grid["1 MDS (baseline)"].makespan
    paper = {
        "greedy spill -> 2 MDS": "+10%",
        "greedy spill -> 3 MDS (uneven)": "-5%",
        "greedy spill -> 4 MDS (uneven)": "-20%",
        "greedy spill -> 4 MDS (even)": "-40%",
        "fill & spill 25%": "+6..9%",
        "fill & spill 10%": "< fill&spill 25%",
    }
    lines = ["Figure 8: speedup over 1 MDS (4 clients, shared directory)",
             f"{'configuration':<34} {'makespan':>9} {'speedup':>9} "
             f"{'paper':>16}"]
    speedups = {}
    for name, report in grid.items():
        pct = speedup_pct(base, report.makespan)
        speedups[name] = pct
        lines.append(f"{name:<34} {report.makespan:>8.1f}s {pct:>+8.1f}% "
                     f"{paper.get(name, ''):>16}")

    # Shape assertions (signs, ordering, crossover), per the paper.
    assert speedups["greedy spill -> 2 MDS"] > 5.0
    assert speedups["greedy spill -> 4 MDS (uneven)"] < -3.0
    assert speedups["greedy spill -> 4 MDS (even)"] < -25.0
    # Even 4-way spill is the worst config.
    assert speedups["greedy spill -> 4 MDS (even)"] == min(speedups.values())
    # 3-way sits between 2-way (good) and 4-way (bad).
    assert (speedups["greedy spill -> 2 MDS"]
            > speedups["greedy spill -> 3 MDS (uneven)"]
            > speedups["greedy spill -> 4 MDS (uneven)"])
    # Fill & Spill beats the baseline; 25% spill beats 10% (§4.2).
    assert speedups["fill & spill 25%"] > 3.0
    assert speedups["fill & spill 25%"] > speedups["fill & spill 10%"]
    # Even spill is the most balanced (lowest per-rank load spread) even
    # though it is slowest -- the paper's stability observation.
    import numpy as np

    def spread_cv(report):
        served = [m.ops_served for m in report.metrics.per_mds.values()]
        return float(np.std(served) / np.mean(served))

    assert (spread_cv(grid["greedy spill -> 4 MDS (even)"])
            < spread_cv(grid["greedy spill -> 4 MDS (uneven)"]))

    lines.append("shape: +2MDS, -3/4 uneven, worst 4-even, fill&spill wins,"
                 " 25% > 10% OK")
    write_report("fig08_speedup", lines)
