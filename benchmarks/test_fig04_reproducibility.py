"""Figure 4: the original CephFS balancer is not reproducible.

Paper: "the same create-intensive workload has different throughput because
of how CephFS maintains state and sets policies" -- 4 runs of clients
creating 100k files in separate directories on 3 MDS ranks migrate load to
different servers at different times and finish at different times.
"""

from repro.cluster import run_experiment
from repro.core.policies import original_policy
from repro.workloads import CreateWorkload

from harness import FILES_PER_CLIENT, base_config, sparkline, write_report

CLIENTS = 4
NUM_MDS = 3
SEEDS = (1, 2, 3, 4)


def run_seeded():
    runs = []
    for seed in SEEDS:
        config = base_config(num_mds=NUM_MDS, num_clients=CLIENTS, seed=seed)
        report = run_experiment(
            config,
            CreateWorkload(num_clients=CLIENTS,
                           files_per_client=FILES_PER_CLIENT),
            policy=original_policy(),
        )
        runs.append(report)
    return runs


def migration_history(report):
    return tuple(
        (round(d.time), path, target)
        for d in report.decisions for (path, _load, target) in d.exports
    )


def test_fig04_reproducibility(benchmark):
    runs = benchmark.pedantic(run_seeded, rounds=1, iterations=1)

    lines = [f"Figure 4: original balancer, {CLIENTS} clients x "
             f"{FILES_PER_CLIENT} creates in separate dirs, {NUM_MDS} MDS",
             ""]
    for seed, report in zip(SEEDS, runs):
        lines.append(f"run(seed={seed}): makespan={report.makespan:.1f}s "
                     f"migrations={report.total_migrations} "
                     f"history={migration_history(report)[:4]}")
        for rank in sorted(report.metrics.per_mds):
            series = report.metrics.timeline.series(rank,
                                                    until=report.makespan)
            lines.append(f"  mds{rank} |{sparkline(series)}|")
        lines.append("")

    makespans = [report.makespan for report in runs]
    # Every run must actually balance (load leaves rank 0)...
    for report in runs:
        assert report.total_migrations >= 1
        served = {rank: m.ops_served
                  for rank, m in report.metrics.per_mds.items()}
        assert sum(1 for ops in served.values() if ops > 0) >= 2
    # ...but the *behaviour* is not reproducible across runs: "the load is
    # migrated to different servers at different times in different orders"
    # (Fig 4 caption).  Every seed should produce a distinct history.
    histories = {migration_history(report) for report in runs}
    assert len(histories) >= 3, "balancing was near-identical across seeds"
    # The uncapped Table-1 policy also over-commits and thrashes: far more
    # migrations than the four client directories strictly need.
    assert all(report.total_migrations > CLIENTS for report in runs)
    # Finish times vary (the paper saw 5-10 minutes on its noisy testbed;
    # the simulator reproduces the decision divergence with a smaller
    # runtime penalty since it does not model co-located OSD interference).
    spread = (max(makespans) - min(makespans)) / min(makespans)
    assert spread > 0.001, f"runtimes suspiciously uniform: {makespans}"

    lines.append(f"makespans: {[round(m, 1) for m in makespans]} "
                 f"(spread {spread:.1%}); {len(histories)} distinct "
                 "migration histories across 4 seeds")
    write_report("fig04_reproducibility", lines)
