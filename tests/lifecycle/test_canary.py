"""CanaryController: staged rollout, promotion and automatic rollback.

Timing note: with the test heartbeat interval of 2.0s the canary rank
(rank 1) ticks at ~2.006, 4.006, 6.006, ...; ``at=3.0`` therefore starts
the canary at the 4.006s tick and ``window=3.5`` evaluates it at the
8.006s tick.  ``run_for`` keeps heartbeats flowing past the (short)
workload so the full state machine always runs.
"""

import pytest

from repro.cluster import SimulatedCluster
from repro.core.api import MantlePolicy
from repro.core.policies import greedy_spill_policy
from repro.workloads import CreateWorkload
from tests.conftest import make_config


def broken_policy():
    return MantlePolicy(name="broken", when="go = MDSs[99]['load'] > 0")


def idle_policy():
    return MantlePolicy(name="idle", when="go = false")


def run_canary(candidate, **health):
    config = make_config(num_mds=2, stability_guard=True)
    cluster = SimulatedCluster(config, policy=greedy_spill_policy())
    controller = cluster.arm_canary(candidate, at=3.0, window=3.5, **health)
    cluster.run_workload(
        CreateWorkload(num_clients=2, files_per_client=3000,
                       shared_dir=True))
    cluster.run_for(12.0)
    return cluster, controller


class TestRollback:
    def test_bad_candidate_rolls_back(self):
        cluster, controller = run_canary(broken_policy())
        assert controller.phase == "rolled-back"
        assert any("lua errors" in reason for reason in controller.violations)
        kinds = [e.kind for e in cluster.metrics.lifecycle_events]
        assert "canary-start" in kinds
        assert "canary-rollback" in kinds
        assert "canary-promote" not in kinds
        # The canary rank is back on the primary balancer; the rest of the
        # cluster never left it.
        assert all(mds.balancer is cluster.balancer for mds in cluster.mdss)
        # v1 inject, v2 candidate, v3 rollback re-commit of v1.
        log = cluster.policy_store.log()
        assert [v.name for v in log] == ["greedy-spill", "broken",
                                         "greedy-spill"]
        assert log[2].note.startswith("canary failed")
        assert log[2].source == log[0].source

    def test_summary_line_mentions_rollback(self):
        cluster, _controller = run_canary(broken_policy())
        assert "canary=rolled-back" in cluster._report().summary_line()


class TestPromotion:
    def test_healthy_candidate_is_promoted_to_all_ranks(self):
        cluster, controller = run_canary(idle_policy())
        assert controller.phase == "promoted"
        assert controller.violations == []
        kinds = [e.kind for e in cluster.metrics.lifecycle_events]
        assert "canary-promote" in kinds
        assert "canary-rollback" not in kinds
        promote = next(e for e in cluster.metrics.lifecycle_events
                       if e.kind == "canary-promote")
        assert promote.rank == -1
        assert cluster.balancer is controller.balancer
        assert all(mds.balancer is controller.balancer
                   for mds in cluster.mdss)
        # Promotion is not a rollback: the store keeps the candidate head.
        log = cluster.policy_store.log()
        assert [v.name for v in log] == ["greedy-spill", "idle"]


class TestArming:
    def test_canary_requires_a_live_policy(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        with pytest.raises(RuntimeError):
            cluster.arm_canary(idle_policy())

    def test_default_rank_is_the_highest(self):
        cluster = SimulatedCluster(make_config(num_mds=2),
                                   policy=greedy_spill_policy())
        controller = cluster.arm_canary(idle_policy())
        assert controller.rank == 1

    def test_bad_rank_rejected(self):
        cluster = SimulatedCluster(make_config(num_mds=2),
                                   policy=greedy_spill_policy())
        with pytest.raises(ValueError):
            cluster.arm_canary(idle_policy(), rank=7)

    def test_shadow_requires_a_live_policy(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        with pytest.raises(RuntimeError):
            cluster.arm_shadow(idle_policy())
