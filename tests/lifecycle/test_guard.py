"""StabilityGuard: live ping-pong veto semantics."""

import pytest

from repro.lifecycle import StabilityGuard


class TestAllow:
    def test_first_move_and_non_reversals_pass(self):
        guard = StabilityGuard(window=10.0, max_bounces=1)
        assert guard.allow("/a", 0, 1, 1.0)
        guard.record("/a", 0, 1, 1.0)
        # A different unit, and a non-reversing follow-up, are both fine.
        assert guard.allow("/b", 1, 0, 2.0)
        assert guard.allow("/a", 1, 2, 2.0)
        assert guard.vetoes == 0

    def test_reversal_vetoed_at_budget_one(self):
        guard = StabilityGuard(window=10.0, max_bounces=1)
        guard.record("/a", 0, 1, 1.0)
        assert not guard.allow("/a", 1, 0, 2.0)
        assert guard.vetoes == 1

    def test_budget_two_allows_one_bounce_then_vetoes(self):
        guard = StabilityGuard(window=100.0, max_bounces=2)
        guard.record("/a", 0, 1, 1.0)
        assert guard.allow("/a", 1, 0, 2.0)  # first reversal: within budget
        guard.record("/a", 1, 0, 2.0)
        assert not guard.allow("/a", 0, 1, 3.0)  # second reversal: vetoed
        assert guard.vetoes == 1

    def test_window_pruning_forgets_old_moves(self):
        guard = StabilityGuard(window=5.0, max_bounces=1)
        guard.record("/a", 0, 1, 1.0)
        assert not guard.allow("/a", 1, 0, 2.0)
        # By t=20 the original move fell out of the window: not a reversal.
        assert guard.allow("/a", 1, 0, 20.0)


class TestEventsAndViews:
    def test_veto_emits_event_and_is_counted_since(self):
        events = []
        guard = StabilityGuard(window=10.0, max_bounces=1,
                               events=lambda *args: events.append(args))
        guard.record("/a", 0, 1, 1.0)
        guard.allow("/a", 1, 0, 2.0)
        ((now, kind, rank, detail),) = events
        assert (now, kind, rank) == (2.0, "guard-veto", 1)
        assert "/a" in detail and "mds1->mds0" in detail
        assert guard.vetoes_since(0.0) == 1
        assert guard.vetoes_since(3.0) == 0


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            StabilityGuard(window=0.0)
        with pytest.raises(ValueError):
            StabilityGuard(max_bounces=0)
