"""PolicyStore: append-only versioning, rollback, RADOS mirror, JSON."""

import pytest

from repro.core.policies import greedy_spill_policy, original_policy
from repro.lifecycle import PolicyStore
from repro.lifecycle.store import INDEX_OBJ, VERSION_OBJ


class FakeRados:
    def __init__(self):
        self.payloads = {}


class TestCommitAndLog:
    def test_commit_appends_versions(self):
        store = PolicyStore()
        v1 = store.commit(greedy_spill_policy(), 0.0, note="inject")
        v2 = store.commit(original_policy(), 5.0)
        assert (v1.version, v2.version) == (1, 2)
        assert store.head is v2
        assert len(store) == 2
        assert store.get(1).name == "greedy-spill"
        assert store.get(1).note == "inject"

    def test_empty_store(self):
        store = PolicyStore()
        assert store.head is None
        assert store.log() == ()
        with pytest.raises(KeyError):
            store.get(1)

    def test_policy_at_rematerialises_a_runnable_policy(self):
        store = PolicyStore()
        store.commit(greedy_spill_policy(), 0.0)
        policy = store.policy_at(1)
        assert policy.name == "greedy-spill"
        policy.compile_all()


class TestRollback:
    def test_rollback_appends_new_head_without_rewriting_history(self):
        store = PolicyStore()
        store.commit(greedy_spill_policy(), 0.0)
        store.commit(original_policy(), 3.0)
        restored = store.rollback(1, 7.0)
        assert restored.version == 3
        assert restored.name == "greedy-spill"
        assert restored.note == "rollback to v1"
        assert restored.source == store.get(1).source
        assert [v.version for v in store.log()] == [1, 2, 3]
        assert store.head is restored

    def test_rollback_to_unknown_version_raises(self):
        store = PolicyStore()
        store.commit(greedy_spill_policy(), 0.0)
        with pytest.raises(KeyError):
            store.rollback(9, 1.0)


class TestRadosMirror:
    def test_commits_mirror_into_rados_payloads(self):
        rados = FakeRados()
        store = PolicyStore(rados)
        store.commit(greedy_spill_policy(), 0.0, note="inject")
        store.commit(original_policy(), 2.0)
        assert (rados.payloads[VERSION_OBJ.format(version=1)]
                == store.get(1).source)
        assert (rados.payloads[VERSION_OBJ.format(version=2)]
                == store.get(2).source)
        index = rados.payloads[INDEX_OBJ]
        assert index["head"] == 2
        assert [entry["version"] for entry in index["log"]] == [1, 2]
        assert index["log"][0]["note"] == "inject"


class TestJsonRoundTrip:
    def test_round_trip_preserves_the_log(self):
        store = PolicyStore()
        store.commit(greedy_spill_policy(), 0.0, note="inject")
        store.commit(original_policy(), 4.0, note="canary candidate")
        store.rollback(1, 8.0)
        clone = PolicyStore.from_json(store.to_json())
        assert clone.log() == store.log()
        assert clone.to_json() == store.to_json()
