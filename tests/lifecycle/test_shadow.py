"""ShadowEvaluator: divergence detection over fabricated tick inputs.

These tests drive ``observe`` directly with hand-built binding inputs (the
same tuples the live balancer stashes), so every divergence case is exact
and independent of workload dynamics.
"""

from repro.core.api import MantlePolicy
from repro.core.balancer import BalanceDecision
from repro.lifecycle import ShadowEvaluator


def counters(**values):
    base = {"IRD": 0.0, "IWR": 0.0, "READDIR": 0.0, "FETCH": 0.0,
            "STORE": 0.0}
    base.update(values)
    return base


def metrics(loads):
    """Per-rank metric dicts; a load of None marks a dead rank."""
    out = []
    for load in loads:
        value = 0.0 if load is None else float(load)
        out.append({"auth": value, "all": value, "cpu": 10.0, "mem": 10.0,
                    "q": 0.0, "req": value,
                    "alive": 0.0 if load is None else 1.0, "load": value})
    return out


def live(now=1.0, rank=0, went=False, targets=None, skipped=None):
    return BalanceDecision(time=now, rank=rank, went=went,
                           targets=dict(targets or {}), skipped=skipped)


def inputs(loads):
    return (metrics(loads), counters(), counters(), counters())


def spill_policy(threshold=10.0):
    return MantlePolicy(
        name="shadow-spill",
        mdsload='MDSs[i]["all"]',
        when=f"go = MDSs[whoami]['load'] > {threshold}",
        where="targets[2] = MDSs[whoami]['load'] / 2",
    )


class TestDivergence:
    def test_shadow_would_migrate_when_live_did_not(self):
        shadow = ShadowEvaluator(spill_policy())
        tick = shadow.observe(1.0, 0, live(went=False), inputs([20.0, 0.0]))
        assert tick.shadow_went and not tick.live_went
        assert tick.shadow_targets == {1: 10.0}
        assert tick.target_deltas == {1: 10.0}
        assert tick.diverged
        assert shadow.divergences == 1

    def test_agreement_is_not_a_divergence(self):
        shadow = ShadowEvaluator(MantlePolicy(name="idle", when="go = false"))
        tick = shadow.observe(1.0, 0, live(went=False), inputs([20.0, 0.0]))
        assert not tick.shadow_went and not tick.diverged
        assert shadow.divergences == 0

    def test_target_deltas_against_live_targets(self):
        shadow = ShadowEvaluator(spill_policy())
        decision = live(went=True, targets={1: 16.0})
        tick = shadow.observe(1.0, 0, decision, inputs([20.0, 0.0]))
        # Both migrate, but the shadow would ship 10 where live shipped 16.
        assert tick.shadow_went and tick.live_went
        assert tick.target_deltas == {1: -6.0}
        assert tick.diverged

    def test_dead_rank_targets_are_filtered(self):
        shadow = ShadowEvaluator(spill_policy())
        tick = shadow.observe(1.0, 0, live(went=False), inputs([20.0, None]))
        # The only target is dead, so the shadow would not migrate either.
        assert not tick.shadow_went
        assert not tick.diverged


class TestErrorsAndSkips:
    def test_candidate_error_is_recorded_not_raised(self):
        shadow = ShadowEvaluator(
            MantlePolicy(name="broken", when="go = MDSs[99]['load'] > 0"))
        tick = shadow.observe(1.0, 0, live(went=True, targets={1: 4.0}),
                              inputs([20.0, 0.0]))
        assert tick.error
        assert tick.diverged  # live went, candidate could not even decide
        assert shadow.errors == 1

    def test_skipped_live_tick_skips_the_shadow_too(self):
        shadow = ShadowEvaluator(spill_policy())
        tick = shadow.observe(1.0, 0, live(skipped="single MDS"), None)
        assert tick.skipped == "single MDS"
        assert not tick.diverged


class TestSummary:
    def test_summary_counts(self):
        shadow = ShadowEvaluator(spill_policy())
        shadow.observe(1.0, 0, live(skipped="single MDS"), None)
        shadow.observe(2.0, 0, live(went=False), inputs([20.0, 0.0]))
        shadow.observe(3.0, 0, live(went=True, targets={1: 2.0}),
                       inputs([2.0, 0.0]))
        summary = shadow.summary()
        assert summary == {
            "policy": "shadow-spill",
            "ticks": 3,
            "evaluated": 2,
            "would_migrate": 1,
            "live_migrated": 1,
            "divergences": 2,
            "errors": 0,
        }
