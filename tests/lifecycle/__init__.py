"""Tests for the policy lifecycle subsystem (repro.lifecycle)."""
