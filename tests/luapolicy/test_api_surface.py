"""Remaining public-API surface of the interpreter package."""

import pytest

from repro.luapolicy import (
    Environment,
    Interpreter,
    LuaTable,
    new_environment,
    parse_chunk,
    parse_expression,
)


class TestInterpreterEvaluate:
    def test_evaluate_expression_directly(self):
        interpreter = Interpreter()
        env = new_environment()
        env.declare("a", 10.0)
        expr = parse_expression("a * 2 + 1")
        assert interpreter.evaluate(expr, env) == 21.0

    def test_evaluate_uses_budget(self):
        interpreter = Interpreter(budget=10)
        env = new_environment()
        from repro.luapolicy import LuaBudgetExceeded
        deep = parse_expression("1+1+1+1+1+1+1+1+1+1+1+1+1+1+1")
        with pytest.raises(LuaBudgetExceeded):
            interpreter.evaluate(deep, env)

    def test_instructions_used(self):
        interpreter = Interpreter()
        env = new_environment()
        interpreter.run(parse_chunk("x = 1 + 2"), env)
        assert interpreter.instructions_used > 0


class TestEnvironment:
    def test_lookup_chain(self):
        root = Environment()
        root.declare("a", 1.0)
        child = Environment(root)
        child.declare("b", 2.0)
        assert child.lookup("a") == 1.0
        assert child.lookup("b") == 2.0
        assert root.lookup("b") is None

    def test_unknown_global_is_nil(self):
        assert Environment().lookup("nothing") is None

    def test_assign_updates_nearest_binding(self):
        root = Environment()
        root.declare("x", 1.0)
        child = Environment(root)
        child.assign("x", 9.0)
        assert root.lookup("x") == 9.0

    def test_assign_to_unknown_lands_in_root(self):
        root = Environment()
        mid = Environment(root)
        leaf = Environment(mid)
        leaf.assign("fresh", 7.0)
        assert root.vars["fresh"] == 7.0
        assert "fresh" not in leaf.vars

    def test_declare_shadows(self):
        root = Environment()
        root.declare("x", 1.0)
        child = Environment(root)
        child.declare("x", 2.0)
        assert child.lookup("x") == 2.0
        assert root.lookup("x") == 1.0

    def test_root_method(self):
        root = Environment()
        leaf = Environment(Environment(root))
        assert leaf.root() is root


class TestCallFromPython:
    def test_call_lua_function_from_python(self):
        """The driver-side ability to invoke a policy-defined function."""
        interpreter = Interpreter()
        env = new_environment()
        interpreter.run(
            parse_chunk("function double(x) return x * 2 end"), env
        )
        fn = env.lookup("double")
        assert interpreter.call(fn, (21.0,)) == 42.0

    def test_call_table_raises(self):
        from repro.luapolicy import LuaRuntimeError
        interpreter = Interpreter()
        with pytest.raises(LuaRuntimeError, match="attempt to call"):
            interpreter.call(LuaTable(), ())
