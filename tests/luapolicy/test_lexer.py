"""Lexer tests: tokens, comments, strings, numbers, errors."""

import pytest

from repro.luapolicy.errors import LuaSyntaxError
from repro.luapolicy.lexer import tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != "eof"]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_names_and_keywords_are_distinguished(self):
        assert kinds("foo if bar end") == [
            ("name", "foo"), ("keyword", "if"),
            ("name", "bar"), ("keyword", "end"),
        ]

    def test_underscored_names(self):
        assert kinds("_x x_y _1") == [
            ("name", "_x"), ("name", "x_y"), ("name", "_1"),
        ]

    def test_all_keywords_recognised(self):
        for kw in ("and", "break", "do", "else", "elseif", "end", "false",
                   "for", "function", "if", "in", "local", "nil", "not",
                   "or", "repeat", "return", "then", "true", "until",
                   "while"):
            assert kinds(kw) == [("keyword", kw)]

    def test_symbols_longest_match_first(self):
        assert kinds("== ~= <= >= .. = < >") == [
            ("symbol", "=="), ("symbol", "~="), ("symbol", "<="),
            ("symbol", ">="), ("symbol", ".."), ("symbol", "="),
            ("symbol", "<"), ("symbol", ">"),
        ]

    def test_length_and_arith_symbols(self):
        assert [k for k, _v in kinds("# + - * / % ^")] == ["symbol"] * 7


class TestNumbers:
    def test_integer(self):
        assert kinds("42") == [("number", "42")]

    def test_decimal(self):
        assert kinds("3.14") == [("number", "3.14")]

    def test_leading_dot(self):
        assert kinds(".01") == [("number", ".01")]

    def test_exponent(self):
        assert kinds("1e3 2.5E-2 1e+10") == [
            ("number", "1e3"), ("number", "2.5E-2"), ("number", "1e+10"),
        ]

    def test_hex(self):
        assert kinds("0xFF 0x10") == [("number", "0xFF"), ("number", "0x10")]

    def test_number_followed_by_concat_not_swallowed(self):
        # "1..2" should lex as number .. number, not a malformed number.
        assert kinds("1 .. 2") == [
            ("number", "1"), ("symbol", ".."), ("number", "2"),
        ]

    def test_malformed_hex_raises(self):
        with pytest.raises(LuaSyntaxError):
            tokenize("0x")


class TestStrings:
    def test_double_quoted(self):
        assert kinds('"hello"') == [("string", "hello")]

    def test_single_quoted(self):
        assert kinds("'hi'") == [("string", "hi")]

    def test_escapes(self):
        assert kinds(r'"a\nb\t\\"') == [("string", "a\nb\t\\")]

    def test_decimal_escape(self):
        assert kinds(r'"\65"') == [("string", "A")]

    def test_long_string(self):
        assert kinds("[[raw text]]") == [("string", "raw text")]

    def test_unterminated_string_raises(self):
        with pytest.raises(LuaSyntaxError):
            tokenize('"oops')

    def test_newline_in_short_string_raises(self):
        with pytest.raises(LuaSyntaxError):
            tokenize('"a\nb"')

    def test_invalid_escape_raises(self):
        with pytest.raises(LuaSyntaxError):
            tokenize(r'"\q"')


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("x = 1 -- metadata load\ny = 2") == [
            ("name", "x"), ("symbol", "="), ("number", "1"),
            ("name", "y"), ("symbol", "="), ("number", "2"),
        ]

    def test_block_comment_skipped(self):
        assert kinds("a --[[ spans\nlines ]] b") == [
            ("name", "a"), ("name", "b"),
        ]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LuaSyntaxError):
            tokenize("--[[ never ends")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character_reports_position(self):
        with pytest.raises(LuaSyntaxError) as excinfo:
            tokenize("x = @")
        assert excinfo.value.line == 1
        assert excinfo.value.column == 5


class TestPaperListings:
    def test_listing1_lexes(self):
        source = """
        metaload = IWR
        mdsload = MDSs[i]["all"]
        if MDSs[whoami]["load"]>.01 and
           MDSs[whoami+1]["load"]<.01 then
        targets[whoami+1]=allmetaload/2
        end
        """
        tokens = tokenize(source)
        values = [t.value for t in tokens]
        assert "metaload" in values
        assert ".01" in values
        assert "allmetaload" in values
