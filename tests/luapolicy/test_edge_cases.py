"""Interpreter and parser edge cases."""

import pytest

from repro.luapolicy import (
    LuaRuntimeError,
    LuaSyntaxError,
    parse_chunk,
    run_policy,
)


def value_of(source, name="x"):
    return run_policy(source).python_value(name)


class TestNumericForEdges:
    def test_float_step(self):
        assert value_of(
            "x = 0 for i = 0, 1, 0.25 do x = x + 1 end"
        ) == 5.0

    def test_loop_variable_is_local(self):
        assert value_of("i = 99 for i = 1, 3 do end x = i") == 99.0

    def test_mutating_loop_var_does_not_affect_iteration(self):
        assert value_of(
            "x = 0 for i = 1, 3 do i = 100 x = x + 1 end"
        ) == 3.0

    def test_bounds_evaluated_once(self):
        assert value_of("""
        n = 3
        x = 0
        for i = 1, n do n = 100 x = x + 1 end
        """) == 3.0


class TestScopingEdges:
    def test_while_body_scope_fresh_per_iteration(self):
        assert value_of("""
        x = 0
        count = 0
        while count < 3 do
          local inner = (inner or 0) + 1  -- 'inner' resets each iteration
          x = x + inner
          count = count + 1
        end
        """) == 3.0

    def test_nested_function_closure_sees_outer_local(self):
        assert value_of("""
        local function outer()
          local secret = 41
          local function inner() return secret + 1 end
          return inner()
        end
        x = outer()
        """) == 42.0

    def test_if_branch_scope(self):
        assert value_of("""
        x = 1
        if true then local x = 50 end
        if false then x = 2 else local x = 60 end
        """) == 1.0


class TestTableEdges:
    def test_deeply_nested_access(self):
        assert value_of(
            't = {a = {b = {c = {d = 5}}}} x = t.a.b.c.d'
        ) == 5.0

    def test_table_as_value_shared_by_reference(self):
        assert value_of("""
        a = {n = 1}
        b = a
        b.n = 7
        x = a.n
        """) == 7.0

    def test_table_equality_is_identity(self):
        assert value_of("x = ({} == {})") is False
        assert value_of("t = {} u = t x = (t == u)") is True

    def test_constructor_mixed_array_and_keys(self):
        result = run_policy('t = {1, k = "v", 2, [10] = 3}')
        table = result.global_value("t")
        assert table.get(1) == 1.0
        assert table.get(2) == 2.0
        assert table.get("k") == "v"
        assert table.get(10) == 3.0


class TestErrorReporting:
    def test_runtime_error_carries_line(self):
        with pytest.raises(LuaRuntimeError, match="line 3"):
            run_policy("x = 1\ny = 2\nz = nil + 1\n")

    def test_syntax_error_carries_position(self):
        with pytest.raises(LuaSyntaxError) as excinfo:
            parse_chunk("x = 1\nif then end")
        assert excinfo.value.line == 2

    def test_indexing_error_names_type(self):
        with pytest.raises(LuaRuntimeError, match="index a number"):
            run_policy("n = 5 x = n.field")

    def test_calling_nil_names_type(self):
        with pytest.raises(LuaRuntimeError, match="call a nil"):
            run_policy("x = nothing()")


class TestWhitespaceAndComments:
    def test_policy_entirely_comments(self):
        result = run_policy("-- nothing here\n--[[ or here ]]\n")
        assert result.returned is None

    def test_windows_line_endings(self):
        assert value_of("x = 1\r\ny = x + 1\r\n", "y") == 2.0

    def test_no_trailing_newline(self):
        assert value_of("x = 42") == 42.0

    def test_semicolon_spam(self):
        assert value_of(";;x = 1;;;y = 2;;", "y") == 2.0
