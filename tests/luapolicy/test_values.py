"""LuaTable semantics and Python<->Lua conversion, with property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.luapolicy.errors import LuaRuntimeError
from repro.luapolicy.values import (
    LuaTable,
    from_python,
    is_truthy,
    lua_repr,
    to_python,
    type_name,
)


class TestTruthiness:
    def test_only_nil_and_false_are_falsy(self):
        assert not is_truthy(None)
        assert not is_truthy(False)
        assert is_truthy(0)
        assert is_truthy(0.0)
        assert is_truthy("")
        assert is_truthy(LuaTable())


class TestTypeName:
    @pytest.mark.parametrize("value,name", [
        (None, "nil"), (True, "boolean"), (1.5, "number"),
        ("s", "string"), (LuaTable(), "table"), (len, "function"),
    ])
    def test_names(self, value, name):
        assert type_name(value) == name


class TestLuaRepr:
    def test_integral_floats_print_without_decimal(self):
        assert lua_repr(3.0) == "3"
        assert lua_repr(-2.0) == "-2"

    def test_fractional(self):
        assert lua_repr(3.5) == "3.5"

    def test_nil_and_bools(self):
        assert lua_repr(None) == "nil"
        assert lua_repr(True) == "true"
        assert lua_repr(False) == "false"


class TestLuaTable:
    def test_array_part(self):
        table = LuaTable(array=[10, 20, 30])
        assert table.length() == 3
        assert table.get(1) == 10
        assert table.get(3.0) == 30

    def test_set_get_roundtrip(self):
        table = LuaTable()
        table.set("k", "v")
        assert table.get("k") == "v"

    def test_nil_value_deletes(self):
        table = LuaTable(array=[1, 2, 3])
        table.set(3, None)
        assert table.length() == 2

    def test_nil_key_read_returns_nil(self):
        assert LuaTable().get(None) is None

    def test_nil_key_write_raises(self):
        with pytest.raises(LuaRuntimeError):
            LuaTable().set(None, 1)

    def test_nan_key_raises(self):
        with pytest.raises(LuaRuntimeError):
            LuaTable().set(float("nan"), 1)

    def test_length_border_with_hole(self):
        table = LuaTable()
        table.set(1, "a")
        table.set(2, "b")
        table.set(5, "e")
        assert table.length() == 2

    def test_pairs_covers_everything(self):
        table = LuaTable(array=[1, 2], hash_part={"k": "v"})
        items = dict(table.lua_pairs())
        assert items == {1.0: 1, 2.0: 2, "k": "v"}

    def test_ipairs_only_array_part(self):
        table = LuaTable(array=[1, 2], hash_part={"k": "v", 9: "x"})
        assert [v for _i, v in table.lua_ipairs()] == [1, 2]

    def test_bool_key_not_confused_with_int(self):
        table = LuaTable()
        table.set(True, "t")
        table.set(1, "one")
        assert table.get(True) == "t"
        assert table.get(1) == "one"


class TestConversion:
    def test_from_python_scalars(self):
        assert from_python(5) == 5.0
        assert isinstance(from_python(5), float)
        assert from_python("x") == "x"
        assert from_python(None) is None
        assert from_python(True) is True

    def test_from_python_list(self):
        table = from_python([1, 2])
        assert isinstance(table, LuaTable)
        assert table.get(1) == 1.0

    def test_from_python_nested_dict(self):
        table = from_python({"a": {"b": 2}})
        assert table.get("a").get("b") == 2.0

    def test_from_python_rejects_objects(self):
        with pytest.raises(LuaRuntimeError):
            from_python(object())

    def test_to_python_array(self):
        assert to_python(LuaTable(array=[1, 2])) == [1, 2]

    def test_to_python_map(self):
        assert to_python(LuaTable(hash_part={"k": 1})) == {"k": 1}


class TestConversionProperties:
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False),
                    max_size=20))
    def test_list_roundtrip(self, values):
        assert to_python(from_python(values)) == values

    @given(st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.floats(allow_nan=False, allow_infinity=False),
                  st.text(max_size=5), st.booleans()),
        max_size=10,
    ))
    def test_dict_roundtrip(self, mapping):
        table = from_python(mapping)
        result = to_python(table)
        if mapping:
            assert result == mapping
        else:
            assert result == []  # empty table is an empty array

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1,
                    max_size=30))
    def test_length_matches_array_size(self, values):
        table = from_python(values)
        assert table.length() == len(values)

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=30, unique=True))
    def test_length_is_a_border(self, keys):
        """#t == n implies t[n] exists and t[n+1] does not."""
        table = LuaTable()
        for key in keys:
            table.set(key, key)
        n = table.length()
        if n > 0:
            assert table.get(n) is not None
        assert table.get(n + 1) is None
