"""Multiple return values (Lua semantics: only the last expression of an
expression list keeps its multiplicity)."""


from repro.luapolicy import MultiValue, run_policy


def values_of(source, *names):
    result = run_policy(source)
    return tuple(result.python_value(name) for name in names)


class TestFunctionMultireturn:
    def test_two_values_unpack(self):
        a, b = values_of(
            "local function f() return 1, 2 end a, b = f()", "a", "b"
        )
        assert (a, b) == (1.0, 2.0)

    def test_missing_values_pad_nil(self):
        a, b, c = values_of(
            "local function f() return 1, 2 end a, b, c = f()",
            "a", "b", "c",
        )
        assert (a, b, c) == (1.0, 2.0, None)

    def test_extra_values_dropped(self):
        a, = values_of(
            "local function f() return 1, 2, 3 end a = f()", "a"
        )
        assert a == 1.0

    def test_only_last_call_keeps_multiplicity(self):
        a, b, c = values_of(
            """
            local function f() return 1, 2 end
            a, b, c = f(), f()
            """,
            "a", "b", "c",
        )
        # First f() truncates to 1; second expands to 1, 2.
        assert (a, b, c) == (1.0, 1.0, 2.0)

    def test_single_value_context_truncates(self):
        x, = values_of(
            "local function f() return 10, 20 end x = f() + 1", "x"
        )
        assert x == 11.0

    def test_multi_propagates_through_tail_return(self):
        a, b = values_of(
            """
            local function inner() return 7, 8 end
            local function outer() return inner() end
            a, b = outer()
            """,
            "a", "b",
        )
        assert (a, b) == (7.0, 8.0)

    def test_multi_expands_as_last_call_argument(self):
        x, = values_of(
            """
            local function pair() return 3, 9 end
            x = max(pair())
            """,
            "x",
        )
        assert x == 9.0

    def test_multi_truncates_as_non_last_argument(self):
        x, = values_of(
            """
            local function pair() return 3, 9 end
            x = max(pair(), 5)
            """,
            "x",
        )
        assert x == 5.0

    def test_local_declaration_unpacks(self):
        x, = values_of(
            """
            local function f() return 4, 6 end
            local a, b = f()
            x = a + b
            """,
            "x",
        )
        assert x == 10.0

    def test_chunk_return_multi(self):
        result = run_policy(
            "local function f() return 1, 2 end return f()"
        )
        assert result.returned == (1.0, 2.0)


class TestStringFindMultireturn:
    def test_find_returns_start_and_end(self):
        s, e = values_of('s, e = string.find("hello world", "world")',
                         "s", "e")
        assert (s, e) == (7.0, 11.0)

    def test_find_in_condition_uses_start(self):
        x, = values_of(
            'if string.find("abc", "b") then x = 1 else x = 0 end', "x"
        )
        assert x == 1.0

    def test_find_miss_is_nil(self):
        s, = values_of('s = string.find("abc", "zz")', "s")
        assert s is None


class TestMultiValueType:
    def test_first(self):
        assert MultiValue((1, 2)).first() == 1
        assert MultiValue(()).first() is None

    def test_is_tuple(self):
        assert isinstance(MultiValue((1,)), tuple)
