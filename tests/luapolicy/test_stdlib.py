"""Stdlib builtins available to policies."""

import math

import pytest

from repro.luapolicy import LuaRuntimeError, run_policy


def value_of(source, name="x"):
    return run_policy(source).python_value(name)


class TestMaxMin:
    def test_max_of_two(self):
        assert value_of("x = max(3, 7)") == 7.0

    def test_min_of_two(self):
        assert value_of("x = min(3, 7)") == 3.0

    def test_varargs(self):
        assert value_of("x = max(1, 9, 4, 2)") == 9.0

    def test_string_coercion(self):
        assert value_of('x = max("5", 3)') == 5.0

    def test_no_args_raises(self):
        with pytest.raises(LuaRuntimeError):
            run_policy("x = max()")

    def test_non_number_raises(self):
        with pytest.raises(LuaRuntimeError):
            run_policy("x = max({}, 1)")


class TestConversionBuiltins:
    def test_tostring(self):
        assert value_of("x = tostring(3)") == "3"
        assert value_of("x = tostring(nil)") == "nil"
        assert value_of("x = tostring(true)") == "true"

    def test_tonumber(self):
        assert value_of('x = tonumber("42")') == 42.0
        assert value_of('x = tonumber("nope") == nil') is True
        assert value_of("x = tonumber(nil) == nil") is True

    def test_type(self):
        assert value_of("x = type(3)") == "number"
        assert value_of('x = type("s")') == "string"
        assert value_of("x = type({})") == "table"
        assert value_of("x = type(nil)") == "nil"
        assert value_of("x = type(max)") == "function"


class TestMathTable:
    def test_floor_ceil(self):
        assert value_of("x = math.floor(3.7)") == 3.0
        assert value_of("x = math.ceil(3.2)") == 4.0

    def test_floor_negative(self):
        assert value_of("x = math.floor(-1.5)") == -2.0

    def test_abs_sqrt(self):
        assert value_of("x = math.abs(-4)") == 4.0
        assert value_of("x = math.sqrt(16)") == 4.0

    def test_exp_log(self):
        assert value_of("x = math.log(math.exp(1))") == pytest.approx(1.0)

    def test_huge_and_pi(self):
        assert value_of("x = math.huge") == math.inf
        assert value_of("x = math.pi") == pytest.approx(math.pi)

    def test_pow_fmod(self):
        assert value_of("x = math.pow(2, 8)") == 256.0
        assert value_of("x = math.fmod(7, 3)") == 1.0

    def test_max_min_aliases(self):
        assert value_of("x = math.max(1, 2)") == 2.0
        assert value_of("x = math.min(1, 2)") == 1.0


class TestPairsIpairs:
    def test_pairs_on_non_table_raises(self):
        with pytest.raises(LuaRuntimeError):
            run_policy("for k in pairs(5) do end")

    def test_ipairs_gives_indices(self):
        assert value_of(
            "t = {7, 8} x = 0 for i, v in ipairs(t) do x = x + i end"
        ) == 3.0


class TestAssertError:
    def test_assert_passes_through(self):
        assert value_of("x = assert(5)") == 5.0

    def test_assert_failure(self):
        with pytest.raises(LuaRuntimeError, match="assertion failed"):
            run_policy("assert(false)")

    def test_assert_custom_message(self):
        with pytest.raises(LuaRuntimeError, match="boom"):
            run_policy('assert(nil, "boom")')

    def test_error_raises(self):
        with pytest.raises(LuaRuntimeError, match="bad policy"):
            run_policy('error("bad policy")')
