"""string.* and table.* library functions available to policies."""

import pytest

from repro.luapolicy import LuaRuntimeError, run_policy


def value_of(source, name="x"):
    return run_policy(source).python_value(name)


class TestStringLibrary:
    def test_len(self):
        assert value_of('x = string.len("hello")') == 5.0

    def test_sub(self):
        assert value_of('x = string.sub("balancer", 1, 3)') == "bal"
        assert value_of('x = string.sub("balancer", -3)') == "cer"
        assert value_of('x = string.sub("abc", 5, 9)') == ""

    def test_upper_lower(self):
        assert value_of('x = string.upper("mds")') == "MDS"
        assert value_of('x = string.lower("MDS")') == "mds"

    def test_rep_reverse(self):
        assert value_of('x = string.rep("ab", 3)') == "ababab"
        assert value_of('x = string.reverse("abc")') == "cba"

    def test_byte_char(self):
        assert value_of('x = string.byte("A")') == 65.0
        assert value_of('x = string.char(77, 68, 83)') == "MDS"
        assert value_of('x = string.byte("abc", -1)') == ord("c")
        assert value_of('x = string.byte("abc", 9) == nil') is True

    def test_find_plain(self):
        assert value_of('x = string.find("mds.0.log", ".log")') == 6.0
        assert value_of('x = string.find("abc", "zz") == nil') is True

    def test_format_numbers(self):
        assert value_of('x = string.format("%d reqs", 1500)') == "1500 reqs"
        assert value_of('x = string.format("%.2f", 3.14159)') == "3.14"
        assert value_of('x = string.format("%5d|", 42)') == "   42|"
        assert value_of('x = string.format("%x", 255)') == "ff"

    def test_format_strings_and_percent(self):
        assert value_of('x = string.format("%s=%s", "a", 1)') == "a=1"
        assert value_of('x = string.format("100%%")') == "100%"

    def test_format_missing_argument(self):
        with pytest.raises(LuaRuntimeError, match="no value"):
            run_policy('x = string.format("%d")')

    def test_format_invalid_spec(self):
        with pytest.raises(LuaRuntimeError, match="invalid conversion"):
            run_policy('x = string.format("%z", 1)')

    def test_string_coercion_of_numbers(self):
        assert value_of("x = string.len(1234)") == 4.0


class TestTableLibrary:
    def test_insert_appends(self):
        assert value_of("t = {1, 2} table.insert(t, 9) x = t[3]") == 9.0

    def test_insert_at_position_shifts(self):
        result = run_policy("t = {1, 2, 3} table.insert(t, 2, 9)")
        assert result.python_value("t") == [1.0, 9.0, 2.0, 3.0]

    def test_insert_out_of_bounds(self):
        with pytest.raises(LuaRuntimeError, match="out of bounds"):
            run_policy("t = {1} table.insert(t, 5, 9)")

    def test_remove_last(self):
        result = run_policy("t = {1, 2, 3} x = table.remove(t)")
        assert result.python_value("x") == 3.0
        assert result.python_value("t") == [1.0, 2.0]

    def test_remove_at_position(self):
        result = run_policy("t = {1, 2, 3} x = table.remove(t, 1)")
        assert result.python_value("x") == 1.0
        assert result.python_value("t") == [2.0, 3.0]

    def test_remove_from_empty(self):
        assert value_of("t = {} x = table.remove(t) == nil") is True

    def test_concat(self):
        assert value_of('t = {1, 2, 3} x = table.concat(t, ",")') == "1,2,3"
        assert value_of('t = {"a", "b"} x = table.concat(t)') == "ab"

    def test_concat_range(self):
        assert value_of(
            't = {1, 2, 3, 4} x = table.concat(t, "-", 2, 3)'
        ) == "2-3"

    def test_concat_rejects_tables(self):
        with pytest.raises(LuaRuntimeError, match="invalid value"):
            run_policy("t = {{}} x = table.concat(t)")

    def test_sort_numbers(self):
        result = run_policy("t = {3, 1, 2} table.sort(t)")
        assert result.python_value("t") == [1.0, 2.0, 3.0]

    def test_sort_strings(self):
        result = run_policy('t = {"b", "a"} table.sort(t)')
        assert result.python_value("t") == ["a", "b"]

    def test_sort_comparator_rejected(self):
        with pytest.raises(LuaRuntimeError, match="not supported"):
            run_policy(
                "t = {1, 2} table.sort(t, function(a, b) return a > b end)"
            )

    def test_sort_mixed_types_rejected(self):
        with pytest.raises(LuaRuntimeError):
            run_policy('t = {1, "a"} table.sort(t)')


class TestSandboxHoles:
    """Dangerous Lua facilities must be absent."""

    @pytest.mark.parametrize("name", ["os", "io", "require", "dofile",
                                      "loadstring", "load", "package",
                                      "getmetatable", "setmetatable",
                                      "rawset", "collectgarbage"])
    def test_absent(self, name):
        assert value_of(f"x = {name} == nil") is True

    def test_policy_using_string_and_table_libs(self):
        """A realistic policy fragment exercising both libraries."""
        result = run_policy("""
        loads = {}
        for i = 1, 5 do table.insert(loads, i * 2) end
        table.sort(loads)
        summary = string.format("max=%d list=%s", loads[#loads],
                                table.concat(loads, "/"))
        """)
        assert result.python_value("summary") == "max=10 list=2/4/6/8/10"
