"""Fidelity tests: the paper's Listings 1-4 execute as published.

Each test builds the Table-2 environment by hand, runs the stock policy's
decision chunk (our near-verbatim rendering of the listing), and checks
the decision against what the paper says the balancer does.
"""

import pytest

from repro.core.policies import (
    adaptable_policy,
    fill_spill_policy,
    greedy_spill_even_policy,
    greedy_spill_policy,
    original_policy,
)


def run_decision(policy, whoami, mds_loads, extra_metrics=None,
                 allmetaload=None, state=None, total=None):
    """Execute a policy's when+where chunk against synthetic metrics.

    *mds_loads* is the list of per-rank ``load`` values (1-based order);
    *extra_metrics* merges additional per-rank keys (cpu, q, ...).
    Returns (go, targets {1-based rank: load}, state slot).
    """
    state = state if state is not None else {}
    mdss = []
    for index, load in enumerate(mds_loads):
        metrics = {"auth": load, "all": load, "cpu": 0.0, "mem": 0.0,
                   "q": 0.0, "req": 0.0, "load": load}
        if extra_metrics:
            metrics.update(extra_metrics[index])
        mdss.append(metrics)
    bindings = {
        "whoami": whoami,
        "MDSs": mdss,
        "total": total if total is not None else float(sum(mds_loads)),
        "authmetaload": float(mds_loads[whoami - 1]),
        "allmetaload": (float(allmetaload) if allmetaload is not None
                        else float(mds_loads[whoami - 1])),
        "targets": {},
        "WRstate": lambda v=None: state.__setitem__("s", v),
        "RDstate": lambda: state.get("s"),
    }
    result = policy.decision_chunk().run(bindings)
    go = result.global_value("go")
    targets = result.python_value("targets") or {}
    return bool(go), targets, state


class TestListing1GreedySpill:
    def test_spills_half_to_idle_neighbour(self):
        go, targets, _ = run_decision(
            greedy_spill_policy(), whoami=1, mds_loads=[100.0, 0.0],
        )
        assert go
        assert targets == {2: 50.0}

    def test_no_spill_when_neighbour_busy(self):
        go, targets, _ = run_decision(
            greedy_spill_policy(), whoami=1, mds_loads=[100.0, 50.0],
        )
        assert not go

    def test_no_spill_when_idle(self):
        go, _t, _ = run_decision(
            greedy_spill_policy(), whoami=1, mds_loads=[0.0, 0.0],
        )
        assert not go

    def test_last_rank_has_no_neighbour(self):
        # The paper's verbatim listing would index nil here; our guarded
        # rendering simply does not fire.
        go, _t, _ = run_decision(
            greedy_spill_policy(), whoami=2, mds_loads=[0.0, 100.0],
        )
        assert not go

    def test_cascade_shape(self):
        """Rank 2 of 4, having received load, spills to rank 3 -- the
        cascade that produces the paper's uneven 4/2/1/1 split."""
        go, targets, _ = run_decision(
            greedy_spill_policy(), whoami=2,
            mds_loads=[100.0, 50.0, 0.0, 0.0],
        )
        assert go
        assert list(targets) == [3]


class TestListing2GreedySpillEvenly:
    def test_first_rank_targets_far_half(self):
        # whoami=1, 4 ranks: t = floor(4/2)+1 = 3.
        go, targets, _ = run_decision(
            greedy_spill_even_policy(), whoami=1,
            mds_loads=[100.0, 0.0, 0.0, 0.0],
        )
        assert go
        assert list(targets) == [3]

    def test_search_walks_down_past_busy_ranks(self):
        # Rank 3 busy: the while loop walks t down to the idle rank 2.
        go, targets, _ = run_decision(
            greedy_spill_even_policy(), whoami=1,
            mds_loads=[100.0, 0.0, 60.0, 60.0],
        )
        assert go
        assert list(targets) == [2]

    def test_nowhere_to_go(self):
        go, _t, _ = run_decision(
            greedy_spill_even_policy(), whoami=1,
            mds_loads=[100.0, 50.0, 60.0, 60.0],
        )
        assert not go

    def test_produces_even_split_over_rounds(self):
        """Simulating the rounds: loads converge to an even 4-way split."""
        loads = [100.0, 0.0, 0.0, 0.0]
        policy = greedy_spill_even_policy()
        for _round in range(6):
            for rank in range(1, 5):
                go, targets, _ = run_decision(policy, rank, list(loads))
                if go:
                    for target, amount in targets.items():
                        amount = min(amount, loads[rank - 1])
                        loads[rank - 1] -= amount
                        loads[target - 1] += amount
        assert loads == pytest.approx([25.0, 25.0, 25.0, 25.0])


class TestListing3FillAndSpill:
    def test_waits_three_hot_iterations(self):
        policy = fill_spill_policy(cpu_threshold=48.0)
        state = {}
        hot = [{"cpu": 80.0}, {"cpu": 0.0}]
        for tick in range(2):
            go, _t, state = run_decision(
                policy, 1, [100.0, 0.0], extra_metrics=hot, state=state,
            )
            assert not go, f"spilled on hot tick {tick}"
        go, targets, _ = run_decision(
            policy, 1, [100.0, 0.0], extra_metrics=hot, state=state,
        )
        assert go
        assert targets == {2: 25.0}  # spills a quarter of the load

    def test_cool_tick_resets_patience(self):
        policy = fill_spill_policy(cpu_threshold=48.0)
        state = {}
        hot = [{"cpu": 80.0}, {"cpu": 0.0}]
        cool = [{"cpu": 10.0}, {"cpu": 0.0}]
        for metrics in (hot, hot, cool, hot, hot):
            go, _t, state = run_decision(
                policy, 1, [100.0, 0.0], extra_metrics=metrics, state=state,
            )
            assert not go
        go, _t, _ = run_decision(
            policy, 1, [100.0, 0.0], extra_metrics=hot, state=state,
        )
        assert go

    def test_spill_fraction_parameter(self):
        policy = fill_spill_policy(spill_fraction=0.10, patience=0)
        go, targets, _ = run_decision(
            policy, 1, [100.0, 0.0],
            extra_metrics=[{"cpu": 90.0}, {"cpu": 0.0}],
        )
        assert go
        assert targets == {2: pytest.approx(10.0)}


class TestListing4Adaptable:
    def test_fires_only_with_majority_load(self):
        policy = adaptable_policy()
        go, targets, _ = run_decision(
            policy, 1, [80.0, 10.0, 10.0],
        )
        assert go
        # Targets even out the underloaded ranks toward total/#MDSs.
        expected = 100.0 / 3
        assert targets[2] == pytest.approx(expected - 10.0)
        assert targets[3] == pytest.approx(expected - 10.0)

    def test_does_not_fire_below_majority(self):
        go, _t, _ = run_decision(
            adaptable_policy(), 1, [40.0, 35.0, 25.0],
        )
        assert not go

    def test_does_not_fire_when_not_the_max(self):
        go, _t, _ = run_decision(
            adaptable_policy(), 2, [80.0, 15.0, 5.0],
        )
        assert not go

    def test_only_one_exporter_at_a_time(self):
        """Paper: 'this restricts the cluster to only one exporter at a
        time' -- at most one rank can satisfy load > total/2."""
        loads = [60.0, 30.0, 10.0]
        firing = [
            rank for rank in (1, 2, 3)
            if run_decision(adaptable_policy(), rank, list(loads))[0]
        ]
        assert len(firing) <= 1


class TestTable1Original:
    def test_fires_above_average(self):
        go, targets, _ = run_decision(
            original_policy(), 1, [60.0, 20.0, 10.0],
        )
        assert go
        assert set(targets) == {2, 3}

    def test_silent_below_average(self):
        go, _t, _ = run_decision(
            original_policy(), 3, [60.0, 20.0, 10.0],
        )
        assert not go

    def test_targets_uncapped_can_overcommit(self):
        """The original where does not cap by surplus -- both overloaded
        ranks compute the full deficit for the idle one (a Fig 4 cause)."""
        t1 = run_decision(original_policy(), 1, [45.0, 45.0, 0.0])[1]
        t2 = run_decision(original_policy(), 2, [45.0, 45.0, 0.0])[1]
        assert t1.get(3, 0) + t2.get(3, 0) > 30.0 + 1e-9
