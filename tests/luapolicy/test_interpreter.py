"""Interpreter semantics: arithmetic, tables, control flow, scoping."""

import math

import pytest

from repro.luapolicy import (
    LuaBudgetExceeded,
    LuaRuntimeError,
    LuaTable,
    run_policy,
)


def value_of(source, name="x", **bindings):
    return run_policy(source, bindings or None).python_value(name)


class TestArithmetic:
    def test_basic_ops(self):
        assert value_of("x = 2 + 3 * 4") == 14.0
        assert value_of("x = (2 + 3) * 4") == 20.0
        assert value_of("x = 7 / 2") == 3.5
        assert value_of("x = 2 ^ 10") == 1024.0

    def test_lua_modulo_follows_floor_division(self):
        assert value_of("x = 7 % 3") == 1.0
        assert value_of("x = -7 % 3") == 2.0  # Lua: a - floor(a/b)*b
        assert value_of("x = 7 % -3") == -2.0

    def test_division_by_zero_gives_infinity(self):
        assert value_of("x = 1 / 0") == math.inf
        assert value_of("x = -1 / 0") == -math.inf
        assert math.isnan(value_of("x = 0 / 0"))

    def test_unary_minus(self):
        assert value_of("x = -(3 + 4)") == -7.0

    def test_negative_power_precedence(self):
        assert value_of("x = -2^2") == -4.0

    def test_string_coercion_in_arithmetic(self):
        assert value_of('x = "10" + 5') == 15.0

    def test_arith_on_nil_raises(self):
        with pytest.raises(LuaRuntimeError):
            run_policy("x = nil + 1")

    def test_arith_on_boolean_raises(self):
        with pytest.raises(LuaRuntimeError):
            run_policy("x = true * 2")


class TestComparisonAndLogic:
    def test_comparisons(self):
        assert value_of("x = 1 < 2") is True
        assert value_of("x = 2 <= 2") is True
        assert value_of("x = 3 ~= 4") is True
        assert value_of("x = 3 == 3.0") is True

    def test_string_comparison(self):
        assert value_of('x = "a" < "b"') is True

    def test_mixed_comparison_raises(self):
        with pytest.raises(LuaRuntimeError):
            run_policy('x = 1 < "2"')

    def test_equality_across_types_is_false(self):
        assert value_of('x = 1 == "1"') is False
        assert value_of("x = nil == false") is False

    def test_and_or_return_operands(self):
        assert value_of("x = nil or 5") == 5.0
        assert value_of("x = false and 5") is False
        assert value_of("x = 1 and 2") == 2.0
        assert value_of("x = 0 or 9") == 0.0  # 0 is truthy in Lua!

    def test_short_circuit_avoids_side_effects(self):
        result = run_policy("""
        called = false
        local function f() called = true return 1 end
        x = false and f()
        """)
        assert result.python_value("called") is False

    def test_not(self):
        assert value_of("x = not nil") is True
        assert value_of("x = not 0") is False  # 0 truthy


class TestStrings:
    def test_concat(self):
        assert value_of('x = "a" .. "b"') == "ab"

    def test_concat_numbers_format_like_lua(self):
        assert value_of('x = "n=" .. 3') == "n=3"
        assert value_of('x = "n=" .. 3.5') == "n=3.5"

    def test_concat_nil_raises(self):
        with pytest.raises(LuaRuntimeError):
            run_policy('x = "a" .. nil')

    def test_length_of_string(self):
        assert value_of('x = #"hello"') == 5.0


class TestTables:
    def test_constructor_and_index(self):
        assert value_of("t = {10, 20, 30} x = t[2]") == 20.0

    def test_named_fields(self):
        assert value_of('t = {load = 5} x = t.load') == 5.0
        assert value_of('t = {load = 5} x = t["load"]') == 5.0

    def test_length(self):
        assert value_of("t = {1, 2, 3} x = #t") == 3.0

    def test_length_stops_at_hole(self):
        assert value_of("t = {} t[1]=1 t[2]=2 t[4]=4 x = #t") == 2.0

    def test_integral_float_keys_collapse(self):
        assert value_of("t = {} t[1.0] = 7 x = t[1]") == 7.0

    def test_assigning_nil_removes_key(self):
        assert value_of("t = {1, 2} t[2] = nil x = #t") == 1.0

    def test_missing_key_is_nil(self):
        assert value_of("t = {} x = t[99] == nil") is True

    def test_nil_index_raises_on_write(self):
        with pytest.raises(LuaRuntimeError):
            run_policy("t = {} t[nil] = 1")

    def test_indexing_non_table_raises(self):
        with pytest.raises(LuaRuntimeError):
            run_policy("x = 5 y = x[1]")

    def test_nested_tables(self):
        source = """
        MDSs = {}
        MDSs[1] = {load = 10, cpu = 50}
        MDSs[2] = {load = 0, cpu = 5}
        x = MDSs[1]["load"] + MDSs[2]["cpu"]
        """
        assert value_of(source) == 15.0


class TestControlFlow:
    def test_if_branches(self):
        assert value_of("if 1 < 2 then x = 1 else x = 2 end") == 1.0
        assert value_of("if 1 > 2 then x = 1 else x = 2 end") == 2.0

    def test_elseif_chain(self):
        source = "a = 5 if a < 3 then x=1 elseif a < 7 then x=2 else x=3 end"
        assert value_of(source) == 2.0

    def test_while_loop(self):
        assert value_of("x = 0 while x < 10 do x = x + 1 end") == 10.0

    def test_while_break(self):
        assert value_of(
            "x = 0 while true do x = x + 1 if x == 3 then break end end"
        ) == 3.0

    def test_repeat_until(self):
        assert value_of("x = 0 repeat x = x + 1 until x >= 4") == 4.0

    def test_repeat_condition_sees_body_locals(self):
        assert value_of(
            "x = 0 repeat local done = x > 2 x = x + 1 until done"
        ) == 4.0

    def test_numeric_for(self):
        assert value_of("x = 0 for i = 1, 5 do x = x + i end") == 15.0

    def test_numeric_for_step(self):
        assert value_of("x = 0 for i = 10, 1, -2 do x = x + 1 end") == 5.0

    def test_numeric_for_zero_step_raises(self):
        with pytest.raises(LuaRuntimeError):
            run_policy("for i = 1, 5, 0 do end")

    def test_numeric_for_empty_range(self):
        assert value_of("x = 0 for i = 5, 1 do x = x + 1 end") == 0.0

    def test_generic_for_pairs(self):
        assert value_of(
            "t = {2, 4, 6} x = 0 for k, v in pairs(t) do x = x + v end"
        ) == 12.0

    def test_generic_for_break(self):
        assert value_of(
            "t = {1,2,3,4} x = 0 "
            "for _, v in ipairs(t) do if v > 2 then break end x = x + v end"
        ) == 3.0


class TestFunctionsAndScope:
    def test_function_call_and_return(self):
        assert value_of("local function add(a, b) return a + b end "
                        "x = add(2, 3)") == 5.0

    def test_missing_args_are_nil(self):
        assert value_of("local function f(a, b) return b == nil end "
                        "x = f(1)") is True

    def test_closures_capture_environment(self):
        source = """
        n = 10
        local function f() return n end
        n = 20
        x = f()
        """
        assert value_of(source) == 20.0

    def test_recursion(self):
        source = """
        function fib(n)
          if n < 2 then return n end
          return fib(n-1) + fib(n-2)
        end
        x = fib(10)
        """
        assert value_of(source) == 55.0

    def test_deep_recursion_overflows_cleanly(self):
        with pytest.raises(LuaRuntimeError):
            run_policy("function f(n) return f(n+1) end x = f(0)")

    def test_local_scoping_inside_blocks(self):
        source = """
        x = 1
        if true then local x = 99 end
        """
        assert value_of(source) == 1.0

    def test_global_assignment_inside_block_escapes(self):
        source = """
        if true then y = 7 end
        x = y
        """
        assert value_of(source) == 7.0

    def test_calling_non_function_raises(self):
        with pytest.raises(LuaRuntimeError):
            run_policy("x = 5 y = x()")

    def test_listing4_shadowing_bug_reproduced(self):
        """The paper's Listing 4 shadows builtin max with a number and then
        calls it; real Lua errors and so do we."""
        with pytest.raises(LuaRuntimeError):
            run_policy("max = 0 x = max(1, max)")


class TestBudget:
    def test_infinite_while_loop_is_stopped(self):
        with pytest.raises(LuaBudgetExceeded):
            run_policy("while 1 do end", budget=5_000)

    def test_infinite_recursion_budget_or_depth(self):
        with pytest.raises((LuaBudgetExceeded, LuaRuntimeError)):
            run_policy("function f() return f() end x = f()", budget=100_000)

    def test_budget_roomy_enough_for_normal_policies(self):
        result = run_policy(
            "x = 0 for i = 1, 100 do x = x + i end", budget=10_000
        )
        assert result.python_value("x") == 5050.0

    def test_instructions_counted(self):
        result = run_policy("x = 1")
        assert 0 < result.instructions < 100


class TestReturn:
    def test_chunk_return_value(self):
        result = run_policy("return 1 + 2")
        assert result.return_value == 3.0

    def test_return_table_converts(self):
        result = run_policy("return {a = 1, b = 2}")
        assert result.return_value == {"a": 1.0, "b": 2.0}

    def test_python_value_of_table(self):
        result = run_policy("t = {5, 6}")
        assert result.python_value("t") == [5.0, 6.0]
        assert isinstance(result.global_value("t"), LuaTable)


class TestRuntimeErrorPositions:
    """Runtime errors carry the source line/column of the failing node."""

    def test_arithmetic_on_nil_points_at_operator(self):
        with pytest.raises(LuaRuntimeError) as excinfo:
            run_policy("x = 1\ny = x + nil")
        assert excinfo.value.line == 2
        assert "(line 2, column" in str(excinfo.value)

    def test_call_of_nil_has_position(self):
        with pytest.raises(LuaRuntimeError) as excinfo:
            run_policy("go = frob()")
        assert excinfo.value.line == 1
        assert "line 1" in str(excinfo.value)

    def test_positions_survive_multiline_chunks(self):
        source = "a = 1\nb = 2\nc = 3\nd = c + {}"
        with pytest.raises(LuaRuntimeError) as excinfo:
            run_policy(source)
        assert excinfo.value.line == 4
