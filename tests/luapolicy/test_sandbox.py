"""Sandbox facade: compilation, bindings, expression evaluation."""

import pytest

from repro.luapolicy import (
    LuaSyntaxError,
    compile_load_expression,
    compile_policy,
    evaluate_expression,
    run_policy,
)


class TestCompilePolicy:
    def test_compile_once_run_many(self):
        compiled = compile_policy("x = a + 1")
        assert compiled.run({"a": 1}).python_value("x") == 2.0
        assert compiled.run({"a": 10}).python_value("x") == 11.0

    def test_runs_are_isolated(self):
        compiled = compile_policy("count = (count or 0) + 1")
        first = compiled.run()
        second = compiled.run()
        assert first.python_value("count") == 1.0
        assert second.python_value("count") == 1.0

    def test_syntax_error_at_compile_time(self):
        with pytest.raises(LuaSyntaxError):
            compile_policy("if then end")

    def test_bindings_convert_python_values(self):
        result = run_policy(
            "x = MDSs[1]['cpu']",
            {"MDSs": [{"cpu": 55}]},
        )
        assert result.python_value("x") == 55.0

    def test_callable_bindings(self):
        calls = []
        result = run_policy(
            "WRstate(5) x = RDstate()",
            {"WRstate": lambda v=None: calls.append(v),
             "RDstate": lambda: 42.0},
        )
        assert calls == [5.0]
        assert result.python_value("x") == 42.0


class TestLoadExpressions:
    def test_bare_expression(self):
        compiled = compile_load_expression("IRD + 2*IWR")
        result = compiled.run({"IRD": 3, "IWR": 4})
        assert result.return_value == 11.0

    def test_cephfs_metaload_formula(self):
        value = evaluate_expression(
            "IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE",
            dict(IRD=1, IWR=1, READDIR=1, FETCH=1, STORE=1),
        )
        assert value == 10.0

    def test_cephfs_mdsload_formula(self):
        value = evaluate_expression(
            '0.8*MDSs[i]["auth"] + 0.2*MDSs[i]["all"] + MDSs[i]["req"]'
            ' + 10*MDSs[i]["q"]',
            {"MDSs": [{"auth": 10, "all": 20, "req": 5, "q": 2}], "i": 1},
        )
        assert value == pytest.approx(0.8 * 10 + 0.2 * 20 + 5 + 20)

    def test_statement_chunk_fallback(self):
        # A chunk (not a bare expression) is also accepted.
        compiled = compile_load_expression(
            "local a = IWR * 2\nmetaload = a + IRD"
        )
        result = compiled.run({"IWR": 3, "IRD": 1})
        assert result.global_value("metaload") == 7.0

    def test_single_metric(self):
        assert evaluate_expression("IWR", {"IWR": 9}) == 9.0


class TestPolicyResult:
    def test_missing_global_is_none(self):
        assert run_policy("x = 1").python_value("nope") is None

    def test_return_value_none_without_return(self):
        assert run_policy("x = 1").return_value is None
