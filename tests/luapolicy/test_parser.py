"""Parser tests: statement/expression grammar, precedence, errors."""

import pytest

from repro.luapolicy import lua_ast as ast
from repro.luapolicy.errors import LuaSyntaxError
from repro.luapolicy.parser import parse_chunk, parse_expression


class TestExpressions:
    def test_number_literal(self):
        node = parse_expression("42")
        assert isinstance(node, ast.NumberLiteral)
        assert node.value == 42.0

    def test_hex_literal(self):
        assert parse_expression("0x10").value == 16.0

    def test_string_literal(self):
        assert parse_expression('"x"').value == "x"

    def test_nil_true_false(self):
        assert isinstance(parse_expression("nil"), ast.NilLiteral)
        assert parse_expression("true").value is True
        assert parse_expression("false").value is False

    def test_precedence_mul_over_add(self):
        node = parse_expression("1 + 2 * 3")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_precedence_comparison_below_arith(self):
        node = parse_expression("a + 1 > b * 2")
        assert node.op == ">"

    def test_and_or_lowest(self):
        node = parse_expression("a > 1 and b < 2 or c")
        assert node.op == "or"
        assert node.left.op == "and"

    def test_concat_right_associative(self):
        node = parse_expression('"a" .. "b" .. "c"')
        assert node.op == ".."
        assert isinstance(node.left, ast.StringLiteral)
        assert node.right.op == ".."

    def test_power_right_associative(self):
        node = parse_expression("2 ^ 3 ^ 2")
        assert node.op == "^"
        assert node.right.op == "^"

    def test_unary_minus_binds_tighter_than_mul(self):
        node = parse_expression("-a * b")
        assert node.op == "*"
        assert isinstance(node.left, ast.UnaryOp)

    def test_power_binds_tighter_than_unary(self):
        # Lua: -2^2 == -(2^2)
        node = parse_expression("-2^2")
        assert isinstance(node, ast.UnaryOp)
        assert node.operand.op == "^"

    def test_parenthesised_grouping(self):
        node = parse_expression("(1 + 2) * 3")
        assert node.op == "*"
        assert node.left.op == "+"

    def test_index_chain(self):
        node = parse_expression('MDSs[i]["load"]')
        assert isinstance(node, ast.Index)
        assert isinstance(node.obj, ast.Index)
        assert node.obj.obj.name == "MDSs"

    def test_dot_sugar(self):
        node = parse_expression("math.floor")
        assert isinstance(node, ast.Index)
        assert node.key.value == "floor"

    def test_call_with_args(self):
        node = parse_expression("max(a, b)")
        assert isinstance(node, ast.Call)
        assert len(node.args) == 2

    def test_call_chain(self):
        node = parse_expression("f(1)(2)")
        assert isinstance(node, ast.Call)
        assert isinstance(node.func, ast.Call)

    def test_length_operator(self):
        node = parse_expression("#MDSs")
        assert isinstance(node, ast.UnaryOp)
        assert node.op == "#"

    def test_table_constructor_array(self):
        node = parse_expression('{"half", "small"}')
        assert isinstance(node, ast.TableConstructor)
        assert len(node.fields) == 2
        assert node.fields[0].key is None

    def test_table_constructor_named(self):
        node = parse_expression("{a = 1, [2] = 3}")
        assert node.fields[0].key.value == "a"
        assert node.fields[1].key.value == 2.0

    def test_anonymous_function(self):
        node = parse_expression("function(a, b) return a end")
        assert isinstance(node, ast.FunctionExpr)
        assert node.params == ("a", "b")

    def test_method_call_rejected(self):
        with pytest.raises(LuaSyntaxError):
            parse_expression("obj:method()")


class TestStatements:
    def test_assignment(self):
        block = parse_chunk("x = 1")
        assert isinstance(block.statements[0], ast.Assign)

    def test_multiple_assignment(self):
        stmt = parse_chunk("a, b = 1, 2").statements[0]
        assert len(stmt.targets) == 2
        assert len(stmt.values) == 2

    def test_index_assignment(self):
        stmt = parse_chunk("targets[i] = 5").statements[0]
        assert isinstance(stmt.targets[0], ast.Index)

    def test_local(self):
        stmt = parse_chunk("local x, y = 1").statements[0]
        assert isinstance(stmt, ast.LocalAssign)
        assert stmt.names == ("x", "y")

    def test_if_elseif_else(self):
        stmt = parse_chunk("""
        if a then x = 1
        elseif b then x = 2
        else x = 3 end
        """).statements[0]
        assert isinstance(stmt, ast.If)
        assert len(stmt.branches) == 2
        assert len(stmt.orelse.statements) == 1

    def test_while(self):
        stmt = parse_chunk("while x < 10 do x = x + 1 end").statements[0]
        assert isinstance(stmt, ast.While)

    def test_repeat_until(self):
        stmt = parse_chunk("repeat x = x + 1 until x > 3").statements[0]
        assert isinstance(stmt, ast.Repeat)

    def test_numeric_for(self):
        stmt = parse_chunk("for i=1,#MDSs do t = i end").statements[0]
        assert isinstance(stmt, ast.NumericFor)
        assert stmt.var == "i"
        assert stmt.step is None

    def test_numeric_for_with_step(self):
        stmt = parse_chunk("for i=10,1,-1 do x = i end").statements[0]
        assert stmt.step is not None

    def test_generic_for(self):
        stmt = parse_chunk("for k, v in pairs(t) do x = v end").statements[0]
        assert isinstance(stmt, ast.GenericFor)
        assert stmt.names == ("k", "v")

    def test_function_declaration(self):
        stmt = parse_chunk("function f(x) return x end").statements[0]
        assert isinstance(stmt, ast.FunctionDecl)
        assert not stmt.is_local

    def test_local_function(self):
        stmt = parse_chunk("local function f() end").statements[0]
        assert stmt.is_local

    def test_return_ends_block(self):
        block = parse_chunk("return 1")
        assert isinstance(block.statements[-1], ast.Return)

    def test_bare_return(self):
        stmt = parse_chunk("return").statements[0]
        assert stmt.values == ()

    def test_break(self):
        block = parse_chunk("while true do break end")
        inner = block.statements[0].body.statements[0]
        assert isinstance(inner, ast.Break)

    def test_do_block(self):
        stmt = parse_chunk("do x = 1 end").statements[0]
        assert isinstance(stmt, ast.Do)

    def test_call_statement(self):
        stmt = parse_chunk("WRstate(2)").statements[0]
        assert isinstance(stmt, ast.CallStmt)

    def test_semicolons_allowed(self):
        block = parse_chunk("x = 1; y = 2;")
        assert len(block.statements) == 2


class TestErrors:
    def test_bare_expression_statement_rejected(self):
        with pytest.raises(LuaSyntaxError):
            parse_chunk("x + 1")

    def test_missing_end_rejected(self):
        with pytest.raises(LuaSyntaxError):
            parse_chunk("if x then y = 1")

    def test_missing_then_rejected(self):
        with pytest.raises(LuaSyntaxError):
            parse_chunk("if x y = 1 end")

    def test_assign_to_literal_rejected(self):
        with pytest.raises(LuaSyntaxError):
            parse_chunk("1 = 2")

    def test_garbage_after_expression_rejected(self):
        with pytest.raises(LuaSyntaxError):
            parse_expression("1 2")

    def test_varargs_rejected(self):
        with pytest.raises(LuaSyntaxError):
            parse_chunk("function f(...) end")


class TestPaperListings:
    """The paper's listings (as shipped in repro.core.policies) must parse."""

    def test_listing4_where_parses(self):
        parse_chunk("""
        targetLoad=total/#MDSs
        for i=1,#MDSs do
          if MDSs[i]["load"]<targetLoad then
            targets[i]=targetLoad-MDSs[i]["load"]
          end
        end
        """)

    def test_listing3_when_parses(self):
        parse_chunk("""
        wait = RDstate() or 0
        go = 0
        if MDSs[whoami]["cpu"] > 48 then
          if wait > 0 then WRstate(wait-1)
          else WRstate(2); go = 1 end
        else WRstate(2) end
        go = (go == 1)
        """)
