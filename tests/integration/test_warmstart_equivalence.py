"""Warm starts and the result cache must be invisible.

The fork-based cell server shares namespace construction and the
policy-independent simulation prefix across grid cells; the result cache
skips cells entirely.  Both must return records *byte-identical* to a
cold run -- same summary lines, same latency percentiles bit-for-bit --
and the cache must miss whenever anything sim-visible changes (sources,
policy text, seed, fast-path toggle).
"""

import json

import pytest

from repro import fastpath
from repro.perf.cache import ResultCache, cache_disabled, open_cache
from repro.perf.fingerprint import spec_fingerprint, sources_digest
from repro.perf.sweep import (
    build_specs,
    format_report,
    run_sweep,
    run_sweep_cached,
)
from repro.perf.warmstart import fork_supported

pytestmark = pytest.mark.skipif(not fork_supported(),
                                reason="requires os.fork")

SMALL = dict(files_per_client=300, dir_split_size=200)


def small_specs():
    return build_specs([0, 1], ["none", "greedy-spill", "fill-and-spill"],
                       **SMALL)


# ---------------------------------------------------------------------------
# Warm-start equivalence.
# ---------------------------------------------------------------------------

class TestWarmStartEquivalence:
    def test_warm_records_match_cold_exactly(self):
        specs = small_specs()
        cold = run_sweep(specs)
        warm = run_sweep(specs, warm=True)
        # Full-precision equality: every float, every per-rank counter.
        assert json.dumps(cold, sort_keys=True, default=repr) \
            == json.dumps(warm, sort_keys=True, default=repr)

    def test_warm_parallel_matches_cold(self):
        specs = small_specs()
        assert run_sweep(specs, jobs=4, warm=True) == run_sweep(specs)

    def test_zipf_shares_construction_across_seeds(self):
        # Different seeds share the population build; results must still
        # match per-seed cold runs exactly.
        specs = build_specs([3, 4], ["none", "greedy-spill"],
                            workload="zipf", files_per_client=800,
                            ops_per_client=400)
        assert run_sweep(specs, warm=True) == run_sweep(specs)

    def test_formatted_report_byte_identical(self):
        # The CI determinism check diffs sweep stdout; the warm path and
        # any --jobs value must format to the same bytes.
        specs = small_specs()
        cold = format_report(run_sweep(specs, jobs=1))
        assert format_report(run_sweep(specs, jobs=2)) == cold
        assert format_report(run_sweep(specs, warm=True)) == cold
        assert format_report(run_sweep(specs, jobs=2, warm=True)) == cold

    def test_single_cell_falls_back_to_cold_path(self):
        specs = build_specs([5], ["greedy-spill"], **SMALL)
        assert run_sweep(specs, warm=True) == run_sweep(specs)

    def test_warm_flag_without_fork_support(self, monkeypatch):
        # Platforms without os.fork must silently take the cold path.
        from repro.perf import warmstart
        monkeypatch.setattr(warmstart, "fork_supported", lambda: False)
        specs = small_specs()[:2]
        assert run_sweep(specs, warm=True) == run_sweep(specs)


# ---------------------------------------------------------------------------
# Result cache.
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_hit_returns_identical_record(self, tmp_path):
        specs = small_specs()[:3]
        cache = ResultCache(tmp_path)
        first, hits, misses = run_sweep_cached(specs, cache=cache)
        assert (hits, misses) == (0, 3)
        second, hits, misses = run_sweep_cached(specs, cache=cache)
        assert (hits, misses) == (3, 0)
        cold = run_sweep(specs)
        assert json.dumps(first, sort_keys=True) \
            == json.dumps(second, sort_keys=True) \
            == json.dumps(cold, sort_keys=True)
        # per_mds_ops ranks survive the JSON round trip as ints.
        assert all(isinstance(rank, int)
                   for rank in second[0]["per_mds_ops"])

    def test_partial_hits_fill_only_the_gaps(self, tmp_path):
        specs = small_specs()
        cache = ResultCache(tmp_path)
        run_sweep_cached(specs[:2], cache=cache)
        records, hits, misses = run_sweep_cached(specs, warm=True,
                                                 cache=cache)
        assert (hits, misses) == (2, len(specs) - 2)
        assert records == run_sweep(specs)

    def test_disabled_cache_runs_everything(self, tmp_path):
        specs = small_specs()[:2]
        records, hits, misses = run_sweep_cached(specs, cache=None)
        assert (hits, misses) == (0, 2)
        assert records == run_sweep(specs)

    def test_no_cache_env_kills_open_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert open_cache() is not None
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert cache_disabled()
        assert open_cache() is None

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep_cached(small_specs()[:2], cache=cache)
        stats = cache.stats()
        assert stats["records"] == 2 and stats["bytes"] > 0
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0

    def test_rejects_non_hex_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.put_record("../escape", {})


# ---------------------------------------------------------------------------
# Fingerprint invalidation.
# ---------------------------------------------------------------------------

class TestFingerprintInvalidation:
    def test_seed_and_policy_change_the_key(self):
        specs = build_specs([0, 1], ["greedy-spill", "fill-and-spill"],
                            **SMALL)
        keys = {spec_fingerprint(spec) for spec in specs}
        assert len(keys) == len(specs)

    def test_policy_text_edit_is_a_miss(self, monkeypatch):
        # Same policy *name*, different Lua body -> different key.
        from dataclasses import replace

        from repro.core.policies import STOCK_POLICIES
        spec = build_specs([0], ["greedy-spill"], **SMALL)[0]
        before = spec_fingerprint(spec)
        original = STOCK_POLICIES["greedy-spill"]

        def edited():
            policy = original()
            return replace(policy, when="return false")

        monkeypatch.setitem(STOCK_POLICIES, "greedy-spill", edited)
        assert spec_fingerprint(spec) != before

    def test_fastpath_toggle_is_a_miss(self):
        spec = build_specs([0], ["greedy-spill"], **SMALL)[0]
        before = spec_fingerprint(spec)
        original = fastpath.ENABLED
        try:
            fastpath.set_enabled(not original)
            assert spec_fingerprint(spec) != before
        finally:
            fastpath.set_enabled(original)

    def test_sources_digest_is_stable_within_process(self):
        assert sources_digest() == sources_digest()
        assert len(sources_digest()) == 64
