"""End-to-end integration tests: full cluster + workloads + policies.

Small-scale versions of the paper's experiments, exercising the entire
stack (clients -> network -> MDS -> namespace -> RADOS -> balancer) in a
few simulated seconds each.
"""

import pytest

from repro import SimulatedCluster, run_experiment, run_seeds
from repro.core.api import MantlePolicy
from repro.core.policies import (
    adaptable_policy,
    fill_spill_policy,
    greedy_spill_even_policy,
    greedy_spill_policy,
    original_policy,
)
from repro.workloads import (
    CompileWorkload,
    CreateWorkload,
    TraceWorkload,
    ZipfWorkload,
)
from repro.clients.ops import OpKind
from tests.conftest import make_config


class TestBasicRuns:
    def test_create_workload_completes(self, small_config):
        report = run_experiment(
            small_config,
            CreateWorkload(num_clients=2, files_per_client=500),
        )
        assert report.total_ops == 2 * 501
        assert report.makespan > 0
        assert report.throughput > 0
        assert all(ops == 501
                   for ops in report.metrics.client_op_counts.values())

    def test_zipf_workload_completes(self, small_config):
        workload = ZipfWorkload(num_clients=2, num_files=300,
                                ops_per_client=400, num_dirs=8)
        report = run_experiment(small_config, workload)
        assert report.total_ops == 800

    def test_trace_replay(self, small_config):
        trace = {
            0: [(OpKind.MKDIR, "/t0"), (OpKind.CREATE, "/t0/a"),
                (OpKind.STAT, "/t0/a"), (OpKind.READDIR, "/t0"),
                (OpKind.UNLINK, "/t0/a")],
            1: [(OpKind.MKDIR, "/t1"), (OpKind.CREATE, "/t1/b")],
        }
        report = run_experiment(small_config, TraceWorkload(trace))
        assert report.total_ops == 7

    def test_compile_workload_completes(self, small_config):
        workload = CompileWorkload(num_clients=2, scale=0.5, seed=1)
        report = run_experiment(small_config, workload)
        assert report.total_ops == workload.total_ops()

    def test_no_clients_runs_heartbeats_only(self, small_config):
        cluster = SimulatedCluster(small_config)
        report = cluster.run_for(10.0)
        assert report.total_ops == 0
        for mds in cluster.mdss:
            assert mds.hb_table.have_all(small_config.num_mds)


class TestDeterminism:
    def test_same_seed_same_run(self):
        def run_once():
            config = make_config(num_mds=2, seed=123)
            return run_experiment(
                config,
                CreateWorkload(num_clients=2, files_per_client=800),
                policy=greedy_spill_policy(),
            )

        a, b = run_once(), run_once()
        assert a.makespan == b.makespan
        assert a.per_mds_ops() == b.per_mds_ops()
        assert a.total_migrations == b.total_migrations
        assert ([(d.time, d.rank, d.exports) for d in a.decisions]
                == [(d.time, d.rank, d.exports) for d in b.decisions])

    def test_different_seed_differs(self):
        def run_with(seed):
            config = make_config(num_mds=2, seed=seed)
            return run_experiment(
                config,
                CreateWorkload(num_clients=2, files_per_client=800),
            )

        a, b = run_with(1), run_with(2)
        assert a.makespan != b.makespan

    def test_run_seeds_helper(self):
        reports = run_seeds(
            make_config(num_mds=1),
            lambda: CreateWorkload(num_clients=1, files_per_client=200),
            seeds=(5, 6),
        )
        assert len(reports) == 2
        assert reports[0].config.seed == 5
        assert reports[1].config.seed == 6


class TestPolicyIntegration:
    @pytest.mark.parametrize("factory", [
        greedy_spill_policy,
        greedy_spill_even_policy,
        lambda: fill_spill_policy(cpu_threshold=60, patience=0),
        adaptable_policy,
        original_policy,
    ])
    def test_stock_policy_balances_a_hot_cluster(self, factory):
        """Every stock policy must shed load from an overloaded rank 0 on
        a suitably stressing small workload."""
        config = make_config(num_mds=2, num_clients=4,
                             heartbeat_interval=1.0, dir_split_size=400)
        report = run_experiment(
            config,
            CreateWorkload(num_clients=4, files_per_client=3000,
                           shared_dir=True),
            policy=factory(),
        )
        assert report.total_migrations >= 1, report.policy_name
        served = report.per_mds_ops()
        assert served.get(1, 0) > 0, report.policy_name

    def test_policy_swap_mid_session(self):
        """Mantle's point: inject different logic into the same cluster."""
        config = make_config(num_mds=2, num_clients=2,
                             heartbeat_interval=1.0)
        cluster = SimulatedCluster(config, policy=greedy_spill_policy())
        assert cluster.balancer.policy.name == "greedy-spill"
        cluster.set_policy(adaptable_policy())
        assert cluster.balancer.policy.name == "adaptable"
        for mds in cluster.mdss:
            assert mds.balancer is cluster.balancer
        cluster.clear_policy()
        assert all(mds.balancer is None for mds in cluster.mdss)

    def test_broken_policy_does_not_crash_the_cluster(self):
        """A policy that errors at run time must not take the MDS down --
        the safety property Mantle's decoupling buys (§3/§4.4)."""
        broken = MantlePolicy(
            name="broken",
            metaload="IWR",
            when='go = MDSs[whoami+99]["load"] > 0',  # indexes nil
            where="targets[2] = 1",
        )
        config = make_config(num_mds=2, num_clients=2,
                             heartbeat_interval=0.5)
        cluster = SimulatedCluster(config, policy=broken)
        report = cluster.run_workload(
            CreateWorkload(num_clients=2, files_per_client=4000)
        )
        # The workload completed even though every tick errored.
        assert report.total_ops == 2 * 4001
        assert cluster.balancer.errors > 0

    def test_conservation_of_operations(self):
        """No op is lost or double-served, even across migrations."""
        config = make_config(num_mds=3, num_clients=3,
                             heartbeat_interval=1.0, dir_split_size=300)
        workload = CreateWorkload(num_clients=3, files_per_client=2000,
                                  shared_dir=True)
        report = run_experiment(config, workload,
                                policy=greedy_spill_policy())
        assert report.total_ops == workload.total_ops()
        assert sum(report.per_mds_ops().values()) == workload.total_ops()

    def test_namespace_consistent_after_migrations(self):
        config = make_config(num_mds=2, num_clients=2,
                             heartbeat_interval=1.0, dir_split_size=300)
        cluster = SimulatedCluster(config, policy=greedy_spill_policy())
        cluster.run_workload(
            CreateWorkload(num_clients=2, files_per_client=2000,
                           shared_dir=True)
        )
        shared = cluster.namespace.resolve_dir("/work/shared")
        assert shared.entry_count() == 4000
        # Nothing left frozen behind.
        for directory in cluster.namespace.root.walk():
            for frag in directory.frags.values():
                assert not frag.frozen


class TestManualPartitioning:
    def test_pin_routes_requests(self, small_config):
        cluster = SimulatedCluster(small_config)
        cluster.namespace.mkdirs("/pinned")
        cluster.pin("/pinned", 1)
        report = cluster.run_workload(TraceWorkload({
            0: [(OpKind.CREATE, "/pinned/f1"),
                (OpKind.CREATE, "/pinned/f2")],
            1: [(OpKind.STAT, "/pinned/f1")],
        }))
        assert report.per_mds_ops().get(1, 0) >= 2

    def test_spread_dirfrags(self, small_config):
        cluster = SimulatedCluster(small_config)
        cluster.namespace.mkdirs("/d")
        d = cluster.namespace.resolve_dir("/d")
        for i in range(16):
            cluster.namespace.create(f"/d/f{i}")
        d.fragment(extra_bits=2)
        cluster.spread_dirfrags("/d", [0, 1])
        auths = {frag.authority() for frag in d.frags.values()}
        assert auths == {0, 1}

    def test_pin_invalid_rank(self, small_config):
        cluster = SimulatedCluster(small_config)
        cluster.namespace.mkdirs("/d")
        with pytest.raises(ValueError):
            cluster.pin("/d", 9)


class TestReportApi:
    def test_summary_line_contains_key_fields(self, small_config):
        report = run_experiment(
            small_config,
            CreateWorkload(num_clients=1, files_per_client=100),
        )
        line = report.summary_line()
        assert "makespan" in line and "tput" in line and "mds0" in line

    def test_latency_and_runtime_summaries(self, small_config):
        report = run_experiment(
            small_config,
            CreateWorkload(num_clients=2, files_per_client=100),
        )
        assert report.latency_summary().count == report.total_ops
        assert report.runtime_summary().count == 2

    def test_workload_exceeding_deadline_raises(self):
        config = make_config(num_mds=1)
        cluster = SimulatedCluster(config)
        with pytest.raises(RuntimeError, match="exceeded"):
            cluster.run_workload(
                CreateWorkload(num_clients=1, files_per_client=100_000),
                max_time=0.5,
            )
