"""Fast paths must be invisible: identical results with and without them.

Every gated optimization (policy AST/constant caches, transpiled load
formulas, batched counter decay, namespace caches, synchronous process
resume, batched network jitter) runs the same experiment twice -- fast
paths on, fast paths off -- and the reports must match *exactly*: same
summary line, same latency percentiles bit-for-bit, same balancing
decisions with the same export lists.
"""

import math

import numpy as np
import pytest

from repro import fastpath
from repro.cluster import run_experiment
from repro.config import ClusterConfig
from repro.core.policies import STOCK_POLICIES
from repro.namespace.counters import DecayCounter, LoadCounters
from repro.perf.sweep import build_specs, run_sweep
from repro.sim.engine import SimEngine
from repro.sim.network import Network
from repro.workloads import CreateWorkload, ZipfWorkload


@pytest.fixture(autouse=True)
def _restore_fastpath():
    original = fastpath.ENABLED
    yield
    fastpath.set_enabled(original)


def _digest(report) -> list[str]:
    """Everything observable about a run, with full float precision."""
    lines = [report.summary_line()]
    lat = report.latency_summary()
    lines.append(f"lat mean={lat.mean!r} p95={lat.p95!r} p99={lat.p99!r}")
    for d in report.decisions:
        lines.append(
            f"t={d.time!r} rank={d.rank} went={d.went} "
            f"targets={sorted(d.targets.items())!r} skip={d.skipped} "
            f"err={d.error} exports={d.exports!r}"
        )
    return lines


def _run_create(policy_name: str) -> list[str]:
    policy = (STOCK_POLICIES[policy_name]()
              if policy_name != "none" else None)
    report = run_experiment(
        ClusterConfig(num_mds=3, num_clients=4, seed=11,
                      dir_split_size=600),
        CreateWorkload(num_clients=4, files_per_client=4000,
                       shared_dir=True),
        policy=policy,
    )
    return _digest(report)


def _run_zipf(policy_name: str) -> list[str]:
    report = run_experiment(
        ClusterConfig(num_mds=2, num_clients=3, seed=5,
                      dir_split_size=800),
        ZipfWorkload(num_clients=3, num_files=2000, ops_per_client=4000,
                     seed=5),
        policy=STOCK_POLICIES[policy_name](),
    )
    return _digest(report)


@pytest.mark.parametrize("policy_name", [
    "none",
    "cephfs-original",
    "greedy-spill",
    "fill-and-spill",
    "adaptable",
])
def test_create_workload_equivalence(policy_name):
    fastpath.set_enabled(True)
    fast = _run_create(policy_name)
    fastpath.set_enabled(False)
    slow = _run_create(policy_name)
    assert fast == slow


def test_zipf_workload_equivalence():
    fastpath.set_enabled(True)
    fast = _run_zipf("greedy-spill")
    fastpath.set_enabled(False)
    slow = _run_zipf("greedy-spill")
    assert fast == slow


def test_batched_decay_snapshot_matches_per_counter_decay():
    """LoadCounters.snapshot's grouped decay equals per-counter decay."""

    def build():
        counters = LoadCounters(half_life=5.0)
        t = 0.0
        for i in range(200):
            t += 0.37
            counters.hit("IRD" if i % 3 else "IWR", t, amount=1.0 + i % 5)
            if i % 7 == 0:
                counters.hit("READDIR", t)
        return counters, t

    fastpath.set_enabled(True)
    fast_counters, t = build()
    fast = fast_counters.snapshot(t + 2.5)
    fastpath.set_enabled(False)
    slow_counters, t = build()
    slow = slow_counters.snapshot(t + 2.5)
    assert fast == slow


def test_decay_counter_inline_arithmetic_matches_reference():
    """The decay arithmetic copied into the hit() fast paths stays exact."""
    counter = DecayCounter(half_life=4.0)
    mirror = 0.0
    now = 0.0
    for i in range(50):
        gap = 0.2 + (i % 9) * 0.31
        now += gap
        counter.hit(now, amount=2.0)
        mirror *= math.pow(0.5, gap / 4.0)
        if mirror < 1e-12:
            mirror = 0.0
        mirror += 2.0
        assert counter.get(now) == pytest.approx(mirror, rel=1e-12)


def test_network_jitter_batching_preserves_draw_sequence():
    """Batched lognormal refills replay the exact scalar draw sequence."""

    def delays(enabled: bool) -> list[float]:
        fastpath.set_enabled(enabled)
        network = Network(SimEngine(),
                          np.random.Generator(np.random.PCG64(123)))
        return [network.one_way() for _ in range(3000)]

    assert delays(True) == delays(False)


def test_sweep_parallel_matches_serial():
    specs = build_specs([0, 1], ["greedy-spill"],
                        files_per_client=300, dir_split_size=200)
    serial = run_sweep(specs, jobs=1)
    parallel = run_sweep(specs, jobs=2)
    assert serial == parallel
