"""Trace recording/replay, the checkpoint workload, hash partitioning."""

import pytest

from repro.cluster import SimulatedCluster, run_experiment
from repro.clients.ops import OpKind
from repro.metrics.tracing import TraceRecorder, record_run
from repro.workloads import CheckpointWorkload, CreateWorkload
from tests.conftest import make_config


class TestTraceRecording:
    def run_recorded(self, files=200):
        cluster = SimulatedCluster(make_config(num_mds=1))
        workload = CreateWorkload(num_clients=2, files_per_client=files)
        recorder, report = record_run(cluster, workload)
        return recorder, report

    def test_records_every_op(self):
        recorder, report = self.run_recorded()
        assert len(recorder.events) == report.total_ops
        summary = recorder.summary()
        assert summary["clients"] == 2
        assert summary["errors"] == 0
        assert summary["mean_latency"] > 0

    def test_events_are_time_ordered_per_client(self):
        recorder, _report = self.run_recorded()
        for events in recorder.per_client().values():
            times = [event.time for event in events]
            assert times == sorted(times)

    def test_save_and_load_roundtrip(self, tmp_path):
        recorder, _report = self.run_recorded(files=50)
        path = recorder.save(tmp_path / "run.jsonl")
        loaded = TraceRecorder.load(path)
        assert loaded.events == recorder.events

    def test_replay_against_another_balancer(self):
        """The paper's methodology: same ops, different strategy."""
        recorder, original = self.run_recorded(files=300)
        replay_workload = recorder.to_workload()

        from repro.core.policies import greedy_spill_policy
        replay = run_experiment(
            make_config(num_mds=2, seed=99),
            replay_workload,
            policy=greedy_spill_policy(),
        )
        assert replay.total_ops == original.total_ops

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().to_workload()

    def test_tap_uninstalls_after_run(self):
        from repro.clients.client import Client
        before = Client._learn
        self.run_recorded(files=20)
        assert Client._learn is before


class TestCheckpointWorkload:
    def test_op_structure(self):
        workload = CheckpointWorkload(num_clients=2, rounds=3,
                                      files_per_round=50)
        ops = list(workload.client_ops(0))
        kinds = [k for k, _p in ops]
        assert kinds.count(OpKind.CREATE) == 150
        assert OpKind.STAT in kinds  # verification of earlier rounds
        assert len(ops) == workload.total_ops() // 2

    def test_round_directories_shared_across_clients(self):
        workload = CheckpointWorkload(num_clients=3, rounds=2,
                                      files_per_round=10)
        dirs0 = {p.rsplit("/", 1)[0] for k, p in workload.client_ops(0)
                 if k is OpKind.CREATE}
        dirs1 = {p.rsplit("/", 1)[0] for k, p in workload.client_ops(1)
                 if k is OpKind.CREATE}
        assert dirs0 == dirs1  # everyone checkpoints into the same dirs

    def test_verification_reads_previous_round(self):
        workload = CheckpointWorkload(num_clients=1, rounds=2,
                                      files_per_round=20)
        ops = list(workload.client_ops(0))
        stats = [p for k, p in ops if k is OpKind.STAT]
        assert all("round0000" in p for p in stats)

    def test_runs_end_to_end(self):
        workload = CheckpointWorkload(num_clients=2, rounds=2,
                                      files_per_round=100)
        report = run_experiment(make_config(num_mds=2), workload)
        assert report.total_ops == workload.total_ops()

    def test_no_verify_mode(self):
        workload = CheckpointWorkload(num_clients=1, rounds=2,
                                      files_per_round=10, verify=False)
        kinds = {k for k, _p in workload.client_ops(0)}
        assert kinds == {OpKind.CREATE}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CheckpointWorkload(num_clients=0)
        with pytest.raises(ValueError):
            CheckpointWorkload(num_clients=1, rounds=0)


class TestHashPartition:
    def test_pins_every_top_level_dir(self):
        cluster = SimulatedCluster(make_config(num_mds=3))
        for name in ("a", "b", "c", "d", "e"):
            cluster.namespace.mkdirs(f"/{name}")
        pinned = cluster.hash_partition(depth=1)
        assert pinned == 5
        auths = {cluster.namespace.resolve_dir(f"/{n}").authority()
                 for n in "abcde"}
        assert len(auths) >= 2  # actually spread

    def test_deterministic(self):
        def auth_map():
            cluster = SimulatedCluster(make_config(num_mds=3))
            for name in ("a", "b", "c"):
                cluster.namespace.mkdirs(f"/{name}")
            cluster.hash_partition(depth=1)
            return {n: cluster.namespace.resolve_dir(f"/{n}").authority()
                    for n in "abc"}

        assert auth_map() == auth_map()

    def test_hashing_destroys_locality_for_one_client(self):
        """The paper's §2.1/§5 argument: hashing balances but a single
        client's traffic now crosses ranks."""
        config = make_config(num_mds=3, num_clients=1)
        workload = CreateWorkload(num_clients=1, files_per_client=100)

        local = SimulatedCluster(config)
        local_report = local.run_workload(workload)

        hashed = SimulatedCluster(make_config(num_mds=3, num_clients=1))
        # Pre-create the client dir so it can be hash-pinned.
        hashed.namespace.mkdirs("/work/client0")
        hashed.hash_partition(depth=2)
        hashed_report = hashed.run_workload(
            CreateWorkload(num_clients=1, files_per_client=100))
        served_ranks = {rank for rank, ops in
                        hashed_report.per_mds_ops().items() if ops > 0}
        # With hashing the single client may land anywhere; with subtree
        # locality it stays on rank 0.
        local_ranks = {rank for rank, ops in
                       local_report.per_mds_ops().items() if ops > 0}
        assert local_ranks == {0}
        assert served_ranks  # sanity
