"""Lifecycle equivalence and cache-correctness.

Three properties the lifecycle machinery must not break:

1. **Shadow passivity** -- a shadowed run's decisions and report are
   byte-identical to the unshadowed run's (minus the shadow log itself).
2. **Canary determinism** -- a canary-rollback scenario produces
   byte-identical records across serial, ``--jobs N`` and warm-start
   sweep execution.
3. **Fingerprint coverage** -- lifecycle configuration (guard, shadow,
   canary) is part of the cell fingerprint, so a guarded run and an
   unguarded run never alias in the result cache.
"""

import json
from dataclasses import replace

import pytest

from repro.cluster import SimulatedCluster
from repro.core.api import MantlePolicy
from repro.core.policies import STOCK_POLICIES, greedy_spill_policy
from repro.perf.cache import ResultCache
from repro.perf.fingerprint import spec_fingerprint
from repro.perf.sweep import RunSpec, run_sweep, run_sweep_cached
from repro.perf.warmstart import fork_supported
from repro.workloads import CreateWorkload
from tests.conftest import make_config


class TestShadowPassivity:
    def run_once(self, shadow):
        cluster = SimulatedCluster(make_config(num_mds=2),
                                   policy=greedy_spill_policy())
        if shadow:
            cluster.arm_shadow(STOCK_POLICIES["fill-and-spill"]())
        return cluster.run_workload(
            CreateWorkload(num_clients=2, files_per_client=8000,
                           shared_dir=True))

    def test_shadow_changes_nothing_it_observes(self):
        plain = self.run_once(shadow=False)
        shadowed = self.run_once(shadow=True)

        def decisions(report):
            return [(d.time, d.rank, d.went, d.targets, d.exports,
                     d.error, d.skipped) for d in report.decisions]

        assert shadowed.summary_line() == plain.summary_line()
        assert shadowed.makespan == plain.makespan
        assert decisions(shadowed) == decisions(plain)
        assert (shadowed.latency_summary().p99
                == plain.latency_summary().p99)
        # ... and the shadow genuinely observed the run.
        assert shadowed.shadow_log
        assert shadowed.shadow_summary["ticks"] == len(shadowed.shadow_log)
        assert plain.shadow_log == [] and plain.shadow_summary is None


def broken_factory():
    return MantlePolicy(name="always-broken",
                        when="go = MDSs[99]['load'] > 0")


@pytest.fixture
def broken_stock(monkeypatch):
    """A deliberately-broken stock policy for canary candidates.

    Sweep specs name policies; ``fork``-based workers (warm-start runners
    and the multiprocessing pool on Linux) inherit the patched registry.
    """
    monkeypatch.setitem(STOCK_POLICIES, "always-broken", broken_factory)


#: Two seeds of a canary-rollback scenario: the broken candidate lands on
#: the canary rank at the 2.006s heartbeat (at=2.0, heartbeat 2.0s),
#: errors on its first balancer tick, and the 4.006s evaluation rolls it
#: back -- well inside the workload's makespan.
CANARY_SPECS = [
    RunSpec(seed=seed, policy="greedy-spill", num_clients=2,
            files_per_client=20_000, dir_split_size=400,
            heartbeat_interval=2.0, guard=True,
            canary_policy="always-broken", canary_at=2.0,
            canary_window=1.9)
    for seed in (3, 4)
]


class TestCanaryRollbackEquivalence:
    def test_serial_jobs_and_warm_are_byte_identical(self, broken_stock):
        serial = run_sweep(list(CANARY_SPECS), jobs=1)
        # The scenario really exercised the rollback path and finished.
        for record in serial:
            assert record["canary"] == "rollback"
            assert record["policy_versions"] == 3  # inject/candidate/rollback
            assert record["total_ops"] == 2 * 20_000
        jobs = run_sweep(list(CANARY_SPECS), jobs=2)
        assert (json.dumps(jobs, sort_keys=True)
                == json.dumps(serial, sort_keys=True))
        if fork_supported():
            warm = run_sweep(list(CANARY_SPECS), jobs=2, warm=True)
            assert (json.dumps(warm, sort_keys=True)
                    == json.dumps(serial, sort_keys=True))


class TestSweepShadowRecord:
    def test_shadowed_cell_summary_matches_plain_cell(self):
        base = RunSpec(seed=5, policy="greedy-spill", num_clients=2,
                       files_per_client=10_000, dir_split_size=400,
                       heartbeat_interval=2.0)
        (plain,) = run_sweep([base])
        (shadowed,) = run_sweep(
            [replace(base, shadow_policy="fill-and-spill")])
        assert shadowed["summary"] == plain["summary"]
        assert shadowed["latency_p99"] == plain["latency_p99"]
        assert plain["shadow"] is None
        assert shadowed["shadow"]["ticks"] >= 1


class TestLifecycleFingerprints:
    BASE = RunSpec(seed=1, policy="greedy-spill")

    def test_every_lifecycle_knob_changes_the_fingerprint(self):
        base_fp = spec_fingerprint(self.BASE)
        variants = [
            replace(self.BASE, guard=True),
            replace(self.BASE, shadow_policy="fill-and-spill"),
            replace(self.BASE, canary_policy="fill-and-spill"),
            replace(self.BASE, canary_at=31.0),
            replace(self.BASE, canary_window=21.0),
        ]
        fingerprints = {spec_fingerprint(variant) for variant in variants}
        assert base_fp not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_guarded_cell_never_reuses_an_unguarded_record(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = RunSpec(seed=2, policy="greedy-spill", num_clients=2,
                       files_per_client=2000, dir_split_size=400)
        _, hits, misses = run_sweep_cached([spec], cache=cache)
        assert (hits, misses) == (0, 1)
        # Same cell again: a hit.
        _, hits, misses = run_sweep_cached([spec], cache=cache)
        assert (hits, misses) == (1, 0)
        # The guarded variant must miss (and re-simulate), not alias.
        guarded = replace(spec, guard=True)
        records, hits, misses = run_sweep_cached([guarded], cache=cache)
        assert (hits, misses) == (0, 1)
        assert records[0]["summary"]
