"""Fault injection end to end: crashes, takeover, partitions, determinism.

These are the chaos tests promised by the fault subsystem's contract:
after any scheduled mayhem the cluster must satisfy the structural
invariants (nothing frozen, single authority everywhere, no stuck
exports), and the same (seed, schedule) pair must replay identically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import SimulatedCluster, run_experiment
from repro.core.api import MantlePolicy
from repro.core.policies import greedy_spill_policy, original_policy
from repro.faults import (
    CrashMds,
    DegradeCpu,
    FaultSchedule,
    HeartbeatLoss,
    Partition,
    check_invariants,
)
from repro.workloads import CreateWorkload
from tests.conftest import make_config


def crash_schedule(**overrides):
    # Rank 0 is the initial authority for everything, so killing it
    # actually stalls the workload until the standby takes over.
    spec = dict(at=2.0, rank=0, takeover_by=1, takeover_after=1.0)
    spec.update(overrides)
    return FaultSchedule([CrashMds(**spec)])


def run_faulted(config, schedule, workload=None, policy=None):
    workload = workload or CreateWorkload(num_clients=2,
                                          files_per_client=4000)
    return run_experiment(config, workload, policy=policy,
                          fault_schedule=schedule)


class TestCrashAndTakeover:
    def test_crash_with_takeover_finishes_workload(self):
        config = make_config(num_mds=2, mds_beacon_grace=2.0)
        report = run_faulted(config, crash_schedule())
        assert report.total_ops == 2 * 4001
        kinds = [e.kind for e in report.fault_events]
        assert "crash" in kinds and "takeover" in kinds
        # After takeover every subtree is owned by the survivor.
        assert report.metrics.mds(0).crashes == 1

    def test_recovery_time_from_takeover(self):
        config = make_config(num_mds=2, mds_beacon_grace=2.0)
        report = run_faulted(config, crash_schedule())
        times = report.recovery_times()
        assert 0 in times
        assert times[0] > 0

    def test_throughput_dips_during_outage(self):
        config = make_config(num_mds=2, mds_beacon_grace=2.0)
        schedule = crash_schedule(at=1.0, takeover_after=2.0)
        report = run_faulted(
            config, schedule,
            workload=CreateWorkload(num_clients=2, files_per_client=30_000))
        before = report.throughput_between(0.0, 1.0)
        during = report.throughput_between(1.5, 2.5)
        assert during < before

    def test_crash_with_restart_recovers_same_rank(self):
        config = make_config(num_mds=2, mds_beacon_grace=2.0)
        schedule = FaultSchedule([CrashMds(at=1.0, rank=0,
                                           restart_after=3.0)])
        report = run_faulted(config, schedule)
        assert report.metrics.mds(0).restarts == 1
        assert report.recovery_times()[0] >= 3.0
        assert report.total_ops == 2 * 4001

    def test_invariants_hold_after_crash_under_balancer(self):
        config = make_config(num_mds=3, mds_beacon_grace=2.0)
        cluster = SimulatedCluster(
            config, policy=greedy_spill_policy(),
            fault_schedule=crash_schedule(rank=1, takeover_by=0))
        cluster.run_workload(
            CreateWorkload(num_clients=3, files_per_client=6000,
                           shared_dir=True))
        cluster.quiesce()
        assert check_invariants(cluster) == []

    def test_summary_line_mentions_faults(self):
        config = make_config(num_mds=2, mds_beacon_grace=2.0)
        report = run_faulted(config, crash_schedule())
        assert "faults=" in report.summary_line()


class TestHeartbeatFaults:
    def test_partition_causes_mutual_eviction_then_heal(self):
        config = make_config(num_mds=2, mds_beacon_grace=3.0)
        # First beats are exchanged at t=2.0; the partition starts after
        # that so each side has heard the other once, then goes deaf.
        schedule = FaultSchedule([
            Partition(at=3.0, duration=10.0, group_a=(0,), group_b=(1,))])
        cluster = SimulatedCluster(config, policy=original_policy(),
                                   fault_schedule=schedule)
        cluster.run_for(10.0)  # mid-partition, past the grace
        assert cluster.mdss[0].hb_table.is_down(1)
        assert cluster.mdss[1].hb_table.is_down(0)
        cluster.engine.run_until(cluster.engine.now + 10.0)  # healed
        assert not cluster.mdss[0].hb_table.is_down(1)
        assert not cluster.mdss[1].hb_table.is_down(0)
        kinds = [e.kind for e in cluster.metrics.fault_events]
        assert kinds.count("partition") == 1
        assert kinds.count("partition-heal") == 1

    def test_total_heartbeat_loss_trips_no_live_peers_skip(self):
        config = make_config(num_mds=2, mds_beacon_grace=3.0)
        schedule = FaultSchedule([
            HeartbeatLoss(at=3.0, duration=20.0)])
        cluster = SimulatedCluster(config, policy=original_policy(),
                                   fault_schedule=schedule)
        cluster.run_for(12.0)
        recent = [d for d in cluster.balancer.decisions if d.rank == 0][-1]
        assert recent.skipped == "no live peers"

    def test_lossy_link_with_delay_keeps_cluster_alive(self):
        config = make_config(num_mds=2, mds_beacon_grace=5.0)
        schedule = FaultSchedule([
            HeartbeatLoss(at=1.0, duration=8.0, drop_prob=0.5,
                          extra_delay=0.2)])
        cluster = SimulatedCluster(config, policy=original_policy(),
                                   fault_schedule=schedule)
        cluster.run_for(12.0)
        assert not cluster.mdss[0].hb_table.is_down(1)
        assert not cluster.mdss[1].hb_table.is_down(0)


class TestDegradedCpu:
    def test_degrade_slows_then_heals(self):
        config = make_config(num_mds=2)
        schedule = FaultSchedule([
            DegradeCpu(at=0.5, rank=0, factor=4.0, duration=2.0)])
        cluster = SimulatedCluster(config, fault_schedule=schedule)
        cluster.run_workload(CreateWorkload(num_clients=2,
                                            files_per_client=3000))
        assert cluster.mdss[0].cpu_factor == 1.0  # healed
        kinds = [e.kind for e in cluster.metrics.fault_events]
        assert "degrade-cpu" in kinds and "degrade-heal" in kinds

    def test_degraded_run_is_slower(self):
        config = make_config(num_mds=2)
        workload = CreateWorkload(num_clients=2, files_per_client=3000)
        clean = run_experiment(config, workload)
        schedule = FaultSchedule([DegradeCpu(at=0.0, rank=0, factor=5.0)])
        limping = run_faulted(config, schedule, workload=workload)
        assert limping.makespan > clean.makespan


class TestCircuitBreaker:
    def broken_policy(self):
        return MantlePolicy(name="broken",
                            when="go = MDSs[99]['load'] > 0")

    def test_fallback_after_consecutive_errors(self):
        config = make_config(num_mds=2, policy_error_threshold=3)
        cluster = SimulatedCluster(config, policy=self.broken_policy())
        cluster.run_workload(
            CreateWorkload(num_clients=2, files_per_client=8000,
                           shared_dir=True))
        assert cluster.balancer.tripped
        assert cluster.balancer.errors >= 3
        assert cluster.balancer.active_policy().name == "cephfs-original"
        # The fallback balancer keeps making (non-erroring) decisions.
        fallback = [d for d in cluster.balancer.decisions if d.fallback]
        assert fallback
        assert all(d.error is None for d in fallback)

    def test_report_flags_tripped_policy(self):
        config = make_config(num_mds=2, policy_error_threshold=2)
        report = run_experiment(
            config,
            CreateWorkload(num_clients=2, files_per_client=8000,
                           shared_dir=True),
            policy=self.broken_policy())
        assert report.policy_tripped
        assert "policy=fallback" in report.summary_line()

    def test_healthy_policy_never_trips(self):
        config = make_config(num_mds=2)
        cluster = SimulatedCluster(config, policy=greedy_spill_policy())
        cluster.run_workload(
            CreateWorkload(num_clients=2, files_per_client=6000,
                           shared_dir=True))
        assert not cluster.balancer.tripped
        assert cluster.balancer.consecutive_errors == 0


class TestDeterminism:
    SCHEDULE = [
        CrashMds(at=1.5, rank=1, takeover_by=0, takeover_after=1.0),
        HeartbeatLoss(at=0.5, duration=3.0, drop_prob=0.5),
    ]

    def run_once(self, seed):
        config = make_config(num_mds=2, seed=seed, mds_beacon_grace=2.0)
        return run_faulted(config, FaultSchedule(list(self.SCHEDULE)),
                           policy=greedy_spill_policy())

    def test_same_seed_same_schedule_identical_report(self):
        first, second = self.run_once(11), self.run_once(11)
        assert first.summary_line() == second.summary_line()
        assert first.fault_events == second.fault_events
        assert first.recovery_times() == second.recovery_times()

    def test_different_seed_differs(self):
        # Not strictly guaranteed, but with probabilistic drops two seeds
        # matching exactly would mean the faults RNG stream is ignored.
        first, second = self.run_once(11), self.run_once(12)
        assert first.summary_line() != second.summary_line()


class TestInvariantProperty:
    @settings(max_examples=5, deadline=None)
    @given(
        crash_at=st.floats(min_value=0.2, max_value=3.0),
        rank=st.integers(min_value=0, max_value=1),
        data=st.data(),
    )
    def test_invariants_after_random_crash(self, crash_at, rank, data):
        takeover = data.draw(st.sampled_from([None, 1 - rank]))
        spec = dict(at=crash_at, rank=rank)
        if takeover is not None:
            spec.update(takeover_by=takeover, takeover_after=0.5)
        else:
            spec.update(restart_after=1.0)
        config = make_config(num_mds=2, mds_beacon_grace=2.0)
        cluster = SimulatedCluster(
            config, policy=greedy_spill_policy(),
            fault_schedule=FaultSchedule([CrashMds(**spec)]))
        cluster.run_workload(
            CreateWorkload(num_clients=2, files_per_client=4000,
                           shared_dir=True))
        cluster.quiesce()
        assert check_invariants(cluster) == []
