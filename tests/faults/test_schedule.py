"""FaultSchedule: construction, (de)serialisation, validation."""

import json

import pytest

from repro.faults import (
    AbortMigrations,
    CrashMds,
    DegradeCpu,
    FaultSchedule,
    HeartbeatLoss,
    Partition,
)


class TestConstruction:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule([CrashMds(at=5.0, rank=0),
                                  DegradeCpu(at=1.0, rank=1, factor=2.0)])
        assert [e.at for e in schedule] == [1.0, 5.0]

    def test_add_keeps_order(self):
        schedule = FaultSchedule([CrashMds(at=5.0, rank=0)])
        schedule.add(AbortMigrations(at=2.0))
        assert [e.at for e in schedule] == [2.0, 5.0]
        assert len(schedule) == 2


class TestSerialisation:
    def roundtrip(self):
        return FaultSchedule([
            CrashMds(at=3.0, rank=1, restart_after=10.0),
            HeartbeatLoss(at=1.0, duration=5.0, src=0, drop_prob=0.5),
            Partition(at=2.0, duration=4.0, group_a=(0,), group_b=(1, 2)),
            DegradeCpu(at=4.0, rank=2, factor=3.0, duration=2.0),
            AbortMigrations(at=5.0),
        ])

    def test_dict_round_trip(self):
        schedule = self.roundtrip()
        again = FaultSchedule.from_dicts(schedule.to_dicts())
        assert again.events == schedule.events

    def test_to_dicts_omits_none_fields(self):
        entry = FaultSchedule([CrashMds(at=3.0, rank=1)]).to_dicts()[0]
        assert entry == {"kind": "crash", "at": 3.0, "rank": 1}

    def test_from_file(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(self.roundtrip().to_dicts()))
        assert FaultSchedule.from_file(str(path)).events == \
            self.roundtrip().events

    def test_from_file_accepts_wrapper_object(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps({"faults": [
            {"kind": "crash", "at": 1.0, "rank": 0}]}))
        schedule = FaultSchedule.from_file(str(path))
        assert schedule.events == [CrashMds(at=1.0, rank=0)]

    def test_from_file_rejects_scalar(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text("42")
        with pytest.raises(ValueError, match="expected a JSON list"):
            FaultSchedule.from_file(str(path))

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown kind 'meteor'"):
            FaultSchedule.from_dicts([{"kind": "meteor", "at": 1.0}])

    def test_bad_field_names_error_carries_index(self):
        with pytest.raises(ValueError, match="fault #1"):
            FaultSchedule.from_dicts([
                {"kind": "crash", "at": 1.0, "rank": 0},
                {"kind": "crash", "at": 2.0, "level": 9},
            ])


class TestValidation:
    def check(self, event, message, num_mds=3):
        with pytest.raises(ValueError, match=message):
            FaultSchedule([event]).validate(num_mds)

    def test_rank_out_of_range(self):
        self.check(CrashMds(at=1.0, rank=3), "out of range")

    def test_negative_time(self):
        self.check(CrashMds(at=-1.0, rank=0), "negative time")

    def test_self_takeover(self):
        self.check(CrashMds(at=1.0, rank=0, takeover_by=0),
                   "take over from itself")

    def test_drop_prob_bounds(self):
        self.check(HeartbeatLoss(at=1.0, duration=1.0, drop_prob=1.5),
                   "not a probability")

    def test_nonpositive_duration(self):
        self.check(HeartbeatLoss(at=1.0, duration=0.0),
                   "duration must be positive")

    def test_empty_partition_group(self):
        self.check(Partition(at=1.0, duration=1.0, group_a=(),
                             group_b=(1,)), "empty partition group")

    def test_overlapping_partition_groups(self):
        self.check(Partition(at=1.0, duration=1.0, group_a=(0, 1),
                             group_b=(1, 2)), "groups overlap")

    def test_degrade_factor_positive(self):
        self.check(DegradeCpu(at=1.0, rank=0, factor=0.0),
                   "factor must be positive")

    def test_abort_migrations_wildcard_rank_ok(self):
        FaultSchedule([AbortMigrations(at=1.0)]).validate(2)

    def test_valid_schedule_passes(self):
        FaultSchedule([
            CrashMds(at=1.0, rank=0, takeover_by=1),
            Partition(at=2.0, duration=3.0, group_a=(0,), group_b=(1, 2)),
        ]).validate(3)
