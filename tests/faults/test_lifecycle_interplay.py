"""Faults x policy lifecycle: crashes interacting with the breaker,
fallback decisions and the stability guard -- all visible in one report."""

from repro.cluster import SimulatedCluster
from repro.core.api import MantlePolicy
from repro.core.policies import greedy_spill_policy
from repro.faults import CrashMds, FaultSchedule, check_invariants
from repro.workloads import CreateWorkload
from tests.conftest import make_config


def broken_policy():
    return MantlePolicy(name="broken", when="go = MDSs[99]['load'] > 0")


class TestFaultsAndLifecycle:
    def test_crash_recovery_with_breaker_walkthrough(self):
        config = make_config(num_mds=2, mds_beacon_grace=2.0,
                             policy_error_threshold=2,
                             policy_probation_ticks=2,
                             stability_guard=True)
        schedule = FaultSchedule(
            [CrashMds(at=3.0, rank=1, restart_after=2.0)])
        cluster = SimulatedCluster(config, policy=broken_policy(),
                                   fault_schedule=schedule)
        cluster.run_workload(
            CreateWorkload(num_clients=2, files_per_client=8000,
                           shared_dir=True))
        # Keep heartbeats flowing after the workload so the breaker can
        # finish its open -> probation -> permanent walk post-recovery.
        cluster.run_for(15.0)
        cluster.quiesce()
        report = cluster._report()

        # The workload completed despite crash + broken policy.
        assert report.total_ops == 2 * 8000
        fault_kinds = [e.kind for e in report.fault_events]
        assert "crash" in fault_kinds
        assert report.metrics.mds(1).restarts == 1

        # The breaker trace is in the same report as the fault trace.
        kinds = [e.kind for e in report.lifecycle_events]
        assert "breaker-open" in kinds
        assert "breaker-probation" in kinds
        assert "breaker-permanent" in kinds
        assert report.policy_tripped

        # Fallback ticks are flagged and error-free; the guard is wired
        # into the live balancer.
        fallback = [d for d in report.decisions if d.fallback]
        assert fallback
        assert all(d.error is None for d in fallback)
        assert cluster.balancer.guard is cluster.guard
        assert check_invariants(cluster) == []

    def test_healthy_policy_with_faults_stays_quiet(self):
        config = make_config(num_mds=2, mds_beacon_grace=2.0,
                             stability_guard=True)
        schedule = FaultSchedule(
            [CrashMds(at=2.0, rank=1, restart_after=1.5)])
        cluster = SimulatedCluster(config, policy=greedy_spill_policy(),
                                   fault_schedule=schedule)
        cluster.run_workload(
            CreateWorkload(num_clients=2, files_per_client=6000,
                           shared_dir=True))
        cluster.quiesce()
        report = cluster._report()
        kinds = [e.kind for e in report.lifecycle_events]
        # No breaker activity: a crash is not a policy failure.
        assert not any(k.startswith("breaker-") for k in kinds)
        assert not report.policy_tripped
