"""CRUSH-like placement: determinism, replica distinctness, balance."""

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.rados.crush import CrushMap


class TestPlacement:
    def test_deterministic(self):
        crush = CrushMap(num_osds=18, replicas=3)
        assert crush.placement("obj1") == crush.placement("obj1")

    def test_replicas_distinct(self):
        crush = CrushMap(num_osds=18, replicas=3)
        for i in range(100):
            placement = crush.placement(f"obj{i}")
            assert len(placement) == 3
            assert len(set(placement)) == 3

    def test_replicas_capped_by_osd_count(self):
        crush = CrushMap(num_osds=2, replicas=3)
        assert len(crush.placement("x")) == 2

    def test_primary_is_first(self):
        crush = CrushMap(num_osds=10, replicas=2)
        placement = crush.placement("obj")
        assert all(0 <= osd < 10 for osd in placement)

    def test_roughly_uniform_primary_distribution(self):
        crush = CrushMap(num_osds=6, replicas=1)
        counts = Counter(crush.placement(f"o{i}")[0] for i in range(6000))
        for osd in range(6):
            assert counts[osd] == pytest.approx(1000, rel=0.25)

    def test_stability_under_growth(self):
        """Rendezvous hashing: adding OSDs remaps only a fraction."""
        small = CrushMap(num_osds=10, replicas=1)
        large = CrushMap(num_osds=11, replicas=1)
        moved = sum(
            small.placement(f"o{i}")[0] != large.placement(f"o{i}")[0]
            for i in range(2000)
        )
        # Ideal remap fraction is 1/11 ~ 9%; allow generous slack.
        assert moved / 2000 < 0.25

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CrushMap(0)
        with pytest.raises(ValueError):
            CrushMap(3, replicas=0)

    @given(st.text(min_size=1, max_size=30),
           st.integers(min_value=1, max_value=32))
    def test_placement_in_range_property(self, obj, num_osds):
        crush = CrushMap(num_osds=num_osds, replicas=3)
        placement = crush.placement(obj)
        assert all(0 <= osd < num_osds for osd in placement)
        assert len(set(placement)) == len(placement)
