"""RADOS cluster: replicated writes, reads, journals, OSD accounting."""

import pytest

from repro.rados.cluster import RadosCluster
from repro.rados.journal import MdsJournal
from repro.rados.osd import Osd
from repro.sim.engine import SimEngine
from repro.sim.network import Network
from repro.sim.rng import RngStreams, ServiceTime


def make_rados(num_osds=6, replicas=3):
    engine = SimEngine()
    rngs = RngStreams(seed=0)
    network = Network(engine, rngs.stream("net"), base_latency=0.0001,
                      jitter_cv=0.0)
    rados = RadosCluster(engine, network, rngs, num_osds=num_osds,
                         replicas=replicas)
    return engine, rados


class TestWrites:
    def test_write_completes(self):
        engine, rados = make_rados()
        completion = rados.write("obj1", 4096)
        engine.run_until_complete(completion)
        assert rados.exists("obj1")

    def test_write_hits_all_replicas(self):
        engine, rados = make_rados(replicas=3)
        engine.run_until_complete(rados.write("obj1", 4096))
        assert rados.total_writes() == 3

    def test_write_takes_time(self):
        engine, rados = make_rados()
        engine.run_until_complete(rados.write("obj1", 4096))
        assert engine.now > 0

    def test_many_writes_spread_over_osds(self):
        engine, rados = make_rados(num_osds=6, replicas=1)
        for i in range(120):
            rados.write(f"obj{i}", 4096)
        engine.run()
        busy_osds = sum(1 for osd in rados.osds if osd.writes > 0)
        assert busy_osds >= 5


class TestReads:
    def test_read_returns_size(self):
        engine, rados = make_rados()
        engine.run_until_complete(rados.write("obj1", 8192))
        size = engine.run_until_complete(rados.read("obj1"))
        assert size == 8192

    def test_read_unknown_object_uses_default_size(self):
        engine, rados = make_rados()
        size = engine.run_until_complete(rados.read("ghost"))
        assert size == 4096

    def test_reads_counted(self):
        engine, rados = make_rados()
        engine.run_until_complete(rados.read("x", 4096))
        assert rados.total_reads() == 1


class TestOsd:
    def test_journal_ack_before_disk_flush(self):
        """Writes ack from the (fast) journal; the disk flush is async."""
        engine = SimEngine()
        rngs = RngStreams(seed=0)
        osd = Osd(engine, 0, rngs.stream("osd"),
                  journal_service=ServiceTime(0.0001, cv=0.0),
                  disk_service=ServiceTime(0.01, cv=0.0))
        completion = osd.write("o", 4096)
        engine.run_until_complete(completion)
        assert engine.now == pytest.approx(0.0001)
        engine.run()
        assert engine.now == pytest.approx(0.01)

    def test_stats(self):
        engine = SimEngine()
        rngs = RngStreams(seed=0)
        osd = Osd(engine, 3, rngs.stream("osd"),
                  journal_service=ServiceTime(0.0001),
                  disk_service=ServiceTime(0.001))
        osd.write("a", 100)
        osd.read("a", 100)
        engine.run()
        stats = osd.stats()
        assert stats["osd"] == 3
        assert stats["writes"] == 1
        assert stats["reads"] == 1


class TestJournal:
    def test_log_buffers_until_segment_full(self):
        engine, rados = make_rados()
        journal = MdsJournal(engine, rados, rank=0,
                             segment_bytes=2048, entry_bytes=512)
        assert journal.log("create") is None
        assert journal.log("create") is None
        assert journal.log("create") is None
        completion = journal.log("create")  # 4 * 512 = 2048 -> flush
        assert completion is not None
        engine.run_until_complete(completion)
        assert journal.segments_flushed == 1

    def test_log_sync_always_flushes(self):
        engine, rados = make_rados()
        journal = MdsJournal(engine, rados, rank=1)
        completion = journal.log_sync("EExport", size=100)
        engine.run_until_complete(completion)
        assert journal.segments_flushed == 1
        assert journal.entries_logged == 1

    def test_journal_objects_per_rank(self):
        engine, rados = make_rados()
        j0 = MdsJournal(engine, rados, rank=0)
        j1 = MdsJournal(engine, rados, rank=1)
        engine.run_until_complete(j0.flush())
        engine.run_until_complete(j1.flush())
        assert any("mds0.journal" in name for name in rados.objects)
        assert any("mds1.journal" in name for name in rados.objects)
