"""Smoke-run the example scripts (opt-in: they take minutes).

Enable with REPRO_RUN_EXAMPLES=1; the default suite skips them to stay
fast.  Each example must run to completion with exit code 0.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_EXAMPLES"),
    reason="set REPRO_RUN_EXAMPLES=1 to smoke-run the example scripts",
)


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "custom_balancer.py",
    "compile_locality.py",
    "flash_crowd.py",
    "record_replay.py",
    "mds_failover.py",
    "safe_rollout.py",
])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=900,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
