"""Shared fixtures: small, fast cluster configurations for tests."""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig


@pytest.fixture
def small_config() -> ClusterConfig:
    """A cluster config scaled for unit/integration tests (fast runs)."""
    return ClusterConfig(
        num_mds=2,
        num_clients=2,
        num_osds=6,
        seed=42,
        dir_split_size=400,
        cache_capacity=50_000,
        heartbeat_interval=2.0,
        heartbeat_pack_time=0.010,
        rebalance_delay=0.08,
        decay_half_life=1.0,
    )


def make_config(**overrides) -> ClusterConfig:
    """Helper for tests that need variations of the small config."""
    base = dict(
        num_mds=2,
        num_clients=2,
        num_osds=6,
        seed=42,
        dir_split_size=400,
        cache_capacity=50_000,
        heartbeat_interval=2.0,
        heartbeat_pack_time=0.010,
        rebalance_delay=0.08,
        decay_half_life=1.0,
    )
    base.update(overrides)
    return ClusterConfig(**base)
