"""Metrics: timelines, latencies, stats helpers, heat sampling."""

import numpy as np
import pytest

from repro.metrics.collectors import (
    ClusterMetrics,
    LatencyRecorder,
    MdsMetrics,
    Timeline,
)
from repro.metrics.heatmap import HeatSampler
from repro.metrics.stats import (
    Summary,
    coefficient_of_variation,
    speedup,
    summarize,
)
from repro.namespace.tree import Namespace
from repro.sim.engine import SimEngine


class TestTimeline:
    def test_bucketing(self):
        timeline = Timeline(bucket=1.0)
        timeline.record(0, 0.5)
        timeline.record(0, 0.9)
        timeline.record(0, 1.5)
        series = timeline.series(0)
        assert series[0] == 2.0
        assert series[1] == 1.0

    def test_rate_normalised_by_bucket(self):
        timeline = Timeline(bucket=0.5)
        timeline.record(0, 0.1)
        assert timeline.series(0)[0] == 2.0  # 1 op / 0.5 s

    def test_per_rank_series(self):
        timeline = Timeline()
        timeline.record(0, 0.1)
        timeline.record(1, 0.2)
        timeline.record(1, 0.3)
        assert timeline.ranks() == [0, 1]
        assert timeline.series(1)[0] == 2.0

    def test_total_series_sums_ranks(self):
        timeline = Timeline()
        timeline.record(0, 0.1)
        timeline.record(1, 0.1)
        assert timeline.total_series()[0] == 2.0

    def test_total_ops(self):
        timeline = Timeline()
        for t in (0.1, 1.1, 2.2):
            timeline.record(0, t)
        assert timeline.total_ops() == 3

    def test_until_extends_series(self):
        timeline = Timeline()
        timeline.record(0, 1.0)
        assert len(timeline.series(0, until=10.0)) == 11

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            Timeline(bucket=0)


class TestLatencyRecorder:
    def test_per_client_and_aggregate(self):
        recorder = LatencyRecorder()
        recorder.record(0, 0.001)
        recorder.record(0, 0.003)
        recorder.record(1, 0.002)
        assert len(recorder.client_latencies(0)) == 2
        assert recorder.mean() == pytest.approx(0.002)

    def test_percentile(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(0, value / 1000)
        assert recorder.percentile(50) == pytest.approx(0.0505, rel=0.01)

    def test_empty(self):
        recorder = LatencyRecorder()
        assert recorder.mean() == 0.0
        assert recorder.std() == 0.0
        assert recorder.all_latencies().size == 0


class TestClusterMetrics:
    def test_mds_accessor_creates(self):
        metrics = ClusterMetrics()
        metrics.mds(2).ops_served += 5
        assert metrics.total_ops == 5
        assert metrics.mds(2) is metrics.per_mds[2]

    def test_aggregates(self):
        metrics = ClusterMetrics()
        metrics.mds(0).forwards = 3
        metrics.mds(1).forwards = 4
        metrics.mds(0).traversal_hits = 10
        metrics.mds(1).migrations = 2
        metrics.mds(0).session_flushes = 7
        assert metrics.total_forwards == 7
        assert metrics.total_hits == 10
        assert metrics.total_migrations == 2
        assert metrics.total_session_flushes == 7

    def test_makespan(self):
        metrics = ClusterMetrics()
        metrics.client_finish_times[0] = 5.0
        metrics.client_finish_times[1] = 9.0
        assert metrics.makespan() == 9.0
        assert ClusterMetrics().makespan() == 0.0

    def test_request_rate_window(self):
        m = MdsMetrics(rank=0)
        m.reqs_in_window = 500
        assert m.take_request_rate(10.0) == 50.0
        assert m.reqs_in_window == 0


class TestStats:
    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_summarize_empty(self):
        assert summarize([]) == Summary(0, 0, 0, 0, 0, 0, 0, 0)

    def test_speedup_sign_convention(self):
        assert speedup(baseline=10.0, measured=9.0) == pytest.approx(1 / 9)
        assert speedup(baseline=10.0, measured=12.5) == pytest.approx(-0.2)

    def test_speedup_invalid(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_cv(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0
        assert coefficient_of_variation([1]) == 0.0
        assert coefficient_of_variation([1, 3]) > 0


class TestHeatSampler:
    def make_sampled_namespace(self):
        engine = SimEngine()
        namespace = Namespace(half_life=5.0)
        hot = namespace.mkdirs("/hot")
        namespace.mkdirs("/cold")
        sampler = HeatSampler(engine, namespace, interval=1.0)

        def hits():
            namespace.record_hit(hot, None, "IWR", engine.now)

        engine.every(0.1, hits)
        engine.run_until(3.5)
        sampler.stop()
        return sampler

    def test_samples_collected(self):
        sampler = self.make_sampled_namespace()
        assert len(sampler.samples) == 3
        assert sampler.times == [1.0, 2.0, 3.0]

    def test_matrix_shape(self):
        sampler = self.make_sampled_namespace()
        times, dirs, heat = sampler.matrix()
        assert heat.shape == (3, len(dirs))
        assert "/hot" in dirs

    def test_hot_directory_ranks_first(self):
        sampler = self.make_sampled_namespace()
        hottest = sampler.hottest(-1, top=2)
        names = [name for name, _v in hottest]
        assert names[0] in ("/hot", "/")  # root aggregates children

    def test_ascii_rendering(self):
        sampler = self.make_sampled_namespace()
        art = sampler.render_ascii()
        assert "/hot" in art
        assert "#" in art
