"""Text/CSV rendering of results."""

import csv
import io

from repro.cluster import run_experiment
from repro.metrics.render import (
    render_table,
    render_timelines,
    report_row,
    reports_to_csv,
    sparkline,
    timeline_to_csv,
)
from repro.workloads import CreateWorkload
from tests.conftest import make_config


def small_report():
    return run_experiment(
        make_config(num_mds=2, num_clients=2),
        CreateWorkload(num_clients=2, files_per_client=300),
    )


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_scaling(self):
        line = sparkline([0, 5, 10])
        assert line[0] == " "
        assert line[-1] == "@"

    def test_width_compression(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_fixed_peak(self):
        half = sparkline([5], peak=10.0)
        assert half not in (" ", "@")

    def test_all_zero(self):
        assert sparkline([0, 0, 0]) == "   "


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "value"],
                            [["a", 1], ["longer", 123456]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # all same width
        assert "123456" in lines[-1]


class TestReportRendering:
    def test_render_timelines(self):
        report = small_report()
        text = render_timelines(report)
        assert "mds0 |" in text
        assert "mds1 |" in text
        assert "ops" in text

    def test_report_row_fields(self):
        row = report_row(small_report())
        assert row["num_mds"] == 2
        assert row["total_ops"] == 602
        assert row["makespan_s"] > 0
        assert "latency_p99_ms" in row

    def test_reports_to_csv(self):
        reports = [small_report()]
        text = reports_to_csv(reports)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 1
        assert parsed[0]["total_ops"] == "602"
        assert reports_to_csv([]) == ""

    def test_timeline_to_csv(self):
        text = timeline_to_csv(small_report())
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0] == ["second", "mds0", "mds1"]
        assert len(parsed) >= 2
        # Total ops in the CSV match the run (rate * 1s buckets).
        total = sum(float(v) for row in parsed[1:] for v in row[1:])
        assert round(total) == 602
