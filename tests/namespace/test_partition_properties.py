"""Property-based invariants of the namespace partitioning machinery."""

from hypothesis import given, settings, strategies as st

from repro.namespace.directory import Directory
from repro.namespace.dirfrag import name_hash
from repro.namespace.inode import Inode
from repro.namespace.tree import Namespace

names = st.text(alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
                min_size=1, max_size=10)


class TestFragCoverageProperties:
    @settings(max_examples=40, deadline=None)
    @given(entries=st.lists(names, min_size=1, max_size=60, unique=True),
           bits=st.integers(min_value=1, max_value=4))
    def test_fragmentation_preserves_all_entries(self, entries, bits):
        root = Directory(Inode(name="", is_dir=True), parent=None,
                         split_size=10**9)
        root.set_auth(0)
        for name in entries:
            root.link(Inode(name=name, is_dir=False))
        root.fragment(extra_bits=bits)
        assert root.entry_count() == len(entries)
        for name in entries:
            assert root.lookup(name) is not None

    @settings(max_examples=40, deadline=None)
    @given(entries=st.lists(names, min_size=1, max_size=60, unique=True),
           bits=st.integers(min_value=1, max_value=3),
           more_bits=st.integers(min_value=1, max_value=2))
    def test_nested_fragmentation_still_covers(self, entries, bits,
                                               more_bits):
        root = Directory(Inode(name="", is_dir=True), parent=None,
                         split_size=10**9)
        root.set_auth(0)
        for name in entries:
            root.link(Inode(name=name, is_dir=False))
        root.fragment(extra_bits=bits)
        # Split the biggest child frag again (CephFS splits frags, not
        # whole directories, after the first fragmentation).
        biggest = max(root.frags.values(), key=len)
        root.fragment(frag=biggest, extra_bits=more_bits)
        assert root.entry_count() == len(entries)
        # Every name maps to exactly one frag and lookup agrees.
        for name in entries:
            hashed = name_hash(name)
            owners = [f for f in root.frags.values()
                      if f.frag_id.contains(hashed)]
            assert len(owners) == 1
            assert root.lookup(name) is not None

    @settings(max_examples=30, deadline=None)
    @given(entries=st.lists(names, min_size=1, max_size=40, unique=True),
           auths=st.lists(st.integers(0, 3), min_size=8, max_size=8))
    def test_every_path_has_exactly_one_authority(self, entries, auths):
        namespace = Namespace(split_size=10**9)
        d = namespace.mkdirs("/d")
        for name in entries:
            namespace.create(f"/d/{name}")
        d.fragment(extra_bits=3)
        for frag, auth in zip(d.frags.values(), auths):
            frag.set_auth(auth)
        for name in entries:
            rank = namespace.authority_for_path(f"/d/{name}")
            assert rank in set(auths)
            # And it is the authority of the containing frag.
            frag = d.frag_for_name(name)
            assert frag.authority() == rank


class TestLoadAccountingProperties:
    @settings(max_examples=30, deadline=None)
    @given(hits=st.lists(st.sampled_from(["IRD", "IWR", "READDIR"]),
                         min_size=1, max_size=50))
    def test_root_aggregates_all_descendant_hits(self, hits):
        namespace = Namespace(half_life=10**6)  # negligible decay
        a = namespace.mkdirs("/a")
        b = namespace.mkdirs("/a/b")
        for index, kind in enumerate(hits):
            target = a if index % 2 == 0 else b
            namespace.record_hit(target, None, kind, now=0.0)
        total_at_root = sum(
            namespace.root.counters.get(kind, 0.0)
            for kind in ("IRD", "IWR", "READDIR")
        )
        assert round(total_at_root) == len(hits)

    @settings(max_examples=30, deadline=None)
    @given(per_rank=st.lists(st.integers(0, 20), min_size=2, max_size=4))
    def test_metadata_load_partitions_by_rank(self, per_rank):
        """Sum over ranks of metadata_load == total load recorded."""
        namespace = Namespace(half_life=10**6, split_size=10**9)
        for rank, count in enumerate(per_rank):
            d = namespace.mkdirs(f"/r{rank}")
            d.set_auth(rank)
            for _ in range(count):
                namespace.record_hit(d, None, "IWR", now=0.0)
        loads = [
            namespace.metadata_load(rank, lambda s: s["IWR"], now=0.0)
            for rank in range(len(per_rank))
        ]
        assert round(sum(loads)) == sum(per_rank)
        for rank, count in enumerate(per_rank):
            assert round(loads[rank]) == count
