"""Directories: entries, fragmentation, authority inheritance."""

import pytest

from repro.namespace.directory import Directory
from repro.namespace.inode import Inode


def make_root(split_size=10, split_bits=3):
    root = Directory(Inode(name="", is_dir=True), parent=None,
                     split_size=split_size, split_bits=split_bits)
    root.set_auth(0)
    return root


def add_child_dir(parent, name):
    inode = Inode(name=name, is_dir=True)
    child = Directory(inode, parent, split_size=parent.split_size,
                      split_bits=parent.split_bits)
    parent.link(inode)
    parent.subdirs[name] = child
    return child


class TestEntries:
    def test_link_and_lookup(self):
        root = make_root()
        inode = Inode(name="f", is_dir=False)
        root.link(inode)
        assert root.lookup("f") is inode
        assert root.entry_count() == 1

    def test_duplicate_link_rejected(self):
        root = make_root()
        root.link(Inode(name="f", is_dir=False))
        with pytest.raises(FileExistsError):
            root.link(Inode(name="f", is_dir=False))

    def test_unlink(self):
        root = make_root()
        root.link(Inode(name="f", is_dir=False))
        root.unlink("f")
        assert root.lookup("f") is None

    def test_unlink_missing_raises(self):
        with pytest.raises(FileNotFoundError):
            make_root().unlink("ghost")

    def test_readdir_spans_frags(self):
        root = make_root(split_size=1000)
        for i in range(50):
            root.link(Inode(name=f"f{i}", is_dir=False))
        root.fragment(extra_bits=3)
        names = {inode.name for inode in root.readdir()}
        assert names == {f"f{i}" for i in range(50)}


class TestFragmentation:
    def test_needs_fragmentation_threshold(self):
        root = make_root(split_size=5)
        for i in range(4):
            root.link(Inode(name=f"f{i}", is_dir=False))
        assert not root.needs_fragmentation()
        root.link(Inode(name="f4", is_dir=False))
        assert root.needs_fragmentation()

    def test_fragment_splits_into_2_pow_bits(self):
        root = make_root(split_bits=3)
        for i in range(40):
            root.link(Inode(name=f"f{i}", is_dir=False))
        root.fragment()
        assert len(root.frags) == 8

    def test_fragment_preserves_entries(self):
        root = make_root()
        for i in range(64):
            root.link(Inode(name=f"f{i}", is_dir=False))
        root.fragment()
        assert root.entry_count() == 64
        for i in range(64):
            assert root.lookup(f"f{i}") is not None

    def test_fragment_redistributes_popularity(self):
        root = make_root()
        for i in range(32):
            root.link(Inode(name=f"f{i}", is_dir=False))
        frag = next(iter(root.frags.values()))
        frag.record("IWR", 10.0, 100.0)
        root.fragment(now=10.0)
        total = sum(f.load_snapshot(10.0)["IWR"] for f in root.frags.values())
        assert total == pytest.approx(100.0, rel=0.01)

    def test_fragment_preserves_decay_clock(self):
        """Regression: splitting at time t must not rewind counters to t=0
        (that made frag loads decay 2^(t/hl)-fold on first read)."""
        root = make_root()
        for i in range(16):
            root.link(Inode(name=f"f{i}", is_dir=False))
        frag = next(iter(root.frags.values()))
        frag.record("IWR", 100.0, 64.0)
        root.fragment(now=100.0)
        total = sum(f.load_snapshot(100.0)["IWR"]
                    for f in root.frags.values())
        assert total == pytest.approx(64.0, rel=0.01)

    def test_fragment_inherits_frag_auth(self):
        root = make_root()
        for i in range(16):
            root.link(Inode(name=f"f{i}", is_dir=False))
        frag = next(iter(root.frags.values()))
        frag.set_auth(3)
        root.fragment()
        assert all(f.explicit_auth == 3 for f in root.frags.values())

    def test_foreign_frag_rejected(self):
        root = make_root()
        other = make_root()
        foreign = next(iter(other.frags.values()))
        with pytest.raises(ValueError):
            root.fragment(frag=foreign)


class TestAuthority:
    def test_children_inherit(self):
        root = make_root()
        child = add_child_dir(root, "a")
        grandchild = add_child_dir(child, "b")
        assert grandchild.authority() == 0

    def test_explicit_auth_creates_boundary(self):
        root = make_root()
        child = add_child_dir(root, "a")
        child.set_auth(2)
        grandchild = add_child_dir(child, "b")
        assert grandchild.authority() == 2
        assert child.is_subtree_root()

    def test_clear_descendant_auth(self):
        root = make_root()
        child = add_child_dir(root, "a")
        grandchild = add_child_dir(child, "b")
        grandchild.set_auth(3)
        child.set_auth(1)
        child.clear_descendant_auth()
        assert grandchild.authority() == 1

    def test_root_requires_auth(self):
        root = make_root()
        with pytest.raises(ValueError):
            root.set_auth(None)


class TestPaths:
    def test_path_construction(self):
        root = make_root()
        a = add_child_dir(root, "a")
        b = add_child_dir(a, "b")
        assert root.path() == "/"
        assert a.path() == "/a"
        assert b.path() == "/a/b"

    def test_depth(self):
        root = make_root()
        a = add_child_dir(root, "a")
        b = add_child_dir(a, "b")
        assert root.depth() == 0
        assert b.depth() == 2

    def test_walk_covers_tree(self):
        root = make_root()
        a = add_child_dir(root, "a")
        add_child_dir(a, "b")
        add_child_dir(root, "c")
        assert {d.path() for d in root.walk()} == {"/", "/a", "/a/b", "/c"}

    def test_ancestors(self):
        root = make_root()
        a = add_child_dir(root, "a")
        b = add_child_dir(a, "b")
        assert [d.path() for d in b.ancestors()] == ["/a", "/"]
