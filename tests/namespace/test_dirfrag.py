"""Dirfrags: frag identifiers, hashing coverage, entry management."""

import pytest
from hypothesis import given, strategies as st

from repro.namespace.directory import Directory
from repro.namespace.dirfrag import DirFrag, FragId, name_hash
from repro.namespace.inode import Inode


def make_dir(split_size=100):
    inode = Inode(name="d", is_dir=True)
    directory = Directory(inode, parent=None, split_size=split_size)
    directory.set_auth(0)
    return directory


class TestFragId:
    def test_root_frag_contains_everything(self):
        root = FragId(0, 0)
        for name in ("a", "zz", "file123"):
            assert root.contains(name_hash(name))

    def test_split_produces_disjoint_cover(self):
        root = FragId(0, 0)
        children = root.split(3)
        assert len(children) == 8
        for name in (f"f{i}" for i in range(200)):
            hashed = name_hash(name)
            owners = [c for c in children if c.contains(hashed)]
            assert len(owners) == 1

    def test_nested_split(self):
        child = FragId(3, 5)
        grandchildren = child.split(1)
        assert len(grandchildren) == 2
        for grandchild in grandchildren:
            assert child.is_ancestor_of(grandchild)

    def test_is_ancestor_of_self(self):
        frag = FragId(2, 1)
        assert frag.is_ancestor_of(frag)

    def test_not_ancestor_of_sibling(self):
        a, b = FragId(1, 0), FragId(1, 1)
        assert not a.is_ancestor_of(b)

    def test_equality_and_hash(self):
        assert FragId(2, 3) == FragId(2, 3)
        assert hash(FragId(2, 3)) == hash(FragId(2, 3))
        assert FragId(2, 3) != FragId(3, 3)

    def test_value_must_fit_bits(self):
        with pytest.raises(ValueError):
            FragId(2, 4)

    def test_split_requires_bits(self):
        with pytest.raises(ValueError):
            FragId(0, 0).split(0)

    @given(bits=st.integers(min_value=1, max_value=6),
           names=st.lists(st.text(min_size=1, max_size=12), min_size=1,
                          max_size=50))
    def test_split_partition_property(self, bits, names):
        """After any split, every name lands in exactly one child frag."""
        children = FragId(0, 0).split(bits)
        for name in names:
            hashed = name_hash(name)
            assert sum(1 for c in children if c.contains(hashed)) == 1


class TestDirFrag:
    def test_add_and_get(self):
        directory = make_dir()
        frag = next(iter(directory.frags.values()))
        inode = Inode(name="f1", is_dir=False)
        frag.add(inode)
        assert frag.get("f1") is inode
        assert len(frag) == 1

    def test_add_wrong_frag_rejected(self):
        directory = make_dir()
        directory.fragment(extra_bits=2)
        frags = list(directory.frags.values())
        inode = Inode(name="somefile", is_dir=False)
        wrong = next(f for f in frags if not f.contains_name("somefile"))
        with pytest.raises(ValueError):
            wrong.add(inode)

    def test_remove(self):
        directory = make_dir()
        frag = next(iter(directory.frags.values()))
        frag.add(Inode(name="f1", is_dir=False))
        removed = frag.remove("f1")
        assert removed.name == "f1"
        assert len(frag) == 0

    def test_authority_inherits_from_directory(self):
        directory = make_dir()
        frag = next(iter(directory.frags.values()))
        assert frag.authority() == 0
        frag.set_auth(2)
        assert frag.authority() == 2
        frag.set_auth(None)
        assert frag.authority() == 0

    def test_record_load(self):
        directory = make_dir()
        frag = next(iter(directory.frags.values()))
        frag.record("IWR", 0.0)
        assert frag.load_snapshot(0.0)["IWR"] == pytest.approx(1.0)

    def test_name_hash_stable(self):
        assert name_hash("kernel") == name_hash("kernel")
        assert name_hash("kernel") != name_hash("kerneL")
