"""Inode basics."""

from repro.namespace.inode import Inode


class TestInode:
    def test_unique_inode_numbers(self):
        a = Inode(name="a", is_dir=False)
        b = Inode(name="b", is_dir=False)
        assert a.ino != b.ino

    def test_touch_updates_times(self):
        inode = Inode(name="f", is_dir=False)
        inode.touch(5.0)
        assert inode.atime == 5.0
        assert inode.mtime == 0.0
        inode.touch(6.0, write=True)
        assert inode.mtime == 6.0

    def test_stat_snapshot(self):
        inode = Inode(name="f", is_dir=False, mode=0o600, size=123)
        stat = inode.stat()
        assert stat["name"] == "f"
        assert stat["mode"] == 0o600
        assert stat["size"] == 123
        assert stat["is_dir"] is False

    def test_default_permissions(self):
        assert Inode(name="f", is_dir=False).mode == 0o644
