"""Decay counters: exponential decay math and the five-op load counters."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.namespace.counters import (
    OP_KINDS,
    DecayCounter,
    LoadCounters,
)


class TestDecayCounter:
    def test_hit_accumulates(self):
        counter = DecayCounter(half_life=5.0)
        counter.hit(0.0)
        counter.hit(0.0)
        assert counter.get(0.0) == pytest.approx(2.0)

    def test_half_life_halves(self):
        counter = DecayCounter(half_life=5.0)
        counter.hit(0.0, 8.0)
        assert counter.get(5.0) == pytest.approx(4.0)
        assert counter.get(10.0) == pytest.approx(2.0)

    def test_decay_is_continuous(self):
        counter = DecayCounter(half_life=1.0)
        counter.hit(0.0, 1.0)
        assert counter.get(0.5) == pytest.approx(math.pow(0.5, 0.5))

    def test_reads_do_not_lose_mass(self):
        a = DecayCounter(half_life=5.0)
        b = DecayCounter(half_life=5.0)
        a.hit(0.0, 10.0)
        b.hit(0.0, 10.0)
        for t in (1.0, 2.0, 3.0):  # frequent reads on a only
            a.get(t)
        assert a.get(4.0) == pytest.approx(b.get(4.0))

    def test_hits_at_different_times_compose(self):
        counter = DecayCounter(half_life=5.0)
        counter.hit(0.0, 4.0)
        counter.hit(5.0, 4.0)  # old mass has halved to 2 by now
        assert counter.get(5.0) == pytest.approx(6.0)

    def test_tiny_values_snap_to_zero(self):
        counter = DecayCounter(half_life=1.0)
        counter.hit(0.0, 1.0)
        assert counter.get(1000.0) == 0.0

    def test_reset(self):
        counter = DecayCounter(half_life=1.0)
        counter.hit(0.0, 5.0)
        counter.reset(1.0, 9.0)
        assert counter.get(1.0) == 9.0

    def test_invalid_half_life(self):
        with pytest.raises(ValueError):
            DecayCounter(half_life=0.0)

    @given(amount=st.floats(min_value=0.001, max_value=1e6),
           dt=st.floats(min_value=0.0, max_value=100.0))
    def test_decay_never_increases(self, amount, dt):
        counter = DecayCounter(half_life=5.0)
        counter.hit(0.0, amount)
        assert counter.get(dt) <= amount * (1 + 1e-9)

    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.0, max_value=100.0)), max_size=20))
    def test_value_always_nonnegative(self, hits):
        counter = DecayCounter(half_life=2.0)
        for time, amount in sorted(hits):
            counter.hit(time, amount)
        assert counter.get(60.0) >= 0.0


class TestLoadCounters:
    def test_all_kinds_present(self):
        counters = LoadCounters()
        snapshot = counters.snapshot(0.0)
        assert set(snapshot) == set(OP_KINDS)
        assert all(value == 0.0 for value in snapshot.values())

    def test_hit_and_snapshot(self):
        counters = LoadCounters(half_life=5.0)
        counters.hit("IWR", 0.0)
        counters.hit("IWR", 0.0)
        counters.hit("IRD", 0.0)
        snapshot = counters.snapshot(0.0)
        assert snapshot["IWR"] == pytest.approx(2.0)
        assert snapshot["IRD"] == pytest.approx(1.0)
        assert snapshot["READDIR"] == 0.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            LoadCounters().hit("BOGUS", 0.0)

    def test_absorb_fraction(self):
        source = LoadCounters(half_life=5.0)
        source.hit("IWR", 0.0, 10.0)
        sink = LoadCounters(half_life=5.0)
        sink.absorb(source, now=0.0, fraction=0.25)
        assert sink.get("IWR", 0.0) == pytest.approx(2.5)
        # Source unchanged by absorb.
        assert source.get("IWR", 0.0) == pytest.approx(10.0)

    def test_scale(self):
        counters = LoadCounters(half_life=5.0)
        counters.hit("IRD", 0.0, 8.0)
        counters.scale(0.5, now=0.0)
        assert counters.get("IRD", 0.0) == pytest.approx(4.0)

    def test_reset_zeroes_all(self):
        counters = LoadCounters()
        for kind in OP_KINDS:
            counters.hit(kind, 0.0, 3.0)
        counters.reset(1.0)
        assert all(v == 0.0 for v in counters.snapshot(1.0).values())

    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_absorb_conserves_mass(self, fraction):
        """absorb(f) + absorb(1-f) == absorb(1.0)."""
        source = LoadCounters(half_life=5.0)
        source.hit("STORE", 0.0, 42.0)
        a = LoadCounters(half_life=5.0)
        a.absorb(source, 0.0, fraction)
        a.absorb(source, 0.0, 1.0 - fraction)
        assert a.get("STORE", 0.0) == pytest.approx(42.0)
