"""The namespace tree: resolution, mutation, accounting, authority."""

import pytest

from repro.namespace.tree import Namespace, split_path


class TestSplitPath:
    def test_normalisation(self):
        # Returns an immutable tuple: results are memoized and shared.
        assert split_path("/a/b/c") == ("a", "b", "c")
        assert split_path("a//b/") == ("a", "b")
        assert split_path("/") == ()
        assert split_path("") == ()


class TestResolution:
    def test_root(self):
        namespace = Namespace()
        assert namespace.resolve_dir("/") is namespace.root

    def test_mkdirs_and_resolve(self):
        namespace = Namespace()
        namespace.mkdirs("/a/b/c")
        assert namespace.resolve_dir("/a/b/c").path() == "/a/b/c"

    def test_missing_dir_raises(self):
        with pytest.raises(FileNotFoundError):
            Namespace().resolve_dir("/nope")

    def test_file_in_dir_position_raises(self):
        namespace = Namespace()
        namespace.create("/f")
        with pytest.raises(NotADirectoryError):
            namespace.resolve_dir("/f/x")

    def test_resolve_entry_file(self):
        namespace = Namespace()
        namespace.mkdirs("/a")
        inode = namespace.create("/a/f")
        assert namespace.resolve_entry("/a/f") is inode

    def test_exists(self):
        namespace = Namespace()
        namespace.mkdirs("/a")
        assert namespace.exists("/a")
        assert not namespace.exists("/b")


class TestMutation:
    def test_create_updates_counts(self):
        namespace = Namespace()
        namespace.mkdirs("/d")
        namespace.create("/d/f1")
        assert namespace.inode_count == 3  # root + d + f1
        assert namespace.dir_count == 2

    def test_create_in_missing_parent_raises(self):
        with pytest.raises(FileNotFoundError):
            Namespace().create("/missing/f")

    def test_duplicate_create_raises(self):
        namespace = Namespace()
        namespace.create("/f")
        with pytest.raises(FileExistsError):
            namespace.create("/f")

    def test_unlink_file(self):
        namespace = Namespace()
        namespace.create("/f")
        namespace.unlink("/f")
        assert not namespace.exists("/f")
        assert namespace.inode_count == 1

    def test_unlink_directory_updates_dir_count(self):
        namespace = Namespace()
        namespace.mkdirs("/d")
        namespace.unlink("/d")
        assert namespace.dir_count == 1

    def test_mkdirs_idempotent(self):
        namespace = Namespace()
        namespace.mkdirs("/a/b")
        namespace.mkdirs("/a/b")
        assert namespace.dir_count == 3


class TestAccounting:
    def test_record_hit_propagates_to_ancestors(self):
        namespace = Namespace(half_life=5.0)
        d = namespace.mkdirs("/a/b")
        namespace.record_hit(d, "f", "IWR", now=0.0)
        assert d.counters.get("IWR", 0.0) == pytest.approx(1.0)
        a = namespace.resolve_dir("/a")
        assert a.counters.get("IWR", 0.0) == pytest.approx(1.0)
        assert namespace.root.counters.get("IWR", 0.0) == pytest.approx(1.0)

    def test_record_hit_lands_in_right_frag(self):
        namespace = Namespace(split_size=4, split_bits=2)
        d = namespace.mkdirs("/d")
        for i in range(8):
            namespace.create(f"/d/f{i}")
        d.fragment()
        frag = namespace.record_hit(d, "f3", "IRD", now=0.0)
        assert frag.contains_name("f3")
        assert frag.load_snapshot(0.0)["IRD"] == pytest.approx(1.0)

    def test_heat_map(self):
        namespace = Namespace(half_life=5.0)
        d = namespace.mkdirs("/hot")
        namespace.mkdirs("/cold")
        for _ in range(10):
            namespace.record_hit(d, None, "IWR", now=0.0)
        heat = namespace.heat_map(0.0)
        assert heat["/hot"] == pytest.approx(10.0)
        assert heat["/cold"] == 0.0
        assert heat["/"] == pytest.approx(10.0)

    def test_heat_map_depth_limit(self):
        namespace = Namespace()
        namespace.mkdirs("/a/b/c")
        heat = namespace.heat_map(0.0, max_depth=1)
        assert "/a" in heat
        assert "/a/b" not in heat


class TestAuthority:
    def test_root_auth_default(self):
        namespace = Namespace(root_auth=0)
        assert namespace.root.authority() == 0

    def test_subtree_roots(self):
        namespace = Namespace()
        a = namespace.mkdirs("/a")
        a.set_auth(1)
        roots = namespace.subtree_roots()
        assert {d.path() for d in roots} == {"/", "/a"}
        assert [d.path() for d in namespace.subtree_roots(1)] == ["/a"]

    def test_frags_owned_by(self):
        namespace = Namespace()
        a = namespace.mkdirs("/a")
        namespace.mkdirs("/b")
        a.set_auth(1)
        owned = {frag.directory.path() for frag in namespace.frags_owned_by(1)}
        assert owned == {"/a"}
        owned0 = {frag.directory.path()
                  for frag in namespace.frags_owned_by(0)}
        assert owned0 == {"/", "/b"}

    def test_authority_for_path_uses_containing_frag(self):
        namespace = Namespace(split_size=4, split_bits=1)
        d = namespace.mkdirs("/d")
        for i in range(8):
            namespace.create(f"/d/f{i}")
        d.fragment()
        frags = list(d.frags.values())
        frags[0].set_auth(3)
        moved = next(name for name in (f"f{i}" for i in range(8))
                     if frags[0].contains_name(name))
        assert namespace.authority_for_path(f"/d/{moved}") == 3

    def test_metadata_load_sums_owned_frags(self):
        namespace = Namespace(half_life=5.0)
        d = namespace.mkdirs("/d")
        namespace.record_hit(d, None, "IWR", now=0.0)
        namespace.record_hit(d, None, "IWR", now=0.0)
        load = namespace.metadata_load(0, lambda s: s["IWR"], now=0.0)
        assert load == pytest.approx(2.0)
        assert namespace.metadata_load(1, lambda s: s["IWR"], now=0.0) == 0.0
