"""The mantle-sim command-line interface."""

import pytest

from repro.cli import main
from repro.core.policyfile import dump_policy
from repro.core.policies import greedy_spill_policy


class TestPolicies:
    def test_lists_stock_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "greedy-spill" in out
        assert "adaptable" in out
        assert "fill-and-spill" in out


class TestShow:
    def test_show_stock_policy(self, capsys):
        assert main(["show", "greedy-spill"]) == 0
        out = capsys.readouterr().out
        assert "-- @when" in out
        assert "-- @howmuch" in out


class TestValidate:
    def test_validate_stock_policy(self, capsys):
        assert main(["validate", "greedy-spill"]) == 0
        out = capsys.readouterr().out
        assert "ok:       True" in out

    def test_validate_policy_file(self, tmp_path, capsys):
        path = tmp_path / "p.lua"
        path.write_text(dump_policy(greedy_spill_policy()))
        assert main(["validate", str(path)]) == 0

    def test_validate_bad_policy_file(self, tmp_path, capsys):
        path = tmp_path / "bad.lua"
        path.write_text("-- @when\nwhile 1 do end\n-- @where\nx = 1\n")
        assert main(["validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "problem:" in out

    def test_unknown_policy_errors(self):
        with pytest.raises(SystemExit):
            main(["validate", "no-such-policy"])


class TestRun:
    def test_run_create_workload(self, capsys):
        code = main(["run", "--mds", "1", "--clients", "1",
                     "--files", "300", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "latency" in out

    def test_run_with_stock_policy_and_decisions(self, capsys):
        code = main(["run", "--policy", "greedy-spill", "--mds", "2",
                     "--clients", "2", "--files", "500", "--shared",
                     "--split-size", "200", "--decisions"])
        assert code == 0
        assert "greedy-spill" in capsys.readouterr().out

    def test_run_refuses_invalid_policy(self, tmp_path, capsys):
        path = tmp_path / "bad.lua"
        path.write_text("-- @when\ngo = nil + 1\n-- @where\nx = 1\n")
        code = main(["run", "--policy", str(path), "--files", "10"])
        assert code == 1
        assert "refusing" in capsys.readouterr().err

    def test_run_zipf(self, capsys):
        code = main(["run", "--workload", "zipf", "--mds", "1",
                     "--clients", "1", "--files", "200", "--ops", "300"])
        assert code == 0
