"""Client behaviour: op streams, subtree/fragtree learning, pipelining."""

import pytest

from repro.clients.client import Client
from repro.clients.ops import OpKind
from repro.cluster import SimulatedCluster
from tests.conftest import make_config


def run_client(cluster, ops, client_id=0, pipeline=1):
    client = Client(cluster.engine, client_id, cluster.network,
                    cluster.mdss, cluster.metrics, iter(ops),
                    pipeline=pipeline)
    client.start()
    cluster.engine.run_until_complete(client.done)
    return client


class TestBasicFlow:
    def test_ops_complete_in_order(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        ops = [(OpKind.MKDIR, "/d")] + [
            (OpKind.CREATE, f"/d/f{i}") for i in range(10)
        ]
        client = run_client(cluster, ops)
        assert client.ops_completed == 11
        assert client.errors == 0
        assert cluster.namespace.exists("/d/f9")

    def test_latencies_recorded(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        run_client(cluster, [(OpKind.MKDIR, "/d")])
        latencies = cluster.metrics.latencies.client_latencies(0)
        assert len(latencies) == 1
        assert latencies[0] > 0

    def test_finish_time_recorded(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        run_client(cluster, [(OpKind.MKDIR, "/d")])
        assert cluster.metrics.client_finish_times[0] > 0
        assert cluster.metrics.client_op_counts[0] == 1

    def test_errors_counted_but_not_fatal(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        client = run_client(cluster, [(OpKind.STAT, "/ghost"),
                                      (OpKind.MKDIR, "/d")])
        assert client.errors == 1
        assert client.ops_completed == 2

    def test_empty_op_stream_finishes_immediately(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        client = run_client(cluster, [])
        assert client.ops_completed == 0


class TestPipelining:
    def test_pipeline_overlaps_requests(self):
        ops = [(OpKind.CREATE, f"/f{i}") for i in range(200)]
        slow = SimulatedCluster(make_config(num_mds=1, seed=5))
        run_client(slow, list(ops), pipeline=1)
        serial_time = slow.engine.now

        fast = SimulatedCluster(make_config(num_mds=1, seed=5))
        run_client(fast, list(ops), pipeline=4)
        assert fast.engine.now < serial_time

    def test_pipeline_completes_all_ops(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        ops = [(OpKind.CREATE, f"/f{i}") for i in range(57)]
        client = run_client(cluster, ops, pipeline=3)
        assert client.ops_completed == 57


class TestLearning:
    def test_client_learns_serving_rank(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        cluster.namespace.mkdirs("/d")
        cluster.pin("/d", 1)
        client = run_client(cluster, [(OpKind.CREATE, "/d/a"),
                                      (OpKind.CREATE, "/d/b")])
        # First op was forwarded; the second should go straight to rank 1.
        assert client.mds_map["/d"] == 1
        assert cluster.metrics.mds(0).forwards == 1

    def test_client_learns_frag_map(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        cluster.namespace.mkdirs("/d")
        d = cluster.namespace.resolve_dir("/d")
        for i in range(8):
            cluster.namespace.create(f"/d/f{i}")
        d.fragment(extra_bits=1)
        frags = list(d.frags.values())
        frags[1].set_auth(1)
        client = run_client(
            cluster, [(OpKind.STAT, f"/d/f{i}") for i in range(8)] * 2
        )
        assert "/d" in client.frag_maps
        # Second pass should route directly: forwards only from pass one.
        total_forwards = sum(m.forwards
                             for m in cluster.metrics.per_mds.values())
        assert total_forwards <= 8

    def test_guess_uses_most_specific_prefix(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        client = Client(cluster.engine, 0, cluster.network, cluster.mdss,
                        cluster.metrics, iter([]))
        client.mds_map["/"] = 0
        client.mds_map["/a/b"] = 1
        assert client._guess("/a/b/file", OpKind.CREATE) == 1
        assert client._guess("/a/other", OpKind.CREATE) == 0

    def test_guess_defaults_to_rank0(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        client = Client(cluster.engine, 0, cluster.network, cluster.mdss,
                        cluster.metrics, iter([]))
        assert client._guess("/anything", OpKind.CREATE) == 0

    def test_readdir_maps_on_directory_itself(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        client = Client(cluster.engine, 0, cluster.network, cluster.mdss,
                        cluster.metrics, iter([]))
        client.mds_map["/d"] = 1
        assert client._guess("/d", OpKind.READDIR) == 1


class TestStartDelay:
    def test_start_delay_respected(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        client = Client(cluster.engine, 0, cluster.network, cluster.mdss,
                        cluster.metrics, iter([(OpKind.MKDIR, "/d")]),
                        start_delay=2.5)
        client.start()
        cluster.engine.run_until_complete(client.done)
        assert client.started_at == pytest.approx(2.5)
