"""Op kinds and request/reply types."""

from repro.clients.ops import MetaReply, MetaRequest, OpKind


class TestOpKind:
    def test_write_classification(self):
        assert OpKind.CREATE.is_write
        assert OpKind.MKDIR.is_write
        assert OpKind.UNLINK.is_write
        assert not OpKind.STAT.is_write
        assert not OpKind.READDIR.is_write

    def test_counter_kinds(self):
        assert OpKind.CREATE.counter_kind == "IWR"
        assert OpKind.STAT.counter_kind == "IRD"
        assert OpKind.LOOKUP.counter_kind == "IRD"
        assert OpKind.OPEN.counter_kind == "IRD"
        assert OpKind.READDIR.counter_kind == "READDIR"
        assert OpKind.UNLINK.counter_kind == "IWR"


class TestMetaRequest:
    def test_unique_request_ids(self):
        a = MetaRequest(kind=OpKind.STAT, path="/a", client_id=0)
        b = MetaRequest(kind=OpKind.STAT, path="/a", client_id=0)
        assert a.req_id != b.req_id

    def test_forwards_counts_extra_hops(self):
        req = MetaRequest(kind=OpKind.STAT, path="/a", client_id=0)
        assert req.forwards == 0
        req.hops.append(0)
        assert req.forwards == 0
        req.hops.append(2)
        assert req.forwards == 1


class TestMetaReply:
    def test_ok_property(self):
        ok = MetaReply(req_id=1, kind=OpKind.STAT, path="/a", served_by=0,
                       forwards=0, latency=0.001)
        bad = MetaReply(req_id=2, kind=OpKind.STAT, path="/a", served_by=0,
                        forwards=0, latency=0.001, error="ENOENT")
        assert ok.ok
        assert not bad.ok
