"""Odds and ends: client staggering, OSD size scaling, reprs."""

import pytest

from repro.clients.client import build_clients
from repro.clients.ops import OpKind
from repro.cluster import SimulatedCluster
from repro.namespace.dirfrag import FragId
from repro.rados.osd import _size_factor
from tests.conftest import make_config


class TestBuildClients:
    def test_stagger_delays_starts(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        streams = {
            0: iter([(OpKind.MKDIR, "/a")]),
            1: iter([(OpKind.MKDIR, "/b")]),
            2: iter([(OpKind.MKDIR, "/c")]),
        }
        clients = build_clients(cluster.engine, cluster.network,
                                cluster.mdss, cluster.metrics, streams,
                                stagger=1.0)
        for client in clients:
            client.start()
        cluster.engine.run()
        starts = sorted(client.started_at for client in clients)
        assert starts == pytest.approx([0.0, 1.0, 2.0])

    def test_clients_sorted_by_id(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        streams = {2: iter([]), 0: iter([]), 1: iter([])}
        clients = build_clients(cluster.engine, cluster.network,
                                cluster.mdss, cluster.metrics, streams)
        assert [client.client_id for client in clients] == [0, 1, 2]


class TestOsdSizeFactor:
    def test_baseline_4k(self):
        assert _size_factor(4096) == pytest.approx(1.0)

    def test_larger_objects_cost_more_sublinearly(self):
        assert _size_factor(16_384) == pytest.approx(2.0)
        assert _size_factor(65_536) == pytest.approx(4.0)

    def test_tiny_objects_floored(self):
        assert _size_factor(1) == pytest.approx(0.5)


class TestReprs:
    def test_frag_id_repr_matches_ceph_notation(self):
        assert repr(FragId(3, 5)) == "5*3"
        assert repr(FragId(0, 0)) == "0*0"

    def test_frag_path_includes_frag_id(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        d = cluster.namespace.mkdirs("/d")
        frag = next(iter(d.frags.values()))
        assert frag.path() == "/d#0*0"
