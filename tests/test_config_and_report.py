"""ClusterConfig validation and SimReport surface."""

import pytest

from repro.cluster import run_experiment
from repro.config import ClusterConfig, ServiceTimes
from repro.workloads import CreateWorkload
from tests.conftest import make_config


class TestServiceTimes:
    def test_mean_for_known_ops(self):
        service = ServiceTimes()
        for op in ("create", "mkdir", "stat", "lookup", "open",
                   "readdir", "unlink", "forward"):
            assert service.mean_for(op) > 0

    def test_mean_for_unknown_op(self):
        with pytest.raises(KeyError):
            ServiceTimes().mean_for("chmod")

    def test_readdir_slowest_regular_op(self):
        service = ServiceTimes()
        assert service.readdir > service.create > service.forward


class TestClusterConfigValidation:
    def test_defaults_valid(self):
        ClusterConfig().validate()

    @pytest.mark.parametrize("field,value", [
        ("num_mds", 0),
        ("num_clients", -1),
        ("heartbeat_interval", 0.0),
        ("scatter_gather_prob", 1.5),
        ("dir_split_bits", 0),
    ])
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ValueError):
            ClusterConfig(**{field: value}).validate()

    def test_with_overrides_copies(self):
        base = ClusterConfig(num_mds=2)
        derived = base.with_overrides(num_mds=4, seed=9)
        assert base.num_mds == 2
        assert derived.num_mds == 4
        assert derived.seed == 9
        # Nested service times shared structure is fine but equality holds.
        assert derived.net_latency == base.net_latency

    def test_paper_defaults(self):
        """Constants the paper pins explicitly."""
        config = ClusterConfig()
        assert config.heartbeat_interval == 10.0   # §2: every 10 seconds
        assert config.dir_split_size == 50_000     # §4.1
        assert config.dir_split_bits == 3          # 2^3 = 8 dirfrags
        assert config.num_osds == 18               # testbed: 18 OSDs


class TestSimReport:
    @pytest.fixture(scope="class")
    def report(self):
        return run_experiment(
            make_config(num_mds=2, num_clients=2),
            CreateWorkload(num_clients=2, files_per_client=400),
        )

    def test_throughput_consistent(self, report):
        assert report.throughput == pytest.approx(
            report.total_ops / report.makespan
        )

    def test_per_mds_ops_sums_to_total(self, report):
        assert sum(report.per_mds_ops().values()) == report.total_ops

    def test_client_runtimes_present(self, report):
        assert set(report.client_runtimes) == {0, 1}
        assert all(value > 0 for value in report.client_runtimes.values())

    def test_policy_name_none_without_policy(self, report):
        assert report.policy_name == "none"

    def test_sessions_opened(self, report):
        # Each client opened a session with at least one rank.
        assert report.sessions_opened >= 2

    def test_latency_summary_quantiles_ordered(self, report):
        summary = report.latency_summary()
        assert (summary.minimum <= summary.p50 <= summary.p95
                <= summary.p99 <= summary.maximum)

    def test_zero_makespan_throughput(self):
        from repro.cluster import SimReport
        from repro.metrics.collectors import ClusterMetrics
        empty = SimReport(config=ClusterConfig(), policy_name="none",
                          makespan=0.0, total_ops=0, client_runtimes={},
                          metrics=ClusterMetrics())
        assert empty.throughput == 0.0
