"""Policy-file format: parse, dump, round-trip."""

import pytest

from repro.core.policies import STOCK_POLICIES
from repro.core.policyfile import (
    PolicyFileError,
    dump_policy,
    load_policy_file,
    parse_policy_source,
)
from repro.core.validator import validate_policy

SAMPLE = """
-- @name sample-spill
-- @need_min 0.9
-- @metaload
IWR + IRD
-- @mdsload
MDSs[i]["all"]
-- @when
go = MDSs[whoami]["load"] > total/#MDSs
-- @where
targets[whoami+1] = MDSs[whoami]["load"]/2
-- @howmuch
big_first, big_small
"""


class TestParse:
    def test_sample_parses(self):
        policy = parse_policy_source(SAMPLE)
        assert policy.name == "sample-spill"
        assert policy.metaload == "IWR + IRD"
        assert policy.mdsload == 'MDSs[i]["all"]'
        assert "total/#MDSs" in policy.when
        assert policy.howmuch == ("big_first", "big_small")
        assert policy.need_min_factor == 0.9

    def test_parsed_policy_validates(self):
        report = validate_policy(parse_policy_source(SAMPLE))
        assert report.ok, report.problems

    def test_multiline_sections(self):
        policy = parse_policy_source("""
-- @when
maxv = 0
for i=1,#MDSs do maxv = max(maxv, MDSs[i]["load"]) end
go = MDSs[whoami]["load"] >= maxv and maxv > 0
-- @where
targets[2] = 1
""")
        assert "for i=1,#MDSs" in policy.when

    def test_defaults_for_missing_optional_sections(self):
        policy = parse_policy_source(
            "-- @when\ngo = false\n-- @where\ntargets[2] = 1\n"
        )
        assert "IRD + 2*IWR" in policy.metaload
        assert policy.howmuch == ("big_first",)

    def test_missing_required_section_rejected(self):
        with pytest.raises(PolicyFileError, match="required"):
            parse_policy_source("-- @when\ngo = false\n")

    def test_unknown_section_rejected(self):
        with pytest.raises(PolicyFileError, match="unknown section"):
            parse_policy_source("-- @bogus\nx = 1\n")

    def test_duplicate_section_rejected(self):
        with pytest.raises(PolicyFileError, match="duplicate"):
            parse_policy_source(
                "-- @when\ngo=false\n-- @when\ngo=true\n-- @where\nx=1\n"
            )

    def test_scalar_without_value_rejected(self):
        with pytest.raises(PolicyFileError, match="needs a value"):
            parse_policy_source("-- @name\n-- @when\ngo=false\n"
                                "-- @where\nx=1\n")

    def test_lua_comments_inside_sections_kept(self):
        policy = parse_policy_source("""
-- @when
-- plain comments (no @) stay part of the Lua source
go = false
-- @where
targets[2] = 1
""")
        assert "plain comments" in policy.when
        policy.compile_all()


class TestFileRoundTrip:
    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "spill.lua"
        path.write_text(SAMPLE)
        policy = load_policy_file(path)
        assert policy.name == "sample-spill"

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mypolicy.lua"
        path.write_text("-- @when\ngo=false\n-- @where\nt=1\n")
        assert load_policy_file(path).name == "mypolicy"

    @pytest.mark.parametrize("stock", sorted(STOCK_POLICIES))
    def test_stock_policies_round_trip(self, stock):
        original = STOCK_POLICIES[stock]()
        reparsed = parse_policy_source(dump_policy(original))
        assert reparsed.name == original.name
        assert reparsed.metaload.strip() == original.metaload.strip()
        assert tuple(reparsed.howmuch) == tuple(original.howmuch)
        assert reparsed.need_min_factor == original.need_min_factor
        # And it still compiles and validates.
        report = validate_policy(reparsed)
        assert report.ok, (stock, report.problems)
