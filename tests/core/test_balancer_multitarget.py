"""Balancer driver edge cases: multiple targets, budgets, overshoot."""

import pytest

from repro.cluster import SimulatedCluster
from repro.core.api import MantlePolicy
from repro.luapolicy import DEFAULT_BUDGET
from tests.conftest import make_config


def exchange_heartbeats(cluster):
    for mds in cluster.mdss:
        beat = mds._snapshot_metrics()
        for peer in cluster.mdss:
            peer.hb_table.store(beat, cluster.engine.now)


def heat_dirs(cluster, paths, hits_each=100):
    now = cluster.engine.now
    for path in paths:
        cluster.namespace.mkdirs(path)
        d = cluster.namespace.resolve_dir(path)
        for _ in range(hits_each):
            cluster.namespace.record_hit(d, None, "IWR", now)
            cluster.mdss[0].auth_load.hit("IWR", now)
            cluster.mdss[0].all_load.hit("IWR", now)


class TestMultiTarget:
    def multi_policy(self):
        return MantlePolicy(
            name="multi",
            metaload="IWR",
            mdsload='MDSs[i]["all"]',
            when="go = MDSs[whoami]['load'] > total/#MDSs",
            where="""
            for i = 1, #MDSs do
              if i ~= whoami and MDSs[i]["load"] < 1 then
                targets[i] = MDSs[whoami]["load"]/#MDSs
              end
            end
            """,
            howmuch=("big_first",),
        )

    def test_ships_to_several_ranks_in_one_tick(self):
        cluster = SimulatedCluster(make_config(num_mds=3),
                                   policy=self.multi_policy())
        heat_dirs(cluster, ["/a", "/b", "/c", "/d"], hits_each=75)
        exchange_heartbeats(cluster)
        decision = cluster.balancer.tick(cluster.mdss[0])
        assert decision.went
        target_ranks = {target for _p, _l, target in decision.exports}
        assert target_ranks == {1, 2}

    def test_units_not_double_shipped(self):
        cluster = SimulatedCluster(make_config(num_mds=3),
                                   policy=self.multi_policy())
        heat_dirs(cluster, ["/a", "/b"], hits_each=100)
        exchange_heartbeats(cluster)
        decision = cluster.balancer.tick(cluster.mdss[0])
        paths = [path for path, _l, _t in decision.exports]
        assert len(paths) == len(set(paths))

    def test_migrations_complete_for_all_targets(self):
        cluster = SimulatedCluster(make_config(num_mds=3),
                                   policy=self.multi_policy())
        heat_dirs(cluster, ["/a", "/b", "/c", "/d"], hits_each=75)
        exchange_heartbeats(cluster)
        cluster.balancer.tick(cluster.mdss[0])
        cluster.engine.run()
        owners = {cluster.namespace.resolve_dir(p).frags and
                  next(iter(cluster.namespace.resolve_dir(p).frags
                            .values())).authority()
                  for p in ("/a", "/b", "/c", "/d")}
        assert len(owners) >= 2


class TestOvershootControl:
    def test_max_overshoot_blocks_whale_subtrees(self):
        policy = MantlePolicy(
            name="strict",
            metaload="IWR",
            mdsload='MDSs[i]["all"]',
            when="go = true",
            where="targets[2] = 10",  # tiny target
            howmuch=("big_first",),
            max_overshoot=1.1,
        )
        cluster = SimulatedCluster(make_config(num_mds=2), policy=policy)
        heat_dirs(cluster, ["/whale"], hits_each=500)  # load 500 >> 10*1.1
        exchange_heartbeats(cluster)
        decision = cluster.balancer.tick(cluster.mdss[0])
        # The whale subtree is too big; its single dirfrag is atomic and
        # still ships (CephFS overshoots rather than doing nothing).
        paths = [path for path, _l, _t in decision.exports]
        assert "/whale" not in paths
        assert any(path.startswith("/whale#") for path in paths)


class TestBudgetAtTickLevel:
    def test_expensive_policy_aborts_tick(self):
        policy = MantlePolicy(
            name="expensive",
            metaload="IWR",
            mdsload='MDSs[i]["all"]',
            when="""
            x = 0
            for i = 1, 100000000 do x = x + 1 end
            go = false
            """,
            where="",
            budget=50_000,
        )
        cluster = SimulatedCluster(make_config(num_mds=2), policy=policy)
        exchange_heartbeats(cluster)
        decision = cluster.balancer.tick(cluster.mdss[0])
        assert decision.error is not None
        assert "budget" in decision.error

    def test_default_budget_value(self):
        assert MantlePolicy(name="p").budget == DEFAULT_BUDGET


class TestNeedMinInteraction:
    @pytest.mark.parametrize("factor", [0.5, 0.8, 1.0])
    def test_shipped_load_scales_with_need_min(self, factor):
        policy = MantlePolicy(
            name=f"scaled-{factor}",
            metaload="IWR",
            mdsload='MDSs[i]["all"]',
            when="go = true",
            where="targets[2] = MDSs[whoami]['load']",
            howmuch=("big_first",),
            need_min_factor=factor,
        )
        cluster = SimulatedCluster(make_config(num_mds=2), policy=policy)
        heat_dirs(cluster, [f"/d{i}" for i in range(10)], hits_each=20)
        exchange_heartbeats(cluster)
        decision = cluster.balancer.tick(cluster.mdss[0])
        shipped = sum(load for _p, load, _t in decision.exports)
        my_load = cluster.mdss[0].hb_table.get(0).all_metaload
        # Shipped stays near factor * load (within one unit's granularity).
        assert shipped <= my_load * factor + my_load / 10 + 1e-6
