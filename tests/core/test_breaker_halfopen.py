"""Half-open circuit breaker: open -> probation -> closed | permanent.

Timing note: with the 2.0s test heartbeat interval the shared balancer
ticks on both ranks' heartbeats (~2.08/2.086, 4.08/4.086, ...), so a
threshold of 2 trips on the first heartbeat round and ``run_for`` windows
of a few seconds walk the whole state machine.
"""

from repro.cluster import SimulatedCluster
from repro.core.api import MantlePolicy
from repro.core.balancer import MantleBalancer
from repro.core.policies import greedy_spill_policy
from tests.conftest import make_config


def broken_policy():
    return MantlePolicy(name="broken", when="go = MDSs[99]['load'] > 0")


def build_cluster(probation_ticks=2, threshold=2):
    config = make_config(num_mds=2, policy_error_threshold=threshold,
                         policy_probation_ticks=probation_ticks)
    return SimulatedCluster(config, policy=broken_policy())


class TestHalfOpenBreaker:
    def test_persistent_failure_fails_probation_permanently(self):
        cluster = build_cluster()
        cluster.run_for(20.0)
        balancer = cluster.balancer
        assert balancer.breaker == "permanent"
        assert balancer.tripped
        assert balancer.active_policy().name == "cephfs-original"
        kinds = [e.kind for e in cluster.metrics.lifecycle_events
                 if e.kind.startswith("breaker-")]
        assert kinds == ["breaker-open", "breaker-probation",
                         "breaker-permanent"]
        # Exactly one probation re-try, flagged as such -- and it is not
        # a fallback tick (the injected policy was back in charge).
        probation = [d for d in balancer.decisions if d.probation]
        assert len(probation) == 1
        assert not probation[0].fallback
        assert probation[0].error is not None
        # After the permanent trip the fallback stays in charge for good.
        tail = balancer.decisions[-1]
        assert tail.fallback and not tail.probation and tail.error is None

    def test_transient_failure_closes_the_breaker(self):
        cluster = build_cluster()
        cluster.run_for(4.0)
        balancer = cluster.balancer
        assert balancer.breaker == "open"
        # The failure was transient: by the time probation re-tries the
        # injected policy, it works.  (Modelled by swapping in a healthy
        # policy object while the breaker is open.)
        healthy = greedy_spill_policy()
        healthy.compile_all()
        balancer.policy = healthy
        cluster.run_for(10.0)
        assert balancer.breaker == "closed"
        assert not balancer.tripped
        assert balancer.active_policy() is healthy
        kinds = [e.kind for e in cluster.metrics.lifecycle_events
                 if e.kind.startswith("breaker-")]
        assert kinds == ["breaker-open", "breaker-probation",
                         "breaker-close"]
        assert balancer.decisions[-1].error is None

    def test_zero_probation_ticks_keeps_the_seed_forever_trip(self):
        cluster = SimulatedCluster(
            make_config(num_mds=2, policy_error_threshold=2,
                        policy_probation_ticks=0),
            policy=broken_policy())
        cluster.run_for(20.0)
        assert cluster.balancer.breaker == "open"
        kinds = [e.kind for e in cluster.metrics.lifecycle_events]
        assert "breaker-probation" not in kinds
        assert "breaker-permanent" not in kinds

    def test_direct_construction_defaults_to_no_probation(self):
        balancer = MantleBalancer(broken_policy())
        assert balancer.probation_ticks == 0
        assert balancer.breaker == "closed"

    def test_report_still_flags_tripped_policy(self):
        cluster = build_cluster()
        cluster.run_for(20.0)
        report = cluster._report()
        assert report.policy_tripped
        assert "policy=fallback" in report.summary_line()
        assert [e.kind for e in report.lifecycle_events
                if e.kind.startswith("breaker-")] == [
            "breaker-open", "breaker-probation", "breaker-permanent"]
