"""Dirfrag selectors, including the paper's §2.2.3 worked example."""

import pytest
from hypothesis import given, strategies as st

from repro.core.selectors import (
    big_first,
    big_small,
    choose_best,
    get_selector,
    half,
    register_selector,
    small_first,
)

#: The paper's §2.2.3 dirfrag loads and target.
PAPER_LOADS = [12.7, 13.3, 13.3, 14.6, 15.7, 13.5, 13.7, 14.6]
PAPER_TARGET = 55.6


def units(loads):
    return [(f"frag{i}", load) for i, load in enumerate(loads)]


class TestBigFirst:
    def test_takes_largest_until_target(self):
        chosen = big_first(units([1, 5, 3, 4]), target=8)
        assert [load for _u, load in chosen] == [5, 4]

    def test_cephfs_scaled_example(self):
        """§2.2.3: with the 0.8 need_min scaling the original balancer
        shipped only 15.7 + 14.6 + 14.6 = 44.9 of the 55.6 target."""
        chosen = big_first(units(PAPER_LOADS), target=PAPER_TARGET * 0.8)
        assert sorted((load for _u, load in chosen), reverse=True) == \
            [15.7, 14.6, 14.6]
        assert sum(load for _u, load in chosen) == pytest.approx(44.9)

    def test_zero_loads_skipped(self):
        chosen = big_first(units([0, 0, 2]), target=1)
        assert [load for _u, load in chosen] == [2]


class TestSmallFirst:
    def test_takes_smallest_first(self):
        chosen = small_first(units([5, 1, 3]), target=4)
        assert [load for _u, load in chosen] == [1, 3]


class TestBigSmall:
    def test_alternates(self):
        chosen = big_small(units([1, 2, 3, 4]), target=100)
        assert [load for _u, load in chosen] == [4, 1, 3, 2]

    def test_paper_example_selection(self):
        chosen = big_small(units(PAPER_LOADS), target=PAPER_TARGET)
        shipped = sum(load for _u, load in chosen)
        # big, small, big, small: 15.7 + 12.7 + 14.6 + 13.3 = 56.3.
        assert shipped == pytest.approx(56.3)


class TestHalf:
    def test_first_half(self):
        chosen = half(units([1, 2, 3, 4]), target=0)
        assert [load for _u, load in chosen] == [1, 2]

    def test_odd_count_rounds_up(self):
        chosen = half(units([1, 2, 3]), target=0)
        assert len(chosen) == 2

    def test_ignores_zero_loads(self):
        chosen = half(units([0, 1, 2, 0]), target=0)
        assert [load for _u, load in chosen] == [1]


class TestChooseBest:
    def test_paper_example_winner_is_big_small(self):
        """Mantle runs all selectors and picks the closest to target; for
        the §2.2.3 loads big_small wins (paper reports distance 0.5 with
        its rounding; with the printed loads the distance is 0.7)."""
        outcome = choose_best(
            ["big_first", "small_first", "big_small", "half"],
            units(PAPER_LOADS), PAPER_TARGET,
        )
        assert outcome.name == "big_small"
        assert outcome.distance == pytest.approx(0.7, abs=0.01)

    def test_empty_selector_list_rejected(self):
        with pytest.raises(ValueError):
            choose_best([], units([1]), 1.0)

    def test_prefers_shipping_something(self):
        # 'half' ships one unit; a selector that ships nothing must lose.
        outcome = choose_best(["half", "big_first"], units([10.0]), 0.5)
        assert outcome.chosen

    def test_single_selector(self):
        outcome = choose_best(["big_first"], units([3, 1]), 3)
        assert outcome.name == "big_first"
        assert outcome.shipped == 3

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1,
                    max_size=12),
           st.floats(min_value=0.1, max_value=500))
    def test_best_distance_is_minimal(self, loads, target):
        names = ["big_first", "small_first", "big_small", "half"]
        outcome = choose_best(names, units(loads), target)
        for name in names:
            other = get_selector(name)(units(loads), target)
            shipped = sum(load for _u, load in other)
            if other:  # non-empty selections compete on distance
                assert outcome.distance <= abs(target - shipped) + 1e-6


class TestRegistry:
    def test_aliases(self):
        assert get_selector("big") is big_first
        assert get_selector("small") is small_first

    def test_unknown_selector(self):
        with pytest.raises(KeyError, match="unknown dirfrag selector"):
            get_selector("nope")

    def test_register_custom(self):
        def take_all(units_list, target):
            return [pair for pair in units_list if pair[1] > 0]

        register_selector("take_all_test", take_all)
        try:
            assert get_selector("take_all_test") is take_all
            with pytest.raises(ValueError):
                register_selector("take_all_test", take_all)
        finally:
            from repro.core.selectors import REGISTRY
            del REGISTRY["take_all_test"]
