"""MantlePolicy API, balancer state, and the pre-injection validator."""

import pytest

from repro.core.api import CEPHFS_METALOAD, MantlePolicy
from repro.core.policies import (
    STOCK_POLICIES,
    adaptable_policy,
    fill_spill_policy,
    greedy_spill_even_policy,
    greedy_spill_policy,
    original_policy,
)
from repro.core.state import BalancerState
from repro.core.validator import validate_policy
from repro.luapolicy import LuaSyntaxError


class TestMantlePolicy:
    def test_compile_all_accepts_valid(self):
        policy = MantlePolicy(
            name="ok", metaload="IWR", when="go = true",
            where="targets[2] = 1",
        )
        policy.compile_all()

    def test_compile_all_rejects_bad_syntax(self):
        policy = MantlePolicy(name="bad", when="if then end")
        with pytest.raises(LuaSyntaxError):
            policy.compile_all()

    def test_compile_all_rejects_unknown_selector(self):
        policy = MantlePolicy(name="bad", when="go = false",
                              howmuch=("nope",))
        with pytest.raises(KeyError):
            policy.compile_all()

    def test_decision_source_wraps_where_in_go_guard(self):
        policy = MantlePolicy(name="p", when="go = false",
                              where="targets[1] = 99")
        source = policy.decision_source()
        assert "if go then" in source

    def test_compiled_forms_cached(self):
        policy = MantlePolicy(name="p", when="go = false")
        assert policy.metaload_fn() is policy.metaload_fn()
        assert policy.decision_chunk() is policy.decision_chunk()

    def test_default_formulas_are_table1(self):
        policy = MantlePolicy(name="p")
        assert policy.metaload == CEPHFS_METALOAD

    def test_describe(self):
        text = original_policy().describe()
        assert "cephfs-original" in text
        assert "mds_bal_metaload" in text


class TestBalancerState:
    def test_per_rank_slots(self):
        state = BalancerState()
        state.write(0, 1.0)
        state.write(1, 2.0)
        assert state.read(0) == 1.0
        assert state.read(1) == 2.0

    def test_missing_slot_is_none(self):
        assert BalancerState().read(5) is None

    def test_bound_functions(self):
        state = BalancerState()
        wrstate, rdstate = state.bound_functions(3)
        wrstate(7)
        assert rdstate() == 7
        assert state.read(3) == 7

    def test_clear(self):
        state = BalancerState()
        state.write(0, 1)
        state.write(1, 2)
        state.clear(0)
        assert state.read(0) is None
        assert state.read(1) == 2
        state.clear()
        assert state.read(1) is None

    def test_access_counters(self):
        state = BalancerState()
        state.write(0, 1)
        state.read(0)
        state.read(0)
        assert state.writes == 1
        assert state.reads == 2


class TestValidator:
    def test_all_stock_policies_validate(self):
        for name, factory in STOCK_POLICIES.items():
            report = validate_policy(factory())
            assert report.ok, f"{name}: {report.problems}"

    def test_syntax_error_reported_not_raised(self):
        report = validate_policy(MantlePolicy(name="bad", when="if x the"))
        assert not report.ok
        assert any("syntax" in problem for problem in report.problems)

    def test_infinite_loop_caught(self):
        report = validate_policy(
            MantlePolicy(name="spin", when="while 1 do end")
        )
        assert not report.ok
        assert any("budget" in problem or "unbounded" in problem
                   for problem in report.problems)

    def test_runtime_error_caught(self):
        report = validate_policy(
            MantlePolicy(name="crash", when='go = nil + 1')
        )
        assert not report.ok

    def test_bad_metaload_reported(self):
        report = validate_policy(
            MantlePolicy(name="p", metaload="IWR ..", when="go = false")
        )
        assert not report.ok

    def test_unknown_selector_reported(self):
        report = validate_policy(
            MantlePolicy(name="p", when="go = false", howmuch=("zzz",))
        )
        assert not report.ok

    def test_never_migrating_policy_warns(self):
        report = validate_policy(
            MantlePolicy(name="noop", when="x = 1")  # never sets go
        )
        assert report.ok
        assert any("never set 'go'" in warning for warning in report.warnings)

    def test_dry_run_outputs_exposed(self):
        report = validate_policy(greedy_spill_policy())
        assert report.sample_metaload is not None
        assert len(report.sample_loads) == 4
        # The synthetic cluster has rank 0 hot, others idle -> greedy spill
        # fires and targets rank 1 (0-based).
        assert report.sample_go is True
        assert 1 in report.sample_targets


class TestStockPolicyShapes:
    def test_greedy_spill_uses_half_selector(self):
        assert tuple(greedy_spill_policy().howmuch) == ("half",)

    def test_greedy_spill_even_searches_cluster(self):
        assert "math.floor" in greedy_spill_even_policy().when

    def test_fill_spill_fraction_in_name_and_source(self):
        policy = fill_spill_policy(spill_fraction=0.10)
        assert "10pct" in policy.name
        assert "0.1" in policy.where

    def test_fill_spill_invalid_fraction(self):
        with pytest.raises(ValueError):
            fill_spill_policy(spill_fraction=0.0)

    def test_adaptable_uses_full_selector_family(self):
        assert set(adaptable_policy().howmuch) == {
            "half", "small", "big", "big_small"
        }

    def test_original_need_min(self):
        assert original_policy().need_min_factor == 0.8
