"""Advanced balancers (paper §4.4 future work): GIGA+-style autonomous
splitting, statistical capacity modeling, feedback control."""

import pytest

from repro.cluster import run_experiment
from repro.core.policies import (
    capacity_model_policy,
    feedback_policy,
    giga_autonomous_policy,
)
from repro.core.validator import validate_policy
from repro.luapolicy.sandbox import compile_policy
from repro.workloads import CreateWorkload
from tests.conftest import make_config


class TestValidation:
    @pytest.mark.parametrize("factory", [
        giga_autonomous_policy, capacity_model_policy, feedback_policy,
    ])
    def test_validates(self, factory):
        report = validate_policy(factory())
        assert report.ok, report.problems


class TestGigaAutonomous:
    def test_splits_under_load(self):
        config = make_config(num_mds=4, num_clients=4,
                             heartbeat_interval=1.0, dir_split_size=400)
        report = run_experiment(
            config,
            CreateWorkload(num_clients=4, files_per_client=4000,
                           shared_dir=True),
            policy=giga_autonomous_policy(threshold=500.0),
        )
        assert report.total_migrations >= 1
        active = sum(1 for ops in report.per_mds_ops().values() if ops > 0)
        assert active >= 2

    def test_idle_cluster_does_not_split(self):
        config = make_config(num_mds=2, num_clients=1,
                             heartbeat_interval=1.0)
        report = run_experiment(
            config,
            CreateWorkload(num_clients=1, files_per_client=500),
            policy=giga_autonomous_policy(threshold=1e9),
        )
        assert report.total_migrations == 0


class TestCapacityModel:
    def test_state_machine_updates_capacity(self):
        policy = capacity_model_policy(initial_capacity=100.0, alpha=0.5)
        chunk = compile_policy(policy.decision_source())
        state = {}

        def wrstate(value=None):
            state["cap"] = value

        def rdstate():
            return state.get("cap")

        bindings = {
            "whoami": 1,
            "MDSs": [{"load": 400.0, "cpu": 95.0},
                     {"load": 0.0, "cpu": 0.0}],
            "total": 400.0,
            "targets": {},
            "WRstate": wrstate,
            "RDstate": rdstate,
        }
        result = chunk.run(dict(bindings))
        # Saturated: the capacity estimate contracts toward 0.9*load.
        first_cap = state["cap"]
        assert first_cap == pytest.approx(0.5 * 100 + 0.5 * 400 * 0.9)
        assert result.global_value("go") is True
        # Run again: estimate keeps adapting from stored state.
        chunk.run(dict(bindings))
        assert state["cap"] > first_cap

    def test_spills_excess_to_coolest_rank(self):
        config = make_config(num_mds=3, num_clients=4,
                             heartbeat_interval=1.0, dir_split_size=400)
        report = run_experiment(
            config,
            CreateWorkload(num_clients=4, files_per_client=4000,
                           shared_dir=True),
            policy=capacity_model_policy(initial_capacity=2000.0),
        )
        assert report.total_migrations >= 1


class TestFeedbackController:
    def test_action_is_damped(self):
        policy = feedback_policy(setpoint=50.0, gain=0.01, damping=0.5)
        chunk = compile_policy(policy.decision_source())
        state = {}
        bindings = {
            "whoami": 1,
            "MDSs": [{"load": 100.0, "cpu": 90.0},
                     {"load": 0.0, "cpu": 5.0}],
            "total": 100.0,
            "targets": {},
            "WRstate": lambda v=None: state.__setitem__("a", v),
            "RDstate": lambda: state.get("a"),
        }
        chunk.run(dict(bindings))
        first = state["a"]
        assert first == pytest.approx(0.5 * 0.01 * 40)
        chunk.run(dict(bindings))
        second = state["a"]
        # The action approaches the steady-state value smoothly.
        assert second > first
        assert second < 0.01 * 40

    def test_controller_balances_cluster(self):
        config = make_config(num_mds=2, num_clients=4,
                             heartbeat_interval=1.0, dir_split_size=400)
        report = run_experiment(
            config,
            CreateWorkload(num_clients=4, files_per_client=4000,
                           shared_dir=True),
            policy=feedback_policy(setpoint=60.0),
        )
        assert report.total_migrations >= 1
        assert report.per_mds_ops().get(1, 0) > 0
