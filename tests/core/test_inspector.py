"""Decision-log analysis tools."""

import pytest

from repro.cluster import run_experiment
from repro.core.inspector import (
    DecisionAnalysis,
    Migration,
    balance_timeline,
    summarize_behaviour,
)
from repro.core.policies import (
    adaptable_too_aggressive_policy,
    greedy_spill_policy,
)
from repro.workloads import CreateWorkload
from tests.conftest import make_config


def mig(t, src, dst, path="/d#0*0", load=10.0):
    return Migration(time=t, source=src, target=dst, path=path, load=load)


class TestDecisionAnalysis:
    def test_empty_log(self):
        analysis = DecisionAnalysis([], makespan=10.0, num_ranks=2)
        assert analysis.migration_count == 0
        assert analysis.time_to_first_balance() == float("inf")
        assert analysis.settle_time() == 0.0
        assert analysis.settle_fraction() == 0.0
        assert not analysis.thrash().is_thrashing

    def test_cadence(self):
        analysis = DecisionAnalysis(
            [mig(20.0, 0, 1), mig(10.0, 0, 1, path="/e#0*0")],
            makespan=100.0, num_ranks=2,
        )
        assert analysis.time_to_first_balance() == 10.0
        assert analysis.settle_time() == 20.0
        assert analysis.settle_fraction() == pytest.approx(0.2)
        assert analysis.load_moved() == 20.0

    def test_ping_pong_detection(self):
        analysis = DecisionAnalysis(
            [mig(10.0, 0, 1), mig(20.0, 1, 0)],
            makespan=50.0, num_ranks=2,
        )
        thrash = analysis.thrash()
        assert thrash.is_thrashing
        assert thrash.ping_pongs == [("/d#0*0", 0, 1)]
        assert thrash.repeat_moves == {"/d#0*0": 2}
        assert thrash.total_excess_moves == 1

    def test_repeat_without_ping_pong(self):
        analysis = DecisionAnalysis(
            [mig(10.0, 0, 1), mig(20.0, 1, 2)],
            makespan=50.0, num_ranks=3,
        )
        thrash = analysis.thrash()
        assert thrash.repeat_moves == {"/d#0*0": 2}
        assert thrash.ping_pongs == []

    def test_flow_by_rank(self):
        analysis = DecisionAnalysis(
            [mig(1, 0, 1), mig(2, 0, 2, path="/x"), mig(3, 1, 2, path="/y")],
            makespan=10.0, num_ranks=3,
        )
        assert analysis.exports_by_rank() == {0: 2, 1: 1, 2: 0}
        assert analysis.imports_by_rank() == {0: 0, 1: 1, 2: 2}


class TestWithRealRuns:
    @pytest.fixture(scope="class")
    def greedy_report(self):
        return run_experiment(
            make_config(num_mds=2, num_clients=4, heartbeat_interval=1.0,
                        dir_split_size=400),
            CreateWorkload(num_clients=4, files_per_client=3000,
                           shared_dir=True),
            policy=greedy_spill_policy(),
        )

    def test_from_report(self, greedy_report):
        analysis = DecisionAnalysis.from_report(greedy_report)
        assert analysis.migration_count == greedy_report.total_migrations
        assert analysis.time_to_first_balance() < greedy_report.makespan

    def test_balance_timeline_improves_after_spill(self, greedy_report):
        timeline = balance_timeline(greedy_report, window=1.0)
        assert timeline
        # All windows pre-spill are fully imbalanced (cv of [x, 0]).
        first_cv = timeline[0][1]
        last_cv = timeline[-1][1]
        assert last_cv < first_cv

    def test_thrashy_policy_detected(self):
        report = run_experiment(
            make_config(num_mds=3, num_clients=4, heartbeat_interval=1.0,
                        dir_split_size=400),
            CreateWorkload(num_clients=4, files_per_client=6000,
                           shared_dir=True),
            policy=adaptable_too_aggressive_policy(),
        )
        analysis = DecisionAnalysis.from_report(report)
        # The too-aggressive balancer keeps migrating late into the run.
        assert analysis.settle_fraction() > 0.5

    def test_summary_text(self, greedy_report):
        text = summarize_behaviour(greedy_report)
        assert "greedy-spill" in text
        assert "migrations:" in text
        assert "final balance cv:" in text

    def test_balance_timeline_window_validation(self, greedy_report):
        with pytest.raises(ValueError):
            balance_timeline(greedy_report, window=0)
