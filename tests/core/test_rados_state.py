"""RADOS-backed balancer state (paper §3.1 future work)."""

import numpy as np

from repro.core.state import RadosBalancerState
from repro.rados.cluster import RadosCluster
from repro.sim.engine import SimEngine
from repro.sim.network import Network
from repro.sim.rng import RngStreams


def make_rados():
    engine = SimEngine()
    rngs = RngStreams(seed=0)
    network = Network(engine, rngs.stream("net"), base_latency=0.0001,
                      jitter_cv=0.0)
    return engine, RadosCluster(engine, network, rngs, num_osds=3)


class TestRadosBalancerState:
    def test_write_persists_to_rados(self):
        engine, rados = make_rados()
        state = RadosBalancerState(rados)
        state.write(0, 3.5)
        engine.run()
        assert rados.exists("mantle.state.mds0")
        assert rados.get_payload("mantle.state.mds0") == 3.5
        assert state.rados_writes == 1

    def test_read_is_local_and_fast(self):
        engine, rados = make_rados()
        state = RadosBalancerState(rados)
        state.write(2, "hot")
        # No simulation time needs to pass for reads.
        assert state.read(2) == "hot"

    def test_recovery_after_restart(self):
        engine, rados = make_rados()
        state = RadosBalancerState(rados)
        state.write(0, 7.0)
        state.write(1, 9.0)
        engine.run()

        # A fresh state store (an MDS restart) recovers from RADOS.
        recovered = RadosBalancerState(rados)
        assert recovered.read(0) is None
        recovered.recover_all(num_ranks=2)
        assert recovered.read(0) == 7.0
        assert recovered.read(1) == 9.0

    def test_recover_missing_slot_is_none(self):
        engine, rados = make_rados()
        state = RadosBalancerState(rados)
        assert state.recover(5) is None

    def test_per_rank_objects(self):
        engine, rados = make_rados()
        state = RadosBalancerState(rados, prefix="custom")
        state.write(0, 1)
        state.write(1, 2)
        engine.run()
        assert rados.exists("custom.mds0")
        assert rados.exists("custom.mds1")

    def test_bound_functions_write_through(self):
        engine, rados = make_rados()
        state = RadosBalancerState(rados)
        wrstate, rdstate = state.bound_functions(3)
        wrstate(42)
        engine.run()
        assert rdstate() == 42
        assert rados.get_payload("mantle.state.mds3") == 42

    def test_writes_consume_osd_time(self):
        engine, rados = make_rados()
        state = RadosBalancerState(rados)
        state.write(0, 1)
        engine.run()
        assert engine.now > 0
        assert rados.total_writes() > 0
