"""MantleBalancer: the tick pipeline on a real mini-cluster."""


from repro.clients.ops import OpKind
from repro.cluster import SimulatedCluster
from repro.core.api import MantlePolicy
from repro.core.balancer import MantleBalancer
from tests.conftest import make_config


def heat_up(cluster, directory_path, hits=50, kind="IWR"):
    """Put decayed load on a directory and on rank 0's MDS counters."""
    d = cluster.namespace.resolve_dir(directory_path)
    now = cluster.engine.now
    for _ in range(hits):
        cluster.namespace.record_hit(d, None, kind, now)
        cluster.mdss[0].auth_load.hit(kind, now)
        cluster.mdss[0].all_load.hit(kind, now)


def exchange_heartbeats(cluster):
    for mds in cluster.mdss:
        beat = mds._snapshot_metrics()
        for peer in cluster.mdss:
            peer.hb_table.store(beat, cluster.engine.now)


def spill_policy(**overrides):
    fields = dict(
        name="test-spill",
        metaload="IWR",
        mdsload='MDSs[i]["all"]',
        when="go = MDSs[whoami]['load'] > 1 and MDSs[whoami+1] ~= nil "
             "and MDSs[whoami+1]['load'] < 1",
        where="targets[whoami+1] = MDSs[whoami]['load']/2",
        howmuch=("big_first",),
    )
    fields.update(overrides)
    return MantlePolicy(**fields)


class TestTickGuards:
    def test_single_rank_skips(self):
        cluster = SimulatedCluster(make_config(num_mds=1),
                                   policy=spill_policy())
        decision = cluster.balancer.tick(cluster.mdss[0])
        assert decision.skipped == "single MDS"

    def test_incomplete_heartbeats_skip(self):
        cluster = SimulatedCluster(make_config(num_mds=2),
                                   policy=spill_policy())
        decision = cluster.balancer.tick(cluster.mdss[0])
        assert decision.skipped == "heartbeats incomplete"

    def test_no_go_when_balanced(self):
        cluster = SimulatedCluster(make_config(num_mds=2),
                                   policy=spill_policy())
        exchange_heartbeats(cluster)
        decision = cluster.balancer.tick(cluster.mdss[0])
        assert not decision.went


class TestDecisionFlow:
    def make_hot_cluster(self, policy=None, files=30):
        cluster = SimulatedCluster(make_config(num_mds=2),
                                   policy=policy or spill_policy())
        cluster.namespace.mkdirs("/hot")
        for i in range(files):
            cluster.namespace.create(f"/hot/f{i}")
        heat_up(cluster, "/hot", hits=200)
        exchange_heartbeats(cluster)
        return cluster

    def test_overloaded_rank_exports(self):
        cluster = self.make_hot_cluster()
        decision = cluster.balancer.tick(cluster.mdss[0])
        assert decision.went
        assert decision.targets
        assert decision.exports
        path, load, target = decision.exports[0]
        assert target == 1
        assert load > 0

    def test_export_actually_migrates(self):
        cluster = self.make_hot_cluster()
        cluster.balancer.tick(cluster.mdss[0])
        cluster.engine.run()
        # The hot content (its dirfrag) now lives on rank 1.
        assert cluster.namespace.authority_for_path("/hot/f0") == 1
        assert cluster.metrics.mds(0).migrations == 1

    def test_no_double_export_while_in_flight(self):
        cluster = self.make_hot_cluster()
        cluster.balancer.tick(cluster.mdss[0])
        decision = cluster.balancer.tick(cluster.mdss[0])
        assert decision.skipped == "migration in flight"

    def test_idle_rank_does_not_export(self):
        cluster = self.make_hot_cluster()
        decision = cluster.balancer.tick(cluster.mdss[1])
        assert not decision.went

    def test_lua_runtime_error_aborts_cleanly(self):
        policy = spill_policy(when="go = MDSs[99]['load'] > 0")
        cluster = self.make_hot_cluster(policy=policy)
        decision = cluster.balancer.tick(cluster.mdss[0])
        assert decision.error is not None
        assert not decision.exports
        assert cluster.balancer.errors == 1

    def test_need_min_scales_target(self):
        full = self.make_hot_cluster(policy=spill_policy())
        d_full = full.balancer.tick(full.mdss[0])
        scaled = self.make_hot_cluster(
            policy=spill_policy(need_min_factor=0.5))
        d_scaled = scaled.balancer.tick(scaled.mdss[0])
        shipped_full = sum(load for _p, load, _t in d_full.exports)
        shipped_scaled = sum(load for _p, load, _t in d_scaled.exports)
        assert shipped_scaled <= shipped_full


class TestNamespacePartitioning:
    def test_oversized_subtree_is_drilled_into(self):
        """A subtree too popular to move whole must be divided (§3.2)."""
        cluster = SimulatedCluster(make_config(num_mds=2),
                                   policy=spill_policy())
        cluster.namespace.mkdirs("/big/a")
        cluster.namespace.mkdirs("/big/b")
        now = cluster.engine.now
        for sub in ("a", "b"):
            d = cluster.namespace.resolve_dir(f"/big/{sub}")
            for _ in range(100):
                cluster.namespace.record_hit(d, None, "IWR", now)
        for _ in range(200):
            cluster.mdss[0].auth_load.hit("IWR", now)
            cluster.mdss[0].all_load.hit("IWR", now)
        exchange_heartbeats(cluster)
        decision = cluster.balancer.tick(cluster.mdss[0])
        assert decision.went
        paths = [path for path, _l, _t in decision.exports]
        # Target is half the load; /big holds all of it, so the balancer
        # must export /big/a or /big/b, not /big itself.
        assert "/big" not in paths
        assert any(path.startswith("/big/") for path in paths)

    def test_dirfrag_owner_without_subtree_can_export(self):
        """A rank owning only dirfrags must still find export candidates."""
        cluster = SimulatedCluster(make_config(num_mds=3),
                                   policy=spill_policy())
        cluster.namespace.mkdirs("/d")
        d = cluster.namespace.resolve_dir("/d")
        for i in range(32):
            cluster.namespace.create(f"/d/f{i}")
        d.fragment(extra_bits=2, now=cluster.engine.now)
        now = cluster.engine.now
        for frag in d.frags.values():
            frag.set_auth(1)
            frag.record("IWR", now, 50.0)
        for _ in range(200):
            cluster.mdss[1].auth_load.hit("IWR", now)
            cluster.mdss[1].all_load.hit("IWR", now)
        exchange_heartbeats(cluster)
        decision = cluster.balancer.tick(cluster.mdss[1])
        assert decision.went
        assert decision.exports
        assert all(path.startswith("/d#") for path, _l, _t in
                   decision.exports)

    def test_frozen_units_not_reexported(self):
        cluster = SimulatedCluster(make_config(num_mds=2),
                                   policy=spill_policy())
        cluster.namespace.mkdirs("/hot")
        heat_up(cluster, "/hot", hits=200)
        d = cluster.namespace.resolve_dir("/hot")
        for frag in d.frags.values():
            frag.frozen = True
        exchange_heartbeats(cluster)
        decision = cluster.balancer.tick(cluster.mdss[0])
        assert not decision.exports


class TestDecisionLog:
    def test_decisions_accumulate(self):
        cluster = SimulatedCluster(make_config(num_mds=2),
                                   policy=spill_policy())
        exchange_heartbeats(cluster)
        cluster.balancer.tick(cluster.mdss[0])
        cluster.balancer.tick(cluster.mdss[1])
        assert len(cluster.balancer.decisions) == 2
        assert cluster.balancer.last_decision().rank == 1
        assert cluster.balancer.migrations_decided() == 0
