"""The lint gate in the injection path + validator integration.

Covers: ``set_policy`` refusing a lint-failing policy (and the two bypass
levers), the ``PolicyVersion.lint`` audit column, ``SimReport``
attachments, hook attribution of combined-chunk errors in the validator,
and the byte-identity of simulation results with lint on vs off.
"""

import pytest

from repro.analysis import PolicyLintError
from repro.cluster import SimulatedCluster
from repro.config import ClusterConfig
from repro.core.api import MantlePolicy
from repro.core.policies import greedy_spill_policy
from repro.core.validator import ValidationReport, validate_policy
from repro.workloads import CreateWorkload


def small_config(**kwargs):
    return ClusterConfig(num_mds=2, num_clients=2, seed=7, **kwargs)


def broken_policy():
    return MantlePolicy(name="broken", when="go = zork > 5")


# -- the set_policy gate ----------------------------------------------------

class TestInjectionGate:
    def test_lint_error_blocks_injection(self):
        cluster = SimulatedCluster(small_config())
        with pytest.raises(PolicyLintError) as excinfo:
            cluster.set_policy(broken_policy())
        assert "M101" in str(excinfo.value)
        assert "--no-lint" in str(excinfo.value)
        # Nothing was committed: the store has no version of it.
        assert all(v.name != "broken"
                   for v in cluster.policy_store.log())

    def test_per_call_bypass(self):
        cluster = SimulatedCluster(small_config())
        cluster.set_policy(broken_policy(), lint=False)
        version = cluster.policy_store.log()[-1]
        assert version.name == "broken"
        assert version.lint == ""  # audit trail: injected unchecked

    def test_cluster_level_bypass(self):
        cluster = SimulatedCluster(small_config(), lint_policies=False)
        cluster.set_policy(broken_policy())
        assert cluster.policy_store.log()[-1].lint == ""

    def test_clean_policy_records_lint_summary(self):
        cluster = SimulatedCluster(small_config())
        cluster.set_policy(greedy_spill_policy())
        version = cluster.policy_store.log()[-1]
        assert version.lint == "lint:clean"

    def test_constructor_policy_goes_through_gate(self):
        with pytest.raises(PolicyLintError):
            SimulatedCluster(small_config(), policy=broken_policy())

    def test_report_carries_lint_reports(self):
        cluster = SimulatedCluster(small_config(),
                                   policy=greedy_spill_policy())
        report = cluster.run_workload(
            CreateWorkload(num_clients=2, files_per_client=100,
                           shared_dir=True))
        assert report.lint_reports["greedy-spill"].ok

    def test_lint_flag_does_not_change_results(self):
        def run(lint_policies):
            cluster = SimulatedCluster(small_config(),
                                       policy=greedy_spill_policy(),
                                       lint_policies=lint_policies)
            return cluster.run_workload(
                CreateWorkload(num_clients=2, files_per_client=200,
                               shared_dir=True))

        checked, unchecked = run(True), run(False)
        assert checked.summary_line() == unchecked.summary_line()
        assert checked.per_mds_ops() == unchecked.per_mds_ops()
        assert checked.total_migrations == unchecked.total_migrations


# -- validator integration --------------------------------------------------

class TestValidatorLint:
    def test_lint_findings_become_problems(self):
        report = validate_policy(broken_policy())
        assert not report.ok
        assert any(p.startswith("lint: error[M101]")
                   for p in report.problems)
        assert report.diagnostics  # structured findings attached

    def test_no_lint_skips_static_analysis(self):
        report = validate_policy(broken_policy(), lint=False)
        assert not any(p.startswith("lint:") for p in report.problems)
        assert report.diagnostics == ()
        # The dry-run still catches the undefined global at runtime.
        assert not report.ok

    def test_lint_warnings_become_warnings(self):
        policy = MantlePolicy(name="warny",
                              when="unused = 42\ngo = total > 1e9")
        report = validate_policy(policy)
        assert report.ok
        assert any(w.startswith("lint: warning[M104]")
                   for w in report.warnings)

    def test_when_syntax_attributed(self):
        report = validate_policy(
            MantlePolicy(name="bad", when="go = = 1"), lint=False)
        assert any(p.startswith("when syntax:") for p in report.problems)

    def test_where_syntax_attributed(self):
        report = validate_policy(
            MantlePolicy(name="bad", when="go = true",
                         where="targets[1] = = 2"), lint=False)
        assert any(p.startswith("where syntax:") for p in report.problems)

    def test_when_runtime_attributed_with_line(self):
        report = validate_policy(
            MantlePolicy(name="bad", when="x = RDstate() + 1\ngo = x > 0"))
        assert any(p.startswith("when runtime (when:1):")
                   for p in report.problems)

    def test_where_runtime_attributed_with_line(self):
        report = validate_policy(
            MantlePolicy(name="bad", when="go = true",
                         where="targets[1] = RDstate() + 1"))
        assert any(p.startswith("where runtime (where:1):")
                   for p in report.problems)

    def test_problem_and_warning_dedupe(self):
        report = ValidationReport(policy_name="x")
        report.add_problem("same")
        report.add_problem("same")
        report.add_warning("w")
        report.add_warning("w")
        assert report.problems == ["same"]
        assert report.warnings == ["w"]
