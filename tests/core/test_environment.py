"""The Mantle environment (paper Table 2): formulas, bindings, targets."""

import pytest
from hypothesis import given, strategies as st

from repro.core.environment import (
    build_decision_bindings,
    compile_mdsload,
    compile_metaload,
    extract_targets,
)
from repro.luapolicy import LuaRuntimeError, run_policy
from repro.luapolicy.sandbox import compile_load_expression
from repro.namespace.counters import OP_KINDS


def snapshot(**values):
    base = {kind: 0.0 for kind in OP_KINDS}
    base.update(values)
    return base


class TestMetaloadCompilation:
    def test_cephfs_formula(self):
        fn = compile_metaload("IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE")
        assert fn(snapshot(IRD=1, IWR=2, READDIR=3, FETCH=4, STORE=5)) == 36.0

    def test_single_metric(self):
        fn = compile_metaload("IWR")
        assert fn(snapshot(IWR=7)) == 7.0

    def test_unknown_metric_raises(self):
        fn = compile_metaload("BOGUS + 1")
        with pytest.raises(LuaRuntimeError):
            fn(snapshot())

    def test_transpiled_matches_interpreter(self):
        source = "IRD + 2*IWR - READDIR/4"
        fast = compile_metaload(source)
        values = snapshot(IRD=3, IWR=5, READDIR=8)
        slow = compile_load_expression(source).run(values).return_value
        assert fast(values) == pytest.approx(slow)

    def test_complex_formula_falls_back_to_interpreter(self):
        fn = compile_metaload("max(IRD, IWR) + math.floor(READDIR)")
        assert fn(snapshot(IRD=2, IWR=9, READDIR=3.7)) == 12.0

    def test_non_numeric_result_raises(self):
        fn = compile_metaload('"text"')
        with pytest.raises(LuaRuntimeError):
            fn(snapshot())

    @given(ird=st.floats(0, 1e5), iwr=st.floats(0, 1e5),
           rdd=st.floats(0, 1e5), fetch=st.floats(0, 1e5),
           store=st.floats(0, 1e5))
    def test_transpiler_equivalence_property(self, ird, iwr, rdd, fetch,
                                             store):
        source = "IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE"
        values = snapshot(IRD=ird, IWR=iwr, READDIR=rdd, FETCH=fetch,
                          STORE=store)
        fast = compile_metaload(source)(values)
        slow = compile_load_expression(source).run(values).return_value
        assert fast == pytest.approx(slow)


class TestMdsloadCompilation:
    METRICS = [
        {"auth": 100.0, "all": 120.0, "cpu": 90.0, "mem": 40.0,
         "q": 5.0, "req": 2000.0},
        {"auth": 10.0, "all": 15.0, "cpu": 10.0, "mem": 10.0,
         "q": 0.0, "req": 100.0},
    ]

    def test_cephfs_formula(self):
        fn = compile_mdsload(
            '0.8*MDSs[i]["auth"] + 0.2*MDSs[i]["all"] + MDSs[i]["req"]'
            ' + 10*MDSs[i]["q"]'
        )
        assert fn(self.METRICS, 0) == pytest.approx(
            0.8 * 100 + 0.2 * 120 + 2000 + 50
        )
        assert fn(self.METRICS, 1) == pytest.approx(
            0.8 * 10 + 0.2 * 15 + 100
        )

    def test_all_only(self):
        fn = compile_mdsload('MDSs[i]["all"]')
        assert fn(self.METRICS, 1) == 15.0

    def test_non_numeric_result_raises(self):
        fn = compile_mdsload("MDSs")
        with pytest.raises(LuaRuntimeError):
            fn(self.METRICS, 0)


class TestDecisionBindings:
    def run_decision(self, source, whoami=0, metrics=None):
        metrics = metrics or [
            {"auth": 10, "all": 12, "cpu": 50, "mem": 10, "q": 1,
             "req": 100, "load": 30.0},
            {"auth": 1, "all": 1, "cpu": 5, "mem": 5, "q": 0,
             "req": 10, "load": 2.0},
        ]
        state = {}
        bindings = build_decision_bindings(
            whoami=whoami,
            mds_metrics=metrics,
            local_counters=snapshot(IWR=5, IRD=3),
            auth_metaload=8.0,
            all_metaload=9.0,
            wrstate=lambda v=None: state.__setitem__("s", v),
            rdstate=lambda: state.get("s"),
        )
        return run_policy(source, bindings)

    def test_whoami_is_one_based(self):
        result = self.run_decision("x = whoami", whoami=0)
        assert result.python_value("x") == 1.0

    def test_mds_array_one_based(self):
        result = self.run_decision('x = MDSs[1]["load"] y = #MDSs')
        assert result.python_value("x") == 30.0
        assert result.python_value("y") == 2.0

    def test_total_is_sum_of_loads(self):
        result = self.run_decision("x = total")
        assert result.python_value("x") == 32.0

    def test_local_metrics_bound(self):
        result = self.run_decision(
            "a = IWR b = IRD c = authmetaload d = allmetaload"
        )
        assert result.python_value("a") == 5.0
        assert result.python_value("b") == 3.0
        assert result.python_value("c") == 8.0
        assert result.python_value("d") == 9.0

    def test_wrstate_rdstate_roundtrip(self):
        result = self.run_decision("WRstate(3) x = RDstate()")
        assert result.python_value("x") == 3.0

    def test_targets_table_present(self):
        result = self.run_decision("targets[2] = 5.5")
        assert result.python_value("targets") == {2: 5.5}


class TestExtractTargets:
    def test_one_based_to_zero_based(self):
        assert extract_targets({1: 10.0, 3: 5.0}, 4) == {0: 10.0, 2: 5.0}

    def test_list_form(self):
        assert extract_targets([1.0, 2.0], 4) == {0: 1.0, 1: 2.0}

    def test_out_of_range_dropped(self):
        assert extract_targets({0: 5.0, 9: 5.0}, 4) == {}

    def test_non_positive_dropped(self):
        assert extract_targets({1: 0.0, 2: -3.0}, 4) == {}

    def test_garbage_dropped(self):
        assert extract_targets({"x": 1.0, 1: "y", 2.5: 3.0}, 4) == {}
        assert extract_targets("nonsense", 4) == {}
        assert extract_targets(None, 4) == {}

    def test_fractional_index_dropped(self):
        assert extract_targets({1.5: 3.0}, 4) == {}

    def test_float_integral_index_kept(self):
        assert extract_targets({2.0: 3.0}, 4) == {1: 3.0}
