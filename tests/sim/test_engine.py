"""Event engine: ordering, cancellation, completions, processes."""

import pytest

from repro.sim.engine import CancelledError, SimEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimEngine()
        fired = []
        engine.schedule(2.0, fired.append, "b")
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(3.0, fired.append, "c")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        engine = SimEngine()
        fired = []
        for tag in "abc":
            engine.schedule(1.0, fired.append, tag)
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        engine = SimEngine()
        times = []
        engine.schedule(5.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [5.0]
        assert engine.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimEngine().schedule(-1.0, lambda: None)

    def test_cancel_prevents_execution(self):
        engine = SimEngine()
        fired = []
        handle = engine.schedule(1.0, fired.append, "x")
        handle.cancel()
        engine.run()
        assert fired == []

    def test_schedule_at_absolute(self):
        engine = SimEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        fired = []
        engine.schedule_at(4.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [4.0]

    def test_schedule_at_past_rejected(self):
        engine = SimEngine()
        engine.schedule(2.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)

    def test_run_until_stops_at_time(self):
        engine = SimEngine()
        fired = []
        engine.schedule(1.0, fired.append, 1)
        engine.schedule(10.0, fired.append, 10)
        engine.run_until(5.0)
        assert fired == [1]
        assert engine.now == 5.0
        assert engine.pending == 1

    def test_events_executed_counter(self):
        engine = SimEngine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.events_executed == 5


class TestPeriodic:
    def test_every_repeats_until_stopped(self):
        engine = SimEngine()
        ticks = []

        def tick():
            ticks.append(engine.now)
            if len(ticks) == 3:
                stop()

        stop = engine.every(10.0, tick)
        engine.run()
        assert ticks == [10.0, 20.0, 30.0]

    def test_every_start_after(self):
        engine = SimEngine()
        ticks = []
        stop = engine.every(10.0, lambda: ticks.append(engine.now),
                            start_after=1.0)
        engine.run_until(22.0)
        stop()
        assert ticks == [1.0, 11.0, 21.0]

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError):
            SimEngine().every(0, lambda: None)


class TestCompletions:
    def test_succeed_delivers_value(self):
        engine = SimEngine()
        completion = engine.completion()
        seen = []
        completion.add_callback(lambda c: seen.append(c.value))
        completion.succeed(42)
        assert seen == [42]

    def test_callback_after_done_fires_immediately(self):
        engine = SimEngine()
        completion = engine.completion()
        completion.succeed("v")
        seen = []
        completion.add_callback(lambda c: seen.append(c.value))
        assert seen == ["v"]

    def test_double_succeed_raises(self):
        completion = SimEngine().completion()
        completion.succeed(1)
        with pytest.raises(RuntimeError):
            completion.succeed(2)

    def test_value_before_done_raises(self):
        with pytest.raises(RuntimeError):
            _ = SimEngine().completion().value

    def test_fail_propagates(self):
        completion = SimEngine().completion()
        completion.fail(ValueError("boom"))
        with pytest.raises(ValueError):
            _ = completion.value

    def test_timeout_completion(self):
        engine = SimEngine()
        completion = engine.timeout(3.0, "done")
        assert engine.run_until_complete(completion) == "done"
        assert engine.now == 3.0


class TestProcesses:
    def test_process_yields_delays(self):
        engine = SimEngine()
        trace = []

        def proc():
            trace.append(engine.now)
            yield 1.5
            trace.append(engine.now)
            yield 2.5
            trace.append(engine.now)

        engine.process(proc())
        engine.run()
        assert trace == [0.0, 1.5, 4.0]

    def test_process_yields_completions(self):
        engine = SimEngine()
        results = []

        def proc():
            value = yield engine.timeout(2.0, "hello")
            results.append(value)

        engine.process(proc())
        engine.run()
        assert results == ["hello"]

    def test_process_return_value(self):
        engine = SimEngine()

        def proc():
            yield 1.0
            return 99

        process = engine.process(proc())
        assert engine.run_until_complete(process.completion) == 99

    def test_exception_thrown_into_process(self):
        engine = SimEngine()
        caught = []

        def proc():
            completion = engine.completion()
            engine.schedule(1.0, completion.fail, RuntimeError("nope"))
            try:
                yield completion
            except RuntimeError as exc:
                caught.append(str(exc))

        engine.process(proc())
        engine.run()
        assert caught == ["nope"]

    def test_cancelled_completion_cancels_process(self):
        engine = SimEngine()

        def proc():
            completion = engine.completion()
            engine.schedule(1.0, completion.cancel)
            yield completion

        process = engine.process(proc())
        engine.run()
        with pytest.raises(CancelledError):
            _ = process.completion.value

    def test_bad_yield_type_raises(self):
        engine = SimEngine()

        def proc():
            yield "not a delay"

        engine.process(proc())
        with pytest.raises(TypeError):
            engine.run()

    def test_run_until_complete_detects_starvation(self):
        engine = SimEngine()
        never = engine.completion()
        with pytest.raises(RuntimeError, match="drained"):
            engine.run_until_complete(never)

    def test_max_events_guard(self):
        engine = SimEngine()

        def forever():
            while True:
                yield 1.0

        engine.process(forever())
        with pytest.raises(RuntimeError, match="exceeded"):
            engine.run(max_events=100)
