"""The warm-start fork barrier: ``run_before`` and RNG state capture.

``run_before(t)`` executes exactly the events a full run would execute
before *t* -- same order, same clock -- and leaves the heap intact so a
subsequent ``run``/``run_until_complete`` finishes the identical
sequence.  That split is what lets forked cells share a prefix without
changing a single event.
"""

import pytest

from repro.sim.engine import Completion, SimEngine
from repro.sim.rng import RngStreams


class TestRunBefore:
    def test_splits_exactly_at_the_barrier(self):
        engine = SimEngine()
        fired = []
        for when in (1.0, 2.0, 5.0, 9.999, 10.0, 10.5):
            engine.schedule(when, fired.append, when)
        engine.run_before(10.0)
        assert fired == [1.0, 2.0, 5.0, 9.999]
        assert engine.now == 9.999
        engine.run()
        assert fired == [1.0, 2.0, 5.0, 9.999, 10.0, 10.5]

    def test_split_run_matches_unsplit_run(self):
        def build():
            engine = SimEngine()
            fired = []

            def chain(n):
                fired.append((engine.now, n))
                if n:
                    engine.schedule(1.5, chain, n - 1)

            engine.schedule(0.5, chain, 12)
            return engine, fired

        whole_engine, whole = build()
        whole_engine.run()
        split_engine, split = build()
        split_engine.run_before(10.0)
        split_engine.run()
        assert split == whole

    def test_ties_at_barrier_stay_after_it(self):
        engine = SimEngine()
        fired = []
        engine.schedule(10.0, fired.append, "a")
        engine.schedule(10.0, fired.append, "b")
        engine.run_before(10.0)
        assert fired == []
        engine.run()
        assert fired == ["a", "b"]

    def test_stops_when_completion_fires_early(self):
        # run_until_complete stops mid-heap the instant the workload
        # completion fires; run_before must do the same or warm runs
        # would execute leftover events a cold run never ran.
        engine = SimEngine()
        done = Completion(engine)
        fired = []
        engine.schedule(1.0, fired.append, 1.0)
        engine.schedule(2.0, done.succeed)
        engine.schedule(3.0, fired.append, 3.0)
        engine.run_before(10.0, completion=done)
        assert fired == [1.0]

    def test_cancelled_events_are_skipped(self):
        engine = SimEngine()
        fired = []
        handle = engine.schedule(1.0, fired.append, "cancelled")
        engine.schedule(2.0, fired.append, "kept")
        handle.cancel()
        engine.run_before(5.0)
        assert fired == ["kept"]


class TestRngStateCapture:
    def test_state_round_trip_replays_identical_draws(self):
        streams = RngStreams(seed=42)
        source = streams.stream("service")
        source.normal(size=4)
        snapshot = streams.state()
        first = source.normal(size=8).tolist()
        streams.set_state(snapshot)
        assert streams.stream("service").normal(size=8).tolist() == first

    def test_state_restores_into_fresh_streams(self):
        streams = RngStreams(seed=42)
        streams.stream("a").random(3)
        other = RngStreams(seed=999)
        other.set_state(streams.state())
        assert other.stream("a").random(5).tolist() \
            == streams.stream("a").random(5).tolist()

    def test_fingerprint_tracks_consumption(self):
        streams = RngStreams(seed=7)
        streams.stream("x")
        before = streams.state_fingerprint()
        assert before == streams.state_fingerprint()
        streams.stream("x").random()
        assert streams.state_fingerprint() != before


class TestTimelinePickle:
    def test_round_trip_preserves_series(self):
        # SimReports cross pipe/cache boundaries; the timeline's nested
        # defaultdicts must survive pickling.
        import pickle

        from repro.metrics.collectors import Timeline
        timeline = Timeline(bucket=1.0)
        timeline.record(0, 0.4)
        timeline.record(0, 3.2, amount=5)
        timeline.record(1, 2.8)
        clone = pickle.loads(pickle.dumps(timeline))
        assert clone.ranks() == timeline.ranks()
        for rank in timeline.ranks():
            assert clone.series(rank).tolist() \
                == timeline.series(rank).tolist()
        # The restored defaultdicts still accept new records.
        clone.record(2, 9.9)
        assert clone.ranks() == [0, 1, 2]


@pytest.mark.parametrize("workload_name", ["create", "zipf"])
def test_shared_prefix_end_is_the_first_heartbeat(workload_name):
    from repro.config import ClusterConfig
    from repro.workloads import CreateWorkload, ZipfWorkload
    config = ClusterConfig(num_mds=2, num_clients=2, seed=1)
    if workload_name == "create":
        workload = CreateWorkload(num_clients=2, files_per_client=10)
    else:
        workload = ZipfWorkload(num_clients=2, num_files=10,
                                ops_per_client=10)
    assert workload.shared_prefix_end(config) \
        == pytest.approx(config.heartbeat_interval)
