"""Higher-level process patterns on the engine: fan-out/fan-in, chained
request/response, periodic jitter, cancellation mid-chain."""

import numpy as np
import pytest

from repro.sim.engine import SimEngine
from repro.sim.network import Network
from repro.sim.rng import RngStreams
from repro.sim.stations import FifoStation


class TestFanOutFanIn:
    def test_scatter_gather_pattern(self):
        """The migration code's pattern: fan out work, await all."""
        engine = SimEngine()
        results = []

        def worker(delay, tag):
            yield delay
            return tag

        def coordinator():
            processes = [
                engine.process(worker(d, t))
                for d, t in ((3.0, "a"), (1.0, "b"), (2.0, "c"))
            ]
            for process in processes:
                results.append((yield process.completion))

        engine.process(coordinator())
        engine.run()
        # Awaited in spawn order; total time = the slowest leg.
        assert results == ["a", "b", "c"]
        assert engine.now == pytest.approx(3.0)

    def test_pipeline_through_two_stations(self):
        engine = SimEngine()
        rng = np.random.default_rng(0)
        first = FifoStation(engine, "first", rng)
        second = FifoStation(engine, "second", rng)
        done = []

        def job(tag):
            yield first.submit(tag, 1.0)
            yield second.submit(tag, 2.0)
            done.append((tag, engine.now))

        engine.process(job("x"))
        engine.process(job("y"))
        engine.run()
        # Classic pipeline: second station is the bottleneck.
        assert done[0] == ("x", pytest.approx(3.0))
        assert done[1] == ("y", pytest.approx(5.0))


class TestTimeBehaviour:
    def test_periodic_with_jitter_stays_positive(self):
        engine = SimEngine()
        rng = np.random.default_rng(1)
        ticks = []
        stop = engine.every(1.0, lambda: ticks.append(engine.now),
                            jitter=lambda: float(rng.normal(0, 0.1)))
        engine.run_until(10.0)
        stop()
        assert len(ticks) >= 8
        assert all(b > a for a, b in zip(ticks, ticks[1:]))

    def test_network_request_latency_accumulates(self):
        engine = SimEngine()
        network = Network(engine, np.random.default_rng(0),
                          base_latency=0.01, jitter_cv=0.0)
        hops = []

        def server(completion):
            completion.succeed(engine.now)

        def chain():
            for _ in range(3):
                hops.append((yield network.request(server)))

        engine.process(chain())
        engine.run()
        assert hops == pytest.approx([0.01, 0.02, 0.03])


class TestRobustness:
    def test_callback_exception_propagates(self):
        """A crash in a completion callback surfaces, not silently lost."""
        engine = SimEngine()
        completion = engine.completion()

        def bad_callback(_c):
            raise RuntimeError("handler bug")

        completion.add_callback(bad_callback)
        engine.schedule(1.0, completion.succeed, None)
        with pytest.raises(RuntimeError, match="handler bug"):
            engine.run()

    def test_many_concurrent_processes(self):
        engine = SimEngine()
        counter = [0]

        def proc():
            yield 1.0
            counter[0] += 1

        for _ in range(500):
            engine.process(proc())
        engine.run()
        assert counter[0] == 500
        assert engine.now == pytest.approx(1.0)

    def test_rng_stream_isolation_under_station_load(self):
        """Two stations with their own streams don't perturb each other."""
        def run(extra_draws):
            engine = SimEngine()
            rngs = RngStreams(seed=4)
            a = FifoStation(engine, "a", rngs.stream("a"))
            b = FifoStation(engine, "b", rngs.stream("b"))
            if extra_draws:
                b.rng.random(100)  # unrelated consumption on b's stream
            finish = []
            from repro.sim.rng import ServiceTime
            dist = ServiceTime(0.01, cv=0.5)
            for _ in range(20):
                a.submit("x", dist)
            engine.run()
            return a.busy_time

        assert run(False) == pytest.approx(run(True))
