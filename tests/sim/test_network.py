"""Network latency model."""

import numpy as np
import pytest

from repro.sim.engine import SimEngine
from repro.sim.network import Network


def make_network(engine, base=0.001, jitter=0.0):
    return Network(engine, np.random.default_rng(0),
                   base_latency=base, jitter_cv=jitter)


class TestDelivery:
    def test_deliver_after_one_hop(self):
        engine = SimEngine()
        network = make_network(engine)
        times = []
        network.deliver(lambda: times.append(engine.now))
        engine.run()
        assert times == [pytest.approx(0.001)]

    def test_deliver_after_extra_delay(self):
        engine = SimEngine()
        network = make_network(engine)
        times = []
        network.deliver_after(0.5, lambda: times.append(engine.now))
        engine.run()
        assert times == [pytest.approx(0.501)]

    def test_messages_counted(self):
        engine = SimEngine()
        network = make_network(engine)
        for _ in range(3):
            network.deliver(lambda: None)
        assert network.messages_sent == 3

    def test_jitter_produces_spread(self):
        engine = SimEngine()
        network = make_network(engine, jitter=0.5)
        samples = [network.one_way() for _ in range(2000)]
        assert np.std(samples) > 0
        assert np.mean(samples) == pytest.approx(0.001, rel=0.05)

    def test_zero_jitter_deterministic(self):
        engine = SimEngine()
        network = make_network(engine, jitter=0.0)
        assert network.one_way() == network.one_way() == 0.001

    def test_request_response_roundtrip(self):
        engine = SimEngine()
        network = make_network(engine)

        def server(completion):
            completion.succeed("pong")

        def client():
            reply = yield network.request(server)
            return reply

        process = engine.process(client())
        assert engine.run_until_complete(process.completion) == "pong"
