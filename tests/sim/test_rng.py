"""RNG streams and service-time distributions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.rng import RngStreams, ServiceTime


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(seed=1).stream("mds0").random(5)
        b = RngStreams(seed=1).stream("mds0").random(5)
        assert np.allclose(a, b)

    def test_different_names_independent(self):
        streams = RngStreams(seed=1)
        a = streams.stream("mds0").random(5)
        b = streams.stream("mds1").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).stream("x").random(5)
        b = RngStreams(seed=2).stream("x").random(5)
        assert not np.allclose(a, b)

    def test_stream_is_cached(self):
        streams = RngStreams(seed=3)
        assert streams.stream("a") is streams.stream("a")

    def test_adding_stream_does_not_perturb_existing(self):
        """The property that justifies per-component substreams."""
        one = RngStreams(seed=9)
        first_draw = one.stream("client0").random(3)

        two = RngStreams(seed=9)
        two.stream("newcomer").random(100)  # interleaved usage
        second_draw = two.stream("client0").random(3)
        assert np.allclose(first_draw, second_draw)

    def test_spawn_prefixes_names(self):
        parent = RngStreams(seed=5)
        child = parent.spawn("osd")
        direct = RngStreams(seed=5).stream("osd/disk").random(3)
        via_child = child.stream("disk").random(3)
        assert np.allclose(direct, via_child)


class TestServiceTime:
    def test_mean_is_respected(self):
        rng = np.random.default_rng(0)
        dist = ServiceTime(0.001, cv=0.3)
        samples = [dist.sample(rng) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(0.001, rel=0.02)

    def test_cv_is_respected(self):
        rng = np.random.default_rng(0)
        dist = ServiceTime(1.0, cv=0.5)
        samples = np.array([dist.sample(rng) for _ in range(20_000)])
        assert samples.std() / samples.mean() == pytest.approx(0.5, rel=0.05)

    def test_zero_cv_is_deterministic(self):
        rng = np.random.default_rng(0)
        dist = ServiceTime(0.002, cv=0.0)
        assert dist.sample(rng) == 0.002
        assert dist.sample(rng) == 0.002

    def test_samples_always_positive(self):
        rng = np.random.default_rng(1)
        dist = ServiceTime(0.0001, cv=1.0)
        assert all(dist.sample(rng) > 0 for _ in range(1000))

    def test_scaled(self):
        dist = ServiceTime(0.002, cv=0.4)
        scaled = dist.scaled(2.0)
        assert scaled.mean == pytest.approx(0.004)
        assert scaled.cv == 0.4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ServiceTime(0.0)
        with pytest.raises(ValueError):
            ServiceTime(1.0, cv=-0.1)

    @settings(max_examples=25, deadline=None)
    @given(mean=st.floats(min_value=1e-6, max_value=10.0),
           cv=st.floats(min_value=0.0, max_value=2.0))
    def test_sample_positive_property(self, mean, cv):
        rng = np.random.default_rng(7)
        dist = ServiceTime(mean, cv=cv)
        for _ in range(20):
            assert dist.sample(rng) > 0
