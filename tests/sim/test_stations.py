"""FIFO service stations: ordering, utilisation, pause/resume."""

import numpy as np
import pytest

from repro.sim.engine import SimEngine
from repro.sim.rng import ServiceTime
from repro.sim.stations import FifoStation


def make_station(engine, servers=1, executor=None):
    rng = np.random.default_rng(0)
    return FifoStation(engine, "s", rng, servers=servers, executor=executor)


class TestFifoOrder:
    def test_jobs_complete_in_submission_order(self):
        engine = SimEngine()
        done = []
        station = make_station(engine, executor=done.append)
        for tag in "abc":
            station.submit(tag, 1.0)
        engine.run()
        assert done == ["a", "b", "c"]

    def test_completion_fires_with_executor_result(self):
        engine = SimEngine()
        station = make_station(engine, executor=lambda p: p * 2)
        completion = station.submit(21, 0.5)
        assert engine.run_until_complete(completion) == 42

    def test_single_server_serialises(self):
        engine = SimEngine()
        finish_times = []
        station = make_station(engine,
                               executor=lambda p: finish_times.append(engine.now))
        station.submit("a", 2.0)
        station.submit("b", 2.0)
        engine.run()
        assert finish_times == [2.0, 4.0]

    def test_multi_server_parallelises(self):
        engine = SimEngine()
        finish_times = []
        station = make_station(engine, servers=2,
                               executor=lambda p: finish_times.append(engine.now))
        station.submit("a", 2.0)
        station.submit("b", 2.0)
        engine.run()
        assert finish_times == [2.0, 2.0]

    def test_queue_length(self):
        engine = SimEngine()
        station = make_station(engine)
        for _ in range(4):
            station.submit("x", 1.0)
        assert station.in_service == 1
        assert station.queue_length == 3
        engine.run()
        assert station.queue_length == 0


class TestAccounting:
    def test_busy_time_accumulates(self):
        engine = SimEngine()
        station = make_station(engine)
        station.submit("a", 1.5)
        station.submit("b", 0.5)
        engine.run()
        assert station.busy_time == pytest.approx(2.0)
        assert station.jobs_done == 2

    def test_wait_time_tracked(self):
        engine = SimEngine()
        station = make_station(engine)
        station.submit("a", 2.0)
        station.submit("b", 2.0)  # waits 2s
        engine.run()
        assert station.mean_wait() == pytest.approx(1.0)

    def test_utilization_window_full_busy(self):
        engine = SimEngine()
        station = make_station(engine)
        station.submit("a", 5.0)
        engine.run_until(5.0)
        assert station.utilization_since_mark() == pytest.approx(1.0)

    def test_utilization_window_half_busy(self):
        engine = SimEngine()
        station = make_station(engine)
        station.submit("a", 5.0)
        engine.run_until(10.0)
        assert station.utilization_since_mark() == pytest.approx(0.5)

    def test_utilization_resets_after_mark(self):
        engine = SimEngine()
        station = make_station(engine)
        station.submit("a", 5.0)
        engine.run_until(5.0)
        station.utilization_since_mark()
        engine.run_until(10.0)
        assert station.utilization_since_mark() == pytest.approx(0.0)

    def test_utilization_counts_inflight_partial(self):
        engine = SimEngine()
        station = make_station(engine)
        station.submit("a", 10.0)
        engine.run_until(4.0)
        assert station.utilization_since_mark() == pytest.approx(1.0)


class TestPauseResume:
    def test_pause_stops_dispatch(self):
        engine = SimEngine()
        done = []
        station = make_station(engine, executor=done.append)
        station.pause()
        station.submit("a", 1.0)
        engine.run()
        assert done == []
        station.resume()
        engine.run()
        assert done == ["a"]

    def test_pause_does_not_interrupt_in_service(self):
        engine = SimEngine()
        done = []
        station = make_station(engine, executor=done.append)
        station.submit("a", 1.0)
        engine.run_until(0.5)
        station.pause()
        engine.run_until(2.0)
        assert done == ["a"]


class TestServiceTimes:
    def test_service_time_distribution_accepted(self):
        engine = SimEngine()
        station = make_station(engine)
        completion = station.submit("a", ServiceTime(0.01, cv=0.0))
        engine.run_until_complete(completion)
        assert engine.now == pytest.approx(0.01)

    def test_missing_service_rejected(self):
        engine = SimEngine()
        station = make_station(engine)
        with pytest.raises(ValueError):
            station.submit("a", None)

    def test_bad_server_count_rejected(self):
        with pytest.raises(ValueError):
            make_station(SimEngine(), servers=0)
