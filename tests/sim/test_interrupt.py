"""Process interruption: the cancellation path faults are built on."""

import numpy as np
import pytest

from repro.sim.engine import CancelledError, SimEngine
from repro.sim.stations import FifoStation


class TestProcessInterrupt:
    def test_interrupt_throws_into_generator_at_wait_point(self):
        engine = SimEngine()
        caught = []

        def proc():
            try:
                yield 10.0
            except RuntimeError as exc:
                caught.append(str(exc))
            return "cleaned up"

        process = engine.process(proc())
        engine.run_until(0.0)  # generator starts, now waiting on the delay
        assert process.interrupt(RuntimeError("abort"))
        engine.run_until(1.0)
        assert caught == ["abort"]
        assert process.completion.value == "cleaned up"

    def test_default_interrupt_cancels(self):
        engine = SimEngine()

        def proc():
            yield 10.0

        process = engine.process(proc())
        engine.run_until(0.0)
        process.interrupt()
        engine.run_until(1.0)
        assert process.completion.done
        with pytest.raises(CancelledError):
            process.completion.value

    def test_interrupt_leaves_awaited_completion_untouched(self):
        engine = SimEngine()
        shared = engine.completion()

        def proc():
            try:
                yield shared
            except CancelledError:
                pass
            return "done"

        process = engine.process(proc())
        engine.run_until(0.0)
        process.interrupt()
        engine.run_until(1.0)
        assert process.completion.value == "done"
        # The completion the process was waiting on is still pristine --
        # another owner (e.g. a RADOS write) can fire it without error.
        shared.succeed(42)
        assert shared.value == 42

    def test_stale_resume_after_interrupt_is_ignored(self):
        engine = SimEngine()
        resumed = []

        def proc():
            try:
                yield engine.timeout(5.0)
                resumed.append("timeout fired into process")
            except CancelledError:
                pass
            yield 20.0  # keep the process alive past t=5
            return "ok"

        process = engine.process(proc())
        engine.run_until(0.0)
        process.interrupt()
        engine.run_until(10.0)  # the original timeout fires at t=5
        assert resumed == []
        engine.run_until(30.0)
        assert process.completion.value == "ok"

    def test_interrupt_before_generator_starts(self):
        engine = SimEngine()
        log = []

        def proc():
            log.append("ran")
            yield 1.0

        process = engine.process(proc())
        process.interrupt(RuntimeError("too late"))
        engine.run_until(2.0)
        assert log == []
        assert process.completion.done
        with pytest.raises(RuntimeError):
            process.completion.value

    def test_interrupt_after_finish_returns_false(self):
        engine = SimEngine()

        def proc():
            yield 0.1
            return 1

        process = engine.process(proc())
        engine.run_until(1.0)
        assert process.completion.value == 1
        assert not process.interrupt()

    def test_uncaught_injected_error_fails_process_not_loop(self):
        engine = SimEngine()

        def proc():
            yield 10.0

        process = engine.process(proc())
        engine.run_until(0.0)
        process.interrupt(RuntimeError("boom"))
        engine.run_until(1.0)  # must not raise out of the event loop
        with pytest.raises(RuntimeError):
            process.completion.value


class TestStationDrain:
    def make_station(self, servers=1):
        engine = SimEngine()
        rng = np.random.default_rng(0)
        return engine, FifoStation(engine, "s", rng, servers=servers)

    def test_drain_returns_in_service_then_queued(self):
        engine, station = self.make_station()
        first = station.submit("a", 1.0)
        second = station.submit("b", 1.0)
        engine.run_until(0.5)
        jobs = station.drain()
        assert [job.payload for job in jobs] == ["a", "b"]
        assert station.in_service == 0
        assert station.queue_length == 0
        # Abandoned completions never fire on their own.
        engine.run_until(10.0)
        assert not first.done and not second.done

    def test_drain_accounts_partial_busy_time(self):
        engine, station = self.make_station()
        station.submit("a", 1.0)
        engine.run_until(0.25)
        station.drain()
        assert station.busy_time == pytest.approx(0.25)

    def test_drain_empty_station_is_noop(self):
        engine, station = self.make_station()
        assert station.drain() == []

    def test_station_usable_after_drain(self):
        engine, station = self.make_station()
        station.submit("a", 1.0)
        engine.run_until(0.1)
        station.drain()
        done = station.submit("b", 0.5)
        engine.run_until(5.0)
        assert done.done
