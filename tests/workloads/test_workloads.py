"""Workload generators: create storms, compile jobs, zipf, traces."""

import numpy as np
import pytest

from repro.clients.ops import OpKind
from repro.namespace.tree import Namespace
from repro.workloads import (
    CompileWorkload,
    CreateWorkload,
    TraceWorkload,
    ZipfWorkload,
    zipf_weights,
)


class TestCreateWorkload:
    def test_private_dirs_start_with_mkdir(self):
        workload = CreateWorkload(num_clients=2, files_per_client=3)
        ops = list(workload.client_ops(0))
        assert ops[0] == (OpKind.MKDIR, "/work/client0")
        assert all(kind is OpKind.CREATE for kind, _p in ops[1:])
        assert len(ops) == 4

    def test_shared_dir_prepared_not_mkdired(self):
        workload = CreateWorkload(num_clients=2, files_per_client=3,
                                  shared_dir=True)
        namespace = Namespace()
        workload.prepare(namespace)
        assert namespace.exists("/work/shared")
        ops = list(workload.client_ops(1))
        assert all(kind is OpKind.CREATE for kind, _p in ops)

    def test_shared_names_unique_across_clients(self):
        workload = CreateWorkload(num_clients=3, files_per_client=5,
                                  shared_dir=True)
        paths = set()
        for cid in range(3):
            paths.update(p for _k, p in workload.client_ops(cid))
        assert len(paths) == 15

    def test_stat_every(self):
        workload = CreateWorkload(num_clients=1, files_per_client=10,
                                  stat_every=5)
        kinds = [k for k, _p in workload.client_ops(0)]
        assert kinds.count(OpKind.STAT) == 2

    def test_total_ops(self):
        workload = CreateWorkload(num_clients=2, files_per_client=10)
        assert workload.total_ops() == 22  # (10 creates + 1 mkdir) * 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CreateWorkload(num_clients=0, files_per_client=1)
        with pytest.raises(ValueError):
            CreateWorkload(num_clients=1, files_per_client=0)


class TestCompileWorkload:
    def test_phases_present(self):
        workload = CompileWorkload(num_clients=1, scale=0.5)
        ops = list(workload.client_ops(0))
        kinds = [k for k, _p in ops]
        assert OpKind.MKDIR in kinds
        assert OpKind.CREATE in kinds
        assert OpKind.STAT in kinds
        assert OpKind.OPEN in kinds
        assert OpKind.READDIR in kinds

    def test_untar_comes_before_link(self):
        workload = CompileWorkload(num_clients=1, scale=0.5)
        kinds = [k for k, _p in workload.client_ops(0)]
        assert kinds.index(OpKind.MKDIR) < kinds.index(OpKind.READDIR)

    def test_clients_use_separate_roots(self):
        workload = CompileWorkload(num_clients=2, scale=0.5)
        paths0 = {p for _k, p in workload.client_ops(0)}
        paths1 = {p for _k, p in workload.client_ops(1)}
        assert all(p.startswith("/src/client0") for p in paths0)
        assert all(p.startswith("/src/client1") for p in paths1)

    def test_deterministic_given_seed(self):
        a = list(CompileWorkload(1, scale=0.5, seed=3).client_ops(0))
        b = list(CompileWorkload(1, scale=0.5, seed=3).client_ops(0))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(CompileWorkload(1, scale=0.5, seed=3).client_ops(0))
        b = list(CompileWorkload(1, scale=0.5, seed=4).client_ops(0))
        assert a != b

    def test_hotspots_concentrate_in_hot_dirs(self):
        """Fig 1: compile traffic concentrates in arch/kernel/fs/mm."""
        workload = CompileWorkload(num_clients=1, scale=1.0, seed=0)
        opens = [p for k, p in workload.client_ops(0) if k is OpKind.OPEN]
        hot = sum(1 for p in opens
                  if any(f"/client0/{d}/" in p
                         for d in ("arch", "kernel", "fs", "mm")))
        assert hot / len(opens) > 0.5

    def test_total_ops_matches_stream(self):
        workload = CompileWorkload(num_clients=2, scale=0.5, seed=1)
        actual = sum(len(list(workload.client_ops(cid))) for cid in range(2))
        assert workload.total_ops() == actual

    def test_link_passes_scale_readdirs(self):
        one = CompileWorkload(1, scale=0.5, link_passes=1)
        four = CompileWorkload(1, scale=0.5, link_passes=4)
        count = lambda w: sum(1 for k, _p in w.client_ops(0)
                              if k is OpKind.READDIR)
        assert count(four) == 4 * count(one)

    def test_scale_controls_size(self):
        small = CompileWorkload(1, scale=0.5).total_ops()
        large = CompileWorkload(1, scale=2.0).total_ops()
        assert large > 2 * small


class TestZipf:
    def test_weights_normalised_and_decreasing(self):
        weights = zipf_weights(100, alpha=1.1)
        assert weights.sum() == pytest.approx(1.0)
        assert all(weights[i] >= weights[i + 1] for i in range(99))

    def test_prepare_creates_population(self):
        workload = ZipfWorkload(num_clients=1, num_files=50,
                                ops_per_client=10, num_dirs=4)
        namespace = Namespace()
        workload.prepare(namespace)
        assert namespace.inode_count >= 51

    def test_ops_reference_existing_files(self):
        workload = ZipfWorkload(num_clients=1, num_files=50,
                                ops_per_client=30, write_fraction=0.0)
        namespace = Namespace()
        workload.prepare(namespace)
        for kind, path in workload.client_ops(0):
            assert kind is OpKind.STAT
            assert namespace.exists(path)

    def test_write_fraction(self):
        workload = ZipfWorkload(num_clients=1, num_files=50,
                                ops_per_client=1000, write_fraction=0.3,
                                seed=1)
        kinds = [k for k, _p in workload.client_ops(0)]
        creates = kinds.count(OpKind.CREATE)
        assert creates == pytest.approx(300, rel=0.2)

    def test_skew_popularity(self):
        workload = ZipfWorkload(num_clients=1, num_files=1000,
                                ops_per_client=2000, alpha=1.2,
                                write_fraction=0.0, seed=2)
        paths = [p for _k, p in workload.client_ops(0)]
        top = max(paths.count(p) for p in set(paths))
        assert top > 2000 / 1000 * 10  # far above uniform


class TestTrace:
    def test_replay_exact(self):
        trace = {0: [(OpKind.MKDIR, "/t"), (OpKind.CREATE, "/t/f")]}
        workload = TraceWorkload(trace)
        assert list(workload.client_ops(0)) == trace[0]

    def test_prepare_creates_parents(self):
        workload = TraceWorkload({0: [(OpKind.CREATE, "/deep/nested/f")]})
        namespace = Namespace()
        workload.prepare(namespace)
        assert namespace.exists("/deep/nested")

    def test_client_ids_validated(self):
        with pytest.raises(ValueError):
            TraceWorkload({1: [(OpKind.STAT, "/x")]})
        with pytest.raises(ValueError):
            TraceWorkload({})

    def test_total_ops(self):
        workload = TraceWorkload({0: [(OpKind.STAT, "/x")] * 3,
                                  1: [(OpKind.STAT, "/y")] * 2})
        assert workload.total_ops() == 5
