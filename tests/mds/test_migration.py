"""Two-phase-commit migration: freezing, journalling, authority flips."""

import pytest

from repro.clients.ops import MetaRequest, OpKind
from repro.cluster import SimulatedCluster
from repro.mds.migration import ExportUnit
from tests.conftest import make_config


def build_cluster(num_mds=2, files=20):
    cluster = SimulatedCluster(make_config(num_mds=num_mds))
    cluster.namespace.mkdirs("/d/sub")
    for i in range(files):
        cluster.namespace.create(f"/d/f{i}")
        cluster.namespace.create(f"/d/sub/g{i}")
    return cluster


class TestExportUnit:
    def test_subtree_unit(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        unit = ExportUnit(d)
        assert unit.is_subtree
        assert unit.path() == "/d"
        # 20 files + sub dir + 20 files in sub + the directory itself.
        assert unit.inode_count() == 42

    def test_dirfrag_unit(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        frag = next(iter(d.frags.values()))
        unit = ExportUnit(frag)
        assert not unit.is_subtree
        assert unit.dir_path() == "/d"
        assert unit.inode_count() == 21  # 20 files + 'sub'

    def test_freeze_unfreeze(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        unit = ExportUnit(d)
        unit.freeze()
        assert all(f.frozen for f in unit.frags())
        unit.unfreeze()
        assert not any(f.frozen for f in unit.frags())

    def test_subtree_freeze_covers_descendants(self):
        cluster = build_cluster()
        unit = ExportUnit(cluster.namespace.resolve_dir("/d"))
        unit.freeze()
        sub = cluster.namespace.resolve_dir("/d/sub")
        assert all(f.frozen for f in sub.frags.values())
        unit.unfreeze()

    def test_set_auth_flips_subtree(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        ExportUnit(d).set_auth(1)
        assert d.authority() == 1
        assert cluster.namespace.resolve_dir("/d/sub").authority() == 1

    def test_load_uses_metaload_fn(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        cluster.namespace.record_hit(d, "f1", "IWR", now=0.0)
        unit = ExportUnit(d)
        assert unit.load(lambda s: s["IWR"], now=0.0) == pytest.approx(1.0)


class TestMigrator:
    def test_export_flips_authority(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        exporter = cluster.mdss[0]
        process = exporter.migrator.export(ExportUnit(d), 1)
        cluster.engine.run_until_complete(process.completion)
        assert d.authority() == 1
        assert exporter.migrator.exports_completed == 1
        assert cluster.metrics.mds(0).migrations == 1
        assert cluster.metrics.mds(1).imports == 1

    def test_export_takes_time_and_journals(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        exporter = cluster.mdss[0]
        importer = cluster.mdss[1]
        before = (exporter.journal.segments_flushed,
                  importer.journal.segments_flushed)
        process = exporter.migrator.export(ExportUnit(d), 1)
        cluster.engine.run_until_complete(process.completion)
        assert cluster.engine.now >= cluster.config.migration_base_time
        assert exporter.journal.segments_flushed > before[0]  # EExport
        assert importer.journal.segments_flushed > before[1]  # EImport

    def test_unit_unfrozen_after_export(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        unit = ExportUnit(d)
        process = cluster.mdss[0].migrator.export(unit, 1)
        cluster.engine.run_until_complete(process.completion)
        assert not any(f.frozen for f in unit.frags())

    def test_sessions_flushed_on_export(self):
        cluster = build_cluster()
        exporter = cluster.mdss[0]
        exporter.sessions.record_request(7, "/d", now=0.0)
        d = cluster.namespace.resolve_dir("/d")
        process = exporter.migrator.export(ExportUnit(d), 1)
        cluster.engine.run_until_complete(process.completion)
        assert cluster.metrics.mds(0).session_flushes == 1

    def test_export_to_self_rejected(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        with pytest.raises(ValueError):
            cluster.mdss[0].migrator.export(ExportUnit(d), 0)

    def test_export_to_unknown_rank_rejected(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        with pytest.raises(ValueError):
            cluster.mdss[0].migrator.export(ExportUnit(d), 7)

    def test_double_export_rejected_while_frozen(self):
        cluster = build_cluster(num_mds=3)
        d = cluster.namespace.resolve_dir("/d")
        cluster.mdss[0].migrator.export(ExportUnit(d), 1)
        cluster.engine.run_until(0.001)  # let the freeze happen
        with pytest.raises(RuntimeError):
            cluster.mdss[0].migrator.export(ExportUnit(d), 2)

    def test_requests_stall_during_migration(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        process = cluster.mdss[0].migrator.export(ExportUnit(d), 1)
        cluster.engine.run_until(0.001)
        req = MetaRequest(kind=OpKind.CREATE, path="/d/new",
                          client_id=0, issued_at=cluster.engine.now)
        done = cluster.engine.completion()
        cluster.network.deliver(cluster.mdss[0].receive_request, req, done)
        reply = cluster.engine.run_until_complete(done)
        assert reply.ok
        # Served only after the two-phase commit finished, by the importer.
        assert process.completion.done
        assert reply.served_by == 1

    def test_inodes_exported_counted(self):
        cluster = build_cluster(files=10)
        d = cluster.namespace.resolve_dir("/d")
        process = cluster.mdss[0].migrator.export(ExportUnit(d), 1)
        cluster.engine.run_until_complete(process.completion)
        assert cluster.mdss[0].migrator.inodes_exported == 22
