"""Inode cache: LRU semantics and accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.mds.cache import InodeCache


class TestLru:
    def test_hit_and_miss(self):
        cache = InodeCache(capacity=10)
        assert cache.touch(1) is False  # miss inserts
        assert cache.touch(1) is True
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_at_capacity(self):
        cache = InodeCache(capacity=3)
        for ino in (1, 2, 3, 4):
            cache.touch(ino)
        assert 1 not in cache
        assert 4 in cache
        assert cache.evictions == 1

    def test_touch_refreshes_recency(self):
        cache = InodeCache(capacity=3)
        for ino in (1, 2, 3):
            cache.touch(ino)
        cache.touch(1)  # 2 is now the LRU
        cache.touch(4)
        assert 2 not in cache
        assert 1 in cache

    def test_insert_no_stats(self):
        cache = InodeCache(capacity=2)
        cache.insert(5)
        assert cache.hits == 0 and cache.misses == 0
        assert 5 in cache

    def test_drop(self):
        cache = InodeCache(capacity=2)
        cache.insert(5)
        cache.drop(5)
        assert 5 not in cache
        cache.drop(99)  # no-op

    def test_clear(self):
        cache = InodeCache(capacity=5)
        for ino in range(5):
            cache.insert(ino)
        cache.clear()
        assert len(cache) == 0

    def test_fill_fraction(self):
        cache = InodeCache(capacity=4)
        cache.insert(1)
        cache.insert(2)
        assert cache.fill_fraction == pytest.approx(0.5)

    def test_hit_rate(self):
        cache = InodeCache(capacity=4)
        cache.touch(1)
        cache.touch(1)
        cache.touch(1)
        assert cache.hit_rate == pytest.approx(2 / 3)
        assert InodeCache(4).hit_rate == 0.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            InodeCache(0)

    @given(st.lists(st.integers(0, 50), max_size=200),
           st.integers(min_value=1, max_value=10))
    def test_never_exceeds_capacity(self, touches, capacity):
        cache = InodeCache(capacity=capacity)
        for ino in touches:
            cache.touch(ino)
        assert len(cache) <= capacity

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=100))
    def test_most_recent_always_cached(self, touches):
        cache = InodeCache(capacity=3)
        for ino in touches:
            cache.touch(ino)
        assert touches[-1] in cache
