"""Finer MDS server behaviours: hop caps, STORE commits, readdir scaling,
noisy CPU snapshots, fully-owned subtree checks."""


from repro.clients.ops import MetaRequest, OpKind
from repro.cluster import SimulatedCluster
from repro.core.balancer import MantleBalancer
from repro.mds.server import MAX_HOPS
from tests.conftest import make_config


def issue(cluster, kind, path, rank=0, client_id=0):
    req = MetaRequest(kind=kind, path=path, client_id=client_id,
                      issued_at=cluster.engine.now)
    done = cluster.engine.completion()
    cluster.network.deliver(cluster.mdss[rank].receive_request, req, done)
    return cluster.engine.run_until_complete(done), req


class TestStoreCommits:
    def test_every_nth_create_stores_directory(self):
        cluster = SimulatedCluster(make_config(num_mds=1, store_every=10))
        cluster.namespace.mkdirs("/d")
        for i in range(25):
            issue(cluster, OpKind.CREATE, f"/d/f{i}")
        assert cluster.metrics.mds(0).stores == 2
        d = cluster.namespace.resolve_dir("/d")
        assert d.counters.get("STORE", cluster.engine.now) > 0

    def test_store_writes_to_rados(self):
        cluster = SimulatedCluster(make_config(num_mds=1, store_every=5))
        cluster.namespace.mkdirs("/d")
        before = cluster.rados.total_writes()
        for i in range(6):
            issue(cluster, OpKind.CREATE, f"/d/f{i}")
        cluster.engine.run()
        assert cluster.rados.total_writes() > before


class TestHopCap:
    def test_forwarding_is_bounded(self):
        """Even with a pathological hop history, a request is eventually
        served rather than forwarded forever."""
        cluster = SimulatedCluster(make_config(num_mds=2))
        cluster.namespace.mkdirs("/d")
        cluster.pin("/d", 1)
        req = MetaRequest(kind=OpKind.CREATE, path="/d/f", client_id=0,
                          issued_at=cluster.engine.now)
        req.hops.extend([0, 1] * (MAX_HOPS // 2))  # simulate chasing
        done = cluster.engine.completion()
        cluster.network.deliver(cluster.mdss[0].receive_request, req, done)
        reply = cluster.engine.run_until_complete(done)
        assert reply.ok
        # Served by whoever had it after the cap, without another forward.
        assert len(req.hops) <= MAX_HOPS + 1


class TestReaddirScaling:
    def test_readdir_service_grows_with_directory_size(self):
        small = SimulatedCluster(make_config(num_mds=1, seed=5))
        small.namespace.mkdirs("/d")
        for i in range(10):
            small.namespace.create(f"/d/f{i}")
        reply_small, _ = issue(small, OpKind.READDIR, "/d")

        big = SimulatedCluster(make_config(num_mds=1, seed=5,
                                           dir_split_size=10**9))
        big.namespace.mkdirs("/d")
        for i in range(60_000):
            big.namespace.create(f"/d/f{i}")
        reply_big, _ = issue(big, OpKind.READDIR, "/d")
        assert reply_big.latency > reply_small.latency
        assert reply_big.result == 60_000


class TestHeartbeatSnapshot:
    def test_cpu_clamped_to_100(self):
        cluster = SimulatedCluster(
            make_config(num_mds=1, cpu_measure_noise=5.0))  # wild noise
        cluster.namespace.mkdirs("/d")
        for i in range(50):
            issue(cluster, OpKind.CREATE, f"/d/f{i}")
        for _ in range(20):
            beat = cluster.mdss[0]._snapshot_metrics()
            assert 0.0 <= beat.cpu <= 100.0

    def test_request_rate_window_resets(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        for i in range(30):
            issue(cluster, OpKind.CREATE, f"/d/f{i}")
        first = cluster.mdss[0]._snapshot_metrics()
        assert first.request_rate > 0
        second = cluster.mdss[0]._snapshot_metrics()
        assert second.request_rate == 0.0

    def test_mem_reflects_cache_fill(self):
        cluster = SimulatedCluster(make_config(num_mds=1,
                                               cache_capacity=100))
        cluster.namespace.mkdirs("/d")
        for i in range(60):
            issue(cluster, OpKind.CREATE, f"/d/f{i}")
        beat = cluster.mdss[0]._snapshot_metrics()
        assert beat.mem > 30.0


class TestFullyOwned:
    def test_subtree_with_foreign_frag_not_owned(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        cluster.namespace.mkdirs("/d/sub")
        d = cluster.namespace.resolve_dir("/d")
        sub = cluster.namespace.resolve_dir("/d/sub")
        assert MantleBalancer._fully_owned(d, 0)
        next(iter(sub.frags.values())).set_auth(1)
        assert not MantleBalancer._fully_owned(d, 0)

    def test_subtree_with_foreign_child_not_owned(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        cluster.namespace.mkdirs("/d/sub")
        d = cluster.namespace.resolve_dir("/d")
        cluster.namespace.resolve_dir("/d/sub").set_auth(1)
        assert not MantleBalancer._fully_owned(d, 0)

    def test_wrong_rank_not_owned(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        d = cluster.namespace.mkdirs("/d")
        assert not MantleBalancer._fully_owned(d, 1)
