"""MDS server behaviour: serving, forwarding, caching, fragmentation.

Uses a small real cluster (no mocks) and drives individual requests
through it.
"""


from repro.clients.ops import MetaRequest, OpKind
from repro.cluster import SimulatedCluster
from tests.conftest import make_config


def issue(cluster, kind, path, rank=0, client_id=0):
    """Send one request to a given rank and run until the reply."""
    req = MetaRequest(kind=kind, path=path, client_id=client_id,
                      issued_at=cluster.engine.now)
    done = cluster.engine.completion()
    cluster.network.deliver(cluster.mdss[rank].receive_request, req, done)
    return cluster.engine.run_until_complete(done)


class TestServing:
    def test_create_and_stat(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        reply = issue(cluster, OpKind.CREATE, "/d/f1")
        assert reply.ok
        assert cluster.namespace.exists("/d/f1")
        reply = issue(cluster, OpKind.STAT, "/d/f1")
        assert reply.ok
        assert reply.served_by == 0

    def test_mkdir(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        reply = issue(cluster, OpKind.MKDIR, "/newdir")
        assert reply.ok
        assert cluster.namespace.resolve_dir("/newdir")

    def test_readdir_returns_count(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        for i in range(5):
            cluster.namespace.create(f"/d/f{i}")
        reply = issue(cluster, OpKind.READDIR, "/d")
        assert reply.result == 5

    def test_unlink(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        cluster.namespace.create("/d/f")
        reply = issue(cluster, OpKind.UNLINK, "/d/f")
        assert reply.ok
        assert not cluster.namespace.exists("/d/f")

    def test_missing_file_enoent(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        reply = issue(cluster, OpKind.STAT, "/nope")
        assert not reply.ok
        assert reply.error == "ENOENT"

    def test_create_overwrites_existing_file(self):
        """O_CREAT semantics: recreating an existing file succeeds and
        truncates (compiles recreate .o files constantly)."""
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        issue(cluster, OpKind.CREATE, "/d/f")
        inode = cluster.namespace.resolve_entry("/d/f")
        inode.size = 999
        reply = issue(cluster, OpKind.CREATE, "/d/f")
        assert reply.ok
        assert inode.size == 0
        assert cluster.namespace.resolve_entry("/d/f") is inode

    def test_create_over_directory_eexist(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d/sub")
        reply = issue(cluster, OpKind.CREATE, "/d/sub")
        assert reply.error == "EEXIST"

    def test_reply_carries_frag_map(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        reply = issue(cluster, OpKind.CREATE, "/d/f")
        assert reply.dir_path == "/d"
        assert reply.frag_map == ((0, 0, 0),)

    def test_counters_bumped(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        issue(cluster, OpKind.CREATE, "/d/f")
        d = cluster.namespace.resolve_dir("/d")
        assert d.counters.get("IWR", cluster.engine.now) > 0

    def test_ops_served_metric(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        for i in range(3):
            issue(cluster, OpKind.CREATE, f"/d/f{i}")
        assert cluster.metrics.mds(0).ops_served == 3


class TestForwarding:
    def test_request_to_wrong_rank_is_forwarded(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        cluster.namespace.mkdirs("/d")
        cluster.pin("/d", 1)
        reply = issue(cluster, OpKind.CREATE, "/d/f", rank=0)
        assert reply.ok
        assert reply.served_by == 1
        assert reply.forwards == 1
        assert cluster.metrics.mds(0).forwards == 1
        assert cluster.metrics.mds(1).traversal_hits == 1

    def test_request_to_right_rank_is_a_hit(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        cluster.namespace.mkdirs("/d")
        cluster.pin("/d", 1)
        reply = issue(cluster, OpKind.CREATE, "/d/f", rank=1)
        assert reply.forwards == 0
        assert cluster.metrics.mds(1).traversal_hits == 1
        assert cluster.metrics.mds(0).forwards == 0


class TestFrozenFrags:
    def test_frozen_frag_stalls_until_unfrozen(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        d = cluster.namespace.resolve_dir("/d")
        frag = next(iter(d.frags.values()))
        frag.frozen = True
        cluster.engine.schedule(0.05, setattr, frag, "frozen", False)
        reply = issue(cluster, OpKind.CREATE, "/d/f")
        assert reply.ok
        assert cluster.engine.now >= 0.05


class TestFragmentation:
    def test_directory_fragments_at_threshold(self):
        cluster = SimulatedCluster(make_config(num_mds=1, dir_split_size=64))
        cluster.namespace.mkdirs("/d")
        for i in range(70):
            issue(cluster, OpKind.CREATE, f"/d/f{i}")
        d = cluster.namespace.resolve_dir("/d")
        assert len(d.frags) == 8  # 2^3
        assert cluster.metrics.mds(0).fragmentations == 1


class TestCacheAndFetch:
    def test_cold_directory_fetches_from_rados(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        issue(cluster, OpKind.CREATE, "/d/f1")
        fetches_first = cluster.metrics.mds(0).fetches
        issue(cluster, OpKind.CREATE, "/d/f2")
        assert fetches_first == 1
        # Second op: directory is cached, no new fetch.
        assert cluster.metrics.mds(0).fetches == 1


class TestHeartbeats:
    def test_heartbeats_reach_peers(self):
        cluster = SimulatedCluster(make_config(num_mds=3))
        for mds in cluster.mdss:
            mds.start_heartbeats()
        cluster.engine.run_until(5.0)  # interval is 2s in test config
        for mds in cluster.mdss:
            assert mds.hb_table.have_all(3)

    def test_heartbeat_metrics_reflect_load(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        for i in range(20):
            issue(cluster, OpKind.CREATE, f"/d/f{i}")
        beat = cluster.mdss[0]._snapshot_metrics()
        assert beat.auth_metaload > 0
        assert beat.all_metaload > 0

    def test_remote_views_arrive_delayed(self):
        """Remote heartbeats pay pack + network + unpack time (§2.2.2);
        the local view is stored instantly."""
        cluster = SimulatedCluster(make_config(num_mds=2))
        for mds in cluster.mdss:
            mds.start_heartbeats()
        cluster.engine.run_until(5.0)
        mds0 = cluster.mdss[0]
        own_delay = (mds0.hb_table.received_at[0]
                     - mds0.hb_table.get(0).sent_at)
        remote_delay = (mds0.hb_table.received_at[1]
                        - mds0.hb_table.get(1).sent_at)
        assert own_delay == 0.0
        assert remote_delay >= 2 * cluster.config.heartbeat_pack_time
