"""Client session tables and cap-based flushes."""

from repro.mds.sessions import SessionTable


class TestSessions:
    def test_get_or_open_creates_once(self):
        table = SessionTable(rank=0)
        first = table.get_or_open(7, now=1.0)
        second = table.get_or_open(7, now=2.0)
        assert first is second
        assert table.sessions_opened == 1
        assert len(table) == 1

    def test_record_request_tracks_caps(self):
        table = SessionTable(rank=0)
        session = table.record_request(1, "/work/shared", now=0.0)
        assert session.requests == 1
        assert "/work/shared" in session.cap_paths

    def test_flush_under_exact_path(self):
        table = SessionTable(rank=0)
        table.record_request(1, "/a/b", now=0.0)
        assert table.flush_under("/a/b") == 1
        assert table.total_flushes == 1

    def test_flush_under_prefix(self):
        table = SessionTable(rank=0)
        table.record_request(1, "/a/b/c", now=0.0)
        table.record_request(2, "/a/x", now=0.0)
        table.record_request(3, "/other", now=0.0)
        assert table.flush_under("/a") == 2

    def test_flush_does_not_match_sibling_prefix(self):
        table = SessionTable(rank=0)
        table.record_request(1, "/abc", now=0.0)
        assert table.flush_under("/ab") == 0

    def test_flush_under_root_matches_all(self):
        table = SessionTable(rank=0)
        table.record_request(1, "/x", now=0.0)
        table.record_request(2, "/y", now=0.0)
        assert table.flush_under("") == 2

    def test_session_flush_count_per_session(self):
        table = SessionTable(rank=0)
        session = table.record_request(1, "/d", now=0.0)
        table.flush_under("/d")
        table.flush_under("/d")
        assert session.flushes == 2

    def test_each_client_counted_once_per_flush(self):
        table = SessionTable(rank=0)
        table.record_request(1, "/d/a", now=0.0)
        table.record_request(1, "/d/b", now=0.0)
        assert table.flush_under("/d") == 1
