"""Heartbeat snapshots and the stale-view table."""

import pytest

from repro.mds.heartbeat import HeartBeat, HeartbeatTable


def beat(rank=0, sent_at=0.0, **overrides):
    fields = dict(
        rank=rank, sent_at=sent_at, auth_metaload=10.0, all_metaload=12.0,
        cpu=50.0, mem=20.0, queue_length=3.0, request_rate=1000.0,
    )
    fields.update(overrides)
    return HeartBeat(**fields)


class TestHeartBeat:
    def test_as_metrics_matches_table2_keys(self):
        metrics = beat().as_metrics()
        assert set(metrics) == {"auth", "all", "cpu", "mem", "q", "req"}
        assert metrics["auth"] == 10.0
        assert metrics["q"] == 3.0


class TestHeartbeatTable:
    def test_store_and_get(self):
        table = HeartbeatTable()
        table.store(beat(rank=1, sent_at=5.0), now=5.2)
        assert table.get(1).sent_at == 5.0
        assert table.get(2) is None

    def test_newer_beat_replaces_older(self):
        table = HeartbeatTable()
        table.store(beat(rank=0, sent_at=10.0, cpu=80.0), now=10.1)
        table.store(beat(rank=0, sent_at=20.0, cpu=30.0), now=20.1)
        assert table.get(0).cpu == 30.0

    def test_stale_beat_does_not_regress(self):
        table = HeartbeatTable()
        table.store(beat(rank=0, sent_at=20.0), now=20.1)
        table.store(beat(rank=0, sent_at=10.0), now=25.0)  # late arrival
        assert table.get(0).sent_at == 20.0

    def test_staleness(self):
        table = HeartbeatTable()
        table.store(beat(rank=0, sent_at=10.0), now=10.1)
        assert table.staleness(0, now=14.0) == pytest.approx(4.0)
        assert table.staleness(9, now=14.0) == float("inf")

    def test_have_all(self):
        table = HeartbeatTable()
        table.store(beat(rank=0), now=0.0)
        assert not table.have_all(2)
        table.store(beat(rank=1), now=0.0)
        assert table.have_all(2)
