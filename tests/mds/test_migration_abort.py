"""Migration aborts: 2PC rollback/roll-forward resolution and hygiene."""

from repro.cluster import SimulatedCluster
from repro.mds.migration import ExportUnit
from tests.conftest import make_config


def build_cluster(num_mds=2, files=20):
    cluster = SimulatedCluster(make_config(num_mds=num_mds))
    cluster.namespace.mkdirs("/d/sub")
    for i in range(files):
        cluster.namespace.create(f"/d/f{i}")
        cluster.namespace.create(f"/d/sub/g{i}")
    return cluster


def frozen_frags(unit: ExportUnit) -> int:
    return sum(1 for frag in unit.frags() if frag.frozen)


class TestAbortRollback:
    def test_abort_mid_transfer_rolls_back(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        unit = ExportUnit(d)
        exporter = cluster.mdss[0]
        process = exporter.migrator.export(unit, 1)
        cluster.engine.run_until(0.05)  # mid-flight, before the commit point
        assert frozen_frags(unit) > 0
        aborted = exporter.migrator.abort_all("test")
        assert len(aborted) == 1
        cluster.engine.run_until_complete(process.completion)
        # Rollback: authority stays home, nothing stays frozen.
        assert d.authority() == 0
        assert frozen_frags(unit) == 0
        assert exporter.migrator.exports_aborted == 1
        assert exporter.migrator.exports_completed == 0
        assert exporter.migrator.in_flight == 0
        assert cluster.metrics.mds(0).migrations_aborted == 1

    def test_abort_after_commit_point_rolls_forward(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        unit = ExportUnit(d)
        exporter = cluster.mdss[0]
        process = exporter.migrator.export(unit, 1)
        # Step until the EImport is durable (the commit point).
        while (exporter.migrator.active
               and exporter.migrator.active[0].phase != "committed"):
            assert cluster.engine.step()
        exporter.migrator.abort_all("test")
        cluster.engine.run_until_complete(process.completion)
        # Roll-forward: the importer owns the metadata.
        assert d.authority() == 1
        assert frozen_frags(unit) == 0
        assert exporter.migrator.exports_aborted == 0
        assert exporter.migrator.exports_completed == 1
        assert cluster.metrics.mds(1).imports == 1

    def test_abort_targeting_only_hits_matching_importer(self):
        cluster = build_cluster(num_mds=3)
        d = cluster.namespace.resolve_dir("/d")
        sub = cluster.namespace.resolve_dir("/d/sub")
        exporter = cluster.mdss[0]
        p1 = exporter.migrator.export(ExportUnit(sub), 1)
        p2 = exporter.migrator.export(ExportUnit(d.frag_for_name("f0")), 2)
        cluster.engine.run_until(0.05)
        aborted = exporter.migrator.abort_targeting(1)
        assert [record.target_rank for record in aborted] == [1]
        cluster.engine.run_until_complete(p1.completion)
        cluster.engine.run_until_complete(p2.completion)
        assert sub.authority() == 0          # rolled back
        assert d.frag_for_name("f0").authority() == 2  # committed
        assert exporter.migrator.in_flight == 0


class TestCrashDuringMigration:
    def test_exporter_crash_unfreezes_everything(self):
        cluster = build_cluster(num_mds=3)
        d = cluster.namespace.resolve_dir("/d")
        unit = ExportUnit(d)
        exporter = cluster.mdss[0]
        process = exporter.migrator.export(unit, 1)
        cluster.engine.run_until(0.05)
        exporter.crash()
        cluster.engine.run_until_complete(process.completion)
        assert frozen_frags(unit) == 0
        assert d.authority() == 0
        assert exporter.migrator.in_flight == 0

    def test_importer_crash_aborts_export_at_exporter(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        unit = ExportUnit(d)
        exporter = cluster.mdss[0]
        process = exporter.migrator.export(unit, 1)
        cluster.engine.run_until(0.05)
        cluster.mdss[1].crash()
        cluster.engine.run_until_complete(process.completion)
        assert frozen_frags(unit) == 0
        assert d.authority() == 0
        assert exporter.migrator.exports_aborted == 1
        assert exporter.migrator.in_flight == 0

    def test_fresh_export_possible_after_rollback(self):
        cluster = build_cluster()
        d = cluster.namespace.resolve_dir("/d")
        unit = ExportUnit(d)
        exporter = cluster.mdss[0]
        first = exporter.migrator.export(unit, 1)
        cluster.engine.run_until(0.05)
        exporter.migrator.abort_all("test")
        cluster.engine.run_until_complete(first.completion)
        second = exporter.migrator.export(ExportUnit(d), 1)
        cluster.engine.run_until_complete(second.completion)
        assert d.authority() == 1
        assert exporter.migrator.exports_completed == 1
