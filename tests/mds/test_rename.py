"""Rename: namespace semantics and the §4.1 cross-MDS session flush."""

import pytest

from repro.clients.ops import MetaRequest, OpKind
from repro.cluster import SimulatedCluster, run_experiment
from repro.namespace.tree import Namespace
from repro.workloads import TraceWorkload
from tests.conftest import make_config


def issue(cluster, kind, path, rank=0, dst=None):
    req = MetaRequest(kind=kind, path=path, client_id=0,
                      issued_at=cluster.engine.now)
    if dst is not None:
        req.payload["dst"] = dst
    done = cluster.engine.completion()
    cluster.network.deliver(cluster.mdss[rank].receive_request, req, done)
    return cluster.engine.run_until_complete(done)


class TestNamespaceRename:
    def test_file_rename_same_dir(self):
        namespace = Namespace()
        namespace.mkdirs("/d")
        namespace.create("/d/old")
        inode = namespace.rename("/d/old", "/d/new")
        assert inode.name == "new"
        assert namespace.exists("/d/new")
        assert not namespace.exists("/d/old")

    def test_file_rename_across_dirs(self):
        namespace = Namespace()
        namespace.mkdirs("/a")
        namespace.mkdirs("/b")
        namespace.create("/a/f")
        namespace.rename("/a/f", "/b/f")
        assert namespace.exists("/b/f")
        assert namespace.resolve_dir("/a").entry_count() == 0

    def test_directory_rename_moves_subtree(self):
        namespace = Namespace()
        namespace.mkdirs("/a/sub")
        namespace.create("/a/sub/f")
        namespace.mkdirs("/b")
        namespace.rename("/a/sub", "/b/moved")
        assert namespace.exists("/b/moved/f")
        moved = namespace.resolve_dir("/b/moved")
        assert moved.parent is namespace.resolve_dir("/b")
        assert moved.path() == "/b/moved"

    def test_rename_preserves_inode_and_counts(self):
        namespace = Namespace()
        namespace.mkdirs("/d")
        inode = namespace.create("/d/f")
        before = (namespace.inode_count, namespace.dir_count)
        moved = namespace.rename("/d/f", "/d/g")
        assert moved is inode
        assert (namespace.inode_count, namespace.dir_count) == before

    def test_rename_missing_source(self):
        namespace = Namespace()
        namespace.mkdirs("/d")
        with pytest.raises(FileNotFoundError):
            namespace.rename("/d/ghost", "/d/x")

    def test_rename_onto_existing_target(self):
        namespace = Namespace()
        namespace.mkdirs("/d")
        namespace.create("/d/a")
        namespace.create("/d/b")
        with pytest.raises(FileExistsError):
            namespace.rename("/d/a", "/d/b")

    def test_rename_dir_under_itself_rejected(self):
        namespace = Namespace()
        namespace.mkdirs("/a/b")
        with pytest.raises(ValueError):
            namespace.rename("/a", "/a/b/a")

    def test_rename_updates_mtime(self):
        namespace = Namespace()
        namespace.mkdirs("/d")
        inode = namespace.create("/d/f", now=1.0)
        namespace.rename("/d/f", "/d/g", now=5.0)
        assert inode.mtime == 5.0


class TestMdsRename:
    def test_rename_served(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        cluster.namespace.create("/d/old")
        reply = issue(cluster, OpKind.RENAME, "/d/old", dst="/d/new")
        assert reply.ok
        assert cluster.namespace.exists("/d/new")

    def test_rename_without_dst_einval(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        cluster.namespace.create("/d/f")
        reply = issue(cluster, OpKind.RENAME, "/d/f")
        assert reply.error == "EINVAL"

    def test_rename_missing_src_enoent(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        reply = issue(cluster, OpKind.RENAME, "/d/ghost", dst="/d/x")
        assert reply.error == "ENOENT"

    def test_cross_mds_rename_flushes_sessions(self):
        """Paper §4.1: sessions are flushed when slave MDS nodes rename
        directories across ranks."""
        cluster = SimulatedCluster(make_config(num_mds=2))
        cluster.namespace.mkdirs("/src")
        cluster.namespace.mkdirs("/dstdir")
        cluster.namespace.create("/src/f")
        cluster.pin("/dstdir", 1)
        # A session with caps on the source directory.
        cluster.mdss[0].sessions.record_request(9, "/src", now=0.0)
        reply = issue(cluster, OpKind.RENAME, "/src/f", dst="/dstdir/f")
        assert reply.ok
        assert cluster.metrics.mds(0).session_flushes >= 1

    def test_same_rank_rename_does_not_flush(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        cluster.namespace.mkdirs("/d")
        cluster.namespace.create("/d/a")
        cluster.mdss[0].sessions.record_request(9, "/d", now=0.0)
        reply = issue(cluster, OpKind.RENAME, "/d/a", dst="/d/b")
        assert reply.ok
        assert cluster.metrics.mds(0).session_flushes == 0

    def test_rename_in_trace_workload(self):
        trace = {0: [
            (OpKind.MKDIR, "/t"),
            (OpKind.CREATE, "/t/tmp"),
            (OpKind.RENAME, "/t/tmp", "/t/final"),
            (OpKind.STAT, "/t/final"),
        ]}
        report = run_experiment(make_config(num_mds=1),
                                TraceWorkload(trace))
        assert report.total_ops == 4
        assert report.metrics.latencies.all_latencies().size == 4

    def test_rename_counts_as_write_load(self):
        cluster = SimulatedCluster(make_config(num_mds=1))
        cluster.namespace.mkdirs("/d")
        cluster.namespace.create("/d/f")
        issue(cluster, OpKind.RENAME, "/d/f", dst="/d/g")
        d = cluster.namespace.resolve_dir("/d")
        assert d.counters.get("IWR", cluster.engine.now) > 0
