"""Coherency mechanisms: effective spread, scatter-gather halts, replica
invalidation / remote prefix traversals, client cap switching."""

import pytest

from repro.clients.client import Client
from repro.clients.ops import MetaRequest, OpKind
from repro.cluster import SimulatedCluster
from repro.mds.server import MdsServer
from tests.conftest import make_config


def build(num_mds=2, **overrides):
    cluster = SimulatedCluster(make_config(num_mds=num_mds, **overrides))
    cluster.namespace.mkdirs("/d")
    d = cluster.namespace.resolve_dir("/d")
    for i in range(32):
        cluster.namespace.create(f"/d/f{i}")
    d.fragment(extra_bits=2, now=0.0)
    return cluster, d


class TestEffectiveSpread:
    def test_single_owner_is_one(self):
        cluster, d = build()
        assert MdsServer._effective_spread(d) == 1.0

    def test_even_split_equals_rank_count(self):
        cluster, d = build(num_mds=4)
        for index, frag in enumerate(d.frags.values()):
            frag.set_auth(index % 4)
        assert MdsServer._effective_spread(d) == pytest.approx(4.0)

    def test_skewed_split_between(self):
        cluster, d = build(num_mds=4)
        frags = list(d.frags.values())
        # 2/1/1 of four frags over 3 ranks.
        frags[0].set_auth(0)
        frags[1].set_auth(0)
        frags[2].set_auth(1)
        frags[3].set_auth(2)
        spread = MdsServer._effective_spread(d)
        assert 1.0 < spread < 3.0
        assert spread == pytest.approx(1.0 / (0.5**2 + 0.25**2 + 0.25**2))

    def test_empty_directory(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        d = cluster.namespace.mkdirs("/empty")
        assert MdsServer._effective_spread(d) == 1.0


class TestScatterGather:
    def issue(self, cluster, kind, path, rank):
        req = MetaRequest(kind=kind, path=path, client_id=0,
                          issued_at=cluster.engine.now)
        done = cluster.engine.completion()
        cluster.network.deliver(cluster.mdss[rank].receive_request, req,
                                done)
        return cluster.engine.run_until_complete(done)

    def test_slave_writes_trigger_halts(self):
        cluster, d = build(num_mds=4,
                           scatter_gather_prob=1.0)  # force it
        for index, frag in enumerate(d.frags.values()):
            frag.set_auth(index % 4)
        # Writes served by a non-authority rank (dir inode auth is 0).
        for i in range(40, 60):
            rank = cluster.namespace.authority_for_path(f"/d/g{i}")
            self.issue(cluster, OpKind.CREATE, f"/d/g{i}", rank)
        sg = sum(m.scatter_gathers
                 for m in cluster.metrics.per_mds.values())
        assert sg > 0
        # Halts only ever come from slave ranks, never rank 0.
        assert cluster.metrics.mds(0).scatter_gathers == 0

    def test_no_halts_when_unspread(self):
        cluster, d = build(num_mds=2, scatter_gather_prob=1.0)
        for i in range(40, 60):
            self.issue(cluster, OpKind.CREATE, f"/d/g{i}", 0)
        assert all(m.scatter_gathers == 0
                   for m in cluster.metrics.per_mds.values())

    def test_halt_freezes_and_unfreezes(self):
        cluster, d = build(num_mds=2, scatter_gather_prob=1.0)
        frags = list(d.frags.values())
        frags[0].set_auth(1)
        name = next(f"x{i}" for i in range(100)
                    if frags[0].contains_name(f"x{i}"))
        self.issue(cluster, OpKind.CREATE, f"/d/{name}", 1)
        # A halt may be pending; after the engine drains, nothing frozen.
        cluster.engine.run()
        assert not any(frag.frozen for frag in d.frags.values())


class TestReplicaInvalidation:
    def test_active_ranks_keep_replicas(self):
        cluster, d = build(num_mds=2, parent_inval_prob=1.0)
        mds0, mds1 = cluster.mdss
        # Rank 1 recently served under /d.
        d.server_activity[1] = cluster.engine.now
        mds1.cache.insert(d.inode.ino)
        mds0._maybe_invalidate_replicas(d)
        assert d.inode.ino in mds1.cache

    def test_passive_ranks_lose_replicas(self):
        cluster, d = build(num_mds=2, parent_inval_prob=1.0)
        mds0, mds1 = cluster.mdss
        mds1.cache.insert(d.inode.ino)
        # No recent activity from rank 1 under /d.
        mds0._maybe_invalidate_replicas(d)
        assert d.inode.ino not in mds1.cache

    def test_invalidation_climbs_ancestors(self):
        cluster = SimulatedCluster(
            make_config(num_mds=2, parent_inval_prob=1.0))
        deep = cluster.namespace.mkdirs("/a/b/c")
        a = cluster.namespace.resolve_dir("/a")
        b = cluster.namespace.resolve_dir("/a/b")
        mds0, mds1 = cluster.mdss
        for node in (deep, b, a):
            mds1.cache.insert(node.inode.ino)
        mds0._maybe_invalidate_replicas(deep)
        # Two levels by default: c and b dropped, a kept.
        assert deep.inode.ino not in mds1.cache
        assert b.inode.ino not in mds1.cache
        assert a.inode.ino in mds1.cache

    def test_single_rank_cluster_no_op(self):
        cluster = SimulatedCluster(
            make_config(num_mds=1, parent_inval_prob=1.0))
        d = cluster.namespace.mkdirs("/d")
        cluster.mdss[0]._maybe_invalidate_replicas(d)  # must not crash


class TestClientCapSwitching:
    def make_client(self, cluster, switch_time=0.001):
        return Client(cluster.engine, 0, cluster.network, cluster.mdss,
                      cluster.metrics, iter([]),
                      cap_switch_time=switch_time)

    def test_first_request_free(self):
        cluster, _d = build(num_mds=2)
        client = self.make_client(cluster)
        assert client._cap_switch_delay("/d/f0", OpKind.STAT, 0) == 0.0

    def test_same_rank_free(self):
        cluster, _d = build(num_mds=2)
        client = self.make_client(cluster)
        client._cap_switch_delay("/d/f0", OpKind.STAT, 0)
        assert client._cap_switch_delay("/d/f1", OpKind.STAT, 0) == 0.0
        assert client.cap_switches == 0

    def test_rank_switch_on_unshared_dir_costs(self):
        cluster, _d = build(num_mds=2)
        client = self.make_client(cluster)
        client._cap_switch_delay("/d/f0", OpKind.STAT, 0)
        delay = client._cap_switch_delay("/d/f1", OpKind.STAT, 1)
        assert delay == 0.001
        assert client.cap_switches == 1

    def test_rank_switch_on_shared_dir_free(self):
        cluster, _d = build(num_mds=2)
        client = self.make_client(cluster)
        # Client knows /d is spread over two ranks.
        client.frag_maps["/d"] = ((1, 0, 0), (1, 1, 1))
        client._cap_switch_delay("/d/f0", OpKind.STAT, 0)
        assert client._cap_switch_delay("/d/f1", OpKind.STAT, 1) == 0.0
        assert client.cap_switches == 0

    def test_disabled_when_zero(self):
        cluster, _d = build(num_mds=2)
        client = self.make_client(cluster, switch_time=0.0)
        client._cap_switch_delay("/d/f0", OpKind.STAT, 0)
        assert client._cap_switch_delay("/d/f1", OpKind.STAT, 1) == 0.0


class TestPrefixTraversals:
    def test_remote_ancestor_miss_counts_and_delays(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        cluster.namespace.mkdirs("/remote/sub")
        cluster.pin("/remote/sub", 1)  # /remote stays with rank 0
        req = MetaRequest(kind=OpKind.CREATE, path="/remote/sub/f",
                          client_id=0, issued_at=cluster.engine.now)
        done = cluster.engine.completion()
        cluster.network.deliver(cluster.mdss[1].receive_request, req, done)
        cluster.engine.run_until_complete(done)
        # Rank 1 had to traverse /remote (auth rank 0) remotely.
        assert cluster.metrics.mds(1).prefix_traversals >= 1
