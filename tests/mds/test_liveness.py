"""Liveness: heartbeat eviction, dead-rank detection, balancer behavior."""

from repro.cluster import SimulatedCluster
from repro.core.policies import original_policy
from repro.mds.heartbeat import HeartBeat, HeartbeatTable
from tests.conftest import make_config


def beat(rank: int, sent_at: float) -> HeartBeat:
    return HeartBeat(rank=rank, sent_at=sent_at, auth_metaload=1.0,
                     all_metaload=1.0, cpu=10.0, mem=5.0, queue_length=0.0,
                     request_rate=100.0)


class TestHeartbeatTableLiveness:
    def test_evict_stale_moves_rank_to_down(self):
        table = HeartbeatTable()
        table.store(beat(0, 0.0), now=0.0)
        table.store(beat(1, 0.0), now=0.0)
        table.store(beat(1, 9.0), now=9.0)
        evicted = table.evict_stale(now=10.0, timeout=5.0)
        assert evicted == [0]
        assert table.is_down(0)
        assert table.get(0) is None
        assert table.get(1) is not None

    def test_alive_ranks_excludes_stale_and_down(self):
        table = HeartbeatTable()
        table.store(beat(0, 0.0), now=0.0)
        table.store(beat(1, 8.0), now=8.0)
        table.mark_down(2)
        assert table.alive_ranks(now=10.0, timeout=5.0) == [1]

    def test_fresh_beat_revives_down_rank(self):
        table = HeartbeatTable()
        table.mark_down(1)
        assert table.is_down(1)
        table.store(beat(1, 20.0), now=20.0)
        assert not table.is_down(1)
        assert table.alive_ranks(now=20.0, timeout=5.0) == [1]

    def test_mark_down_drops_existing_entry(self):
        table = HeartbeatTable()
        table.store(beat(1, 0.0), now=0.0)
        table.mark_down(1)
        assert table.get(1) is None
        assert table.alive_ranks(now=0.0, timeout=100.0) == []


class TestDeadRankDetection:
    def test_crashed_rank_evicted_after_grace(self):
        cluster = SimulatedCluster(make_config(num_mds=2,
                                               mds_beacon_grace=4.0),
                                   policy=original_policy())
        cluster.run_for(5.0)  # heartbeats flowing both ways
        assert 1 in cluster.mdss[0].hb_table.received
        cluster.mdss[1].crash()
        cluster.engine.run_until(cluster.engine.now + 10.0)
        table = cluster.mdss[0].hb_table
        assert 1 not in table.received
        assert table.is_down(1)

    def test_balancer_skips_with_no_live_peers(self):
        cluster = SimulatedCluster(make_config(num_mds=2,
                                               mds_beacon_grace=4.0),
                                   policy=original_policy())
        cluster.run_for(5.0)
        cluster.mdss[1].crash()
        cluster.engine.run_until(cluster.engine.now + 10.0)
        recent = [d for d in cluster.balancer.decisions
                  if d.rank == 0][-1]
        assert recent.skipped == "no live peers"

    def test_dead_rank_requests_complete_after_restart(self):
        from repro.clients.ops import MetaRequest, OpKind

        cluster = SimulatedCluster(make_config(num_mds=2))
        cluster.namespace.mkdirs("/d")
        cluster.namespace.create("/d/f0")
        mds = cluster.mdss[0]
        mds.crash()
        req = MetaRequest(kind=OpKind.STAT, path="/d/f0", client_id=0,
                          issued_at=cluster.engine.now)
        done = cluster.engine.completion()
        mds.receive_request(req, done)
        cluster.engine.schedule(1.0, mds.restart)
        reply = cluster.engine.run_until_complete(done)
        assert reply.ok
        assert reply.served_by == 0
        assert mds.metrics.dead_letters >= 1
        assert mds.metrics.restarts == 1

    def test_restart_replays_journal(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        mds = cluster.mdss[0]
        for _ in range(10):
            mds.journal.log("create")
        mds.journal.flush()
        cluster.engine.run_until(1.0)
        mds.crash()
        assert not mds.alive
        process = mds.restart()
        cluster.engine.run_until_complete(process.completion)
        assert mds.alive
        assert mds.journal.segments_replayed >= 1
        # Restart cannot be faster than the respawn floor.
        assert cluster.engine.now >= 1.0 + cluster.config.restart_base_time

    def test_crash_resets_sessions_and_journal_buffer(self):
        cluster = SimulatedCluster(make_config(num_mds=2))
        mds = cluster.mdss[0]
        mds.sessions.record_request(3, "/x", now=0.0)
        mds.journal.log("create")
        assert len(mds.sessions) == 1
        mds.crash()
        assert len(mds.sessions) == 0
        assert mds.journal.drop_buffer() == 0  # already dropped
