"""Structural tests for the control-flow graph builder."""

from repro.analysis.cfg import build_cfg, build_decision_cfg
from repro.luapolicy.parser import parse_chunk


def _kinds(cfg):
    return [node.kind for node in cfg.nodes]


def _reachable(cfg, start):
    seen, stack = set(), [start]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(cfg.nodes[node].succs)
    return seen


def test_straight_line_chain():
    cfg = build_cfg(parse_chunk("a = 1\nb = a + 1"), "when")
    assert _kinds(cfg) == ["entry", "stmt", "stmt", "exit"]
    assert cfg.nodes[cfg.entry].succs == [1]
    assert cfg.nodes[1].succs == [2]
    assert cfg.nodes[2].succs == [cfg.exit]


def test_if_else_branches_rejoin():
    cfg = build_cfg(parse_chunk(
        "if x > 0 then a = 1 else a = 2 end\nb = a"), "when")
    cond = next(n for n in cfg.nodes if n.kind == "cond")
    assert len(cond.succs) == 2
    after = next(n for n in cfg.nodes
                 if n.defs and n.defs[0].name == "b")
    # Both arms flow into the statement after the if.
    for succ in cond.succs:
        assert after.id in _reachable(cfg, succ)


def test_if_without_else_has_fallthrough_edge():
    cfg = build_cfg(parse_chunk("if x > 0 then a = 1 end"), "when")
    cond = next(n for n in cfg.nodes if n.kind == "cond")
    assert cfg.exit in cond.succs or any(
        cfg.exit in cfg.nodes[s].succs for s in cond.succs)
    # The false edge must not pass through the assignment.
    assert len(cond.succs) == 2


def test_while_has_back_edge():
    cfg = build_cfg(parse_chunk("while x > 0 do x = x - 1 end"), "when")
    cond = next(n for n in cfg.nodes if n.kind == "cond")
    body = next(n for n in cfg.nodes
                if n.defs and n.defs[0].name == "x")
    assert cond.id in _reachable(cfg, body.id)  # loop back edge
    assert cfg.exit in cond.succs  # loop exit edge


def test_break_leaves_loop():
    cfg = build_cfg(parse_chunk(
        "while true do break end\ny = 1"), "when")
    brk = next(n for n in cfg.nodes
               if n.kind == "stmt" and not n.defs and not n.uses
               and n.stmt is not None)
    after = next(n for n in cfg.nodes
                 if n.defs and n.defs[0].name == "y")
    assert after.id in _reachable(cfg, brk.id)


def test_return_has_no_successor_in_block():
    cfg = build_cfg(parse_chunk("return 1\n"), "when")
    ret = next(n for n in cfg.nodes if n.kind == "stmt")
    assert ret.succs == [cfg.exit]


def test_numeric_for_defines_loop_var():
    cfg = build_cfg(parse_chunk(
        "for i = 1, 4 do t = i end"), "when")
    head = next(n for n in cfg.nodes if n.kind == "forhead")
    assert [d.name for d in head.defs] == ["i"]
    assert [d.kind for d in head.defs] == ["for"]


def test_decision_cfg_synthetic_go_guard():
    cfg = build_decision_cfg(parse_chunk("go = total > 1"),
                             parse_chunk("targets[1] = 5"))
    guard = next(n for n in cfg.nodes if n.synthetic)
    assert guard.kind == "cond"
    assert [u.name for u in guard.uses] == ["go"]
    # when hook flows into the guard; where only on the true edge.
    hooks = {n.id: n.hook for n in cfg.nodes}
    assert {hooks[s] for s in guard.succs if cfg.nodes[s].kind == "stmt"} \
        == {"where"}
    assert cfg.exit in _reachable(cfg, guard.id)
