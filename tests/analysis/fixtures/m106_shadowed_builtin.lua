-- expect: M106 when 2 6
-- @name m106-shadowed-builtin
-- @when
max = 0
go = max(1, 2) > 0
-- @where
