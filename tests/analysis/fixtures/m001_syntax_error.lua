-- expect: M001 when 1 6
-- @name m001-syntax-error
-- @when
go = = 1
-- @where
