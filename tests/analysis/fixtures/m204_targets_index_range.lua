-- expect: M204 where 1 8
-- @name m204-targets-index-range
-- @when
go = true
-- @where
targets[0] = 10
