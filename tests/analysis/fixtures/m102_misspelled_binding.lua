-- expect: M102 when 1 6
-- @name m102-misspelled-binding
-- @when
go = allmetalod > 10
-- @where
