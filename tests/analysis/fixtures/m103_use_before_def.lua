-- expect: M103 when 4 6
-- @name m103-use-before-def
-- @when
if whoami == 1 then
  boost = 2
end
go = boost ~= nil
-- @where
