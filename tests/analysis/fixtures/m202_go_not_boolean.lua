-- expect: M202 when 1 1
-- @name m202-go-not-boolean
-- @when
go = 1
-- @where
