-- expect: M401 when 1 6
-- @name m401-forbidden-call
-- @when
go = os.time() > 0
-- @where
