-- expect: M104 when 1 1
-- @name m104-dead-write
-- @when
unused = 42
go = false
-- @where
