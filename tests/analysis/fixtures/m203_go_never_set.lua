-- expect: M203 when - -
-- @name m203-go-never-set
-- @when
pressure = authmetaload + 1
-- @where
targets[1] = pressure
