-- expect: M107 when 1 19
-- @name m107-unknown-metric-key
-- @when
go = MDSs[whoami]["lod"] > 1
-- @where
