-- expect: M205 where 1 8
-- @name m205-load-conservation
-- @when
go = true
-- @where
targets[2] = MDSs[whoami]["load"] * 2
