-- expect: M105 when 1 1
-- @name m105-binding-overwrite
-- @when
whoami = 1
go = false
-- @where
