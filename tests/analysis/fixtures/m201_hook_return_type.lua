-- expect: M201 metaload 1 -
-- @name m201-hook-return-type
-- @metaload
"hot"
-- @when
go = false
-- @where
