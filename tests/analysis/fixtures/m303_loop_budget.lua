-- expect: M303 when 2 1
-- @name m303-loop-budget
-- @when
s = 0
for i = 1, 1000000 do
  s = s + i
end
go = s > 0
-- @where
