-- expect: M302 when 2 1
-- @name m302-loop-bound-unprovable
-- @when
x = 10
while x > 0 do
  x = RDstate()
end
go = false
-- @where
