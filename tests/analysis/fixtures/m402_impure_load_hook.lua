-- expect: M402 metaload 1 1
-- @name m402-impure-load-hook
-- @metaload
RDstate("x") + IRD
-- @when
go = false
-- @where
