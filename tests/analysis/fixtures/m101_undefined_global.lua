-- expect: M101 when 1 6
-- @name m101-undefined-global
-- @when
go = zork > 5
-- @where
