-- expect: M301 when 1 1
-- @name m301-infinite-loop
-- @when
while true do end
go = false
-- @where
