"""Every bundled policy and shipped example must lint clean.

This is the suite that keeps the analyzer honest in the no-false-positive
direction: the stock policies exercise loops over ``#MDSs``, persistent
state, Lua and/or idioms, and the full decision environment.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_policy
from repro.cli import main
from repro.core.policies import STOCK_POLICIES
from repro.core.policyfile import load_policy_file

REPO = Path(__file__).resolve().parents[2]
EXAMPLE_POLICIES = sorted((REPO / "examples" / "policies").glob("*.lua"))


@pytest.mark.parametrize("name", sorted(STOCK_POLICIES))
def test_stock_policy_lints_clean(name):
    report = lint_policy(STOCK_POLICIES[name]())
    assert report.diagnostics == (), report.render()
    assert report.summary() == "lint:clean"


@pytest.mark.parametrize("path", EXAMPLE_POLICIES,
                         ids=lambda p: p.stem)
def test_example_policy_lints_clean(path):
    report = lint_policy(load_policy_file(path))
    assert report.diagnostics == (), report.render()


def test_example_policies_exist():
    assert EXAMPLE_POLICIES, "examples/policies/*.lua disappeared"


def test_cli_lint_all_bundled(capsys):
    targets = sorted(STOCK_POLICIES) + [str(p) for p in EXAMPLE_POLICIES]
    assert main(["lint", *targets]) == 0
    out = capsys.readouterr().out
    assert "greedy-spill: clean" in out


def test_cli_strict_mode_on_bundled(capsys):
    # Not even warnings: the bundled set is strictly clean.
    assert main(["lint", "--strict", *sorted(STOCK_POLICIES)]) == 0
    capsys.readouterr()
