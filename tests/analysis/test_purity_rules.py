"""Sandbox/purity rules (M401/M402) -- and the whitelist-sync contract.

The static analyzer's notion of "forbidden" is derived from the *live*
sandbox environment (``luapolicy.stdlib``), so for every stdlib global
the sandbox strips, this suite asserts both halves agree: the runtime
rejects the call AND the static rule fires.  A drift in either direction
fails one leg of the parametrized test.
"""

import pytest

from repro.analysis import lint_policy
from repro.core.api import MantlePolicy
from repro.luapolicy.errors import LuaError
from repro.luapolicy.sandbox import compile_policy
from repro.luapolicy.stdlib import (
    FORBIDDEN_STDLIB_GLOBALS,
    FORBIDDEN_STDLIB_MEMBERS,
    SANDBOX_TABLE_MEMBERS,
)

from .conftest import rules


@pytest.mark.parametrize("name", sorted(FORBIDDEN_STDLIB_GLOBALS))
def test_forbidden_global_rejected_statically_and_at_runtime(name):
    source = f"go = {name}(1) ~= nil"
    # Static half: M401 fires on the call site.
    report = lint_policy(MantlePolicy(name="sync", when=source))
    fired = [d for d in report.diagnostics if d.rule == "M401"]
    assert fired, f"M401 did not fire for {name}"
    assert all(d.severity == "error" for d in fired)
    # Runtime half: the sandbox has stripped the global, so calling it
    # raises (nil is not callable).
    with pytest.raises(LuaError):
        compile_policy(source).run({})


@pytest.mark.parametrize("dotted", sorted(FORBIDDEN_STDLIB_MEMBERS))
def test_forbidden_member_rejected_statically_and_at_runtime(dotted):
    source = f"go = {dotted}(1) ~= nil"
    report = lint_policy(MantlePolicy(name="sync", when=source))
    assert any(d.rule == "M401" for d in report.diagnostics), \
        f"M401 did not fire for {dotted}"
    with pytest.raises(LuaError):
        compile_policy(source).run({})


def test_whitelisted_members_are_clean(lint):
    calls = " + ".join(
        f"math.{m}(1)" for m in sorted(SANDBOX_TABLE_MEMBERS["math"])
        if m not in ("max", "min", "huge"))
    report = lint(when=f"go = {calls} >= 0")
    assert [r for r in rules(report) if r == "M401"] == []


def test_unknown_function_fires_m401(lint):
    report = lint(when="go = frobnicate(1) > 0")
    assert "M401" in rules(report)
    # The undefined-global rule is suppressed at the same site -- one
    # finding per mistake.
    assert "M101" not in rules(report)


def test_state_read_in_metaload_fires_m402(lint):
    report = lint(metaload='RDstate("x") + IRD')
    assert "M402" in rules(report)


def test_state_write_in_mdsload_fires_m402(lint):
    report = lint(mdsload='WRstate("x", 1) or MDSs[i]["all"]')
    assert "M402" in rules(report)


def test_state_access_in_decision_hooks_is_allowed(lint):
    # when/where legitimately persist state across ticks (Listing 3).
    report = lint(when='last = RDstate("last") or 0\n'
                       'WRstate("last", total)\ngo = total > last')
    assert "M402" not in rules(report)
    assert "M401" not in rules(report)
