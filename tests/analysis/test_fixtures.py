"""Regression fixtures: every lint rule fires on its broken policy.

Each ``tests/analysis/fixtures/mXXX_*.lua`` is a deliberately broken
policy whose expected findings are declared in ``-- expect:`` header
lines (``rule hook line column``, with ``-`` as a wildcard).  The test
asserts each expectation matches a reported diagnostic exactly --
including the line/column, so position tracking through the lexer,
parser and analyzer stays honest.
"""

from pathlib import Path

import pytest

from repro.analysis import RULES, lint_policy
from repro.cli import main
from repro.core.policyfile import load_policy_file

FIXTURES = Path(__file__).parent / "fixtures"
FIXTURE_FILES = sorted(FIXTURES.glob("*.lua"))


def _expectations(path: Path) -> list[tuple[str, str, object, object]]:
    out = []
    for line in path.read_text().splitlines():
        if not line.startswith("-- expect:"):
            continue
        rule, hook, lineno, column = line.removeprefix("-- expect:").split()
        out.append((
            rule, hook,
            None if lineno == "-" else int(lineno),
            None if column == "-" else int(column),
        ))
    return out


def test_fixture_inventory():
    """At least one fixture per rule in the catalogue."""
    covered = {expect[0] for path in FIXTURE_FILES
               for expect in _expectations(path)}
    assert covered == set(RULES), sorted(set(RULES) - covered)


@pytest.mark.parametrize(
    "path", FIXTURE_FILES, ids=lambda p: p.stem)
def test_fixture_fires_expected_rule(path):
    expectations = _expectations(path)
    assert expectations, f"{path.name} declares no -- expect: lines"
    report = lint_policy(load_policy_file(path))
    found = [(d.rule, d.hook, d.line, d.column) for d in report.diagnostics]
    for rule, hook, line, column in expectations:
        matches = [f for f in found if f[0] == rule and f[1] == hook]
        assert matches, (
            f"{path.name}: {rule} in hook {hook!r} did not fire; "
            f"got {found}")
        if line is not None:
            assert any(f[2] == line for f in matches), \
                f"{path.name}: {rule} fired at lines " \
                f"{[f[2] for f in matches]}, expected {line}"
        if column is not None:
            assert any(f[2:] == (line, column) for f in matches), \
                f"{path.name}: {rule} fired at {matches}, " \
                f"expected {line}:{column}"


@pytest.mark.parametrize(
    "path", FIXTURE_FILES, ids=lambda p: p.stem)
def test_fixture_fails_strict_lint(path):
    """Every fixture is a failure under --strict (CI's fixture mode)."""
    report = lint_policy(load_policy_file(path))
    assert report.diagnostics, f"{path.name} linted clean"


def test_cli_expect_fail_mode(capsys):
    files = [str(path) for path in FIXTURE_FILES]
    assert main(["lint", "--strict", "--expect-fail", *files]) == 0
    capsys.readouterr()
    # A clean policy in the list must flip the status to 1.
    assert main(["lint", "--strict", "--expect-fail",
                 "greedy-spill", *files]) == 1
    err = capsys.readouterr().err
    assert "greedy-spill" in err


def test_cli_json_format(capsys):
    import json

    assert main(["lint", "--format", "json",
                 str(FIXTURES / "m101_undefined_global.lua")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["ok"] is False
    assert payload[0]["diagnostics"][0]["rule"] == "M101"
    assert payload[0]["diagnostics"][0]["line"] == 1
    assert payload[0]["diagnostics"][0]["column"] == 6
