"""Hook-contract rules (M107, M2xx): the abstract interpreter's verdicts."""

from .conftest import rules


# -- M201: load hooks must produce a number ---------------------------------

def test_metaload_string_result_fires(lint):
    report = lint(metaload='"hot"')
    assert rules(report) == ["M201"]


def test_metaload_expression_is_clean(lint):
    report = lint(metaload="IRD + 2*IWR + READDIR")
    assert rules(report) == []


def test_metaload_chunk_form_is_clean(lint):
    # environment.compile_metaload falls back to chunk + output global.
    report = lint(metaload="metaload = IRD * 2\nreturn metaload")
    assert rules(report) == []


def test_mdsload_boolean_result_fires(lint):
    report = lint(mdsload='MDSs[i]["all"] > 0')
    assert rules(report) == ["M201"]


# -- M202/M203: the `go` contract -------------------------------------------

def test_go_number_fires_m202(lint):
    report = lint(when="go = 1")
    assert rules(report) == ["M202"]


def test_go_comparison_is_clean(lint):
    report = lint(when="go = total > 10")
    assert rules(report) == []


def test_go_lua_and_or_idiom_is_clean(lint):
    # `x > 1 and true or false` -- boolean through Lua's and/or typing.
    report = lint(when="go = total > 1 and true or false")
    assert rules(report) == []


def test_go_never_set_fires_m203(lint):
    report = lint(when="pressure = authmetaload + 1",
                  where="targets[1] = pressure")
    assert "M203" in rules(report)


# -- M204: targets index provably in range ----------------------------------

def test_targets_zero_index_fires(lint):
    report = lint(when="go = true", where="targets[0] = 10")
    assert "M204" in rules(report)


def test_targets_loop_over_mds_count_is_clean(lint):
    report = lint(when="go = true",
                  where="for i = 1, #MDSs do targets[i] = 0 end")
    assert rules(report) == []


def test_targets_whoami_is_clean(lint):
    report = lint(when="go = true",
                  where="targets[whoami] = total / 2")
    assert rules(report) == []


def test_targets_string_key_fires(lint):
    report = lint(when="go = true", where='targets["a"] = 1')
    assert "M204" in rules(report)


# -- M205: load conservation ------------------------------------------------

def test_shipping_double_own_load_fires(lint):
    report = lint(when="go = true",
                  where='targets[2] = MDSs[whoami]["load"] * 2')
    assert "M205" in rules(report)


def test_shipping_half_own_load_is_clean(lint):
    # cold-standby shape: move half of my load to a spare rank.
    report = lint(when="target = 2\ngo = total > 0",
                  where='targets[target] = MDSs[whoami]["load"] / 2')
    assert rules(report) == []


# -- M107: unknown MDS metric keys ------------------------------------------

def test_unknown_metric_key_fires_with_hint(lint):
    report = lint(when='go = MDSs[whoami]["lod"] > 1')
    assert "M107" in rules(report)
    (diag,) = report.diagnostics
    assert "load" in diag.hint


def test_known_metric_keys_are_clean(lint):
    report = lint(when='go = MDSs[whoami]["load"] + '
                       'MDSs[whoami]["alive"] > 1')
    assert rules(report) == []
