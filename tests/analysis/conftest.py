"""Shared helpers for the static-analysis test suite."""

import pytest

from repro.analysis import lint_policy
from repro.core.api import MantlePolicy


@pytest.fixture
def lint():
    """lint(policy_or_kwargs) -> list of fired rule ids (with report)."""

    def _lint(policy=None, **kwargs):
        if policy is None:
            kwargs.setdefault("name", "test")
            policy = MantlePolicy(**kwargs)
        return lint_policy(policy)

    return _lint


def rules(report):
    return [diag.rule for diag in report.diagnostics]
