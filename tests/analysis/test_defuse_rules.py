"""Def-use rules (M101-M106): fire on broken code, stay quiet on idioms."""

from .conftest import rules


def test_undefined_global_fires(lint):
    report = lint(when="go = zork > 5")
    assert "M101" in rules(report)
    (diag,) = [d for d in report.diagnostics if d.rule == "M101"]
    assert diag.hook == "when"
    assert (diag.line, diag.column) == (1, 6)


def test_defined_then_used_is_clean(lint):
    report = lint(when="x = total\ngo = x > 5")
    assert rules(report) == []


def test_misspelled_binding_suggests_fix(lint):
    report = lint(when="go = allmetalod > 10")
    assert "M102" in rules(report)
    (diag,) = report.diagnostics
    assert "allmetaload" in diag.hint


def test_use_before_def_across_branches(lint):
    report = lint(when="if whoami == 1 then boost = 2 end\n"
                       "go = boost ~= nil")
    assert rules(report) == ["M103"]


def test_both_branches_defining_is_clean(lint):
    report = lint(when="if whoami == 1 then boost = 2 "
                       "else boost = 0 end\ngo = boost > 1")
    assert rules(report) == []


def test_loop_carried_use_resolves_via_back_edge(lint):
    report = lint(when="x = 0\nwhile x < 3 do x = x + 1 end\n"
                       "go = x > 0")
    assert rules(report) == []


def test_where_sees_when_locals(lint):
    # Listing 2 idiom: `when` discovers the target, `where` uses it.
    report = lint(when="target = 2\ngo = total > 0",
                  where="targets[target] = total / 2")
    assert rules(report) == []


def test_dead_write_fires(lint):
    report = lint(when="unused = 42\ngo = total > 5")
    assert rules(report) == ["M104"]


def test_underscore_names_exempt_from_dead_write(lint):
    report = lint(when="_scratch = 42\ngo = total > 5")
    assert rules(report) == []


def test_go_is_never_a_dead_write(lint):
    # `go` is read by the harness, not the chunk.
    report = lint(when="go = true")
    assert rules(report) == []


def test_binding_overwrite_fires(lint):
    report = lint(when="whoami = 1\ngo = whoami > 0")
    assert "M105" in rules(report)


def test_shadowed_builtin_call_fires(lint):
    report = lint(when="max = 0\ngo = max(1, 2) > 0")
    assert "M106" in rules(report)


def test_reassigned_builtin_to_function_is_not_m106(lint):
    # Aliasing one callable to another stays callable.
    report = lint(when="pick = max\ngo = pick(1, total) > 0")
    assert "M106" not in rules(report)


def test_mdsload_env_has_i(lint):
    report = lint(mdsload='MDSs[i]["all"] + MDSs[i]["q"]')
    assert rules(report) == []


def test_metaload_env_rejects_decision_bindings(lint):
    report = lint(metaload="IRD + total")
    assert "M101" in rules(report)
