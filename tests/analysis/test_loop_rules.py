"""Loop-bound and cost rules (M301-M303)."""

from .conftest import rules


def test_while_true_fires_m301(lint):
    report = lint(when="while true do end\ngo = false")
    assert "M301" in rules(report)


def test_while_true_with_break_is_clean(lint):
    report = lint(when="x = 0\nwhile true do x = x + 1\n"
                       "if x > 3 then break end end\ngo = x > 0")
    assert rules(report) == []


def test_condition_var_never_assigned_fires_m302(lint):
    report = lint(when="x = 10\nwhile x > 0 do y = RDstate() end\n"
                       "go = x > 0")
    assert "M302" in [r for r in rules(report)]


def test_monotone_countdown_is_clean(lint):
    # greedy-spill shape: strictly decreasing counter.
    report = lint(when="t = 8\nwhile t > 0 do t = t - 1 end\ngo = t == 0")
    assert rules(report) == []


def test_geometric_progress_is_clean(lint):
    # giga shape: condition var fed by a var updated multiplicatively.
    report = lint(when="x = 16\nwhile x > 1 do x = x / 2 end\ngo = x < 2")
    assert rules(report) == []


def test_indirect_progress_through_feeder_is_clean(lint):
    # giga-autonomous shape: `depth` feeds `cap` which guards the loop.
    report = lint(when="depth = 1\ncap = 1\n"
                       "while cap < total do depth = depth * 2\n"
                       "cap = depth end\ngo = cap >= total")
    assert rules(report) == []


def test_huge_numeric_for_fires_m303(lint):
    report = lint(when="acc = 0\nfor i = 1, 1000000 do acc = acc + i end\n"
                       "go = acc > 0")
    assert "M303" in rules(report)


def test_small_numeric_for_is_clean(lint):
    report = lint(when="acc = 0\nfor i = 1, 10 do acc = acc + i end\n"
                       "go = acc > 0")
    assert rules(report) == []


def test_unprovable_for_bound_warns_m302(lint):
    report = lint(when="go = true",
                  where="for i = 1, RDstate() or 1 do targets[i] = 0 end")
    assert "M302" in rules(report)
