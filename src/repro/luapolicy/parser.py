"""Recursive-descent parser for the Mantle-Lua policy language.

Grammar is the Lua 5.1 statement/expression grammar restricted to the
constructs balancer policies need.  Operator precedence follows the Lua
reference manual; ``..`` and ``^`` are right-associative.
"""

from __future__ import annotations

from . import lua_ast as ast
from .errors import LuaSyntaxError
from .lexer import Token, tokenize

# Binary operator precedence (higher binds tighter), per the Lua manual.
_BINARY_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "<": 3, ">": 3, "<=": 3, ">=": 3, "~=": 3, "==": 3,
    "..": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
    "^": 8,
}
_RIGHT_ASSOCIATIVE = {"..", "^"}
_UNARY_PRECEDENCE = 7

# Tokens that terminate a block.
_BLOCK_TERMINATORS = {"end", "else", "elseif", "until"}


class Parser:
    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._pos = 0

    # -- token stream helpers -------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str, value: str | None = None) -> bool:
        token = self._current
        return token.kind == kind and (value is None or token.value == value)

    def _match(self, kind: str, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: str | None = None) -> Token:
        if not self._check(kind, value):
            want = value or kind
            got = self._current.value or self._current.kind
            raise LuaSyntaxError(
                f"expected {want!r}, got {got!r}",
                self._current.line,
                self._current.column,
            )
        return self._advance()

    def _error(self, message: str) -> LuaSyntaxError:
        return LuaSyntaxError(message, self._current.line, self._current.column)

    # -- entry points -----------------------------------------------------
    def parse_chunk(self) -> ast.Block:
        block = self._parse_block()
        if self._current.kind != "eof":
            raise self._error(f"unexpected {self._current.value!r} after chunk")
        return block

    def parse_expression(self) -> ast.Expr:
        expr = self._parse_expr()
        if self._current.kind != "eof":
            raise self._error(
                f"unexpected {self._current.value!r} after expression"
            )
        return expr

    # -- statements ---------------------------------------------------------
    def _parse_block(self) -> ast.Block:
        statements: list[ast.Stmt] = []
        while True:
            while self._match("symbol", ";"):
                pass
            token = self._current
            if token.kind == "eof":
                break
            if token.kind == "keyword" and token.value in _BLOCK_TERMINATORS:
                break
            stmt = self._parse_statement()
            statements.append(stmt)
            if isinstance(stmt, (ast.Return, ast.Break)):
                while self._match("symbol", ";"):
                    pass
                break
        return ast.Block(tuple(statements))

    def _parse_statement(self) -> ast.Stmt:
        token = self._current
        if token.kind == "keyword":
            handler = {
                "if": self._parse_if,
                "while": self._parse_while,
                "repeat": self._parse_repeat,
                "for": self._parse_for,
                "local": self._parse_local,
                "function": self._parse_function_decl,
                "return": self._parse_return,
                "break": self._parse_break,
                "do": self._parse_do,
            }.get(token.value)
            if handler is None:
                raise self._error(f"unexpected keyword {token.value!r}")
            return handler()
        return self._parse_expr_statement()

    def _parse_if(self) -> ast.If:
        tok = self._expect("keyword", "if")
        branches: list[tuple[ast.Expr, ast.Block]] = []
        condition = self._parse_expr()
        self._expect("keyword", "then")
        branches.append((condition, self._parse_block()))
        orelse = ast.Block()
        while True:
            if self._match("keyword", "elseif"):
                condition = self._parse_expr()
                self._expect("keyword", "then")
                branches.append((condition, self._parse_block()))
            elif self._match("keyword", "else"):
                orelse = self._parse_block()
                self._expect("keyword", "end")
                break
            else:
                self._expect("keyword", "end")
                break
        return ast.If(tok.line, tuple(branches), orelse, column=tok.column)

    def _parse_while(self) -> ast.While:
        tok = self._expect("keyword", "while")
        condition = self._parse_expr()
        self._expect("keyword", "do")
        body = self._parse_block()
        self._expect("keyword", "end")
        return ast.While(tok.line, condition, body, column=tok.column)

    def _parse_repeat(self) -> ast.Repeat:
        tok = self._expect("keyword", "repeat")
        body = self._parse_block()
        self._expect("keyword", "until")
        condition = self._parse_expr()
        return ast.Repeat(tok.line, body, condition, column=tok.column)

    def _parse_for(self) -> ast.Stmt:
        tok = self._expect("keyword", "for")
        first = self._expect("name").value
        if self._match("symbol", "="):
            start = self._parse_expr()
            self._expect("symbol", ",")
            stop = self._parse_expr()
            step = self._parse_expr() if self._match("symbol", ",") else None
            self._expect("keyword", "do")
            body = self._parse_block()
            self._expect("keyword", "end")
            return ast.NumericFor(tok.line, first, start, stop, step, body,
                                  column=tok.column)
        names = [first]
        while self._match("symbol", ","):
            names.append(self._expect("name").value)
        self._expect("keyword", "in")
        iterable = self._parse_expr()
        self._expect("keyword", "do")
        body = self._parse_block()
        self._expect("keyword", "end")
        return ast.GenericFor(tok.line, tuple(names), iterable, body,
                              column=tok.column)

    def _parse_local(self) -> ast.Stmt:
        tok = self._expect("keyword", "local")
        if self._check("keyword", "function"):
            self._advance()
            name = self._expect("name").value
            func = self._parse_function_body(tok.line, tok.column)
            return ast.FunctionDecl(tok.line, name, func, is_local=True,
                                    column=tok.column)
        names = [self._expect("name").value]
        while self._match("symbol", ","):
            names.append(self._expect("name").value)
        values: tuple[ast.Expr, ...] = ()
        if self._match("symbol", "="):
            values = tuple(self._parse_expr_list())
        return ast.LocalAssign(tok.line, tuple(names), values,
                               column=tok.column)

    def _parse_function_decl(self) -> ast.FunctionDecl:
        tok = self._expect("keyword", "function")
        name = self._expect("name").value
        if self._check("symbol", ".") or self._check("symbol", ":"):
            raise self._error("method definitions are not supported in policies")
        func = self._parse_function_body(tok.line, tok.column)
        return ast.FunctionDecl(tok.line, name, func, is_local=False,
                                column=tok.column)

    def _parse_function_body(self, line: int,
                             column: int = 0) -> ast.FunctionExpr:
        self._expect("symbol", "(")
        params: list[str] = []
        if not self._check("symbol", ")"):
            while True:
                if self._match("symbol", "..."):
                    raise self._error("varargs are not supported in policies")
                params.append(self._expect("name").value)
                if not self._match("symbol", ","):
                    break
        self._expect("symbol", ")")
        body = self._parse_block()
        self._expect("keyword", "end")
        return ast.FunctionExpr(line, tuple(params), body, column=column)

    def _parse_return(self) -> ast.Return:
        tok = self._expect("keyword", "return")
        values: tuple[ast.Expr, ...] = ()
        token = self._current
        ends_block = (
            token.kind == "eof"
            or (token.kind == "keyword" and token.value in _BLOCK_TERMINATORS)
            or (token.kind == "symbol" and token.value == ";")
        )
        if not ends_block:
            values = tuple(self._parse_expr_list())
        return ast.Return(tok.line, values, column=tok.column)

    def _parse_break(self) -> ast.Break:
        tok = self._expect("keyword", "break")
        return ast.Break(tok.line, column=tok.column)

    def _parse_do(self) -> ast.Do:
        tok = self._expect("keyword", "do")
        body = self._parse_block()
        self._expect("keyword", "end")
        return ast.Do(tok.line, body, column=tok.column)

    def _parse_expr_statement(self) -> ast.Stmt:
        start = self._current
        expr = self._parse_prefix_expr()
        if self._check("symbol", "=") or self._check("symbol", ","):
            targets = [expr]
            while self._match("symbol", ","):
                targets.append(self._parse_prefix_expr())
            self._expect("symbol", "=")
            values = self._parse_expr_list()
            for target in targets:
                if not isinstance(target, (ast.Name, ast.Index)):
                    raise self._error("cannot assign to this expression")
            return ast.Assign(start.line, tuple(targets), tuple(values),
                              column=start.column)
        if isinstance(expr, ast.Call):
            return ast.CallStmt(start.line, expr, column=start.column)
        raise self._error("expression is not a statement (call it or assign it)")

    def _parse_expr_list(self) -> list[ast.Expr]:
        exprs = [self._parse_expr()]
        while self._match("symbol", ","):
            exprs.append(self._parse_expr())
        return exprs

    # -- expressions ---------------------------------------------------------
    def _parse_expr(self, min_precedence: int = 1) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._current
            op = token.value
            if token.kind == "keyword" and op in ("and", "or"):
                pass
            elif token.kind == "symbol" and op in _BINARY_PRECEDENCE:
                pass
            else:
                break
            precedence = _BINARY_PRECEDENCE[op]
            if precedence < min_precedence:
                break
            self._advance()
            next_min = precedence if op in _RIGHT_ASSOCIATIVE else precedence + 1
            right = self._parse_expr(next_min)
            left = ast.BinaryOp(token.line, op, left, right,
                                column=token.column)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._current
        if (token.kind == "symbol" and token.value in ("-", "#")) or (
            token.kind == "keyword" and token.value == "not"
        ):
            self._advance()
            operand = self._parse_expr(_UNARY_PRECEDENCE)
            return ast.UnaryOp(token.line, token.value, operand,
                               column=token.column)
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        base = self._parse_primary()
        if self._check("symbol", "^"):
            token = self._advance()
            # '^' binds tighter than unary on its right: 2^-3 is 2^(-3).
            exponent = self._parse_unary()
            return ast.BinaryOp(token.line, "^", base, exponent,
                                column=token.column)
        return base

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.kind == "number":
            self._advance()
            text = token.value
            value = float(int(text, 16)) if text.lower().startswith("0x") else float(text)
            return ast.NumberLiteral(token.line, value, column=token.column)
        if token.kind == "string":
            self._advance()
            return ast.StringLiteral(token.line, token.value,
                                     column=token.column)
        if token.kind == "keyword":
            if token.value == "nil":
                self._advance()
                return ast.NilLiteral(token.line, column=token.column)
            if token.value in ("true", "false"):
                self._advance()
                return ast.BoolLiteral(token.line, token.value == "true",
                                       column=token.column)
            if token.value == "function":
                self._advance()
                return self._parse_function_body(token.line, token.column)
        if token.kind == "symbol" and token.value == "{":
            return self._parse_table()
        if token.kind == "symbol" and token.value == "...":
            self._advance()
            return ast.Vararg(token.line, column=token.column)
        return self._parse_prefix_expr()

    def _parse_prefix_expr(self) -> ast.Expr:
        token = self._current
        expr: ast.Expr
        if token.kind == "name":
            self._advance()
            expr = ast.Name(token.line, token.value, column=token.column)
        elif self._match("symbol", "("):
            expr = self._parse_expr()
            self._expect("symbol", ")")
        else:
            raise self._error(f"unexpected {token.value or token.kind!r}")
        # Suffixes: indexing, field access, calls.
        while True:
            token = self._current
            if self._match("symbol", "["):
                key = self._parse_expr()
                self._expect("symbol", "]")
                expr = ast.Index(token.line, expr, key, column=token.column)
            elif self._match("symbol", "."):
                name = self._expect("name")
                expr = ast.Index(
                    token.line, expr,
                    ast.StringLiteral(name.line, name.value,
                                      column=name.column),
                    column=token.column,
                )
            elif self._check("symbol", "("):
                expr = self._parse_call(expr)
            elif self._check("string") or self._check("symbol", "{"):
                # Lua sugar: f"arg" / f{table}
                arg: ast.Expr
                if self._check("string"):
                    stoken = self._advance()
                    arg = ast.StringLiteral(stoken.line, stoken.value,
                                            column=stoken.column)
                else:
                    arg = self._parse_table()
                expr = ast.Call(token.line, expr, (arg,),
                                column=token.column)
            elif self._check("symbol", ":"):
                raise self._error("method calls are not supported in policies")
            else:
                return expr

    def _parse_call(self, func: ast.Expr) -> ast.Call:
        token = self._expect("symbol", "(")
        args: list[ast.Expr] = []
        if not self._check("symbol", ")"):
            args = self._parse_expr_list()
        self._expect("symbol", ")")
        return ast.Call(token.line, func, tuple(args), column=token.column)

    def _parse_table(self) -> ast.TableConstructor:
        token = self._expect("symbol", "{")
        fields: list[ast.TableField] = []
        while not self._check("symbol", "}"):
            if self._match("symbol", "["):
                key = self._parse_expr()
                self._expect("symbol", "]")
                self._expect("symbol", "=")
                value = self._parse_expr()
                fields.append(ast.TableField(key, value))
            elif (
                self._check("name")
                and self._tokens[self._pos + 1].kind == "symbol"
                and self._tokens[self._pos + 1].value == "="
            ):
                name = self._advance()
                self._advance()  # '='
                value = self._parse_expr()
                fields.append(ast.TableField(
                    ast.StringLiteral(name.line, name.value,
                                      column=name.column),
                    value,
                ))
            else:
                fields.append(ast.TableField(None, self._parse_expr()))
            if not (self._match("symbol", ",") or self._match("symbol", ";")):
                break
        self._expect("symbol", "}")
        return ast.TableConstructor(token.line, tuple(fields),
                                    column=token.column)


def parse_chunk(source: str) -> ast.Block:
    """Parse a sequence of statements (a policy chunk)."""
    return Parser(source).parse_chunk()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (e.g. a metaload formula)."""
    return Parser(source).parse_expression()
