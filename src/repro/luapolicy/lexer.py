"""Tokenizer for the Mantle-Lua policy language.

The language is the subset of Lua 5.1 that Mantle balancer policies use
(paper Listings 1-4): numbers, strings, names, keywords, the usual operator
set, table constructors, and ``--`` line comments / ``--[[ ]]`` block
comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import LuaSyntaxError

KEYWORDS = frozenset(
    {
        "and", "break", "do", "else", "elseif", "end", "false", "for",
        "function", "if", "in", "local", "nil", "not", "or", "repeat",
        "return", "then", "true", "until", "while",
    }
)

# Multi-character operators must be matched before their prefixes.
_SYMBOLS = (
    "...", "..", "==", "~=", "<=", ">=",
    "+", "-", "*", "/", "%", "^", "#",
    "<", ">", "=", "(", ")", "{", "}", "[", "]",
    ";", ":", ",", ".",
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str  # 'name' | 'number' | 'string' | 'keyword' | 'symbol' | 'eof'
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Streaming tokenizer over policy source text."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level cursor helpers -------------------------------------
    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _advance(self, n: int = 1) -> str:
        text = self.source[self.pos : self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += n
        return text

    def _error(self, message: str) -> LuaSyntaxError:
        return LuaSyntaxError(message, self.line, self.column)

    # -- token production ----------------------------------------------
    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                yield Token("eof", "", self.line, self.column)
                return
            yield self._next_token()

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                self._advance(2)
                if self._peek() == "[" and self._peek(1) == "[":
                    self._advance(2)
                    self._skip_until("]]", what="block comment")
                else:
                    while self.pos < len(self.source) and self._peek() != "\n":
                        self._advance()
            else:
                return

    def _skip_until(self, terminator: str, what: str) -> str:
        start = self.pos
        idx = self.source.find(terminator, self.pos)
        if idx < 0:
            raise self._error(f"unterminated {what}")
        text = self.source[start:idx]
        self._advance(idx - start + len(terminator))
        return text

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._read_number(line, column)
        if ch.isalpha() or ch == "_":
            return self._read_name(line, column)
        if ch in "'\"":
            return self._read_string(line, column)
        if ch == "[" and self._peek(1) == "[":
            self._advance(2)
            text = self._skip_until("]]", what="long string")
            return Token("string", text, line, column)
        for sym in _SYMBOLS:
            if self.source.startswith(sym, self.pos):
                self._advance(len(sym))
                return Token("symbol", sym, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _read_number(self, line: int, column: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if not self._is_hex(self._peek()):
                raise self._error("malformed hexadecimal number")
            while self._is_hex(self._peek()):
                self._advance()
            return Token("number", self.source[start : self.pos], line, column)
        while self._peek().isdigit():
            self._advance()
        if self._peek() == ".":
            # Do not swallow the concatenation operator '..'
            if self._peek(1) == ".":
                return Token("number", self.source[start : self.pos], line, column)
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E"):
            nxt = self._peek(1)
            if nxt.isdigit() or (nxt in ("+", "-") and self._peek(2).isdigit()):
                self._advance(2)
                while self._peek().isdigit():
                    self._advance()
        text = self.source[start : self.pos]
        if text in {".", ""}:
            raise self._error("malformed number")
        return Token("number", text, line, column)

    @staticmethod
    def _is_hex(ch: str) -> bool:
        return bool(ch) and ch in "0123456789abcdefABCDEF"

    def _read_name(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        kind = "keyword" if text in KEYWORDS else "name"
        return Token(kind, text, line, column)

    def _read_string(self, line: int, column: int) -> Token:
        quote = self._advance()
        parts: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated string")
            ch = self._advance()
            if ch == quote:
                break
            if ch == "\n":
                raise self._error("unterminated string")
            if ch == "\\":
                parts.append(self._read_escape())
            else:
                parts.append(ch)
        return Token("string", "".join(parts), line, column)

    def _read_escape(self) -> str:
        ch = self._advance()
        simple = {"n": "\n", "t": "\t", "r": "\r", "a": "\a", "b": "\b",
                  "f": "\f", "v": "\v", "\\": "\\", '"': '"', "'": "'",
                  "\n": "\n"}
        if ch in simple:
            return simple[ch]
        if ch.isdigit():
            digits = ch
            while len(digits) < 3 and self._peek().isdigit():
                digits += self._advance()
            code = int(digits)
            if code > 255:
                raise self._error("decimal escape too large")
            return chr(code)
        raise self._error(f"invalid escape sequence \\{ch}")


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, returning a list ending with the EOF token."""
    return list(Lexer(source).tokens())
