"""Run-time values for the Mantle-Lua interpreter.

Lua values map to Python values: ``nil`` -> ``None``, booleans -> ``bool``,
numbers -> ``float``, strings -> ``str``, tables -> :class:`LuaTable`,
functions -> :class:`LuaFunction` or a Python callable registered in the
environment (e.g. ``WRstate``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from .errors import LuaRuntimeError

LuaValue = Any  # None | bool | float | str | LuaTable | LuaFunction | callable


class MultiValue(tuple):
    """Multiple return values from a Lua call.

    Only the last expression of an expression list keeps its multiplicity
    (Lua semantics); in any single-value context the first element is used
    (or nil when empty).
    """

    def first(self) -> LuaValue:
        return self[0] if self else None


def is_truthy(value: LuaValue) -> bool:
    """Lua truthiness: only ``nil`` and ``false`` are false."""
    return value is not None and value is not False


def type_name(value: LuaValue) -> str:
    if value is None:
        return "nil"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, LuaTable):
        return "table"
    if callable(value):
        return "function"
    return type(value).__name__


def lua_repr(value: LuaValue) -> str:
    """``tostring``-style rendering."""
    if value is None:
        return "nil"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return value
    if isinstance(value, LuaTable):
        return f"table: 0x{id(value):x}"
    return f"function: 0x{id(value):x}"


#: Internal wrapper so boolean keys do not collide with 0/1 (Python dicts
#: treat True == 1 as the same key; Lua tables do not).
_BOOL_KEY = {True: ("__lua_bool__", True), False: ("__lua_bool__", False)}


def _normalize_key(key: LuaValue) -> LuaValue:
    """Integral float keys collapse to int so ``t[1]`` and ``t[1.0]`` agree."""
    if isinstance(key, bool):
        return _BOOL_KEY[key]
    if isinstance(key, float) and key == int(key):
        return int(key)
    return key


def _denormalize_key(key: Any) -> LuaValue:
    if isinstance(key, tuple) and len(key) == 2 and key[0] == "__lua_bool__":
        return key[1]
    return key


class LuaTable:
    """A Lua table: a hash map with array-part semantics for ``#`` and ipairs.

    The array part is the maximal run of consecutive integer keys starting
    at 1, matching the only ``#`` behaviour Lua actually guarantees.
    """

    __slots__ = ("_data",)

    def __init__(self, array: list[LuaValue] | None = None,
                 hash_part: dict[Any, LuaValue] | None = None) -> None:
        self._data: dict[Any, LuaValue] = {}
        if array:
            for i, value in enumerate(array, start=1):
                if value is not None:
                    self._data[i] = value
        if hash_part:
            for key, value in hash_part.items():
                self.set(key, value)

    # -- core access -----------------------------------------------------
    def get(self, key: LuaValue) -> LuaValue:
        if key is None:
            return None
        return self._data.get(_normalize_key(key))

    def set(self, key: LuaValue, value: LuaValue) -> None:
        if key is None:
            raise LuaRuntimeError("table index is nil")
        if isinstance(key, float) and key != key:
            raise LuaRuntimeError("table index is NaN")
        key = _normalize_key(key)
        if value is None:
            self._data.pop(key, None)
        else:
            self._data[key] = value

    def length(self) -> int:
        """Border of the array part: largest n with t[1..n] all non-nil."""
        n = 0
        while (n + 1) in self._data:
            n += 1
        return n

    # -- iteration ---------------------------------------------------------
    def lua_pairs(self) -> Iterator[tuple[LuaValue, LuaValue]]:
        """Array part in order first, then remaining keys in insertion order."""
        n = self.length()
        for i in range(1, n + 1):
            yield float(i), self._data[i]
        for key, value in self._data.items():
            if isinstance(key, int) and not isinstance(key, bool) and 1 <= key <= n:
                continue
            key = _denormalize_key(key)
            yield (float(key) if isinstance(key, int) and not isinstance(key, bool)
                   else key), value

    def lua_ipairs(self) -> Iterator[tuple[float, LuaValue]]:
        n = self.length()
        for i in range(1, n + 1):
            yield float(i), self._data[i]

    def copy_shallow(self) -> "LuaTable":
        """A new table sharing no storage with this one (values are shared).

        Used to clone stdlib prototype tables per environment so a policy
        that mutates ``math``/``string``/``table`` cannot leak state into
        later runs.
        """
        clone = LuaTable()
        clone._data = self._data.copy()
        return clone

    # -- python conveniences -------------------------------------------------
    def to_list(self) -> list[LuaValue]:
        """Array part as a Python list (useful in tests and the balancer)."""
        return [self._data[i] for i in range(1, self.length() + 1)]

    def to_dict(self) -> dict[Any, LuaValue]:
        return {_denormalize_key(key): value
                for key, value in self._data.items()}

    def keys(self) -> list[Any]:
        return [_denormalize_key(key) for key in self._data.keys()]

    def __contains__(self, key: LuaValue) -> bool:
        return _normalize_key(key) in self._data

    def __len__(self) -> int:
        return self.length()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LuaTable({self._data!r})"


class LuaFunction:
    """A function defined in policy source (closure over its environment)."""

    __slots__ = ("params", "body", "closure", "name")

    def __init__(self, params: tuple[str, ...], body: Any, closure: Any,
                 name: str = "?") -> None:
        self.params = params
        self.body = body
        self.closure = closure
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<lua function {self.name}>"


def from_python(value: Any) -> LuaValue:
    """Convert a Python value (possibly nested) into a Lua value."""
    if value is None or isinstance(value, (bool, str, LuaTable)):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, dict):
        table = LuaTable()
        for key, item in value.items():
            table.set(from_python(key), from_python(item))
        return table
    if isinstance(value, (list, tuple)):
        return LuaTable(array=[from_python(item) for item in value])
    if callable(value):
        return value
    raise LuaRuntimeError(f"cannot convert {type(value).__name__} to a Lua value")


def to_python(value: LuaValue) -> Any:
    """Convert a Lua value to plain Python (tables become dict or list)."""
    if isinstance(value, LuaTable):
        n = value.length()
        data = value.to_dict()
        if len(data) == n:  # pure array
            return [to_python(item) for item in value.to_list()]
        return {key: to_python(item) for key, item in data.items()}
    return value


def python_callable(fn: Callable[..., Any], name: str | None = None):
    """Wrap a Python function for the Lua environment, converting the result."""

    def wrapper(*args: LuaValue) -> LuaValue:
        return from_python(fn(*args))

    wrapper.__name__ = name or getattr(fn, "__name__", "builtin")
    return wrapper
