"""High-level sandboxed execution of Mantle-Lua policy source.

This is the facade the balancer driver uses: compile once, run per tick
against a fresh environment seeded with the Mantle metrics, under an
instruction budget.
"""

from __future__ import annotations

from typing import Any, Mapping

from .. import fastpath
from . import lua_ast as ast
from .errors import LuaError, LuaSyntaxError
from .interpreter import DEFAULT_BUDGET, Environment, Interpreter
from .parser import parse_chunk, parse_expression
from .stdlib import new_environment
from .values import LuaValue, from_python, to_python


class CompiledPolicy:
    """A parsed policy chunk ready to execute against an environment."""

    def __init__(self, source: str, chunk: ast.Block,
                 budget: int = DEFAULT_BUDGET) -> None:
        self.source = source
        self.chunk = chunk
        self.budget = budget

    def run(self, bindings: Mapping[str, Any] | None = None,
            env: Environment | None = None) -> "PolicyResult":
        """Execute the chunk.

        *bindings* are injected as globals (Python values are converted).
        Returns a :class:`PolicyResult` exposing the final globals and any
        ``return`` values.
        """
        if env is None:
            env = new_environment()
        if bindings:
            for name, value in bindings.items():
                env.declare(name, from_python(value))
        interpreter = Interpreter(budget=self.budget)
        returned = interpreter.run(self.chunk, env)
        return PolicyResult(env, returned, interpreter.instructions_used)


class PolicyResult:
    """Outcome of one policy execution: globals + return values."""

    def __init__(self, env: Environment, returned: tuple | None,
                 instructions: int) -> None:
        self.env = env
        self.returned = returned
        self.instructions = instructions

    def global_value(self, name: str) -> LuaValue:
        return self.env.lookup(name)

    def python_value(self, name: str) -> Any:
        """Global *name* converted to plain Python (tables -> dict/list)."""
        return to_python(self.env.lookup(name))

    @property
    def return_value(self) -> Any:
        if not self.returned:
            return None
        return to_python(self.returned[0])


#: Parsed-AST memo, keyed by the exact source text.  The balancer compiles
#: the same policy chunk on every rank and (without this) once per load
#: formula evaluation; chunks are immutable once parsed, so sharing the
#: AST across CompiledPolicy instances is safe.  Bounded to keep pathological
#: callers (fuzzers generating unique sources) from growing it forever.
_PARSE_CACHE: dict[tuple[str, str], ast.Block] = {}
_PARSE_CACHE_MAX = 512


def _cached_parse(kind: str, source: str, parse) -> ast.Block:
    if not fastpath.ENABLED:
        return parse(source)
    key = (kind, source)
    chunk = _PARSE_CACHE.get(key)
    if chunk is None:
        chunk = parse(source)
        if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[key] = chunk
    return chunk


def compile_policy(source: str, budget: int = DEFAULT_BUDGET) -> CompiledPolicy:
    """Parse *source* as a statement chunk.

    Raises :class:`LuaSyntaxError` on malformed source -- callers should
    validate policies before injecting them (see
    :mod:`repro.core.validator`).
    """
    return CompiledPolicy(source, _cached_parse("chunk", source, parse_chunk),
                          budget=budget)


def compile_load_expression(source: str,
                            budget: int = DEFAULT_BUDGET) -> CompiledPolicy:
    """Compile a load formula such as ``IRD + 2*IWR + READDIR``.

    Accepts either a bare expression (the common case for
    ``mds_bal_metaload`` / ``mds_bal_mdsload``) or a full chunk ending in a
    ``return``/assignment.  A bare expression ``E`` compiles as
    ``return (E)``.
    """
    text = source.strip()

    def parse_as_return(src: str) -> ast.Block:
        expr = parse_expression(src)
        return ast.Block((ast.Return(getattr(expr, "line", 1), (expr,)),))

    try:
        chunk = _cached_parse("expr", text, parse_as_return)
    except LuaSyntaxError:
        return compile_policy(text, budget=budget)
    return CompiledPolicy(text, chunk, budget=budget)


def run_policy(source: str, bindings: Mapping[str, Any] | None = None,
               budget: int = DEFAULT_BUDGET) -> PolicyResult:
    """One-shot compile-and-run convenience (used by tests and examples)."""
    return compile_policy(source, budget=budget).run(bindings)


def evaluate_expression(source: str,
                        bindings: Mapping[str, Any] | None = None,
                        budget: int = DEFAULT_BUDGET) -> Any:
    """Evaluate a load formula and return its Python value."""
    result = compile_load_expression(source, budget=budget).run(bindings)
    if result.returned:
        return result.return_value
    return None


__all__ = [
    "CompiledPolicy",
    "PolicyResult",
    "compile_policy",
    "compile_load_expression",
    "run_policy",
    "evaluate_expression",
    "LuaError",
]
