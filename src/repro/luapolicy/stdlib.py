"""Builtin functions available to Mantle-Lua policies.

The Mantle environment (paper Table 2) only guarantees ``max``, ``min``,
``WRstate`` and ``RDstate`` -- the last two are installed by the balancer
driver.  We additionally expose the safe, side-effect-free slice of the Lua
standard library that real Mantle policies in upstream Ceph ended up using
(``math.*``, ``tostring``, ``tonumber``, ``pairs``/``ipairs``...).
"""

from __future__ import annotations

import math
from typing import Iterator

from .. import fastpath
from .errors import LuaRuntimeError
from .interpreter import Environment
from .values import (
    LuaTable,
    LuaValue,
    MultiValue,
    is_truthy,
    lua_repr,
    type_name,
)


def _want_number(name: str, value: LuaValue) -> float:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            pass
    raise LuaRuntimeError(f"bad argument to '{name}' (number expected, "
                          f"got {type_name(value)})")


def lua_max(*args: LuaValue) -> float:
    if not args:
        raise LuaRuntimeError("bad argument to 'max' (value expected)")
    return max(_want_number("max", a) for a in args)


def lua_min(*args: LuaValue) -> float:
    if not args:
        raise LuaRuntimeError("bad argument to 'min' (value expected)")
    return min(_want_number("min", a) for a in args)


def lua_tostring(value: LuaValue = None) -> str:
    return lua_repr(value)


def lua_tonumber(value: LuaValue = None) -> float | None:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


def lua_pairs(table: LuaValue = None) -> Iterator[tuple[LuaValue, LuaValue]]:
    if not isinstance(table, LuaTable):
        raise LuaRuntimeError(
            f"bad argument to 'pairs' (table expected, got {type_name(table)})"
        )
    return table.lua_pairs()


def lua_ipairs(table: LuaValue = None) -> Iterator[tuple[float, LuaValue]]:
    if not isinstance(table, LuaTable):
        raise LuaRuntimeError(
            f"bad argument to 'ipairs' (table expected, got {type_name(table)})"
        )
    return table.lua_ipairs()


def lua_type(value: LuaValue = None) -> str:
    return type_name(value)


def lua_assert(value: LuaValue = None, message: LuaValue = None) -> LuaValue:
    if not is_truthy(value):
        raise LuaRuntimeError(str(message) if message is not None
                              else "assertion failed!")
    return value


def lua_error(message: LuaValue = None) -> None:
    raise LuaRuntimeError(lua_repr(message))


def _math_table() -> LuaTable:
    table = LuaTable()
    one_arg = {
        "floor": lambda x: float(math.floor(x)),
        "ceil": lambda x: float(math.ceil(x)),
        "abs": abs,
        "sqrt": math.sqrt,
        "exp": math.exp,
        "log": math.log,
        "sin": math.sin,
        "cos": math.cos,
        "tan": math.tan,
    }
    for name, fn in one_arg.items():
        def wrapper(x: LuaValue = None, _fn=fn, _name=name) -> float:
            return float(_fn(_want_number(_name, x)))
        table.set(name, wrapper)
    table.set("max", lua_max)
    table.set("min", lua_min)
    table.set("huge", math.inf)
    table.set("pi", math.pi)

    def math_pow(x: LuaValue = None, y: LuaValue = None) -> float:
        return _want_number("pow", x) ** _want_number("pow", y)

    table.set("pow", math_pow)

    def math_fmod(x: LuaValue = None, y: LuaValue = None) -> float:
        return math.fmod(_want_number("fmod", x), _want_number("fmod", y))

    table.set("fmod", math_fmod)
    return table


def _want_string(name: str, value: LuaValue) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return lua_repr(float(value))
    raise LuaRuntimeError(f"bad argument to '{name}' (string expected, "
                          f"got {type_name(value)})")


def _want_table(name: str, value: LuaValue) -> LuaTable:
    if isinstance(value, LuaTable):
        return value
    raise LuaRuntimeError(f"bad argument to '{name}' (table expected, "
                          f"got {type_name(value)})")


def _lua_index(i: float | int, length: int) -> int:
    """Convert a Lua string index (1-based, negative from the end)."""
    i = int(i)
    if i < 0:
        i = length + i + 1
    return i


def _string_table() -> LuaTable:
    table = LuaTable()

    def s_len(s: LuaValue = None) -> float:
        return float(len(_want_string("len", s)))

    def s_sub(s: LuaValue = None, i: LuaValue = 1, j: LuaValue = -1) -> str:
        text = _want_string("sub", s)
        start = max(1, _lua_index(_want_number("sub", i), len(text)))
        stop = min(len(text), _lua_index(_want_number("sub", j), len(text)))
        if start > stop:
            return ""
        return text[start - 1:stop]

    def s_upper(s: LuaValue = None) -> str:
        return _want_string("upper", s).upper()

    def s_lower(s: LuaValue = None) -> str:
        return _want_string("lower", s).lower()

    def s_rep(s: LuaValue = None, n: LuaValue = 0) -> str:
        return _want_string("rep", s) * int(_want_number("rep", n))

    def s_reverse(s: LuaValue = None) -> str:
        return _want_string("reverse", s)[::-1]

    def s_byte(s: LuaValue = None, i: LuaValue = 1) -> float | None:
        text = _want_string("byte", s)
        index = _lua_index(_want_number("byte", i), len(text))
        if 1 <= index <= len(text):
            return float(ord(text[index - 1]))
        return None

    def s_char(*codes: LuaValue) -> str:
        return "".join(chr(int(_want_number("char", c))) for c in codes)

    def s_find(s: LuaValue = None, pattern: LuaValue = None,
               init: LuaValue = 1, plain: LuaValue = None):
        """Plain substring find only (Lua patterns are not supported in
        the sandbox; pass plain=true semantics unconditionally)."""
        text = _want_string("find", s)
        needle = _want_string("find", pattern)
        start = max(1, _lua_index(_want_number("find", init), len(text)))
        index = text.find(needle, start - 1)
        if index < 0:
            return None
        # Lua returns (start, end); single-value contexts see start.
        return MultiValue((float(index + 1),
                           float(index + len(needle))))

    def s_format(fmt: LuaValue = None, *args: LuaValue):
        template = _want_string("format", fmt)
        out: list[str] = []
        arg_index = 0
        i = 0
        while i < len(template):
            ch = template[i]
            if ch != "%":
                out.append(ch)
                i += 1
                continue
            # Parse %[flags][width][.precision]spec
            j = i + 1
            while j < len(template) and template[j] in "-+ #0123456789.":
                j += 1
            if j >= len(template):
                raise LuaRuntimeError("invalid format string")
            spec = template[j]
            body = template[i + 1:j]
            if spec == "%":
                out.append("%")
                i = j + 1
                continue
            if arg_index >= len(args):
                raise LuaRuntimeError(
                    f"bad argument #{arg_index + 2} to 'format' "
                    "(no value)"
                )
            value = args[arg_index]
            arg_index += 1
            if spec in "di":
                out.append(f"%{body}d" % int(_want_number("format", value)))
            elif spec in "u":
                out.append(f"%{body}d" % int(_want_number("format", value)))
            elif spec in "fFgGeE":
                out.append(f"%{body}{spec}"
                           % _want_number("format", value))
            elif spec in "xX":
                out.append(f"%{body}{spec}"
                           % int(_want_number("format", value)))
            elif spec == "s":
                out.append(f"%{body}s" % lua_repr(value))
            elif spec == "q":
                out.append('"' + str(value).replace("\\", "\\\\")
                           .replace('"', '\\"') + '"')
            else:
                raise LuaRuntimeError(
                    f"invalid conversion '%{spec}' to 'format'"
                )
            i = j + 1
        return "".join(out)

    for name, fn in (("len", s_len), ("sub", s_sub), ("upper", s_upper),
                     ("lower", s_lower), ("rep", s_rep),
                     ("reverse", s_reverse), ("byte", s_byte),
                     ("char", s_char), ("find", s_find),
                     ("format", s_format)):
        table.set(name, fn)
    return table


def _table_table() -> LuaTable:
    table = LuaTable()

    def t_insert(t: LuaValue = None, a: LuaValue = None,
                 b: LuaValue = None) -> None:
        target = _want_table("insert", t)
        if b is None:
            target.set(float(target.length() + 1), a)
            return
        pos = int(_want_number("insert", a))
        n = target.length()
        if not 1 <= pos <= n + 1:
            raise LuaRuntimeError("bad argument #2 to 'insert' "
                                  "(position out of bounds)")
        for index in range(n, pos - 1, -1):
            target.set(float(index + 1), target.get(index))
        target.set(float(pos), b)

    def t_remove(t: LuaValue = None, pos: LuaValue = None):
        target = _want_table("remove", t)
        n = target.length()
        if n == 0:
            return None
        index = n if pos is None else int(_want_number("remove", pos))
        if not 1 <= index <= n:
            raise LuaRuntimeError("bad argument #2 to 'remove' "
                                  "(position out of bounds)")
        removed = target.get(index)
        for i in range(index, n):
            target.set(float(i), target.get(i + 1))
        target.set(float(n), None)
        return removed

    def t_concat(t: LuaValue = None, sep: LuaValue = "",
                 i: LuaValue = 1, j: LuaValue = None):
        target = _want_table("concat", t)
        separator = _want_string("concat", sep) if sep != "" else ""
        start = int(_want_number("concat", i))
        stop = target.length() if j is None else int(_want_number("concat",
                                                                  j))
        parts = []
        for index in range(start, stop + 1):
            value = target.get(index)
            if not isinstance(value, (str, int, float)) \
                    or isinstance(value, bool):
                raise LuaRuntimeError(
                    f"invalid value (at index {index}) in table for "
                    "'concat'"
                )
            parts.append(lua_repr(float(value))
                         if isinstance(value, (int, float)) else value)
        return separator.join(parts)

    def t_sort(t: LuaValue = None, comparator: LuaValue = None) -> None:
        target = _want_table("sort", t)
        if comparator is not None:
            raise LuaRuntimeError(
                "table.sort comparators are not supported in the sandbox; "
                "sort plain numbers or strings"
            )
        values = target.to_list()
        try:
            values.sort()
        except TypeError as exc:
            raise LuaRuntimeError(f"attempt to compare mixed types in "
                                  f"'sort': {exc}") from exc
        for index, value in enumerate(values, start=1):
            target.set(float(index), value)

    for name, fn in (("insert", t_insert), ("remove", t_remove),
                     ("concat", t_concat), ("sort", t_sort)):
        table.set(name, fn)
    return table


def _stdlib_vars() -> dict[str, LuaValue]:
    return {
        "max": lua_max,
        "min": lua_min,
        "tostring": lua_tostring,
        "tonumber": lua_tonumber,
        "pairs": lua_pairs,
        "ipairs": lua_ipairs,
        "type": lua_type,
        "assert": lua_assert,
        "error": lua_error,
        "math": _math_table(),
        "string": _string_table(),
        "table": _table_table(),
    }


def _table_member_names(table: LuaTable) -> frozenset[str]:
    return frozenset(key for key, _value in table.lua_pairs()
                     if isinstance(key, str))


#: The complete sandbox whitelist, derived from the live environment so the
#: static analyzer (repro.analysis) can never drift from what the runtime
#: actually installs.  ``SANDBOX_GLOBALS`` is every global name the stdlib
#: binds; ``SANDBOX_TABLE_MEMBERS`` maps each library table to its member
#: names (``math`` -> {"floor", ...}).
SANDBOX_GLOBALS: frozenset[str] = frozenset(_stdlib_vars())
SANDBOX_TABLE_MEMBERS: dict[str, frozenset[str]] = {
    name: _table_member_names(value)
    for name, value in _stdlib_vars().items()
    if isinstance(value, LuaTable)
}

#: Well-known Lua 5.1 stdlib names deliberately *absent* from the sandbox:
#: they are non-deterministic, reach outside the policy, or can subvert the
#: environment.  The determinism lint rule and the runtime agree on these
#: by construction (tests/analysis/test_purity_rules.py asserts it).
FORBIDDEN_STDLIB_GLOBALS: frozenset[str] = frozenset({
    "os", "io", "print", "require", "dofile", "load", "loadstring",
    "loadfile", "pcall", "xpcall", "select", "rawget", "rawset",
    "rawequal", "setmetatable", "getmetatable", "getfenv", "setfenv",
    "collectgarbage", "coroutine", "package", "debug", "unpack", "next",
    "_G",
})
#: Forbidden members of whitelisted library tables (the table is in the
#: sandbox, the member is not).
FORBIDDEN_STDLIB_MEMBERS: frozenset[str] = frozenset({
    "math.random", "math.randomseed", "string.dump", "string.gmatch",
    "string.gsub", "string.match", "table.getn", "table.setn",
})


#: Prototype stdlib bindings, built once.  ``new_environment`` clones the
#: mutable tables (math/string/table) so one run's mutations cannot leak
#: into the next; the builtins themselves are stateless callables.
_STDLIB_PROTO: dict[str, LuaValue] | None = None


def install_stdlib(env: Environment) -> Environment:
    """Install the safe builtins into *env* (typically the root scope)."""
    for name, value in _stdlib_vars().items():
        env.declare(name, value)
    return env


def new_environment() -> Environment:
    """Fresh root environment with the stdlib installed."""
    if not fastpath.ENABLED:
        return install_stdlib(Environment())
    global _STDLIB_PROTO
    if _STDLIB_PROTO is None:
        _STDLIB_PROTO = _stdlib_vars()
    bindings = dict(_STDLIB_PROTO)
    for name in ("math", "string", "table"):
        bindings[name] = bindings[name].copy_shallow()
    return Environment(vars=bindings)
