"""Tree-walking interpreter for the Mantle-Lua policy language.

The interpreter executes a parsed chunk against an :class:`Environment`.
Every evaluated node is charged against an instruction budget so injected
policies cannot wedge the MDS (``while 1 do end`` raises
:class:`~repro.luapolicy.errors.LuaBudgetExceeded` instead of hanging the
balancing tick).
"""

from __future__ import annotations

import math
from typing import Optional

from . import lua_ast as ast
from .errors import LuaBudgetExceeded, LuaRuntimeError
from .values import (
    LuaFunction,
    LuaTable,
    LuaValue,
    MultiValue,
    is_truthy,
    lua_repr,
    type_name,
)

DEFAULT_BUDGET = 1_000_000


class Environment:
    """A lexical scope chain of name -> value bindings.

    Global assignments (plain ``x = 1`` with no enclosing local) land in the
    root environment, as in Lua.
    """

    __slots__ = ("vars", "parent")

    def __init__(self, parent: "Environment | None" = None,
                 vars: dict[str, LuaValue] | None = None) -> None:
        self.vars: dict[str, LuaValue] = vars or {}
        self.parent = parent

    def lookup(self, name: str) -> LuaValue:
        env: Environment | None = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        return None  # unknown globals are nil, as in Lua

    def assign(self, name: str, value: LuaValue) -> None:
        """Assign to the nearest scope holding *name*, else the root (global)."""
        env: Environment | None = self
        while env is not None:
            if name in env.vars:
                env.vars[name] = value
                return
            if env.parent is None:
                env.vars[name] = value
                return
            env = env.parent

    def declare(self, name: str, value: LuaValue) -> None:
        """``local name = value`` in this scope."""
        self.vars[name] = value

    def root(self) -> "Environment":
        env = self
        while env.parent is not None:
            env = env.parent
        return env


class _BreakSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, values: tuple[LuaValue, ...]) -> None:
        self.values = values


class Interpreter:
    """Executes Mantle-Lua ASTs with an instruction budget."""

    def __init__(self, budget: int = DEFAULT_BUDGET) -> None:
        self.budget = budget
        self._remaining = budget
        self._call_depth = 0
        self._max_call_depth = 120

    # -- public API -----------------------------------------------------
    def run(self, chunk: ast.Block, env: Environment) -> Optional[tuple]:
        """Execute a chunk; returns the chunk's ``return`` values or None."""
        self._remaining = self.budget
        try:
            self._exec_block(chunk, env)
        except _ReturnSignal as signal:
            return signal.values
        except _BreakSignal:
            raise LuaRuntimeError("break outside of a loop")
        return None

    def evaluate(self, expr: ast.Expr, env: Environment) -> LuaValue:
        """Evaluate a single expression (does not reset the budget chain)."""
        self._remaining = self.budget
        return self._eval(expr, env)

    @property
    def instructions_used(self) -> int:
        return self.budget - self._remaining

    # -- bookkeeping -----------------------------------------------------
    def _charge(self) -> None:
        self._remaining -= 1
        if self._remaining < 0:
            raise LuaBudgetExceeded(self.budget)

    # -- statements --------------------------------------------------------
    def _exec_block(self, block: ast.Block, env: Environment) -> None:
        for stmt in block.statements:
            self._exec(stmt, env)

    def _exec(self, stmt: ast.Stmt, env: Environment) -> None:
        self._charge()
        method = _EXEC_DISPATCH.get(stmt.__class__)
        if method is None:  # pragma: no cover - parser only emits known nodes
            raise LuaRuntimeError(f"unsupported statement {type(stmt).__name__}")
        method(self, stmt, env)

    def _exec_Assign(self, stmt: ast.Assign, env: Environment) -> None:
        values = self._eval_list(stmt.values, env, len(stmt.targets))
        for target, value in zip(stmt.targets, values):
            if isinstance(target, ast.Name):
                env.assign(target.name, value)
            elif isinstance(target, ast.Index):
                obj = self._eval(target.obj, env)
                if not isinstance(obj, LuaTable):
                    raise LuaRuntimeError(
                        f"attempt to index a {type_name(obj)} value",
                        target.line, target.column,
                    )
                obj.set(self._eval(target.key, env), value)
            else:  # pragma: no cover - parser rejects other targets
                raise LuaRuntimeError("invalid assignment target",
                                      stmt.line, stmt.column)

    def _exec_LocalAssign(self, stmt: ast.LocalAssign, env: Environment) -> None:
        values = self._eval_list(stmt.values, env, len(stmt.names))
        for name, value in zip(stmt.names, values):
            env.declare(name, value)

    def _exec_CallStmt(self, stmt: ast.CallStmt, env: Environment) -> None:
        self._eval(stmt.call, env)

    def _exec_If(self, stmt: ast.If, env: Environment) -> None:
        for condition, block in stmt.branches:
            if is_truthy(self._eval(condition, env)):
                self._exec_block(block, Environment(env))
                return
        self._exec_block(stmt.orelse, Environment(env))

    def _exec_While(self, stmt: ast.While, env: Environment) -> None:
        while is_truthy(self._eval(stmt.condition, env)):
            self._charge()
            try:
                self._exec_block(stmt.body, Environment(env))
            except _BreakSignal:
                break

    def _exec_Repeat(self, stmt: ast.Repeat, env: Environment) -> None:
        while True:
            self._charge()
            scope = Environment(env)
            try:
                self._exec_block(stmt.body, scope)
            except _BreakSignal:
                break
            # Lua scoping: the until condition sees the body's locals.
            if is_truthy(self._eval(stmt.condition, scope)):
                break

    def _exec_NumericFor(self, stmt: ast.NumericFor, env: Environment) -> None:
        start = self._to_number(self._eval(stmt.start, env), stmt.line,
                                stmt.column)
        stop = self._to_number(self._eval(stmt.stop, env), stmt.line,
                               stmt.column)
        step = (
            self._to_number(self._eval(stmt.step, env), stmt.line, stmt.column)
            if stmt.step is not None
            else 1.0
        )
        if step == 0:
            raise LuaRuntimeError("'for' step is zero", stmt.line, stmt.column)
        value = start
        while (step > 0 and value <= stop) or (step < 0 and value >= stop):
            self._charge()
            scope = Environment(env)
            scope.declare(stmt.var, value)
            try:
                self._exec_block(stmt.body, scope)
            except _BreakSignal:
                break
            value += step

    def _exec_GenericFor(self, stmt: ast.GenericFor, env: Environment) -> None:
        iterable = self._eval(stmt.iterable, env)
        if not hasattr(iterable, "__iter__"):
            raise LuaRuntimeError(
                "generic for expects pairs(t) or ipairs(t)",
                stmt.line, stmt.column,
            )
        for item in iterable:
            self._charge()
            scope = Environment(env)
            values = item if isinstance(item, tuple) else (item,)
            for i, name in enumerate(stmt.names):
                scope.declare(name, values[i] if i < len(values) else None)
            try:
                self._exec_block(stmt.body, scope)
            except _BreakSignal:
                break

    def _exec_FunctionDecl(self, stmt: ast.FunctionDecl, env: Environment) -> None:
        func = LuaFunction(stmt.func.params, stmt.func.body, env, name=stmt.name)
        if stmt.is_local:
            env.declare(stmt.name, func)
        else:
            env.assign(stmt.name, func)

    def _exec_Return(self, stmt: ast.Return, env: Environment) -> None:
        values = tuple(self._eval_list(stmt.values, env, want=0))
        raise _ReturnSignal(values)

    def _exec_Break(self, stmt: ast.Break, env: Environment) -> None:
        raise _BreakSignal()

    def _exec_Do(self, stmt: ast.Do, env: Environment) -> None:
        self._exec_block(stmt.body, Environment(env))

    # -- expressions ---------------------------------------------------------
    def _eval_list(self, exprs: tuple[ast.Expr, ...], env: Environment,
                   want: int) -> list[LuaValue]:
        """Evaluate an expression list with Lua multiplicity rules: only
        the *last* expression keeps multiple return values."""
        values: list[LuaValue] = []
        for index, expr in enumerate(exprs):
            if index == len(exprs) - 1:
                result = self._eval_multi(expr, env)
                if isinstance(result, MultiValue):
                    values.extend(result)
                else:
                    values.append(result)
            else:
                values.append(self._eval(expr, env))
        while len(values) < want:
            values.append(None)
        return values

    def _eval_multi(self, expr: ast.Expr, env: Environment) -> LuaValue:
        """Like _eval, but a call in this position keeps all its values."""
        if isinstance(expr, ast.Call):
            self._charge()
            func = self._eval(expr.func, env)
            args = self._call_args(expr, env)
            return self._call_multi(func, args, line=expr.line,
                                    column=expr.column)
        return self._eval(expr, env)

    def _call_args(self, expr: ast.Call, env: Environment) -> tuple:
        args: list[LuaValue] = []
        for index, arg in enumerate(expr.args):
            if index == len(expr.args) - 1:
                result = self._eval_multi(arg, env)
                if isinstance(result, MultiValue):
                    args.extend(result)
                else:
                    args.append(result)
            else:
                args.append(self._eval(arg, env))
        return tuple(args)

    def _eval(self, expr: ast.Expr, env: Environment) -> LuaValue:
        self._charge()
        method = _EVAL_DISPATCH.get(expr.__class__)
        if method is None:  # pragma: no cover
            raise LuaRuntimeError(f"unsupported expression {type(expr).__name__}")
        return method(self, expr, env)

    def _eval_NilLiteral(self, expr: ast.NilLiteral, env: Environment) -> None:
        return None

    def _eval_BoolLiteral(self, expr: ast.BoolLiteral, env: Environment) -> bool:
        return expr.value

    def _eval_NumberLiteral(self, expr: ast.NumberLiteral, env: Environment) -> float:
        return expr.value

    def _eval_StringLiteral(self, expr: ast.StringLiteral, env: Environment) -> str:
        return expr.value

    def _eval_Vararg(self, expr: ast.Vararg, env: Environment) -> LuaValue:
        raise LuaRuntimeError("varargs are not supported in policies",
                              expr.line, expr.column)

    def _eval_Name(self, expr: ast.Name, env: Environment) -> LuaValue:
        return env.lookup(expr.name)

    def _eval_Index(self, expr: ast.Index, env: Environment) -> LuaValue:
        obj = self._eval(expr.obj, env)
        key = self._eval(expr.key, env)
        if isinstance(obj, LuaTable):
            return obj.get(key)
        raise LuaRuntimeError(
            f"attempt to index a {type_name(obj)} value",
            expr.line, expr.column,
        )

    def _eval_Call(self, expr: ast.Call, env: Environment) -> LuaValue:
        func = self._eval(expr.func, env)
        args = self._call_args(expr, env)
        result = self._call_multi(func, args, line=expr.line,
                                  column=expr.column)
        # A call in single-value context truncates to its first value.
        if isinstance(result, MultiValue):
            return result.first()
        return result

    def call(self, func: LuaValue, args: tuple[LuaValue, ...],
             line: int | None = None) -> LuaValue:
        """Invoke a Lua or builtin function value (first return value)."""
        result = self._call_multi(func, args, line=line)
        if isinstance(result, MultiValue):
            return result.first()
        return result

    def _call_multi(self, func: LuaValue, args: tuple[LuaValue, ...],
                    line: int | None = None,
                    column: int | None = None) -> LuaValue:
        """Invoke a function, preserving multiple return values."""
        if isinstance(func, LuaFunction):
            if self._call_depth >= self._max_call_depth:
                raise LuaRuntimeError("call stack overflow in policy",
                                      line, column)
            scope = Environment(func.closure)
            for i, param in enumerate(func.params):
                scope.declare(param, args[i] if i < len(args) else None)
            self._call_depth += 1
            try:
                self._exec_block(func.body, scope)
            except _ReturnSignal as signal:
                if len(signal.values) == 1:
                    return signal.values[0]
                return MultiValue(signal.values)
            finally:
                self._call_depth -= 1
            return None
        if callable(func):
            try:
                return func(*args)
            except (LuaRuntimeError, LuaBudgetExceeded):
                raise
            except TypeError as exc:
                raise LuaRuntimeError(f"bad call: {exc}", line,
                                      column) from exc
        raise LuaRuntimeError(
            f"attempt to call a {type_name(func)} value", line, column
        )

    def _eval_UnaryOp(self, expr: ast.UnaryOp, env: Environment) -> LuaValue:
        operand = self._eval(expr.operand, env)
        if expr.op == "-":
            return -self._to_number(operand, expr.line, expr.column)
        if expr.op == "not":
            return not is_truthy(operand)
        if expr.op == "#":
            if isinstance(operand, LuaTable):
                return float(operand.length())
            if isinstance(operand, str):
                return float(len(operand))
            raise LuaRuntimeError(
                f"attempt to get length of a {type_name(operand)} value",
                expr.line, expr.column,
            )
        raise LuaRuntimeError(f"unknown unary operator {expr.op}",
                              expr.line, expr.column)

    def _eval_BinaryOp(self, expr: ast.BinaryOp, env: Environment) -> LuaValue:
        op = expr.op
        if op == "and":
            left = self._eval(expr.left, env)
            return self._eval(expr.right, env) if is_truthy(left) else left
        if op == "or":
            left = self._eval(expr.left, env)
            return left if is_truthy(left) else self._eval(expr.right, env)

        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        line, col = expr.line, expr.column
        if op == "==":
            return self._lua_equals(left, right)
        if op == "~=":
            return not self._lua_equals(left, right)
        if op == "..":
            return self._concat(left, right, line, col)
        if op in ("<", "<=", ">", ">="):
            return self._compare(op, left, right, line, col)
        a = self._to_number(left, line, col)
        b = self._to_number(right, line, col)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                # Lua numbers are IEEE doubles: x/0 is +-inf or nan.
                return math.nan if a == 0 else math.copysign(math.inf, a)
            return a / b
        if op == "%":
            if b == 0:
                return math.nan
            return a - math.floor(a / b) * b  # Lua modulo semantics
        if op == "^":
            return float(a) ** float(b)
        raise LuaRuntimeError(f"unknown operator {op}", line, col)

    @staticmethod
    def _lua_equals(left: LuaValue, right: LuaValue) -> bool:
        if isinstance(left, bool) or isinstance(right, bool):
            return left is right
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            return float(left) == float(right)
        if type(left) is not type(right):
            return False
        if isinstance(left, LuaTable):
            return left is right
        return left == right

    def _compare(self, op: str, left: LuaValue, right: LuaValue,
                 line: int, column: int | None = None) -> bool:
        if isinstance(left, (int, float)) and not isinstance(left, bool) and \
           isinstance(right, (int, float)) and not isinstance(right, bool):
            pass
        elif isinstance(left, str) and isinstance(right, str):
            pass
        else:
            raise LuaRuntimeError(
                f"attempt to compare {type_name(left)} with {type_name(right)}",
                line, column,
            )
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right

    def _concat(self, left: LuaValue, right: LuaValue, line: int,
                column: int | None = None) -> str:
        def as_str(value: LuaValue) -> str:
            if isinstance(value, str):
                return value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return lua_repr(float(value))
            raise LuaRuntimeError(
                f"attempt to concatenate a {type_name(value)} value",
                line, column,
            )

        return as_str(left) + as_str(right)

    def _eval_TableConstructor(self, expr: ast.TableConstructor,
                               env: Environment) -> LuaTable:
        table = LuaTable()
        index = 1
        for field in expr.fields:
            value = self._eval(field.value, env)
            if field.key is None:
                table.set(float(index), value)
                index += 1
            else:
                table.set(self._eval(field.key, env), value)
        return table

    def _eval_FunctionExpr(self, expr: ast.FunctionExpr,
                           env: Environment) -> LuaFunction:
        return LuaFunction(expr.params, expr.body, env)

    # -- coercion --------------------------------------------------------
    @staticmethod
    def _to_number(value: LuaValue, line: int | None = None,
                   column: int | None = None) -> float:
        if isinstance(value, bool) or value is None:
            raise LuaRuntimeError(
                f"attempt to perform arithmetic on a {type_name(value)} value",
                line, column,
            )
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                pass
        raise LuaRuntimeError(
            f"attempt to perform arithmetic on a {type_name(value)} value",
            line, column,
        )


def _check_arity(name: str, args: tuple, n: int) -> None:
    if len(args) < n:
        raise LuaRuntimeError(f"{name} expects at least {n} argument(s)")


def _build_dispatch(prefix: str) -> dict:
    """Node class -> unbound handler, so the hot _exec/_eval paths do one
    dict lookup instead of building a method-name string per node."""
    table = {}
    for attr in dir(Interpreter):
        if attr.startswith(prefix):
            node_cls = getattr(ast, attr[len(prefix):], None)
            if node_cls is not None:
                table[node_cls] = getattr(Interpreter, attr)
    return table


_EXEC_DISPATCH = _build_dispatch("_exec_")
_EVAL_DISPATCH = _build_dispatch("_eval_")
