"""AST node types for the Mantle-Lua policy language.

Plain frozen dataclasses; the interpreter dispatches on the concrete type.
Every node carries the source line and column for error reporting and for
the static analyzer's diagnostics (``repro.analysis``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass(frozen=True)
class Node:
    line: int
    #: 1-based source column of the token that started this node.  Keyword-only
    #: so subclasses keep their positional field order (``column`` defaults to
    #: 0 for synthetic nodes that have no source position).
    column: int = field(default=0, kw_only=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class NilLiteral(Node):
    pass


@dataclass(frozen=True)
class BoolLiteral(Node):
    value: bool


@dataclass(frozen=True)
class NumberLiteral(Node):
    value: float


@dataclass(frozen=True)
class StringLiteral(Node):
    value: str


@dataclass(frozen=True)
class Vararg(Node):
    """``...`` -- accepted by the parser, rejected at run time (unsupported)."""


@dataclass(frozen=True)
class Name(Node):
    name: str


@dataclass(frozen=True)
class Index(Node):
    """``obj[key]`` and the sugar ``obj.key``."""

    obj: "Expr"
    key: "Expr"


@dataclass(frozen=True)
class Call(Node):
    func: "Expr"
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class UnaryOp(Node):
    op: str  # '-', 'not', '#'
    operand: "Expr"


@dataclass(frozen=True)
class BinaryOp(Node):
    op: str  # arithmetic, comparison, 'and', 'or', '..'
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class TableField:
    """One field of a table constructor.

    ``key is None`` means a positional (array-part) entry.
    """

    key: Optional["Expr"]
    value: "Expr"


@dataclass(frozen=True)
class TableConstructor(Node):
    fields: tuple[TableField, ...]


@dataclass(frozen=True)
class FunctionExpr(Node):
    params: tuple[str, ...]
    body: "Block"


Expr = Union[
    NilLiteral, BoolLiteral, NumberLiteral, StringLiteral, Vararg, Name,
    Index, Call, UnaryOp, BinaryOp, TableConstructor, FunctionExpr,
]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Block:
    statements: tuple["Stmt", ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class Assign(Node):
    """``a, t[k] = e1, e2`` -- multiple targets/values, Lua style."""

    targets: tuple[Expr, ...]
    values: tuple[Expr, ...]


@dataclass(frozen=True)
class LocalAssign(Node):
    names: tuple[str, ...]
    values: tuple[Expr, ...]


@dataclass(frozen=True)
class CallStmt(Node):
    call: Call


@dataclass(frozen=True)
class If(Node):
    """``if ... then ... [elseif ...]* [else ...] end``.

    ``branches`` is a sequence of (condition, block); ``orelse`` is the final
    else block (possibly empty).
    """

    branches: tuple[tuple[Expr, Block], ...]
    orelse: Block


@dataclass(frozen=True)
class While(Node):
    condition: Expr
    body: Block


@dataclass(frozen=True)
class Repeat(Node):
    body: Block
    condition: Expr


@dataclass(frozen=True)
class NumericFor(Node):
    var: str
    start: Expr
    stop: Expr
    step: Optional[Expr]
    body: Block


@dataclass(frozen=True)
class GenericFor(Node):
    names: tuple[str, ...]
    iterable: Expr
    body: Block


@dataclass(frozen=True)
class FunctionDecl(Node):
    """``function name(...)`` / ``local function name(...)``."""

    name: str
    func: FunctionExpr
    is_local: bool


@dataclass(frozen=True)
class Return(Node):
    values: tuple[Expr, ...]


@dataclass(frozen=True)
class Break(Node):
    pass


@dataclass(frozen=True)
class Do(Node):
    body: Block


Stmt = Union[
    Assign, LocalAssign, CallStmt, If, While, Repeat, NumericFor, GenericFor,
    FunctionDecl, Return, Break, Do,
]
