"""Mantle-Lua: a sandboxed Lua-subset interpreter for balancer policies.

The paper injects balancing logic as Lua source (``ceph tell mds.0
injectargs mds_bal_metaload IWR``).  This package provides the equivalent
execution substrate in pure Python: a lexer, parser and tree-walking
interpreter for the Lua subset the paper's Listings 1-4 use, plus an
instruction budget so a bad policy (``while 1 do end``) cannot take the
metadata server down.

Public API:

>>> from repro.luapolicy import run_policy
>>> result = run_policy("x = 1 + 2")
>>> result.python_value("x")
3.0
"""

from .errors import (
    LuaBudgetExceeded,
    LuaError,
    LuaRuntimeError,
    LuaSyntaxError,
)
from .interpreter import DEFAULT_BUDGET, Environment, Interpreter
from .lexer import Token, tokenize
from .parser import parse_chunk, parse_expression
from .sandbox import (
    CompiledPolicy,
    PolicyResult,
    compile_load_expression,
    compile_policy,
    evaluate_expression,
    run_policy,
)
from .stdlib import install_stdlib, new_environment
from .values import LuaFunction, LuaTable, MultiValue, from_python, to_python

__all__ = [
    "CompiledPolicy",
    "DEFAULT_BUDGET",
    "Environment",
    "Interpreter",
    "LuaBudgetExceeded",
    "LuaError",
    "LuaFunction",
    "LuaRuntimeError",
    "LuaSyntaxError",
    "LuaTable",
    "MultiValue",
    "PolicyResult",
    "Token",
    "compile_load_expression",
    "compile_policy",
    "evaluate_expression",
    "from_python",
    "install_stdlib",
    "new_environment",
    "parse_chunk",
    "parse_expression",
    "run_policy",
    "to_python",
    "tokenize",
]
