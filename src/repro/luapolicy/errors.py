"""Errors raised by the Mantle-Lua policy interpreter.

Every failure mode of injected policy code maps to one of these exception
types so the balancer driver (and the pre-injection validator) can reject a
bad policy without taking the MDS down -- the safety property §4.4 of the
paper asks for.
"""

from __future__ import annotations


class LuaError(Exception):
    """Base class for all Mantle-Lua errors."""


class LuaSyntaxError(LuaError):
    """Raised by the lexer or parser on malformed policy source."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class LuaRuntimeError(LuaError):
    """Raised while executing policy code (type errors, bad indexing...)."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        if line is not None:
            if column:
                message = f"{message} (line {line}, column {column})"
            else:
                message = f"{message} (line {line})"
        super().__init__(message)
        self.line = line
        self.column = column


class LuaBudgetExceeded(LuaError):
    """The instruction budget ran out.

    This is what stops an injected ``while 1 do end`` from wedging the MDS:
    the interpreter charges every evaluated node against a finite budget and
    aborts the balancing tick when it is spent.
    """

    def __init__(self, budget: int) -> None:
        super().__init__(f"policy exceeded instruction budget of {budget}")
        self.budget = budget
