"""Popularity counters with exponential decay.

CephFS tempers per-directory metadata counters with an exponential decay so
that old hits fade (paper Fig 1: "smoothed with an exponential decay").
A :class:`DecayCounter` stores its value at the time of the last update and
decays lazily on read.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .. import fastpath

#: Op kinds tracked per dirfrag/directory -- exactly the metrics the Mantle
#: environment exposes to load formulas (paper Table 2).
OP_KINDS = ("IRD", "IWR", "READDIR", "FETCH", "STORE")

DEFAULT_HALF_LIFE = 5.0  # seconds; mirrors CephFS's mds_decay_halflife

#: Decay exponents (elapsed measured in half-lives) below this leave the
#: value unchanged to within ~7e-10 relative; skip the pow entirely.
_MIN_DECAY_RATIO = 1e-9


class DecayCounter:
    """A scalar that decays exponentially with the given half-life."""

    __slots__ = ("half_life", "_value", "_last")

    def __init__(self, half_life: float = DEFAULT_HALF_LIFE,
                 value: float = 0.0, now: float = 0.0) -> None:
        if half_life <= 0:
            raise ValueError("half-life must be positive")
        self.half_life = half_life
        self._value = value
        self._last = now

    def _decay_to(self, now: float) -> None:
        if now > self._last:
            if self._value != 0.0:
                elapsed = now - self._last
                ratio = elapsed / self.half_life
                if ratio >= _MIN_DECAY_RATIO:
                    self._value *= math.pow(0.5, ratio)
                    if self._value < 1e-12:
                        self._value = 0.0
            self._last = now

    def hit(self, now: float, amount: float = 1.0) -> None:
        """Record *amount* of activity at time *now*."""
        self._decay_to(now)
        self._value += amount

    def get(self, now: float) -> float:
        """Current decayed value."""
        self._decay_to(now)
        return self._value

    def reset(self, now: float, value: float = 0.0) -> None:
        self._value = value
        self._last = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecayCounter({self._value:.3f}@{self._last:.3f})"


@dataclass
class LoadCounters:
    """The five decayed op counters of one dirfrag or directory."""

    half_life: float = DEFAULT_HALF_LIFE
    counters: dict[str, DecayCounter] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for kind in OP_KINDS:
            self.counters.setdefault(kind, DecayCounter(self.half_life))

    def hit(self, kind: str, now: float, amount: float = 1.0) -> None:
        counter = self.counters.get(kind)
        if counter is None:
            raise KeyError(f"unknown op kind {kind!r}")
        # DecayCounter.hit inlined: this runs ~6 times per simulated op
        # (frag + directory + ancestors + per-rank loads), so dropping two
        # call frames per hit is measurable.  Identical arithmetic.
        last = counter._last
        if now > last:
            value = counter._value
            if value != 0.0:
                ratio = (now - last) / counter.half_life
                if ratio >= _MIN_DECAY_RATIO:
                    value *= math.pow(0.5, ratio)
                    if value < 1e-12:
                        value = 0.0
                    counter._value = value
            counter._last = now
        counter._value += amount

    def get(self, kind: str, now: float) -> float:
        return self.counters[kind].get(now)

    def snapshot(self, now: float) -> dict[str, float]:
        """All five decayed values at *now* (the balancer's view).

        Counters that were last touched at the same instant share the same
        decay factor, so the common steady state (all five decayed together
        by a previous snapshot) costs one ``pow`` per read instead of five.
        The pow arguments are exactly those the per-counter path would use,
        so the values are bit-identical.
        """
        if not fastpath.ENABLED:
            return {kind: counter.get(now)
                    for kind, counter in self.counters.items()}
        out: dict[str, float] = {}
        factors: dict[float, float] = {}
        for kind, counter in self.counters.items():
            value = counter._value
            last = counter._last
            if now > last:
                if value != 0.0:
                    factor = factors.get(last)
                    if factor is None:
                        ratio = (now - last) / counter.half_life
                        factor = (math.pow(0.5, ratio)
                                  if ratio >= _MIN_DECAY_RATIO else 1.0)
                        factors[last] = factor
                    if factor != 1.0:
                        value *= factor
                        if value < 1e-12:
                            value = 0.0
                        counter._value = value
                counter._last = now
            out[kind] = value
        return out

    def reset(self, now: float) -> None:
        for counter in self.counters.values():
            counter.reset(now)

    def absorb(self, other: "LoadCounters", now: float,
               fraction: float = 1.0) -> None:
        """Add *fraction* of *other*'s current values (used on migration:
        the importer inherits the popularity of what it imported)."""
        for kind in OP_KINDS:
            amount = other.get(kind, now) * fraction
            if amount > 0:
                self.counters[kind].hit(now, amount)

    def scale(self, factor: float, now: float) -> None:
        """Multiply all counters by *factor* (exporter sheds popularity)."""
        for counter in self.counters.values():
            counter.reset(now, counter.get(now) * factor)
