"""Directories: inodes that hold dirfrags and per-directory load counters."""

from __future__ import annotations

from typing import Iterator, Optional

from .. import fastpath
from .counters import LoadCounters
from .dirfrag import _AUTH_EPOCH, DirFrag, FragId, bump_auth_epoch, name_hash
from .inode import Inode

#: Paper §4.1: "When the directory reaches 50,000 directory entries, it is
#: fragmented (the first iteration fragments into 2^3 = 8 dirfrags)".
DEFAULT_SPLIT_SIZE = 50_000
DEFAULT_SPLIT_BITS = 3


class Directory:
    """A directory: entries partitioned into dirfrags, plus counters.

    Authority (which MDS serves this directory) is inherited from the parent
    unless explicitly set -- explicitly-set directories are the *subtree
    boundaries* of dynamic subtree partitioning.
    """

    def __init__(self, inode: Inode, parent: Optional["Directory"],
                 half_life: float = 5.0,
                 split_size: int = DEFAULT_SPLIT_SIZE,
                 split_bits: int = DEFAULT_SPLIT_BITS) -> None:
        if not inode.is_dir:
            raise ValueError("directory payload requires a directory inode")
        self.inode = inode
        self.parent = parent
        self.half_life = half_life
        self.split_size = split_size
        self.split_bits = split_bits
        self.frags: dict[FragId, DirFrag] = {}
        root_frag = FragId(0, 0)
        self.frags[root_frag] = DirFrag(self, root_frag, half_life)
        self.counters = LoadCounters(half_life=half_life)
        self._auth: Optional[int] = None
        self.subdirs: dict[str, "Directory"] = {}
        #: rank -> last time that rank served an op in this subtree; ranks
        #: recently active under a directory participate in its coherency
        #: protocol and keep their replicas fresh.
        self.server_activity: dict[int, float] = {}
        # Derived-view caches.  The auth-keyed ones hold (epoch, value) and
        # go stale whenever the global authority epoch moves; the path
        # cache is invalidated explicitly on rename.
        self._path_cache: Optional[str] = None
        self._auth_cache: Optional[tuple[int, int]] = None
        self._frag_map_cache = None
        self._spread_cache: Optional[tuple[int, float]] = None
        self._frag_lookup_cache = None

    # -- identity ------------------------------------------------------
    @property
    def name(self) -> str:
        return self.inode.name

    def path(self) -> str:
        if self.parent is None:
            return "/"
        cached = self._path_cache
        if cached is not None and fastpath.ENABLED:
            return cached
        parent_path = self.parent.path()
        path = parent_path + self.name if parent_path == "/" \
            else f"{parent_path}/{self.name}"
        self._path_cache = path
        return path

    def invalidate_path_cache(self) -> None:
        """Drop cached paths for this directory and everything below it
        (a rename moved or renamed the subtree)."""
        self._path_cache = None
        for child in self.subdirs.values():
            child.invalidate_path_cache()

    def depth(self) -> int:
        node, depth = self, 0
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    # -- authority ------------------------------------------------------
    @property
    def explicit_auth(self) -> Optional[int]:
        return self._auth

    def set_auth(self, mds: Optional[int]) -> None:
        """Make this directory a subtree boundary owned by *mds*
        (or remove the boundary with None)."""
        if mds is None and self.parent is None:
            raise ValueError("the root directory must have an explicit auth")
        self._auth = mds
        bump_auth_epoch()

    def authority(self) -> int:
        if fastpath.ENABLED:
            cached = self._auth_cache
            if cached is not None and cached[0] == _AUTH_EPOCH[0]:
                return cached[1]
        node: Optional[Directory] = self
        while node is not None:
            auth = node._auth
            if auth is not None:
                self._auth_cache = (_AUTH_EPOCH[0], auth)
                return auth
            node = node.parent
        raise RuntimeError(f"no authority anywhere above {self.path()!r}")

    def is_subtree_root(self) -> bool:
        return self._auth is not None

    def clear_descendant_auth(self) -> None:
        """Drop explicit auth below this directory so the whole subtree
        inherits this directory's authority (called after a subtree
        migration)."""
        bump_auth_epoch()
        for child in self.subdirs.values():
            child._auth = None
            child.clear_descendant_auth()
        for frag in self.frags.values():
            frag.set_auth(None)

    # -- dirfrags ------------------------------------------------------
    def frag_map(self) -> tuple[tuple[int, int, int], ...]:
        """``((bits, value, authority), ...)`` over this directory's frags
        in insertion order -- what replies carry back to clients."""
        epoch = _AUTH_EPOCH[0]
        if fastpath.ENABLED:
            cached = self._frag_map_cache
            if cached is not None and cached[0] == epoch:
                return cached[1]
        frag_map = tuple(
            (frag.frag_id.bits, frag.frag_id.value, frag.authority())
            for frag in self.frags.values()
        )
        self._frag_map_cache = (epoch, frag_map)
        return frag_map

    def effective_spread(self) -> float:
        """Effective number of ranks sharing this directory's dirfrags.

        The inverse participation ratio of per-rank frag shares: 1.0 when
        one rank owns everything, m when m ranks hold equal shares, and in
        between for skewed spreads (4/2/1/1 -> ~2.9).
        """
        epoch = _AUTH_EPOCH[0]
        if fastpath.ENABLED:
            cached = self._spread_cache
            if cached is not None and cached[0] == epoch:
                return cached[1]
        counts: dict[int, int] = {}
        total = 0
        for frag in self.frags.values():
            rank = frag.authority()
            counts[rank] = counts.get(rank, 0) + 1
            total += 1
        if total == 0 or len(counts) <= 1:
            spread = 1.0
        else:
            sum_squares = sum((n / total) ** 2 for n in counts.values())
            spread = 1.0 / sum_squares
        self._spread_cache = (epoch, spread)
        return spread

    def frag_for_name(self, name: str) -> DirFrag:
        frags = self.frags
        if fastpath.ENABLED:
            # The single-frag case (no fragmentation yet) needs no hash at
            # all; uniformly-split directories resolve with one masked
            # dict lookup instead of a linear scan.
            epoch = _AUTH_EPOCH[0]
            cached = self._frag_lookup_cache
            if cached is None or cached[0] != epoch:
                cached = self._build_frag_lookup(epoch)
            kind = cached[1]
            if kind == 1:
                return cached[2]
            if kind == 2:
                frag = cached[2].get(name_hash(name) & cached[3])
                if frag is not None:
                    return frag
        hashed = name_hash(name)
        for frag in frags.values():
            if frag.frag_id.contains(hashed):
                return frag
        raise RuntimeError(  # pragma: no cover - frags always cover the space
            f"no frag covers {name!r} in {self.path()!r}"
        )

    def _build_frag_lookup(self, epoch: int):
        frags = self.frags
        if len(frags) == 1:
            frag = next(iter(frags.values()))
            if frag.frag_id.bits == 0:
                cached = (epoch, 1, frag)
            else:  # pragma: no cover - splits always leave >= 2 frags
                cached = (epoch, 3)
        else:
            all_bits = {frag.frag_id.bits for frag in frags.values()}
            if len(all_bits) == 1:
                bits = all_bits.pop()
                cached = (epoch, 2,
                          {frag.frag_id.value: frag
                           for frag in frags.values()},
                          (1 << bits) - 1)
            else:
                cached = (epoch, 3)  # mixed depths: fall back to the scan
        self._frag_lookup_cache = cached
        return cached

    def entry_count(self) -> int:
        return sum(len(frag) for frag in self.frags.values())

    def needs_fragmentation(self) -> bool:
        return (len(self.frags) == 1
                and self.entry_count() >= self.split_size)

    def fragment(self, frag: DirFrag | None = None,
                 extra_bits: int | None = None,
                 now: float = 0.0) -> list[DirFrag]:
        """Split *frag* (default: the largest) into 2^extra_bits children.

        Entries and popularity are redistributed to the children (as of
        time *now*, so decay bookkeeping stays correct); each child
        initially inherits the parent frag's explicit auth.
        """
        if extra_bits is None:
            extra_bits = self.split_bits
        if frag is None:
            frag = max(self.frags.values(), key=len)
        if self.frags.get(frag.frag_id) is not frag:
            raise ValueError("frag does not belong to this directory")
        children: list[DirFrag] = []
        now_entries = list(frag.entries.values())
        child_ids = frag.frag_id.split(extra_bits)
        del self.frags[frag.frag_id]
        for child_id in child_ids:
            child = DirFrag(self, child_id, self.half_life)
            child.set_auth(frag.explicit_auth)
            self.frags[child_id] = child
            children.append(child)
        for inode in now_entries:
            hashed = name_hash(inode.name)
            for child in children:
                if child.frag_id.contains(hashed):
                    child.entries[inode.name] = inode
                    break
        # Popularity splits proportionally to the entries each child got.
        total = max(1, len(now_entries))
        for child in children:
            child.counters.absorb(frag.counters, now=now,
                                  fraction=len(child) / total)
        return children

    # -- entries -------------------------------------------------------
    def lookup(self, name: str) -> Optional[Inode]:
        return self.frag_for_name(name).get(name)

    def link(self, inode: Inode) -> None:
        """Add *inode* as an entry of this directory."""
        frag = self.frag_for_name(inode.name)
        if inode.name in frag.entries:
            raise FileExistsError(f"{self.path()}/{inode.name} exists")
        inode.parent = self
        frag.add(inode)

    def unlink(self, name: str) -> Inode:
        frag = self.frag_for_name(name)
        if name not in frag.entries:
            raise FileNotFoundError(f"{self.path()}/{name}")
        inode = frag.remove(name)
        self.subdirs.pop(name, None)
        return inode

    def readdir(self) -> list[Inode]:
        entries: list[Inode] = []
        for frag in self.frags.values():
            entries.extend(frag.entries.values())
        return entries

    # -- traversal ------------------------------------------------------
    def walk(self) -> Iterator["Directory"]:
        """This directory and all descendants, depth-first."""
        yield self
        for child in self.subdirs.values():
            yield from child.walk()

    def ancestors(self) -> Iterator["Directory"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Directory({self.path()!r}, {len(self.frags)} frags, "
                f"{self.entry_count()} entries)")
