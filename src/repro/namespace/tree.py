"""The hierarchical namespace: a tree of directories and files.

The namespace is shared state kept "in the collective memory of the MDS
cluster" (paper §2).  The simulator keeps one authoritative tree; which MDS
is allowed to serve which part of it is expressed through subtree/dirfrag
authority, and the MDS layer charges forwarding costs when a request lands
on the wrong rank.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Callable, Iterator, Optional

from .. import fastpath
from .counters import DEFAULT_HALF_LIFE, _MIN_DECAY_RATIO
from .directory import DEFAULT_SPLIT_BITS, DEFAULT_SPLIT_SIZE, Directory
from .dirfrag import DirFrag
from .inode import Inode


@lru_cache(maxsize=262144)
def split_path(path: str) -> tuple[str, ...]:
    """Normalize ``/a//b/`` -> ``('a', 'b')``.

    Returns a (cached, immutable) tuple: request paths are re-split several
    times on their way through a client and an MDS, so memoizing the split
    is one of the hottest wins in the whole simulator.
    """
    return tuple(part for part in path.split("/") if part)


@lru_cache(maxsize=262144)
def parent_and_leaf(path: str) -> Optional[tuple[str, str]]:
    """``(parent path, leaf name)`` for *path*, or None for the root."""
    parts = split_path(path)
    if not parts:
        return None
    return "/".join(parts[:-1]), parts[-1]


@lru_cache(maxsize=262144)
def dirname_of(path: str) -> str:
    """Absolute path of the directory containing *path* (``/`` for roots)."""
    parts = split_path(path)
    return "/" + "/".join(parts[:-1]) if len(parts) > 1 else "/"


class Namespace:
    """The full file-system tree plus authority bookkeeping."""

    def __init__(self, half_life: float = DEFAULT_HALF_LIFE,
                 split_size: int = DEFAULT_SPLIT_SIZE,
                 split_bits: int = DEFAULT_SPLIT_BITS,
                 root_auth: int = 0) -> None:
        self.half_life = half_life
        self.split_size = split_size
        self.split_bits = split_bits
        # Per-namespace inode numbering keeps runs reproducible: object
        # names derived from inos (and hence CRUSH placement) must not
        # depend on what other namespaces existed in the process.
        import itertools
        self._ino_counter = itertools.count(2)
        root_inode = Inode(name="", is_dir=True, mode=0o755, ino=1)
        self.root = Directory(root_inode, parent=None, half_life=half_life,
                              split_size=split_size, split_bits=split_bits)
        self.root.set_auth(root_auth)
        self.inode_count = 1
        self.dir_count = 1
        # Path -> Directory memo, flushed whenever the directory tree's
        # shape changes (mkdir / dir unlink / rename).
        self._dir_cache: dict[str, Directory] = {}
        self._dir_cache_epoch = 0
        self._tree_epoch = 0

    def _bump_tree_epoch(self) -> None:
        self._tree_epoch += 1

    # -- resolution ------------------------------------------------------
    def resolve_dir(self, path: str) -> Directory:
        """Resolve *path* to a Directory; raises FileNotFoundError/NotADirectoryError."""
        if fastpath.ENABLED:
            cache = self._dir_cache
            if self._dir_cache_epoch != self._tree_epoch:
                cache.clear()
                self._dir_cache_epoch = self._tree_epoch
            node = cache.get(path)
            if node is not None:
                return node
        node = self.root
        for part in split_path(path):
            child = node.subdirs.get(part)
            if child is None:
                entry = node.lookup(part)
                if entry is None:
                    raise FileNotFoundError(f"{path!r} (missing {part!r})")
                raise NotADirectoryError(f"{path!r} ({part!r} is a file)")
            node = child
        if fastpath.ENABLED:
            self._dir_cache[path] = node
        return node

    def resolve_entry(self, path: str) -> Inode:
        """Resolve *path* to any inode (file or directory)."""
        parts = split_path(path)
        if not parts:
            return self.root.inode
        parent = self.resolve_dir("/".join(parts[:-1]))
        entry = parent.lookup(parts[-1])
        if entry is None:
            raise FileNotFoundError(path)
        return entry

    def parent_of(self, path: str) -> tuple[Directory, str]:
        """The directory containing *path* and the leaf name."""
        parts = split_path(path)
        if not parts:
            raise ValueError("the root has no parent")
        return self.resolve_dir("/".join(parts[:-1])), parts[-1]

    def exists(self, path: str) -> bool:
        try:
            self.resolve_entry(path)
            return True
        except (FileNotFoundError, NotADirectoryError):
            return False

    # -- mutation ---------------------------------------------------------
    def mkdir(self, path: str, now: float = 0.0, mode: int = 0o755) -> Directory:
        parent, name = self.parent_of(path)
        inode = Inode(name=name, is_dir=True, mode=mode, ctime=now,
                      mtime=now, atime=now, ino=next(self._ino_counter))
        directory = Directory(inode, parent, half_life=self.half_life,
                              split_size=self.split_size,
                              split_bits=self.split_bits)
        parent.link(inode)
        parent.subdirs[name] = directory
        self.inode_count += 1
        self.dir_count += 1
        self._bump_tree_epoch()
        return directory

    def mkdirs(self, path: str, now: float = 0.0) -> Directory:
        """Create all missing components of *path* (like ``mkdir -p``)."""
        node = self.root
        accumulated: list[str] = []
        for part in split_path(path):
            accumulated.append(part)
            child = node.subdirs.get(part)
            if child is None:
                child = self.mkdir("/".join(accumulated), now=now)
            node = child
        return node

    def create(self, path: str, now: float = 0.0, mode: int = 0o644,
               size: int = 0) -> Inode:
        parent, name = self.parent_of(path)
        inode = Inode(name=name, is_dir=False, mode=mode, size=size,
                      ctime=now, mtime=now, atime=now,
                      ino=next(self._ino_counter))
        parent.link(inode)
        self.inode_count += 1
        return inode

    def unlink(self, path: str, now: float = 0.0) -> Inode:
        parent, name = self.parent_of(path)
        inode = parent.unlink(name)
        self.inode_count -= 1
        if inode.is_dir:
            self.dir_count -= 1
            self._bump_tree_epoch()
        return inode

    def rename(self, src: str, dst: str, now: float = 0.0) -> Inode:
        """Move *src* to *dst* (both leaf paths); returns the moved inode."""
        src_parent, src_name = self.parent_of(src)
        dst_parent, dst_name = self.parent_of(dst)
        inode = src_parent.lookup(src_name)
        if inode is None:
            raise FileNotFoundError(src)
        if dst_parent.lookup(dst_name) is not None:
            raise FileExistsError(dst)
        if inode.is_dir:
            # Moving a directory under itself would corrupt the tree.
            moving = src_parent.subdirs[src_name]
            node: Directory | None = dst_parent
            while node is not None:
                if node is moving:
                    raise ValueError(f"cannot move {src!r} under itself")
                node = node.parent
        directory = src_parent.subdirs.get(src_name)
        src_parent.unlink(src_name)
        inode.name = dst_name
        inode.touch(now, write=True)
        dst_parent.link(inode)
        if directory is not None:
            directory.parent = dst_parent
            dst_parent.subdirs[dst_name] = directory
            directory.invalidate_path_cache()
            self._bump_tree_epoch()
        return inode

    # -- accounting ------------------------------------------------------
    def record_hit(self, directory: Directory, name: Optional[str],
                   kind: str, now: float, amount: float = 1.0) -> DirFrag:
        """Charge an op against a dirfrag and every ancestor directory.

        Paper §2: counters "are stored in the directories and are updated by
        the MDS whenever a namespace operation hits that directory or any of
        its children."
        """
        frag = (directory.frag_for_name(name) if name is not None
                else next(iter(directory.frags.values())))
        # LoadCounters.hit inlined over frag + the whole ancestor chain:
        # this is the single hottest accounting loop in the simulator
        # (3+ hits per op).  The arithmetic matches DecayCounter exactly.
        target = frag
        node = directory
        while target is not None:
            counter = target.counters.counters.get(kind)
            if counter is None:
                raise KeyError(f"unknown op kind {kind!r}")
            last = counter._last
            if now > last:
                value = counter._value
                if value != 0.0:
                    ratio = (now - last) / counter.half_life
                    if ratio >= _MIN_DECAY_RATIO:
                        value *= math.pow(0.5, ratio)
                        if value < 1e-12:
                            value = 0.0
                        counter._value = value
                counter._last = now
            counter._value += amount
            target, node = node, (node.parent if node is not None else None)
        return frag

    # -- authority queries ---------------------------------------------------
    def subtree_roots(self, mds: int | None = None) -> list[Directory]:
        """Directories that are explicit subtree boundaries
        (optionally only those owned by *mds*)."""
        return [
            directory for directory in self.root.walk()
            if directory.is_subtree_root()
            and (mds is None or directory.explicit_auth == mds)
        ]

    def frags_owned_by(self, mds: int) -> Iterator[DirFrag]:
        """All dirfrags whose resolved authority is *mds*."""
        for directory in self.root.walk():
            for frag in directory.frags.values():
                if frag.authority() == mds:
                    yield frag

    def authority_for_path(self, path: str) -> int:
        """The MDS serving the *containing dirfrag* of *path*."""
        parts = split_path(path)
        if not parts:
            return self.root.authority()
        parent = self.resolve_dir("/".join(parts[:-1]))
        return parent.frag_for_name(parts[-1]).authority()

    # -- load views ------------------------------------------------------
    def metadata_load(self, mds: int, metaload: Callable[[dict], float],
                      now: float) -> float:
        """Sum of ``metaload(frag counters)`` over frags owned by *mds*."""
        return sum(
            metaload(frag.load_snapshot(now))
            for frag in self.frags_owned_by(mds)
        )

    def heat_map(self, now: float,
                 metaload: Callable[[dict], float] | None = None,
                 max_depth: int | None = None) -> dict[str, float]:
        """Per-directory heat (Fig 1): decayed load of each directory."""
        if metaload is None:
            def metaload(snapshot: dict) -> float:
                return snapshot["IRD"] + snapshot["IWR"]
        heat: dict[str, float] = {}
        for directory in self.root.walk():
            if max_depth is not None and directory.depth() > max_depth:
                continue
            heat[directory.path()] = metaload(directory.counters.snapshot(now))
        return heat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Namespace({self.inode_count} inodes, "
                f"{self.dir_count} dirs)")
