"""Directory fragments (dirfrags).

A dirfrag is a partition of a single directory's entries, selected by the
low bits of a hash of the entry name -- the same mechanism GIGA+ uses and
the unit CephFS's balancer ships between MDS ranks when a single directory
is hot (paper §2, "Partitioning the Namespace").
"""

from __future__ import annotations

import zlib
from functools import lru_cache
from typing import TYPE_CHECKING, Iterator, Optional

from .counters import LoadCounters
from .inode import Inode

if TYPE_CHECKING:  # pragma: no cover
    from .directory import Directory

#: Global authority epoch: bumped on every explicit-auth change (subtree
#: pins, migrations, fragmentation).  Derived authority views -- resolved
#: authority, frag maps, effective spread -- are cached per directory and
#: keyed on this epoch, so any auth change anywhere invalidates them all
#: at once.  Changes are rare (migration events) while reads run on every
#: request, which is exactly the trade a global epoch wants.
_AUTH_EPOCH = [0]


def bump_auth_epoch() -> None:
    _AUTH_EPOCH[0] += 1


@lru_cache(maxsize=262144)
def name_hash(name: str) -> int:
    """Stable 32-bit hash used for frag placement."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class FragId:
    """Identifier of a dirfrag: (bits, value).

    The frag owns every entry whose ``name_hash & ((1 << bits) - 1)`` equals
    ``value``.  ``FragId(0, 0)`` is the whole directory.
    """

    __slots__ = ("bits", "value")

    def __init__(self, bits: int = 0, value: int = 0) -> None:
        if bits < 0 or bits > 24:
            raise ValueError(f"frag bits out of range: {bits}")
        if value >= (1 << bits):
            raise ValueError(f"frag value {value} does not fit in {bits} bits")
        self.bits = bits
        self.value = value

    def contains(self, hashed: int) -> bool:
        return (hashed & ((1 << self.bits) - 1)) == self.value

    def split(self, extra_bits: int) -> list["FragId"]:
        """Child frag ids after splitting by *extra_bits* more bits."""
        if extra_bits < 1:
            raise ValueError("must split by at least one bit")
        return [
            FragId(self.bits + extra_bits, self.value | (i << self.bits))
            for i in range(1 << extra_bits)
        ]

    def is_ancestor_of(self, other: "FragId") -> bool:
        """True if *other* was produced by splitting this frag (or equals it)."""
        if other.bits < self.bits:
            return False
        return (other.value & ((1 << self.bits) - 1)) == self.value

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, FragId)
                and self.bits == other.bits and self.value == other.value)

    def __hash__(self) -> int:
        return hash((self.bits, self.value))

    def __repr__(self) -> str:
        return f"{self.value:x}*{self.bits}"


class DirFrag:
    """One fragment of a directory: entries plus decayed load counters."""

    __slots__ = ("directory", "frag_id", "entries", "counters", "_auth",
                 "frozen")

    def __init__(self, directory: "Directory", frag_id: FragId,
                 half_life: float) -> None:
        self.directory = directory
        self.frag_id = frag_id
        self.entries: dict[str, Inode] = {}
        self.counters = LoadCounters(half_life=half_life)
        self._auth: Optional[int] = None  # None -> inherit directory auth
        self.frozen = False  # True while being migrated (two-phase commit)

    # -- authority ------------------------------------------------------
    @property
    def explicit_auth(self) -> Optional[int]:
        return self._auth

    def set_auth(self, mds: Optional[int]) -> None:
        self._auth = mds
        bump_auth_epoch()

    def authority(self) -> int:
        """The MDS rank serving this frag (inheriting from the directory)."""
        auth = self._auth
        if auth is not None:
            return auth
        return self.directory.authority()

    # -- entries ------------------------------------------------------------
    def contains_name(self, name: str) -> bool:
        return self.frag_id.contains(name_hash(name))

    def add(self, inode: Inode) -> None:
        if not self.contains_name(inode.name):
            raise ValueError(
                f"{inode.name!r} does not hash into frag {self.frag_id!r}"
            )
        self.entries[inode.name] = inode

    def remove(self, name: str) -> Inode:
        return self.entries.pop(name)

    def get(self, name: str) -> Optional[Inode]:
        return self.entries.get(name)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Inode]:
        return iter(self.entries.values())

    # -- load -------------------------------------------------------------
    def record(self, kind: str, now: float, amount: float = 1.0) -> None:
        self.counters.hit(kind, now, amount)

    def load_snapshot(self, now: float) -> dict[str, float]:
        return self.counters.snapshot(now)

    def path(self) -> str:
        return f"{self.directory.path()}#{self.frag_id!r}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DirFrag({self.directory.path()!r}, {self.frag_id!r}, "
                f"{len(self.entries)} entries)")
