"""Hierarchical namespace substrate: inodes, directories, dirfrags, counters.

Implements CephFS's dynamic-subtree-partitioning data model: the namespace
is a tree of directories, each partitioned into dirfrags by a hash of the
entry name; authority over subtrees and individual dirfrags determines which
MDS rank serves which requests; per-dirfrag popularity counters with
exponential decay feed the balancer's load formulas.
"""

from .counters import (
    DEFAULT_HALF_LIFE,
    OP_KINDS,
    DecayCounter,
    LoadCounters,
)
from .directory import DEFAULT_SPLIT_BITS, DEFAULT_SPLIT_SIZE, Directory
from .dirfrag import DirFrag, FragId, name_hash
from .inode import Inode, reset_ino_counter
from .tree import Namespace, split_path

__all__ = [
    "DEFAULT_HALF_LIFE",
    "DEFAULT_SPLIT_BITS",
    "DEFAULT_SPLIT_SIZE",
    "DecayCounter",
    "DirFrag",
    "Directory",
    "FragId",
    "Inode",
    "LoadCounters",
    "Namespace",
    "OP_KINDS",
    "name_hash",
    "reset_ino_counter",
    "split_path",
]
