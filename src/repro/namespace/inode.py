"""Inodes: the metadata objects the MDS cluster manages."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_INO_COUNTER = itertools.count(1)


def reset_ino_counter() -> None:
    """Reset the global inode-number allocator (test isolation)."""
    global _INO_COUNTER
    _INO_COUNTER = itertools.count(1)


@dataclass(slots=True)
class Inode:
    """One file or directory inode.

    Only the metadata fields the paper's workloads exercise are modelled:
    identity, type, ownership/permissions, size, times and link count.
    """

    name: str
    is_dir: bool
    ino: int = field(default_factory=lambda: next(_INO_COUNTER))
    mode: int = 0o644
    uid: int = 0
    gid: int = 0
    size: int = 0
    nlink: int = 1
    ctime: float = 0.0
    mtime: float = 0.0
    atime: float = 0.0
    parent: Optional["object"] = None  # Directory; avoids a circular import

    def touch(self, now: float, write: bool = False) -> None:
        """Update access/modification times."""
        self.atime = now
        if write:
            self.mtime = now

    def stat(self) -> dict[str, float | int | bool | str]:
        """A getattr-style snapshot."""
        return {
            "name": self.name,
            "ino": self.ino,
            "is_dir": self.is_dir,
            "mode": self.mode,
            "uid": self.uid,
            "gid": self.gid,
            "size": self.size,
            "nlink": self.nlink,
            "ctime": self.ctime,
            "mtime": self.mtime,
            "atime": self.atime,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "dir" if self.is_dir else "file"
        return f"Inode({self.name!r}, {kind}, ino={self.ino})"
