"""cProfile plumbing for ``mantle-sim run --profile``."""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO


@contextmanager
def profiled(top: int = 25, sort: str = "cumulative",
             out_path: Optional[str] = None,
             stream: Optional[TextIO] = None) -> Iterator[cProfile.Profile]:
    """Profile the body; print the *top* functions, optionally dump stats.

    The table goes to *stream* (default stderr, keeping stdout clean for
    the run's own report); *out_path* additionally saves the raw profile
    for ``snakeviz``/``pstats`` digging.
    """
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        if out_path:
            profile.dump_stats(out_path)
        buffer = io.StringIO()
        stats = pstats.Stats(profile, stream=buffer)
        stats.sort_stats(sort).print_stats(top)
        target = stream if stream is not None else sys.stderr
        target.write(buffer.getvalue())
        if out_path:
            target.write(f"profile written to {out_path}\n")
