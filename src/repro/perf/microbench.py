"""Microbenchmarks behind ``BENCH_sim.json``.

These numbers track the hot paths this repo optimizes:

* ``events_per_sec`` -- raw engine throughput (schedule/pop/dispatch);
* ``policy_ticks_per_sec`` -- full Mantle decision-chunk evaluations
  (paper Listing 1: when/where over per-MDS metrics);
* ``fig8_small_wall_s`` / ``sim_ops_per_sec`` -- an end-to-end slice of
  the Fig 8 grid (shared-directory creates under greedy spill);
* ``namespace_preps_per_sec`` / ``cluster_builds_per_sec`` /
  ``workload_gen_ops_per_sec`` -- the construction-stage costs the
  warm-start cell server amortizes across grid cells (namespace build +
  workload prepare, cluster assembly around a prepared namespace, and
  client op-stream generation).

``compare_benchmarks`` flags regressions beyond a tolerance so CI can fail
on a slowdown without failing on machine-to-machine noise.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any

from ..cluster import SimulatedCluster, run_experiment
from ..config import ClusterConfig
from ..core.environment import build_decision_bindings
from ..core.policies import STOCK_POLICIES
from ..sim.engine import SimEngine
from ..workloads import CreateWorkload, ZipfWorkload

#: Throughput metrics (higher is better) checked by compare_benchmarks.
THROUGHPUT_KEYS = ("events_per_sec", "policy_ticks_per_sec",
                   "sim_ops_per_sec", "namespace_preps_per_sec",
                   "cluster_builds_per_sec", "workload_gen_ops_per_sec")


def bench_engine(num_events: int = 200_000) -> float:
    """Events/second through an engine running a self-rescheduling chain."""
    engine = SimEngine()
    remaining = [num_events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            engine.schedule(0.001, tick)

    engine.schedule(0.001, tick)
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return num_events / elapsed if elapsed > 0 else float("inf")


def bench_policy_ticks(num_ticks: int = 2_000) -> float:
    """Decision-chunk evaluations/second for the greedy-spill policy."""
    policy = STOCK_POLICIES["greedy-spill"]()
    chunk = policy.decision_chunk()
    metrics = [
        {"auth": 120.0 + 10 * i, "all": 150.0 + 5 * i, "cpu": 0.4,
         "mem": 0.2, "q": 3.0 + i, "req": 900.0, "load": 120.0 + 10 * i,
         "alive": 1.0}
        for i in range(4)
    ]
    counters = {"IRD": 40.0, "IWR": 35.0, "READDIR": 2.0,
                "FETCH": 1.0, "STORE": 0.5}
    start = time.perf_counter()
    for _ in range(num_ticks):
        bindings = build_decision_bindings(
            whoami=0, mds_metrics=metrics, local_counters=counters,
            auth_metaload=120.0, all_metaload=150.0,
            wrstate=lambda *_a: 0.0, rdstate=lambda: 0.0,
        )
        chunk.run(bindings)
    elapsed = time.perf_counter() - start
    return num_ticks / elapsed if elapsed > 0 else float("inf")


def bench_fig8_small(scale: float = 1.0) -> dict[str, float]:
    """A small end-to-end Fig 8 slice; returns wall time and ops/sec."""
    files = max(500, int(4000 * scale))
    config = ClusterConfig(num_mds=2, num_clients=4, seed=7,
                           dir_split_size=max(500, files // 2))
    workload = CreateWorkload(num_clients=4, files_per_client=files,
                              shared_dir=True)
    policy = STOCK_POLICIES["greedy-spill"]()
    start = time.perf_counter()
    report = run_experiment(config, workload, policy=policy)
    elapsed = time.perf_counter() - start
    return {
        "fig8_small_wall_s": elapsed,
        "sim_ops_per_sec": report.total_ops / elapsed if elapsed > 0
        else float("inf"),
    }


def bench_construction(scale: float = 1.0) -> dict[str, float]:
    """Construction-stage throughput (what warm starts amortize).

    Uses the zipf workload because its prepare() builds the whole file
    population -- the heaviest construction stage any workload has.
    """
    files = max(500, int(4000 * scale))
    config = ClusterConfig(num_mds=4, num_clients=4, seed=7,
                           dir_split_size=max(500, files // 2))
    workload = ZipfWorkload(num_clients=4, num_files=files,
                            ops_per_client=files, seed=7)
    rounds = max(3, int(10 * scale))

    start = time.perf_counter()
    for _ in range(rounds):
        namespace = SimulatedCluster.build_namespace(config)
        workload.prepare(namespace)
    prep_elapsed = time.perf_counter() - start

    # Cluster assembly is ~100x cheaper than a namespace prep; give it
    # enough rounds that the measurement is not dominated by jitter.
    build_rounds = rounds * 20
    start = time.perf_counter()
    for _ in range(build_rounds):
        SimulatedCluster(config, namespace=namespace)
    build_elapsed = time.perf_counter() - start

    generated = 0
    start = time.perf_counter()
    for _ in range(rounds):
        for client_id in range(workload.num_clients):
            generated += sum(1 for _op in workload.client_ops(client_id))
    gen_elapsed = time.perf_counter() - start

    return {
        "namespace_preps_per_sec": rounds / prep_elapsed
        if prep_elapsed > 0 else float("inf"),
        "cluster_builds_per_sec": build_rounds / build_elapsed
        if build_elapsed > 0 else float("inf"),
        "workload_gen_ops_per_sec": generated / gen_elapsed
        if gen_elapsed > 0 else float("inf"),
    }


def collect_benchmarks(scale: float = 1.0) -> dict[str, Any]:
    """Run the whole suite once; returns the BENCH_sim.json payload."""
    results: dict[str, Any] = {
        "events_per_sec": bench_engine(max(20_000, int(200_000 * scale))),
        "policy_ticks_per_sec": bench_policy_ticks(
            max(200, int(2_000 * scale))),
    }
    results.update(bench_fig8_small(scale))
    results.update(bench_construction(scale))
    results["meta"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scale": scale,
    }
    return results


def compare_benchmarks(current: dict[str, Any], baseline: dict[str, Any],
                       tolerance: float = 0.30) -> list[str]:
    """Regressions: throughput metrics below ``baseline * (1 - tolerance)``.

    Only relative throughput is compared -- absolute numbers move with the
    host.  Returns human-readable problem strings (empty = healthy).
    """
    problems = []
    for key in THROUGHPUT_KEYS:
        base = baseline.get(key)
        now = current.get(key)
        if not isinstance(base, (int, float)) or base <= 0:
            continue
        if not isinstance(now, (int, float)):
            problems.append(f"{key}: missing from current results")
            continue
        floor = base * (1.0 - tolerance)
        if now < floor:
            problems.append(
                f"{key}: {now:.0f}/s is {now / base:.2f}x baseline "
                f"{base:.0f}/s (floor {floor:.0f}/s)"
            )
    return problems


def write_benchmarks(path: str | Path, results: dict[str, Any]) -> None:
    Path(path).write_text(json.dumps(results, indent=2, sort_keys=True)
                          + "\n")


def load_benchmarks(path: str | Path) -> dict[str, Any]:
    return json.loads(Path(path).read_text())
