"""Parallel (seed x policy) sweep runner.

Every sweep cell is one fully independent :func:`run_experiment` -- its own
cluster, its own RNG streams seeded from the cell's seed -- so running
cells in worker processes cannot change any cell's result.  The merged
report is ordered by the spec list, never by completion time, which makes
``--jobs N`` output byte-identical to ``--jobs 1``.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any

from ..cluster import SimulatedCluster
from ..config import ClusterConfig
from ..core.policies import STOCK_POLICIES
from ..workloads import CreateWorkload, ZipfWorkload

#: Friendly aliases: shell-safe underscore forms of the stock names.
_POLICY_ALIASES = {
    "greedy_spill": "greedy-spill",
    "greedy_spill_even": "greedy-spill-even",
    "fill_spill": "fill-and-spill",
    "fill_and_spill": "fill-and-spill",
    "cephfs_original": "cephfs-original",
    "cephfs_original_capped": "cephfs-original-capped",
    "adaptable_conservative": "adaptable-conservative",
    "adaptable_too_aggressive": "adaptable-too-aggressive",
    "giga_autonomous": "giga-autonomous",
    "capacity_model": "capacity-model",
    "feedback_controller": "feedback-controller",
}


def normalize_policy(name: str) -> str:
    """Resolve a policy spelling to a stock name (or ``none``)."""
    name = name.strip()
    if name in ("", "none"):
        return "none"
    resolved = _POLICY_ALIASES.get(name, name)
    if resolved not in STOCK_POLICIES:
        known = ", ".join(sorted(STOCK_POLICIES))
        raise ValueError(f"unknown policy {name!r} (stock: {known})")
    return resolved


@dataclass(frozen=True)
class RunSpec:
    """One sweep cell.  Plain data: it crosses process boundaries."""

    seed: int
    policy: str  # normalized stock name or "none"
    workload: str = "create"
    num_mds: int = 2
    num_clients: int = 4
    files_per_client: int = 2000
    ops_per_client: int = 2000
    shared_dir: bool = True
    dir_split_size: int = 1000
    max_time: float = 36_000.0
    heartbeat_interval: float = 10.0
    # Policy lifecycle (see repro.lifecycle).  All of these change the
    # run's behaviour and are therefore part of the cell's cache
    # fingerprint (perf/fingerprint.py).
    guard: bool = False
    shadow_policy: str = "none"
    canary_policy: str = "none"
    canary_at: float = 30.0
    canary_window: float = 20.0
    #: Gate injected policies behind the static analyzer
    #: (repro.analysis).  Lint is pure bookkeeping -- results are
    #: byte-identical either way -- but the flag is part of the spec (and
    #: hence the cache fingerprint) because a lint-failing policy errors
    #: with lint=True and runs with lint=False.
    lint: bool = True


def build_specs(seeds: list[int], policies: list[str],
                **common: Any) -> list[RunSpec]:
    """The sweep grid, ordered policies-major then seeds."""
    return [RunSpec(seed=seed, policy=normalize_policy(policy), **common)
            for policy in policies for seed in seeds]


def _build_workload(spec: RunSpec):
    if spec.workload == "create":
        return CreateWorkload(num_clients=spec.num_clients,
                              files_per_client=spec.files_per_client,
                              shared_dir=spec.shared_dir)
    if spec.workload == "zipf":
        return ZipfWorkload(num_clients=spec.num_clients,
                            num_files=spec.files_per_client,
                            ops_per_client=spec.ops_per_client,
                            seed=spec.seed)
    raise ValueError(f"unknown workload {spec.workload!r}")


def spec_record(spec: RunSpec, report) -> dict[str, Any]:
    """The plain-data record of one cell (picklable, JSON-able).

    Shared by the cold and warm-start paths so both produce records that
    compare (and serialize) byte-identically.
    """
    latency = report.latency_summary()
    canary_outcome = next(
        (event.kind.split("-", 1)[1]
         for event in reversed(report.lifecycle_events)
         if event.kind in ("canary-promote", "canary-rollback")),
        None,
    )
    return {
        "seed": spec.seed,
        "policy": spec.policy,
        "summary": report.summary_line(),
        "makespan": report.makespan,
        "total_ops": report.total_ops,
        "throughput": report.throughput,
        "forwards": report.total_forwards,
        "migrations": report.total_migrations,
        "latency_mean": latency.mean,
        "latency_p95": latency.p95,
        "latency_p99": latency.p99,
        "per_mds_ops": report.per_mds_ops(),
        "lifecycle": [
            [event.time, event.kind, event.rank, event.detail]
            for event in report.lifecycle_events
        ],
        "guard_vetoes": sum(
            1 for event in report.lifecycle_events
            if event.kind == "guard-veto"
        ),
        "policy_versions": len(report.policy_log),
        "canary": canary_outcome,
        "shadow": report.shadow_summary,
    }


def arm_lifecycle(cluster: SimulatedCluster, spec: RunSpec) -> None:
    """Arm a spec's shadow/canary on a freshly built cluster.

    Shared by the cold path and the warm-start path: both must arm from
    the same data so their records stay byte-identical.
    """
    if spec.shadow_policy != "none":
        cluster.arm_shadow(STOCK_POLICIES[spec.shadow_policy]())
    if spec.canary_policy != "none":
        cluster.arm_canary(STOCK_POLICIES[spec.canary_policy](),
                           at=spec.canary_at, window=spec.canary_window)


def execute_spec(spec: RunSpec) -> dict[str, Any]:
    """Run one cell cold; return its record."""
    config = ClusterConfig(num_mds=spec.num_mds,
                           num_clients=spec.num_clients,
                           seed=spec.seed,
                           dir_split_size=spec.dir_split_size,
                           heartbeat_interval=spec.heartbeat_interval,
                           stability_guard=spec.guard)
    policy = (STOCK_POLICIES[spec.policy]()
              if spec.policy != "none" else None)
    cluster = SimulatedCluster(config, policy=policy,
                               lint_policies=spec.lint)
    arm_lifecycle(cluster, spec)
    report = cluster.run_workload(_build_workload(spec),
                                  max_time=spec.max_time)
    return spec_record(spec, report)


def run_sweep(specs: list[RunSpec], jobs: int = 1,
              warm: bool = False) -> list[dict[str, Any]]:
    """Run all cells; results come back in spec order regardless of *jobs*.

    ``jobs <= 1`` runs serially in-process.  More jobs fan the cells over a
    ``multiprocessing`` pool; ``Pool.map`` already returns results in input
    order, so the merge is deterministic by construction.

    ``warm=True`` routes the grid through the fork-based warm-start cell
    server (:mod:`repro.perf.warmstart`): cells share namespace
    construction and the policy-independent simulation prefix, with
    byte-identical records.  Falls back to the cold path where ``os.fork``
    is unavailable or the grid has a single cell.
    """
    if warm and len(specs) > 1:
        from .warmstart import fork_supported, run_sweep_forked
        if fork_supported():
            return run_sweep_forked(specs, jobs=jobs)
    if jobs <= 1 or len(specs) <= 1:
        return [execute_spec(spec) for spec in specs]
    with multiprocessing.Pool(processes=min(jobs, len(specs))) as pool:
        return pool.map(execute_spec, specs)


def run_sweep_cached(specs: list[RunSpec], jobs: int = 1,
                     warm: bool = False, cache=None
                     ) -> tuple[list[dict[str, Any]], int, int]:
    """``run_sweep`` behind the content-addressed result cache.

    Returns ``(records, hits, misses)``.  Cells whose fingerprint (sources
    + config + policy text + seed, see :mod:`repro.perf.fingerprint`) has
    a stored record skip simulation entirely; the rest run through
    ``run_sweep`` (warm or cold) and are stored for next time.  With
    *cache* None (disabled) every cell is a miss and nothing is stored.
    """
    if cache is None:
        return run_sweep(specs, jobs=jobs, warm=warm), 0, len(specs)
    from .fingerprint import spec_fingerprint
    keys = [spec_fingerprint(spec) for spec in specs]
    records: list[dict[str, Any] | None] = [cache.get_record(key)
                                            for key in keys]
    missing = [i for i, record in enumerate(records) if record is None]
    fresh = run_sweep([specs[i] for i in missing], jobs=jobs, warm=warm)
    for i, record in zip(missing, fresh):
        cache.put_record(keys[i], record)
        records[i] = record
    return records, len(specs) - len(missing), len(missing)


def format_report(records: list[dict[str, Any]]) -> str:
    """Deterministic text report, one block per cell in sweep order."""
    lines: list[str] = []
    for record in records:
        lines.append(f"seed={record['seed']} policy={record['policy']}")
        lines.append(f"  {record['summary']}")
        lines.append(
            "  latency: "
            f"mean={record['latency_mean'] * 1e3:.3f}ms "
            f"p95={record['latency_p95'] * 1e3:.3f}ms "
            f"p99={record['latency_p99'] * 1e3:.3f}ms"
        )
    by_policy: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        by_policy.setdefault(record["policy"], []).append(record)
    lines.append("")
    for policy in sorted(by_policy):
        cells = by_policy[policy]
        mean_makespan = sum(c["makespan"] for c in cells) / len(cells)
        mean_tput = sum(c["throughput"] for c in cells) / len(cells)
        lines.append(
            f"[{policy}] seeds={len(cells)} "
            f"mean_makespan={mean_makespan:.2f}s "
            f"mean_tput={mean_tput:.0f}/s"
        )
    return "\n".join(lines) + "\n"
