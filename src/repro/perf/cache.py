"""Content-addressed result cache for experiment grids.

Entries are keyed by :mod:`repro.perf.fingerprint` digests, so a hit is a
proof that re-running the cell would reproduce the stored bytes: the key
covers the simulator sources, interpreter/numpy versions, the resolved
config, the policy *text* and the seed.  Editing any of those -- including
one Lua line inside a policy -- changes the key and forces a cold run.

Storage is one file per entry under a flat directory (default
``~/.cache/mantle-sim``, override with ``REPRO_CACHE_DIR``):

* ``<key>.json``  -- sweep cell records (plain data; floats round-trip
  exactly through ``repr``-based JSON, and ``per_mds_ops`` integer keys
  are restored on load);
* ``<key>.pkl``   -- pickled :class:`~repro.cluster.SimReport` objects
  for the benchmark harness.

Writes are atomic (temp file + ``os.replace``) so a crashed or killed run
can never leave a torn entry, and concurrent sweeps at worst both compute
the same cell and race to an identical ``replace``.

``REPRO_NO_CACHE=1`` (or ``--no-cache`` on the CLI) disables lookups and
stores entirely; ``mantle-sim cache stats|clear`` inspects and resets the
store.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_NO_CACHE"


def cache_disabled() -> bool:
    """True when the environment asks for cold runs (REPRO_NO_CACHE=1)."""
    return os.environ.get(_ENV_DISABLE, "") == "1"


def default_cache_dir() -> Path:
    override = os.environ.get(_ENV_DIR, "")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "mantle-sim"


class ResultCache:
    """A flat content-addressed store with session hit/miss counters."""

    def __init__(self, root: Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # -- storage ---------------------------------------------------------
    def _path(self, key: str, suffix: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache keys are hex digests, got {key!r}")
        return self.root / f"{key}{suffix}"

    def _store(self, path: Path, data: bytes) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _load(self, path: Path) -> bytes | None:
        try:
            data = path.read_bytes()
        except (FileNotFoundError, OSError):
            self.misses += 1
            return None
        self.hits += 1
        return data

    # -- JSON records (sweep cells) --------------------------------------
    def get_record(self, key: str) -> dict[str, Any] | None:
        data = self._load(self._path(key, ".json"))
        if data is None:
            return None
        record = json.loads(data.decode())
        # JSON stringifies dict keys; per_mds_ops is keyed by MDS rank.
        if "per_mds_ops" in record:
            record["per_mds_ops"] = {int(rank): ops for rank, ops
                                     in record["per_mds_ops"].items()}
        return record

    def put_record(self, key: str, record: dict[str, Any]) -> None:
        data = json.dumps(record, sort_keys=True).encode()
        self._store(self._path(key, ".json"), data)

    # -- pickled objects (harness SimReports) ----------------------------
    def get_object(self, key: str) -> Any | None:
        data = self._load(self._path(key, ".pkl"))
        if data is None:
            return None
        return pickle.loads(data)

    def put_object(self, key: str, value: Any) -> None:
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._store(self._path(key, ".pkl"), data)

    # -- maintenance -----------------------------------------------------
    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.iterdir()
                      if p.suffix in (".json", ".pkl"))

    def stats(self) -> dict[str, Any]:
        entries = self.entries()
        return {
            "dir": str(self.root),
            "entries": len(entries),
            "records": sum(1 for p in entries if p.suffix == ".json"),
            "objects": sum(1 for p in entries if p.suffix == ".pkl"),
            "bytes": sum(p.stat().st_size for p in entries),
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def open_cache(enabled: bool = True,
               root: Path | None = None) -> ResultCache | None:
    """The cache the CLI/harness should use, or None when disabled.

    *enabled* is the caller-level switch (``--no-cache``); the
    ``REPRO_NO_CACHE`` environment override wins regardless.
    """
    if not enabled or cache_disabled():
        return None
    return ResultCache(root)
