"""Fork-based warm-start cell server for experiment grids.

Every evaluation in the paper is a *grid*: Fig 8 is six configurations of
one create workload, Fig 4 is four seeds of one configuration, Fig 10 is
four aggressiveness variants of one compile job.  A cold grid re-pays
cluster construction, namespace build, workload generation and an
identical pre-divergence simulation prefix for every cell.  This module
shares those stages through ``os.fork``:

* **construction stage** -- cells whose workloads report the same
  :meth:`~repro.workloads.base.Workload.construction_signature` (and whose
  configs agree on the namespace-shape fields) share one namespace build +
  ``workload.prepare`` pass, even across different seeds;
* **prefix stage** -- cells that differ *only* in balancer policy share the
  policy-independent simulation prefix: a forked *prefix runner* builds the
  cluster, starts the workload and runs the engine up to the workload's
  :meth:`~repro.workloads.base.Workload.shared_prefix_end` barrier (the
  first heartbeat metaload snapshot -- strictly before any policy-divergent
  event), then forks one child per cell.  Engine heap, RNG streams and
  generator-based client processes are inherited copy-on-write with no
  serialization.

The split run executes exactly the same event sequence as a cold run (see
``SimEngine.run_before``), so results are byte-identical -- the repo's
hard rule; ``tests/integration/test_warmstart_equivalence.py`` asserts it.

On platforms without ``os.fork`` (or for single-cell grids) callers fall
back to the cold path; ``fork_supported()`` is the gate.
"""

from __future__ import annotations

import os
import pickle
import select
import signal
import sys
import traceback
from dataclasses import replace
from typing import Any, Callable, Hashable, Iterable, Iterator

from ..cluster import SimulatedCluster
from ..config import ClusterConfig
from ..core.policies import STOCK_POLICIES


def fork_supported() -> bool:
    """True where the fork-based cell server can run."""
    return hasattr(os, "fork") and sys.platform != "win32"


def _write_all(fd: int, data: bytes) -> None:
    """Write *data* fully (``os.write`` may return short on pipes)."""
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


# ---------------------------------------------------------------------------
# Fork pool: run thunks in forked children, one result object per child.
# ---------------------------------------------------------------------------

class _ForkPool:
    """Run thunks in forked children, at most *jobs* concurrently.

    Each child runs one thunk and sends its pickled result back through a
    pipe, then ``os._exit``\\ s (no interpreter teardown, no duplicated
    atexit/flush side effects).  The parent multiplexes reads with
    ``select`` so a child writing more than a pipe buffer can never
    deadlock against a parent blocked on a different child.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))

    def run(self, tasks: Iterable[tuple[Hashable, Callable[[], Any]]]
            ) -> dict[Hashable, Any]:
        """Run all (key, thunk) tasks; returns {key: result}.

        *tasks* may be a lazy iterator: the next task is only pulled when
        a worker slot frees up, which lets callers defer expensive
        per-group construction until it is actually needed.
        """
        results: dict[Hashable, Any] = {}
        queue: Iterator[tuple[Hashable, Callable[[], Any]]] = iter(tasks)
        live: dict[int, list] = {}  # read fd -> [pid, key, buffer]
        exhausted = False
        try:
            while True:
                while not exhausted and len(live) < self.jobs:
                    try:
                        key, thunk = next(queue)
                    except StopIteration:
                        exhausted = True
                        break
                    live.update((self._spawn(key, thunk),))
                    del thunk  # parent drops its reference (frees ctx)
                if not live:
                    if exhausted:
                        return results
                    continue
                ready, _, _ = select.select(list(live), [], [])
                for fd in ready:
                    chunk = os.read(fd, 1 << 16)
                    if chunk:
                        live[fd][2] += chunk
                        continue
                    pid, key, buffer = live.pop(fd)
                    os.close(fd)
                    os.waitpid(pid, 0)
                    results[key] = self._decode(key, bytes(buffer))
        except BaseException:
            self._reap(live)
            raise

    def _spawn(self, key: Hashable,
               thunk: Callable[[], Any]) -> tuple[int, list]:
        read_fd, write_fd = os.pipe()
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:  # child
            os.close(read_fd)
            status = 0
            try:
                payload = pickle.dumps(("ok", thunk()),
                                       protocol=pickle.HIGHEST_PROTOCOL)
            except BaseException:  # noqa: BLE001 - report, do not unwind
                payload = pickle.dumps(("err", traceback.format_exc()))
                status = 1
            try:
                _write_all(write_fd, payload)
            finally:
                os.close(write_fd)
            os._exit(status)
        os.close(write_fd)
        return read_fd, [pid, key, bytearray()]

    @staticmethod
    def _decode(key: Hashable, buffer: bytes) -> Any:
        if not buffer:
            raise RuntimeError(f"warm-start child for {key!r} died "
                               "without sending a result")
        status, value = pickle.loads(buffer)
        if status == "err":
            raise RuntimeError(
                f"warm-start child for {key!r} failed:\n{value}")
        return value

    @staticmethod
    def _reap(live: dict[int, list]) -> None:
        for fd, (pid, _key, _buffer) in live.items():
            try:
                os.close(fd)
            except OSError:
                pass
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (OSError, ChildProcessError):
                pass


# ---------------------------------------------------------------------------
# Grid orchestration.
# ---------------------------------------------------------------------------

class CellPlan:
    """One grid cell: grouping keys plus an opaque payload for callbacks."""

    __slots__ = ("index", "construction_key", "prefix_key", "payload")

    def __init__(self, index: int, construction_key: Hashable | None,
                 prefix_key: Hashable, payload: Any) -> None:
        self.index = index
        self.construction_key = construction_key
        self.prefix_key = prefix_key
        self.payload = payload


def run_grid(plans: list[CellPlan], *,
             construct: Callable[[Hashable, list[CellPlan]], Any],
             warm_start: Callable[[Any, Hashable, list[CellPlan]], Any],
             execute: Callable[[Any, CellPlan], Any],
             jobs: int = 1) -> list[Any]:
    """Run a grid of cells with forked construction/prefix sharing.

    * ``construct(construction_key, plans)`` runs once per construction
      group **in the parent**; its return value (e.g. a prepared
      namespace) is inherited copy-on-write by every runner of the group.
      Skipped (ctx ``None``) for plans whose ``construction_key`` is None.
    * ``warm_start(ctx, prefix_key, plans)`` runs once per prefix group in
      a forked *runner*; returns the shared cell state (e.g. a cluster
      advanced to the fork barrier).
    * ``execute(state, plan)`` runs once per cell, in a fork of its
      runner, and returns a picklable record.

    Results come back ordered by ``plan.index`` position in *plans*,
    regardless of completion order or *jobs*.
    """
    if not fork_supported():
        raise RuntimeError("run_grid requires os.fork; use the cold path")
    groups: dict[Hashable, dict[Hashable, list[CellPlan]]] = {}
    for plan in plans:
        ckey = plan.construction_key
        if ckey is None:
            # Unshared construction: private group per prefix group.
            ckey = ("__private__", plan.prefix_key)
        groups.setdefault(ckey, {}).setdefault(plan.prefix_key,
                                               []).append(plan)

    pool = _ForkPool(jobs)

    def runner_tasks() -> Iterator[tuple[Hashable, Callable[[], Any]]]:
        for ckey, prefix_groups in groups.items():
            shared = not (isinstance(ckey, tuple) and ckey
                          and ckey[0] == "__private__")
            ctx = None
            if shared:
                first = next(iter(prefix_groups.values()))
                ctx = construct(ckey, first)
            for pkey, cell_plans in prefix_groups.items():
                def run_one_group(ctx=ctx, pkey=pkey,
                                  cell_plans=cell_plans) -> dict[int, Any]:
                    state = warm_start(ctx, pkey, cell_plans)
                    if len(cell_plans) == 1:
                        plan = cell_plans[0]
                        return {plan.index: execute(state, plan)}
                    inner = _ForkPool(jobs)
                    return inner.run(
                        (plan.index, lambda plan=plan: execute(state, plan))
                        for plan in cell_plans
                    )
                yield (pkey, run_one_group)

    merged: dict[int, Any] = {}
    for group_result in pool.run(runner_tasks()).values():
        merged.update(group_result)
    return [merged[plan.index] for plan in plans]


# ---------------------------------------------------------------------------
# The sweep front-end: (seed x policy) RunSpec grids.
# ---------------------------------------------------------------------------

def _spec_config(spec) -> ClusterConfig:
    """The exact ClusterConfig ``execute_spec`` builds for *spec*."""
    return ClusterConfig(num_mds=spec.num_mds,
                         num_clients=spec.num_clients,
                         seed=spec.seed,
                         dir_split_size=spec.dir_split_size,
                         heartbeat_interval=spec.heartbeat_interval,
                         stability_guard=spec.guard)


def sweep_plans(specs: list) -> list[CellPlan]:
    """CellPlans for RunSpecs: construction by workload signature +
    namespace shape; prefix by everything except the policy."""
    from .sweep import _build_workload

    plans = []
    for index, spec in enumerate(specs):
        signature = _build_workload(spec).construction_signature()
        config = _spec_config(spec)
        construction_key = None
        if signature is not None:
            construction_key = (signature, config.dir_split_size,
                                config.dir_split_bits,
                                config.decay_half_life)
        plans.append(CellPlan(
            index=index,
            construction_key=construction_key,
            # The prefix is policy-independent, and shadow/canary arming
            # happens post-barrier in `execute`, so cells differing only in
            # those share a prefix runner.  `guard` stays in the key: it
            # changes cluster construction itself.
            prefix_key=replace(spec, policy="none", shadow_policy="none",
                               canary_policy="none", canary_at=30.0,
                               canary_window=20.0),
            payload=spec,
        ))
    return plans


def run_sweep_forked(specs: list, jobs: int = 1) -> list[dict[str, Any]]:
    """Warm-start replacement for ``run_sweep``: byte-identical records,
    shared construction and simulation prefixes."""
    from .sweep import _build_workload, arm_lifecycle, spec_record

    def construct(_ckey, plans: list[CellPlan]):
        spec = plans[0].payload
        namespace = SimulatedCluster.build_namespace(_spec_config(spec))
        _build_workload(spec).prepare(namespace)
        return namespace

    def warm_start(namespace, _pkey, plans: list[CellPlan]):
        spec = plans[0].payload
        config = _spec_config(spec)
        cluster = SimulatedCluster(config, namespace=namespace)
        workload = _build_workload(spec)
        cluster.begin_workload(workload, max_time=spec.max_time,
                               skip_prepare=namespace is not None)
        cluster.run_shared_prefix(workload.shared_prefix_end(config))
        return cluster

    def execute(cluster: SimulatedCluster, plan: CellPlan):
        spec = plan.payload
        if spec.policy != "none":
            cluster.set_policy(STOCK_POLICIES[spec.policy](),
                               lint=spec.lint)
        arm_lifecycle(cluster, spec)
        report = cluster.finish_workload()
        return spec_record(spec, report)

    return run_grid(sweep_plans(specs), construct=construct,
                    warm_start=warm_start, execute=execute, jobs=jobs)
