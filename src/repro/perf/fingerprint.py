"""Content fingerprints for the result cache.

A cached result is only reusable while *everything that could change the
simulation's output* is unchanged.  That closure is:

* the simulator source itself -- every ``.py`` module under ``repro``
  (a one-line change to the engine invalidates the whole cache, which is
  exactly right for a bit-identical simulator);
* the interpreter and numpy versions (RNG bit streams are version
  contracts, not guarantees across majors);
* the fast-path toggle (``repro.fastpath.ENABLED``) -- equivalence tests
  assert both paths agree, but the cache must not *assume* it;
* the resolved experiment: config fields, workload shape, seed, and the
  **policy text** (via :func:`repro.core.policyfile.dump_policy`), so
  editing a balancer policy -- even its Lua body -- is a cache miss.

Fingerprints are hex sha256 digests; they never hash live objects, only
their canonical serialised forms, so cold/warm/forked paths agree.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path
from typing import Any

from .. import fastpath
from ..core.policies import STOCK_POLICIES
from ..core.policyfile import dump_policy

#: The package whose sources define the simulation's behaviour.
_PACKAGE_ROOT = Path(__file__).resolve().parents[1]

_sources_digest_cache: str | None = None


def sources_digest() -> str:
    """sha256 over every ``.py`` file under the ``repro`` package.

    Includes python and numpy versions: identical sources on a different
    RNG implementation are not the same simulator.  Computed once per
    process (the sources cannot change under a running interpreter in any
    way the interpreter would notice).
    """
    global _sources_digest_cache
    if _sources_digest_cache is not None:
        return _sources_digest_cache
    hasher = hashlib.sha256()
    hasher.update(f"python={sys.version_info[:3]}".encode())
    try:
        import numpy
        hasher.update(f"numpy={numpy.__version__}".encode())
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        hasher.update(b"numpy=absent")
    for path in sorted(_PACKAGE_ROOT.rglob("*.py")):
        rel = path.relative_to(_PACKAGE_ROOT).as_posix()
        hasher.update(rel.encode())
        hasher.update(b"\0")
        hasher.update(path.read_bytes())
        hasher.update(b"\0")
    _sources_digest_cache = hasher.hexdigest()
    return _sources_digest_cache


def _canonical(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr).encode()


def policy_text(policy_name: str) -> str:
    """The serialised policy file text for a stock policy name.

    This is the *content* of the policy, not its name: renaming a policy
    without changing its Lua is a cache miss only through the name field,
    but editing the Lua behind an unchanged name is a miss through here.
    """
    if policy_name == "none":
        return ""
    return dump_policy(STOCK_POLICIES[policy_name]())


def experiment_fingerprint(kind: str, payload: dict[str, Any]) -> str:
    """Fingerprint an arbitrary experiment description.

    *kind* namespaces the cache (``"sweep"``, ``"harness"``, ...) so two
    front-ends with coincidentally equal payloads cannot collide.
    """
    hasher = hashlib.sha256()
    hasher.update(sources_digest().encode())
    hasher.update(kind.encode())
    hasher.update(b"\0")
    hasher.update(_canonical(payload))
    hasher.update(f"fastpath={fastpath.ENABLED}".encode())
    return hasher.hexdigest()


def spec_fingerprint(spec) -> str:
    """Fingerprint one sweep cell (a ``RunSpec``).

    ``asdict`` already folds in every RunSpec field -- including the
    lifecycle configuration (``guard``, ``shadow_policy``,
    ``canary_policy``, ``canary_at``, ``canary_window``) -- so a guarded
    run and an unguarded run can never alias.  The shadow/canary policy
    *texts* are added on top for the same reason the live policy's is:
    editing a policy's Lua behind an unchanged name must be a miss.
    """
    from dataclasses import asdict
    payload = asdict(spec)
    payload["policy_text"] = policy_text(spec.policy)
    payload["shadow_policy_text"] = policy_text(
        getattr(spec, "shadow_policy", "none"))
    payload["canary_policy_text"] = policy_text(
        getattr(spec, "canary_policy", "none"))
    return experiment_fingerprint("sweep", payload)
