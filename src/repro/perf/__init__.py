"""Performance harness: parallel sweeps, microbenchmarks, profiling.

The sweep runner fans (seed x policy) experiments over worker processes
while keeping per-run output byte-identical to a serial run; the
microbenchmarks track the simulator's hot-path throughput in
``BENCH_sim.json`` so regressions show up in CI.
"""

from .microbench import collect_benchmarks, compare_benchmarks
from .profiling import profiled
from .sweep import RunSpec, build_specs, format_report, run_sweep

__all__ = [
    "RunSpec",
    "build_specs",
    "collect_benchmarks",
    "compare_benchmarks",
    "format_report",
    "profiled",
    "run_sweep",
]
