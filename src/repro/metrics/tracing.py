"""Op-level trace recording and replay.

Attach a :class:`TraceRecorder` to a cluster to capture every client
operation (issue time, kind, path, latency, serving rank).  Recorded
traces can be saved/loaded as JSON-lines and converted into a
:class:`~repro.workloads.patterns.TraceWorkload`, enabling the
record-once / replay-against-many-balancers methodology the paper uses
to compare strategies "on the same storage system".
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from ..clients.ops import OpKind

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import SimulatedCluster
    from ..workloads.patterns import TraceWorkload


@dataclass(frozen=True)
class TraceEvent:
    """One completed client operation."""

    time: float
    client_id: int
    kind: str
    path: str
    latency: float
    served_by: int
    forwards: int
    ok: bool
    dst: str | None = None

    def to_json(self) -> str:
        return json.dumps(asdict(self), separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        return cls(**json.loads(line))


class TraceRecorder:
    """Collects :class:`TraceEvent` records (see :func:`record_run`)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    # -- direct recording API (used by the record_run tap) ------------------
    def record_reply(self, now: float, client_id: int, kind: OpKind,
                     path: str, latency: float, served_by: int,
                     forwards: int, ok: bool,
                     dst: str | None = None) -> None:
        self.events.append(TraceEvent(
            time=round(now, 6), client_id=client_id, kind=kind.value,
            path=path, latency=round(latency, 6), served_by=served_by,
            forwards=forwards, ok=ok, dst=dst,
        ))

    # -- persistence ------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        path = Path(path)
        with path.open("w") as handle:
            for event in self.events:
                handle.write(event.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "TraceRecorder":
        recorder = cls()
        with Path(path).open() as handle:
            for line in handle:
                line = line.strip()
                if line:
                    recorder.events.append(TraceEvent.from_json(line))
        return recorder

    # -- analysis / replay --------------------------------------------------
    def per_client(self) -> dict[int, list[TraceEvent]]:
        out: dict[int, list[TraceEvent]] = {}
        for event in self.events:
            out.setdefault(event.client_id, []).append(event)
        return out

    def to_workload(self) -> "TraceWorkload":
        """Convert into a replayable workload (ops in recorded order)."""
        from ..workloads.patterns import TraceWorkload

        per_client = self.per_client()
        if not per_client:
            raise ValueError("empty trace")
        remapped = {
            new_id: [
                ((OpKind(e.kind), e.path, e.dst) if e.dst
                 else (OpKind(e.kind), e.path))
                for e in events
            ]
            for new_id, (_old, events) in enumerate(
                sorted(per_client.items())
            )
        }
        return TraceWorkload(remapped)

    def summary(self) -> dict[str, float]:
        if not self.events:
            return {"events": 0}
        latencies = [event.latency for event in self.events]
        return {
            "events": len(self.events),
            "clients": len(self.per_client()),
            "mean_latency": sum(latencies) / len(latencies),
            "forwarded": sum(1 for e in self.events if e.forwards),
            "errors": sum(1 for e in self.events if not e.ok),
        }


def record_run(cluster: "SimulatedCluster", workload,
               **kwargs) -> tuple["TraceRecorder", object]:
    """Run *workload* on *cluster* while recording every op.

    Returns (recorder, SimReport).
    """
    from ..clients.client import Client

    recorder = TraceRecorder()
    original_learn = Client._learn

    def learning_tap(self, path, reply):
        recorder.record_reply(
            now=self.engine.now,
            client_id=self.client_id,
            kind=reply.kind,
            path=reply.path,
            latency=reply.latency,
            served_by=reply.served_by,
            forwards=reply.forwards,
            ok=reply.ok,
            dst=reply.dst,
        )
        return original_learn(self, path, reply)

    Client._learn = learning_tap
    try:
        report = cluster.run_workload(workload, **kwargs)
    finally:
        Client._learn = original_learn
    return recorder, report
