"""Metric collection: per-rank counters, throughput timelines, latencies.

These feed every figure in the evaluation: stacked per-MDS throughput
curves (Figs 4, 7, 10), latency-vs-throughput scaling (Fig 5), request and
forward counts (Fig 3), and session-flush counts (§4.1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np


@dataclass
class MdsMetrics:
    """Counters of one MDS rank."""

    rank: int = 0
    ops_served: int = 0
    forwards: int = 0
    traversal_hits: int = 0
    #: Remote prefix-path traversals (stale/uncached remote ancestors).
    prefix_traversals: int = 0
    fetches: int = 0
    stores: int = 0
    session_flushes: int = 0
    migrations: int = 0
    imports: int = 0
    inodes_migrated: int = 0
    fragmentations: int = 0
    scatter_gathers: int = 0
    #: Request count since the last heartbeat (for the ``req`` metric).
    reqs_in_window: int = 0
    # Fault accounting.
    crashes: int = 0
    restarts: int = 0
    migrations_aborted: int = 0
    #: Requests bounced off this (dead) rank and retried elsewhere.
    dead_letters: int = 0

    def take_request_rate(self, window: float) -> float:
        count = self.reqs_in_window
        self.reqs_in_window = 0
        return count / window if window > 0 else 0.0


class Timeline:
    """Per-second, per-rank op counts -> the stacked throughput curves."""

    def __init__(self, bucket: float = 1.0) -> None:
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        self.bucket = bucket
        self._counts: dict[int, dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self.end_time = 0.0

    def record(self, rank: int, now: float, amount: int = 1) -> None:
        self._counts[rank][int(now / self.bucket)] += amount
        self.end_time = max(self.end_time, now)

    # The nested defaultdict uses a lambda factory, which pickle rejects;
    # timelines must cross process/cache boundaries (forked harness cells,
    # cached SimReports), so (de)hydrate through plain dicts.
    def __getstate__(self) -> dict:
        return {
            "bucket": self.bucket,
            "end_time": self.end_time,
            "counts": {rank: dict(buckets)
                       for rank, buckets in self._counts.items()},
        }

    def __setstate__(self, state: dict) -> None:
        self.bucket = state["bucket"]
        self.end_time = state["end_time"]
        self._counts = defaultdict(lambda: defaultdict(int))
        for rank, buckets in state["counts"].items():
            self._counts[rank].update(buckets)

    def series(self, rank: int, until: float | None = None) -> np.ndarray:
        """Requests/second for *rank*, one value per bucket."""
        horizon = until if until is not None else self.end_time
        n = int(horizon / self.bucket) + 1
        out = np.zeros(n)
        for bucket_index, count in self._counts.get(rank, {}).items():
            if bucket_index < n:
                out[bucket_index] = count / self.bucket
        return out

    def ranks(self) -> list[int]:
        return sorted(self._counts.keys())

    def total_series(self, until: float | None = None) -> np.ndarray:
        horizon = until if until is not None else self.end_time
        n = int(horizon / self.bucket) + 1
        out = np.zeros(n)
        for rank in self.ranks():
            series = self.series(rank, horizon)
            out[: len(series)] += series
        return out

    def total_ops(self) -> int:
        return sum(
            count for per_rank in self._counts.values()
            for count in per_rank.values()
        )


class LatencyRecorder:
    """Per-client request latencies (seconds)."""

    def __init__(self) -> None:
        self._samples: dict[int, list[float]] = defaultdict(list)

    def record(self, client_id: int, latency: float) -> None:
        self._samples[client_id].append(latency)

    # -- windowed views (for online health checks) ----------------------
    def marks(self) -> dict[int, int]:
        """Per-client sample counts right now -- a resumable cursor.

        Samples arrive in simulation-event order per client, so a later
        :meth:`since` with these marks returns exactly the samples recorded
        after this call, deterministically.
        """
        return {client: len(samples)
                for client, samples in self._samples.items()}

    def since(self, marks: dict[int, int]) -> np.ndarray:
        """All samples recorded after :meth:`marks` returned *marks*."""
        chunks = [
            np.asarray(samples[marks.get(client, 0):], dtype=float)
            for client, samples in sorted(self._samples.items())
        ]
        chunks = [chunk for chunk in chunks if chunk.size]
        if not chunks:
            return np.zeros(0)
        return np.concatenate(chunks)

    def client_latencies(self, client_id: int) -> np.ndarray:
        return np.asarray(self._samples.get(client_id, ()), dtype=float)

    def all_latencies(self) -> np.ndarray:
        if not self._samples:
            return np.zeros(0)
        return np.concatenate(
            [np.asarray(v, dtype=float) for v in self._samples.values()]
        )

    def mean(self) -> float:
        lat = self.all_latencies()
        return float(lat.mean()) if lat.size else 0.0

    def percentile(self, q: float) -> float:
        lat = self.all_latencies()
        return float(np.percentile(lat, q)) if lat.size else 0.0

    def std(self) -> float:
        lat = self.all_latencies()
        return float(lat.std()) if lat.size else 0.0


@dataclass(frozen=True)
class FaultRecord:
    """One fault (or recovery) event, for the trace in the report."""

    time: float
    kind: str      # e.g. "crash", "restart", "takeover", "partition-heal"
    rank: int      # primary rank affected; -1 for cluster-wide events
    detail: str = ""


@dataclass(frozen=True)
class LifecycleRecord:
    """One policy-lifecycle event (rollout, guard, breaker), for the trace.

    Kinds: ``canary-start``, ``canary-promote``, ``canary-rollback``,
    ``guard-veto``, ``breaker-open``, ``breaker-probation``,
    ``breaker-close``, ``breaker-permanent``, ``policy-commit``.
    """

    time: float
    kind: str
    rank: int      # rank the event concerns; -1 for cluster-wide events
    detail: str = ""


@dataclass
class ClusterMetrics:
    """Everything measured during one simulation run."""

    per_mds: dict[int, MdsMetrics] = field(default_factory=dict)
    timeline: Timeline = field(default_factory=Timeline)
    latencies: LatencyRecorder = field(default_factory=LatencyRecorder)
    client_finish_times: dict[int, float] = field(default_factory=dict)
    client_op_counts: dict[int, int] = field(default_factory=dict)
    fault_events: list[FaultRecord] = field(default_factory=list)
    lifecycle_events: list[LifecycleRecord] = field(default_factory=list)

    def record_fault(self, time: float, kind: str, rank: int,
                     detail: str = "") -> FaultRecord:
        record = FaultRecord(time=time, kind=kind, rank=rank, detail=detail)
        self.fault_events.append(record)
        return record

    def record_lifecycle(self, time: float, kind: str, rank: int,
                         detail: str = "") -> LifecycleRecord:
        record = LifecycleRecord(time=time, kind=kind, rank=rank,
                                 detail=detail)
        self.lifecycle_events.append(record)
        return record

    def mds(self, rank: int) -> MdsMetrics:
        metrics = self.per_mds.get(rank)
        if metrics is None:
            metrics = MdsMetrics(rank=rank)
            self.per_mds[rank] = metrics
        return metrics

    # -- aggregates ------------------------------------------------------
    @property
    def total_ops(self) -> int:
        return sum(m.ops_served for m in self.per_mds.values())

    @property
    def total_forwards(self) -> int:
        return sum(m.forwards for m in self.per_mds.values())

    @property
    def total_hits(self) -> int:
        return sum(m.traversal_hits for m in self.per_mds.values())

    @property
    def total_prefix_traversals(self) -> int:
        return sum(m.prefix_traversals for m in self.per_mds.values())

    @property
    def total_migrations(self) -> int:
        return sum(m.migrations for m in self.per_mds.values())

    @property
    def total_session_flushes(self) -> int:
        return sum(m.session_flushes for m in self.per_mds.values())

    def makespan(self) -> float:
        return max(self.client_finish_times.values(), default=0.0)

    def client_runtimes(self) -> dict[int, float]:
        return dict(self.client_finish_times)
