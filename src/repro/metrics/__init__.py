"""Measurement: counters, timelines, latencies, heat maps, statistics."""

from .collectors import (
    ClusterMetrics,
    FaultRecord,
    LatencyRecorder,
    LifecycleRecord,
    MdsMetrics,
    Timeline,
)
from .heatmap import HeatSampler, default_heat
from .render import (
    render_table,
    render_timelines,
    report_row,
    reports_to_csv,
    sparkline,
    timeline_to_csv,
)
from .stats import Summary, coefficient_of_variation, speedup, summarize
from .tracing import TraceEvent, TraceRecorder, record_run

__all__ = [
    "ClusterMetrics",
    "FaultRecord",
    "HeatSampler",
    "LatencyRecorder",
    "LifecycleRecord",
    "MdsMetrics",
    "Summary",
    "TraceEvent",
    "TraceRecorder",
    "Timeline",
    "coefficient_of_variation",
    "record_run",
    "render_table",
    "render_timelines",
    "report_row",
    "reports_to_csv",
    "sparkline",
    "timeline_to_csv",
    "default_heat",
    "speedup",
    "summarize",
]
