"""Namespace heat sampling (paper Fig 1).

Fig 1 colours directories by "the number of inode reads/writes ... smoothed
with an exponential decay" as a compile job runs.  The sampler snapshots
per-directory decayed load at a fixed interval, producing a
(time x directory) heat matrix.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..namespace.tree import Namespace
from ..sim.engine import SimEngine


def default_heat(snapshot: dict) -> float:
    """Inode reads + writes, as Fig 1 uses."""
    return snapshot["IRD"] + snapshot["IWR"]


class HeatSampler:
    """Periodically samples per-directory heat from a namespace."""

    def __init__(self, engine: SimEngine, namespace: Namespace,
                 interval: float = 5.0,
                 metaload: Callable[[dict], float] = default_heat,
                 max_depth: int | None = 2) -> None:
        self.engine = engine
        self.namespace = namespace
        self.interval = interval
        self.metaload = metaload
        self.max_depth = max_depth
        self.times: list[float] = []
        self.samples: list[dict[str, float]] = []
        self._stop = engine.every(interval, self._sample, start_after=interval)

    def _sample(self) -> None:
        self.times.append(self.engine.now)
        self.samples.append(
            self.namespace.heat_map(
                self.engine.now, self.metaload, max_depth=self.max_depth
            )
        )

    def stop(self) -> None:
        self._stop()

    # -- outputs -----------------------------------------------------------
    def directories(self) -> list[str]:
        names: set[str] = set()
        for sample in self.samples:
            names.update(sample.keys())
        return sorted(names)

    def matrix(self) -> tuple[np.ndarray, list[str], np.ndarray]:
        """(times, directories, heat[time, directory]) for plotting Fig 1."""
        dirs = self.directories()
        heat = np.zeros((len(self.samples), len(dirs)))
        index = {name: i for i, name in enumerate(dirs)}
        for t, sample in enumerate(self.samples):
            for name, value in sample.items():
                heat[t, index[name]] = value
        return np.asarray(self.times), dirs, heat

    def hottest(self, at_index: int, top: int = 5) -> list[tuple[str, float]]:
        """The *top* hottest directories in sample *at_index*."""
        sample = self.samples[at_index]
        ranked = sorted(sample.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:top]

    def render_ascii(self, width: int = 60, top: int = 10) -> str:
        """A terminal rendering of the final heat sample (for examples)."""
        if not self.samples:
            return "(no samples)"
        final = self.samples[-1]
        ranked = sorted(final.items(), key=lambda kv: kv[1], reverse=True)[:top]
        peak = max((v for _, v in ranked), default=1.0) or 1.0
        lines = []
        for name, value in ranked:
            bar = "#" * max(1, int(width * value / peak)) if value > 0 else ""
            lines.append(f"{name:<40.40} {value:9.2f} {bar}")
        return "\n".join(lines)
