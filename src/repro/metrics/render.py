"""Text and CSV rendering of simulation results.

Dependency-free figure rendering: stacked per-rank throughput timelines as
unicode sparklines (the Fig 4/7/10 shape), aligned tables, and CSV export
so results can be plotted with any external tool.
"""

from __future__ import annotations

import csv
import io
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import SimReport

GLYPHS = " .:-=+*#%@"


def sparkline(series: Sequence[float], width: int = 60,
              peak: float | None = None) -> str:
    """Compress *series* into a *width*-character intensity line."""
    data = np.asarray(list(series), dtype=float)
    if data.size == 0:
        return ""
    if data.size > width:
        data = np.array([chunk.mean()
                         for chunk in np.array_split(data, width)])
    top = peak if peak is not None else (data.max() or 1.0)
    if top <= 0:
        top = 1.0
    out = []
    for value in data:
        index = int(min(1.0, max(0.0, value / top)) * (len(GLYPHS) - 1))
        out.append(GLYPHS[index])
    return "".join(out)


def render_timelines(report: "SimReport", width: int = 60,
                     shared_scale: bool = True) -> str:
    """Per-rank throughput sparklines (one row per MDS), Fig 7 style.

    With *shared_scale* all rows use the same peak so relative rank load
    is visible; otherwise each row auto-scales.
    """
    timeline = report.metrics.timeline
    horizon = report.makespan or timeline.end_time
    rows = []
    peak = None
    if shared_scale:
        peak = max(
            (timeline.series(rank, until=horizon).max()
             for rank in sorted(report.metrics.per_mds)),
            default=1.0,
        ) or 1.0
    for rank in sorted(report.metrics.per_mds):
        series = timeline.series(rank, until=horizon)
        rows.append(f"mds{rank} |{sparkline(series, width, peak)}| "
                    f"{report.metrics.per_mds[rank].ops_served} ops")
    return "\n".join(rows)


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width aligned table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def report_row(report: "SimReport") -> dict[str, object]:
    """One flat dict of headline metrics (CSV-friendly)."""
    latency = report.latency_summary()
    return {
        "policy": report.policy_name,
        "num_mds": report.config.num_mds,
        "num_clients": report.config.num_clients,
        "seed": report.config.seed,
        "makespan_s": round(report.makespan, 4),
        "throughput_ops": round(report.throughput, 1),
        "total_ops": report.total_ops,
        "forwards": report.total_forwards,
        "prefix_traversals": report.metrics.total_prefix_traversals,
        "migrations": report.total_migrations,
        "session_flushes": report.total_session_flushes,
        "latency_mean_ms": round(latency.mean * 1e3, 4),
        "latency_p99_ms": round(latency.p99 * 1e3, 4),
    }


def reports_to_csv(reports: Sequence["SimReport"]) -> str:
    """Headline metrics of several runs as a CSV string."""
    if not reports:
        return ""
    rows = [report_row(report) for report in reports]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def timeline_to_csv(report: "SimReport") -> str:
    """The per-second, per-rank throughput matrix as CSV (for plotting
    the stacked Fig 4/7/10 curves externally)."""
    timeline = report.metrics.timeline
    horizon = report.makespan or timeline.end_time
    ranks = sorted(report.metrics.per_mds)
    series = {rank: timeline.series(rank, until=horizon) for rank in ranks}
    n = max((len(s) for s in series.values()), default=0)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["second"] + [f"mds{rank}" for rank in ranks])
    for second in range(n):
        writer.writerow(
            [second] + [
                (series[rank][second] if second < len(series[rank]) else 0.0)
                for rank in ranks
            ]
        )
    return buffer.getvalue()
