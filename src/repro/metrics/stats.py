"""Small statistics helpers used by reports and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
                f"p50={self.p50:.4g} p95={self.p95:.4g} p99={self.p99:.4g}")


def summarize(samples) -> Summary:
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        p50=float(np.percentile(data, 50)),
        p95=float(np.percentile(data, 95)),
        p99=float(np.percentile(data, 99)),
        maximum=float(data.max()),
    )


def speedup(baseline: float, measured: float) -> float:
    """Relative speedup of *measured* over *baseline* runtimes.

    Positive = faster than baseline (e.g. ``0.10`` = 10 % speedup), matching
    how the paper's Fig 8 reports per-client speedup/slowdown.
    """
    if measured <= 0:
        raise ValueError("measured runtime must be positive")
    return baseline / measured - 1.0


def coefficient_of_variation(samples) -> float:
    data = np.asarray(list(samples), dtype=float)
    if data.size < 2 or data.mean() == 0:
        return 0.0
    return float(data.std(ddof=1) / data.mean())
