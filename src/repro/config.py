"""Cluster configuration and calibrated constants.

The calibration targets come straight from the paper's measurements of its
10-node testbed:

* a single MDS saturates at about 4 create-storm clients (§2.2.3, Fig 5);
* per-MDS create throughput tops out at a few thousand requests/second
  (Figs 4, 5, 7);
* distributing a hot directory over several ranks costs coherency work
  (scatter-gather on shared directory state) and extra client sessions, so
  spilling a 4-client create storm to >2 ranks *hurts* (Fig 8);
* migrations are two-phase commits that journal through RADOS and flush
  client sessions, so each migration has a visible cost (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


@dataclass
class ServiceTimes:
    """Mean CPU service time per op kind at an MDS, in seconds."""

    create: float = 0.00020
    mkdir: float = 0.00030
    stat: float = 0.00012
    lookup: float = 0.00012
    open: float = 0.00015
    readdir: float = 0.00080
    unlink: float = 0.00022
    rename: float = 0.00035
    #: Work to recognise + forward a request that is not ours (§2.1).
    forward: float = 0.00006
    #: Coefficient of variation of all service times.
    cv: float = 0.30

    def mean_for(self, op: str) -> float:
        try:
            return getattr(self, op)
        except AttributeError as exc:
            raise KeyError(f"unknown op kind {op!r}") from exc


@dataclass
class ClusterConfig:
    """Everything needed to assemble a simulated CephFS metadata cluster."""

    num_mds: int = 1
    num_clients: int = 1
    num_osds: int = 18
    seed: int = 0

    # Network: one-way latency between any two nodes (paper testbed is one
    # GbE switch away; sub-millisecond RTT).
    net_latency: float = 0.00020
    net_jitter_cv: float = 0.20

    service: ServiceTimes = field(default_factory=ServiceTimes)

    # Namespace / dirfrags.
    decay_half_life: float = 5.0
    #: Paper §4.1 fragments a shared directory at 50 k entries into 2^3
    #: dirfrags.  Benchmarks scale `dir_split_size` together with the number
    #: of files created so fragmentation still triggers.
    dir_split_size: int = 50_000
    dir_split_bits: int = 3

    # MDS cache: number of inodes each rank can cache.
    cache_capacity: int = 400_000
    #: RADOS fetch size for a directory object (affects FETCH latency).
    dir_object_bytes: int = 16_384

    # Heartbeats (paper §2: every 10 seconds).
    heartbeat_interval: float = 10.0
    #: Time to pack/unpack a heartbeat; adds to staleness (§2.2.2).
    heartbeat_pack_time: float = 0.050
    #: Multiplicative noise applied to instantaneous CPU measurements --
    #: the paper blames noisy instantaneous metrics for erratic decisions.
    cpu_measure_noise: float = 0.08
    #: Delay between sending heartbeats and running the balancer, so the
    #: rebalance uses the current round's (still slightly stale) views --
    #: the "send HB -> recv HB -> rebalance" flow of paper Fig 2.
    rebalance_delay: float = 0.25

    # Coherency.  "Spread" below is the *effective* number of ranks sharing
    # a directory's dirfrags: the inverse participation ratio of the
    # per-rank frag shares (4/2/1/1 over 4 ranks is an effective spread of
    # ~2.9; a perfectly even 2/2/2/2 is 4.0).  Writes to a spread directory
    # pay a service surcharge (service *= 1 + sync_penalty*sqrt(spread-1)):
    # shared-stat updates, cap exchanges (§4.1).
    sync_penalty: float = 0.08
    #: Probability that a *slave* write (a write served by a rank other
    #: than the directory inode's authority) triggers a full scatter-gather:
    #: updates on the directory halt while stats go to the authoritative
    #: MDS and back (paper §4.1 footnote 3).  The probability scales
    #: quadratically with effective spread, normalised at 4 ranks:
    #: p = prob * ((spread-1)/3)**2, and each halt lasts
    #: scatter_gather_time * participants**1.5 -- coherency rounds involve
    #: every replica, so halt frequency and scope grow superlinearly.
    #: Calibrated against Fig 8 (+10 % at 2 ranks, -20 % uneven / -40 %
    #: even at 4).
    scatter_gather_prob: float = 0.008
    #: Base scatter-gather halt duration (scaled by participants**1.5).
    scatter_gather_time: float = 0.0055
    #: Probability that a write invalidates the parent/grandparent inode
    #: replicas cached at other ranks (CephFS propagates dirty fragstats
    #: lazily/batched, so replicas are not invalidated on every write).
    #: Stale replicas force remote prefix-path traversals on the next op at
    #: that rank -- the cross-rank traversal cost of §2.1 / Fig 3b.
    parent_inval_prob: float = 0.15
    #: How many ancestor levels a write dirties (parent, grandparent, ...).
    parent_inval_levels: int = 2
    #: Latency of one remote prefix traversal (one MDS-to-MDS round trip).
    prefix_traversal_time: float = 0.0020
    #: A rank that served anything under a directory within this window is
    #: an active coherency participant there and is never invalidated.
    coherency_window: float = 2.0
    #: Client-side cap revalidation: when a client's consecutive requests
    #: alternate between ranks for *unshared* directories, its exclusive
    #: capabilities must be revalidated (shared directories already run
    #: with degraded caps, so crossing is free there).
    cap_switch_time: float = 0.00025

    # Migration (two-phase commit, §2 "Migrate").
    #: Fixed cost of freezing + journalling EExport/EImport.
    migration_base_time: float = 0.120
    #: Per-inode transfer cost while the subtree is frozen.
    migration_per_inode: float = 0.0000035
    #: Stall per client session flushed at export time (§4.1).
    session_flush_time: float = 0.0150
    #: Journal bytes per migrated inode.
    migration_inode_bytes: int = 220

    # Journalling of regular updates.
    journal_entry_bytes: int = 512
    journal_segment_bytes: int = 65_536

    # Client behaviour.
    client_think_time: float = 0.0
    #: Outstanding requests per client.  1 (synchronous dirops) reproduces
    #: the paper's Fig 5 knee: a single MDS handles ~4 create clients.
    client_pipeline: int = 1
    #: Every Nth create also updates the file (size/mtime), costing a STORE.
    store_every: int = 64

    # Fault tolerance / recovery.
    #: A rank whose heartbeat has not arrived for this long is declared
    #: dead (evicted from heartbeat tables; balancers stop targeting it).
    mds_beacon_grace: float = 15.0
    #: How long a bounced request waits before re-resolving authority and
    #: retrying after it hit a dead rank.
    dead_rank_retry_delay: float = 0.050
    #: Fixed restart cost (process respawn + cache warmup floor) before
    #: journal replay begins.
    restart_base_time: float = 0.5
    #: How many trailing journal segments a restarting rank replays.
    replay_segment_window: int = 64
    #: Consecutive Lua errors before the balancer trips its circuit
    #: breaker and falls back to the built-in original balancer.
    policy_error_threshold: int = 3
    #: Half-open recovery: after this many consecutive clean fallback
    #: ticks, a tripped balancer re-tries the injected policy once on
    #: probation.  A clean probation tick closes the breaker; a failing
    #: one trips it permanently.  0 disables recovery (trip forever).
    policy_probation_ticks: int = 6

    # Policy lifecycle (shadow / canary / stability guard).
    #: Run the online StabilityGuard: re-exports of a subtree that bounced
    #: between ranks too often inside the guard window are vetoed before
    #: they reach the migrator (live ping-pong damping).
    stability_guard: bool = False
    #: Sliding window (seconds) over which the guard remembers moves.
    guard_window: float = 60.0
    #: Veto a re-export once the unit's reversal count inside the window
    #: (including the proposed move) reaches this many bounces.
    guard_max_bounces: int = 2

    # Safety valve for run loops.
    max_events: int = 200_000_000

    def with_overrides(self, **kwargs: Any) -> "ClusterConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    def validate(self) -> None:
        if self.num_mds < 1:
            raise ValueError("need at least one MDS")
        if self.num_clients < 0:
            raise ValueError("client count cannot be negative")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if not 0 <= self.scatter_gather_prob <= 1:
            raise ValueError("scatter_gather_prob must be a probability")
        if self.dir_split_bits < 1:
            raise ValueError("dir_split_bits must be >= 1")
        if self.mds_beacon_grace <= 0:
            raise ValueError("mds_beacon_grace must be positive")
        if self.dead_rank_retry_delay <= 0:
            raise ValueError("dead_rank_retry_delay must be positive")
        if self.replay_segment_window < 0:
            raise ValueError("replay_segment_window cannot be negative")
        if self.policy_error_threshold < 1:
            raise ValueError("policy_error_threshold must be >= 1")
        if self.policy_probation_ticks < 0:
            raise ValueError("policy_probation_ticks cannot be negative")
        if self.guard_window <= 0:
            raise ValueError("guard_window must be positive")
        if self.guard_max_bounces < 1:
            raise ValueError("guard_max_bounces must be >= 1")
