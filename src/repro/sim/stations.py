"""Service stations: FIFO queues in front of one or more servers.

An MDS CPU, an OSD disk, and the journal device are all stations.  The
station tracks busy time and queue length so heartbeats can report CPU
utilisation and queue depth (the ``MDSs[i]["cpu"]`` and ``MDSs[i]["q"]``
metrics of paper Table 2).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Callable

import numpy as np

from .engine import (_COMPACT_EVERY_MASK, _COMPACT_MIN_HEAP, Completion,
                     EventHandle, SimEngine)
from .rng import ServiceTime


class Job:
    """One queued unit of work."""

    __slots__ = ("payload", "service", "completion", "enqueued_at")

    def __init__(self, payload: Any, service: float,
                 completion: Completion, enqueued_at: float) -> None:
        self.payload = payload
        self.service = service
        self.completion = completion
        self.enqueued_at = enqueued_at


class FifoStation:
    """An M/G/c-style FIFO service station.

    ``submit`` returns a :class:`Completion` that fires when the job's
    service finishes.  An optional ``executor`` callback runs at service
    completion (before the completion fires) -- this is where an MDS applies
    the operation to the namespace.
    """

    def __init__(self, engine: SimEngine, name: str,
                 rng: np.random.Generator,
                 servers: int = 1,
                 executor: Callable[[Any], Any] | None = None) -> None:
        if servers < 1:
            raise ValueError("need at least one server")
        self.engine = engine
        self.name = name
        self.rng = rng
        self.servers = servers
        self.executor = executor
        self._queue: deque[Job] = deque()
        self._busy_servers = 0
        self._paused = False
        self._in_service: dict[int, tuple[Job, "EventHandle"]] = {}
        # Accounting.
        self.busy_time = 0.0
        self.jobs_done = 0
        self.total_wait = 0.0
        self.total_service = 0.0
        self._busy_since: dict[int, float] = {}
        self._last_window_mark = 0.0
        self._window_busy = 0.0

    # -- metrics ------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def in_service(self) -> int:
        return self._busy_servers

    def utilization_since_mark(self) -> float:
        """Busy fraction since the last call to this method.

        Heartbeats call this every tick, yielding the windowed, noisy-ish
        CPU metric the paper's balancers consume.
        """
        now = self.engine.now
        window = now - self._last_window_mark
        busy = self._window_busy
        # Add partial busy time of still-running jobs.
        for since in self._busy_since.values():
            busy += now - max(since, self._last_window_mark)
        self._last_window_mark = now
        self._window_busy = 0.0
        if window <= 0:
            return 1.0 if self._busy_servers else 0.0
        return min(1.0, busy / (window * self.servers))

    def mean_wait(self) -> float:
        return self.total_wait / self.jobs_done if self.jobs_done else 0.0

    # -- control ------------------------------------------------------------
    def pause(self) -> None:
        """Stop dispatching new jobs (used while a subtree is frozen)."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False
        self._dispatch()

    def drain(self) -> list[Job]:
        """Abandon all queued and in-service jobs (a server crash).

        Busy time already accrued is accounted; the jobs' completions are
        left unfired -- the caller decides whether to requeue, redirect or
        cancel each one.  Returns the abandoned jobs, in-service first.
        """
        now = self.engine.now
        abandoned: list[Job] = []
        for slot, (job, handle) in list(self._in_service.items()):
            handle.cancel()
            started = self._busy_since.pop(slot)
            span = now - started
            self.busy_time += span
            self._window_busy += now - max(started, self._last_window_mark)
            abandoned.append(job)
        self._in_service.clear()
        self._busy_servers = 0
        abandoned.extend(self._queue)
        self._queue.clear()
        return abandoned

    # -- submission ------------------------------------------------------
    def submit(self, payload: Any,
               service: float | ServiceTime | None = None,
               want_completion: bool = True) -> Completion | None:
        """Queue *payload*; the returned completion fires with the executor's
        return value once service completes.

        Callers that discard the completion (fire-and-forget work such as
        request intake and background flushes) pass ``want_completion=False``
        to skip allocating it -- one Completion per metadata op otherwise.
        """
        if isinstance(service, ServiceTime):
            service_time = service.sample(self.rng)
        elif service is None:
            raise ValueError("service time required")
        else:
            service_time = float(service)
        completion = self.engine.completion() if want_completion else None
        job = Job(payload, service_time, completion, self.engine.now)
        self._queue.append(job)
        self._dispatch()
        return completion

    # -- internals ---------------------------------------------------------
    def _dispatch(self) -> None:
        while (not self._paused and self._queue
               and self._busy_servers < self.servers):
            job = self._queue.popleft()
            self._start(job)

    def _start(self, job: Job) -> None:
        engine = self.engine
        now = engine.now
        self._busy_servers += 1
        slot = id(job)
        self._busy_since[slot] = now
        self.total_wait += now - job.enqueued_at
        # engine.schedule() inlined (service times are never negative);
        # the bookkeeping matches schedule() exactly.
        time = now + job.service
        seq = next(engine._seq)
        handle = EventHandle.__new__(EventHandle)
        handle.time = time
        handle.seq = seq
        handle.fn = self._finish
        handle.args = (job, slot)
        handle.cancelled = False
        heappush(engine._heap, (time, seq, handle))
        engine._scheduled += 1
        if (engine._scheduled & _COMPACT_EVERY_MASK) == 0 \
                and len(engine._heap) >= _COMPACT_MIN_HEAP:
            engine._maybe_compact()
        self._in_service[slot] = (job, handle)

    def _finish(self, job: Job, slot: int) -> None:
        self._in_service.pop(slot, None)
        started = self._busy_since.pop(slot)
        span = self.engine.now - started
        self.busy_time += span
        self._window_busy += self.engine.now - max(started,
                                                   self._last_window_mark)
        self.total_service += span
        self.jobs_done += 1
        self._busy_servers -= 1
        result: Any = None
        if self.executor is not None:
            result = self.executor(job.payload)
        completion = job.completion
        if completion is not None and not completion._done:
            completion.succeed(result)
        if self._queue and not self._paused \
                and self._busy_servers < self.servers:
            self._dispatch()
