"""Network latency model.

Messages between clients, MDS ranks and OSDs take a base one-way latency
plus lognormal jitter.  Heartbeats additionally pay a pack/unpack delay,
which is what makes remote load views *stale* (paper §2.2.2, "Decentralized
MDS state").
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .engine import Completion, SimEngine


class Network:
    """Star network: every pair of nodes has the same latency distribution."""

    def __init__(self, engine: SimEngine, rng: np.random.Generator,
                 base_latency: float = 0.0002,
                 jitter_cv: float = 0.2) -> None:
        self.engine = engine
        self.rng = rng
        self.base_latency = float(base_latency)
        self.jitter_cv = float(jitter_cv)
        self.messages_sent = 0

    def one_way(self) -> float:
        """Sample one one-way latency."""
        self.messages_sent += 1
        if self.jitter_cv <= 0:
            return self.base_latency
        sigma2 = np.log(1.0 + self.jitter_cv ** 2)
        mu = np.log(self.base_latency) - sigma2 / 2.0
        return float(self.rng.lognormal(mu, np.sqrt(sigma2)))

    def deliver(self, handler: Callable[..., None], *args: Any) -> None:
        """Invoke *handler(args)* after one network hop."""
        self.engine.schedule(self.one_way(), handler, *args)

    def deliver_after(self, extra_delay: float,
                      handler: Callable[..., None], *args: Any) -> None:
        """Invoke *handler(args)* after one hop plus *extra_delay*."""
        self.engine.schedule(self.one_way() + extra_delay, handler, *args)

    def request(self, handler: Callable[[Completion], None]) -> Completion:
        """One-hop request whose response is signalled through a completion.

        The callee receives the completion and succeeds it when done; the
        caller should yield on it from a process.
        """
        completion = self.engine.completion()
        self.engine.schedule(self.one_way(), handler, completion)
        return completion
