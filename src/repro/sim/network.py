"""Network latency model.

Messages between clients, MDS ranks and OSDs take a base one-way latency
plus lognormal jitter.  Heartbeats additionally pay a pack/unpack delay,
which is what makes remote load views *stale* (paper §2.2.2, "Decentralized
MDS state").
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable

import numpy as np

from .. import fastpath
from .engine import (_COMPACT_EVERY_MASK, _COMPACT_MIN_HEAP, Completion,
                     EventHandle, SimEngine)

#: Jitter samples drawn per vectorized RNG call.
_JITTER_BATCH = 1024


class Network:
    """Star network: every pair of nodes has the same latency distribution."""

    def __init__(self, engine: SimEngine, rng: np.random.Generator,
                 base_latency: float = 0.0002,
                 jitter_cv: float = 0.2) -> None:
        self.engine = engine
        self.rng = rng
        self.base_latency = float(base_latency)
        self.jitter_cv = float(jitter_cv)
        self.messages_sent = 0
        # Vectorized jitter: the "network" RNG stream is consumed only by
        # this class and only with these (mu, sigma), and numpy's Generator
        # yields the same draw sequence for one size=N call as for N scalar
        # calls -- so refilling a batch preserves the exact delay sequence.
        self._jitter_buf: list[float] = []
        self._jitter_idx = 0
        # The lognormal parameters only depend on the configuration; one
        # log/sqrt at construction instead of two logs + a sqrt per message.
        if self.jitter_cv > 0:
            sigma2 = np.log(1.0 + self.jitter_cv ** 2)
            self._mu = np.log(self.base_latency) - sigma2 / 2.0
            self._sigma = np.sqrt(sigma2)
        else:
            self._mu = self._sigma = 0.0

    def _refill_jitter(self) -> float:
        buf = self.rng.lognormal(self._mu, self._sigma,
                                 size=_JITTER_BATCH).tolist()
        self._jitter_buf = buf
        self._jitter_idx = 1
        return buf[0]

    def one_way(self) -> float:
        """Sample one one-way latency."""
        self.messages_sent += 1
        if self.jitter_cv <= 0:
            return self.base_latency
        if fastpath.ENABLED:
            idx = self._jitter_idx
            buf = self._jitter_buf
            if idx < len(buf):
                self._jitter_idx = idx + 1
                return buf[idx]
            return self._refill_jitter()
        return float(self.rng.lognormal(self._mu, self._sigma))

    def deliver(self, handler: Callable[..., None], *args: Any) -> None:
        """Invoke *handler(args)* after one network hop."""
        # one_way() and engine.schedule() inlined: deliver runs two to four
        # times per metadata op, and a delay from here is never negative or
        # cancelled.  The scheduling bookkeeping matches schedule() exactly.
        self.messages_sent += 1
        if self.jitter_cv <= 0:
            delay = self.base_latency
        elif fastpath.ENABLED:
            idx = self._jitter_idx
            buf = self._jitter_buf
            if idx < len(buf):
                self._jitter_idx = idx + 1
                delay = buf[idx]
            else:
                delay = self._refill_jitter()
        else:
            delay = float(self.rng.lognormal(self._mu, self._sigma))
        engine = self.engine
        time = engine.now + delay
        seq = next(engine._seq)
        handle = EventHandle.__new__(EventHandle)
        handle.time = time
        handle.seq = seq
        handle.fn = handler
        handle.args = args
        handle.cancelled = False
        heappush(engine._heap, (time, seq, handle))
        engine._scheduled += 1
        if (engine._scheduled & _COMPACT_EVERY_MASK) == 0 \
                and len(engine._heap) >= _COMPACT_MIN_HEAP:
            engine._maybe_compact()

    def deliver_after(self, extra_delay: float,
                      handler: Callable[..., None], *args: Any) -> None:
        """Invoke *handler(args)* after one hop plus *extra_delay*."""
        self.messages_sent += 1
        if self.jitter_cv <= 0:
            delay = self.base_latency
        elif fastpath.ENABLED:
            idx = self._jitter_idx
            buf = self._jitter_buf
            if idx < len(buf):
                self._jitter_idx = idx + 1
                delay = buf[idx]
            else:
                delay = self._refill_jitter()
        else:
            delay = float(self.rng.lognormal(self._mu, self._sigma))
        self.engine.schedule(delay + extra_delay, handler, *args)

    def request(self, handler: Callable[[Completion], None]) -> Completion:
        """One-hop request whose response is signalled through a completion.

        The callee receives the completion and succeeds it when done; the
        caller should yield on it from a process.
        """
        completion = self.engine.completion()
        self.engine.schedule(self.one_way(), handler, completion)
        return completion
