"""Discrete-event simulation substrate.

Provides the event engine, seeded RNG streams, FIFO service stations and the
network latency model that the CephFS metadata cluster simulation is built
on.
"""

from .engine import CancelledError, Completion, EventHandle, Process, SimEngine
from .network import Network
from .rng import RngStreams, ServiceTime
from .stations import FifoStation, Job

__all__ = [
    "CancelledError",
    "Completion",
    "EventHandle",
    "FifoStation",
    "Job",
    "Network",
    "Process",
    "RngStreams",
    "ServiceTime",
    "SimEngine",
]
