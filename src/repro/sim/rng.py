"""Seeded random-number streams.

Every stochastic component (each MDS, each client, the network, each OSD)
draws from its own named substream so that adding a component or reordering
draws in one component never perturbs another -- the standard trick for
reproducible parallel-systems simulation.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """A family of independent :class:`numpy.random.Generator` substreams.

    Streams are keyed by name; the same (seed, name) pair always yields the
    same stream, via SHA-style SeedSequence spawning keyed on the name hash.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the substream called *name*."""
        generator = self._streams.get(name)
        if generator is None:
            # Derive a child seed from the root seed and the stream name in a
            # stable, collision-resistant way.
            name_entropy = [ord(c) for c in name] or [0]
            sequence = np.random.SeedSequence(
                entropy=self.seed, spawn_key=tuple(name_entropy)
            )
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def state(self) -> dict[str, dict]:
        """Snapshot every instantiated substream's bit-generator state.

        The returned mapping is plain data (stream name -> the numpy
        bit-generator state dict), so it can be hashed, compared or stored.
        Used by the warm-start equivalence tests to assert that a shared
        simulation prefix leaves every cell with identical RNG state, and
        by :func:`state_fingerprint` to summarize that state.
        """
        return {name: generator.bit_generator.state
                for name, generator in sorted(self._streams.items())}

    def set_state(self, state: dict[str, dict]) -> None:
        """Restore substream states captured by :meth:`state`.

        Streams not yet instantiated are created first (creation is
        deterministic in (seed, name), so this is always well-defined).
        """
        for name, bit_state in state.items():
            self.stream(name).bit_generator.state = bit_state

    def state_fingerprint(self) -> str:
        """A stable hex digest of :meth:`state` (order-independent)."""
        import hashlib
        import json

        payload = json.dumps(self.state(), sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode()).hexdigest()

    def spawn(self, name: str) -> "RngStreams":
        """A child family, independent of this one, for a subcomponent."""
        child = RngStreams(seed=self.seed)
        child._prefix = name  # type: ignore[attr-defined]
        # Implemented by prefixing stream names.
        original_stream = child.stream

        def prefixed(stream_name: str) -> np.random.Generator:
            return original_stream(f"{name}/{stream_name}")

        child.stream = prefixed  # type: ignore[method-assign]
        return child


class ServiceTime:
    """A service-time distribution: lognormal around a mean with given CV.

    Lognormal keeps samples positive and produces the heavy-ish tail real
    metadata services show.  ``cv`` (coefficient of variation) 0 gives a
    deterministic service time.
    """

    def __init__(self, mean: float, cv: float = 0.25) -> None:
        if mean <= 0:
            raise ValueError("mean service time must be positive")
        if cv < 0:
            raise ValueError("cv must be non-negative")
        self.mean = float(mean)
        self.cv = float(cv)
        if cv > 0:
            sigma2 = np.log(1.0 + cv * cv)
            self._mu = np.log(mean) - sigma2 / 2.0
            self._sigma = float(np.sqrt(sigma2))
        else:
            self._mu = np.log(mean)
            self._sigma = 0.0

    def sample(self, rng: np.random.Generator) -> float:
        if self._sigma == 0.0:
            return self.mean
        return float(rng.lognormal(self._mu, self._sigma))

    def scaled(self, factor: float) -> "ServiceTime":
        """A distribution with the mean scaled by *factor* (same CV)."""
        return ServiceTime(self.mean * factor, self.cv)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceTime(mean={self.mean:.6f}, cv={self.cv})"
