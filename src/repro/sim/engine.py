"""Discrete-event simulation engine.

A single-threaded event heap with a simulated clock (seconds, float).
Components interact through three primitives:

* :meth:`SimEngine.schedule` -- run a callback after a delay,
* :class:`Completion` -- a one-shot future used for request/response flows,
* :meth:`SimEngine.process` -- drive a generator that ``yield``s delays or
  :class:`Completion` objects (a lightweight simpy-style coroutine), which is
  how closed-loop clients and multi-step migrations are written.

The engine is deterministic: ties in time are broken by insertion order.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Optional

from .. import fastpath


class CancelledError(Exception):
    """Raised inside a process whose awaited completion was cancelled."""


class EventHandle:
    """Handle to a scheduled callback; supports O(1) cancellation.

    The heap itself stores ``(time, seq, handle)`` tuples so ordering is
    resolved by C-level tuple comparison without calling back into Python;
    the handle carries the payload and the cancellation flag.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., None],
                 args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Completion:
    """A one-shot future: fires callbacks when succeeded or failed."""

    __slots__ = ("engine", "_done", "_value", "_error", "_callbacks")

    def __init__(self, engine: "SimEngine") -> None:
        self.engine = engine
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: list[Callable[["Completion"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise RuntimeError("completion not done")
        if self._error is not None:
            raise self._error
        return self._value

    def succeed(self, value: Any = None) -> None:
        # _finish inlined: success is the per-op common case.
        if self._done:
            raise RuntimeError("completion already done")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def fail(self, error: BaseException) -> None:
        self._finish(None, error)

    def cancel(self) -> None:
        if not self._done:
            self.fail(CancelledError())

    def _finish(self, value: Any, error: Optional[BaseException]) -> None:
        if self._done:
            raise RuntimeError("completion already done")
        self._done = True
        self._value = value
        self._error = error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Completion"], None]) -> None:
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)


class Process:
    """Drives a generator: ``yield <float delay>`` or ``yield <Completion>``.

    The generator resumes with the completion's value (or the exception is
    thrown into it).  The process itself is a completion that fires with the
    generator's return value.

    A running process can be *interrupted*: :meth:`interrupt` throws an
    exception into the generator at its current wait point (abandoning the
    wait), which is how multi-step operations like migrations are aborted
    when a fault strikes mid-flight.  Each wait holds a token; a resume
    whose token is stale (because an interrupt superseded it) is ignored,
    so interrupting never touches the completion being waited on -- other
    waiters see it fire normally.
    """

    __slots__ = ("engine", "generator", "name", "completion", "_wait_token")

    def __init__(self, engine: "SimEngine",
                 generator: Generator[Any, Any, Any], name: str = "") -> None:
        self.engine = engine
        self.generator = generator
        self.name = name
        self.completion = Completion(engine)
        self._wait_token = 0
        engine.schedule(0.0, self._resume_guard, 0, None, None)

    def interrupt(self, error: Optional[BaseException] = None) -> bool:
        """Throw *error* (default :class:`CancelledError`) into the process.

        Returns False if the process already finished.  The exception is
        delivered at the current wait point; whatever the process was
        waiting on is left untouched and its eventual firing is ignored.
        """
        if self.completion.done:
            return False
        self._wait_token += 1
        self.engine.schedule(0.0, self._resume_guard, self._wait_token,
                             None, error if error is not None
                             else CancelledError())
        return True

    def _resume_guard(self, token: int, value: Any,
                      error: Optional[BaseException]) -> None:
        if token != self._wait_token or self.completion.done:
            return  # superseded by an interrupt (or already finished)
        self._resume(value, error)

    def _resume(self, value: Any, error: Optional[BaseException]) -> None:
        try:
            if error is not None:
                yielded = self.generator.throw(error)
            else:
                yielded = self.generator.send(value)
        except StopIteration as stop:
            if not self.completion.done:
                self.completion.succeed(getattr(stop, "value", None))
            return
        except CancelledError:
            if not self.completion.done:
                self.completion.cancel()
            return
        except BaseException as exc:
            if exc is error:
                # The generator did not catch the injected error; fail the
                # process instead of crashing the whole event loop.
                if not self.completion.done:
                    self.completion.fail(exc)
                return
            raise
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        self._wait_token += 1
        token = self._wait_token
        if isinstance(yielded, Completion):
            if fastpath.ENABLED:
                # Resume synchronously when the completion fires instead of
                # bouncing through a zero-delay event.  Sim time is the same
                # either way; only exact-timestamp ties could order
                # differently, so this rides the fastpath toggle.
                def on_done(completion: Completion) -> None:
                    if token != self._wait_token or self.completion._done:
                        return  # superseded by an interrupt
                    error = completion._error
                    self._resume(None if error is not None
                                 else completion._value, error)
            else:
                def on_done(completion: Completion) -> None:
                    error = completion._error
                    self.engine.schedule(0.0, self._resume_guard, token,
                                         None if error is not None
                                         else completion._value, error)

            yielded.add_callback(on_done)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise ValueError(f"negative delay {yielded}")
            self.engine.schedule(float(yielded), self._resume_guard, token,
                                 None, None)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {type(yielded).__name__}; "
                "expected a delay or a Completion"
            )


#: Compaction is considered once every this many schedules...
_COMPACT_EVERY_MASK = 0x3FFF
#: ...and only bothers when the heap is at least this large.
_COMPACT_MIN_HEAP = 8192


class _PeriodicTimer:
    """Allocation-free periodic callback: one EventHandle, re-armed in place.

    ``engine.every`` used to build a fresh handle per tick; the heartbeat
    loop re-arms every 10 simulated seconds on every rank, so reusing the
    handle keeps the hot loop allocation-free.  Firing order is unchanged:
    each re-arm consumes the next sequence number exactly as a fresh
    ``schedule`` call would.
    """

    __slots__ = ("engine", "interval", "fn", "jitter", "stopped", "handle")

    def __init__(self, engine: "SimEngine", interval: float,
                 fn: Callable[[], None],
                 jitter: Callable[[], float] | None) -> None:
        self.engine = engine
        self.interval = interval
        self.fn = fn
        self.jitter = jitter
        self.stopped = False
        self.handle: EventHandle | None = None

    def tick(self) -> None:
        if self.stopped:
            return
        self.fn()
        delay = self.interval + (self.jitter() if self.jitter else 0.0)
        engine = self.engine
        handle = self.handle
        handle.time = engine.now + max(1e-9, delay)
        handle.seq = next(engine._seq)
        heappush(engine._heap, (handle.time, handle.seq, handle))

    def stop(self) -> None:
        self.stopped = True


class SimEngine:
    """The event loop: heap of (time, seq) ordered callbacks."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._executed = 0
        self._scheduled = 0

    # -- scheduling -----------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after *delay* simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        time = self.now + delay
        seq = next(self._seq)
        # EventHandle built without the __init__ frame: one handle per
        # event makes this the most-allocated object in the simulator.
        handle = EventHandle.__new__(EventHandle)
        handle.time = time
        handle.seq = seq
        handle.fn = fn
        handle.args = args
        handle.cancelled = False
        heappush(self._heap, (time, seq, handle))
        self._scheduled += 1
        if (self._scheduled & _COMPACT_EVERY_MASK) == 0 \
                and len(self._heap) >= _COMPACT_MIN_HEAP:
            self._maybe_compact()
        return handle

    def _maybe_compact(self) -> None:
        """Rebuild the heap when cancelled entries dominate it.

        Cancelled handles are lazily deleted (skipped on pop); workloads
        that cancel a lot of far-future events (crash drains, abandoned
        deadlines) would otherwise keep dead entries resident.  Rebuilding
        preserves (time, seq) ordering exactly, so execution order -- and
        therefore results -- cannot change.
        """
        heap = self._heap
        live = [entry for entry in heap if not entry[2].cancelled]
        if len(live) * 2 <= len(heap):
            # In place: run loops hold a local alias to the heap list.
            heap[:] = live
            heapify(heap)

    def schedule_at(self, time: float, fn: Callable[..., None],
                    *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated *time*."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        return self.schedule(time - self.now, fn, *args)

    def every(self, interval: float, fn: Callable[..., None],
              *, start_after: float | None = None,
              jitter: Callable[[], float] | None = None) -> Callable[[], None]:
        """Run *fn* periodically.  Returns a stop function."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        timer = _PeriodicTimer(self, interval, fn, jitter)
        first = interval if start_after is None else start_after
        timer.handle = self.schedule(max(0.0, first), timer.tick)
        return timer.stop

    # -- futures & processes --------------------------------------------
    def completion(self) -> Completion:
        return Completion(self)

    def timeout(self, delay: float, value: Any = None) -> Completion:
        completion = Completion(self)
        self.schedule(delay, completion.succeed, value)
        return completion

    def process(self, generator: Generator[Any, Any, Any],
                name: str = "") -> Process:
        return Process(self, generator, name=name)

    # -- execution -------------------------------------------------------
    @property
    def pending(self) -> int:
        return sum(1 for entry in self._heap if not entry[2].cancelled)

    @property
    def events_executed(self) -> int:
        return self._executed

    def step(self) -> bool:
        """Execute the next event; returns False when the heap is empty."""
        heap = self._heap
        while heap:
            when, _seq, handle = heappop(heap)
            if handle.cancelled:
                continue
            if when < self.now - 1e-12:  # pragma: no cover - invariant
                raise RuntimeError("time went backwards")
            self.now = when
            self._executed += 1
            handle.fn(*handle.args)
            return True
        return False

    def run_until(self, time: float) -> None:
        """Run all events with timestamp <= *time*; clock ends at *time*."""
        heap = self._heap
        while heap:
            entry = heap[0]
            handle = entry[2]
            if handle.cancelled:
                heappop(heap)
                continue
            when = entry[0]
            if when > time:
                break
            heappop(heap)
            self.now = when
            self._executed += 1
            handle.fn(*handle.args)
        self.now = max(self.now, time)

    def run_before(self, time: float,
                   completion: Optional[Completion] = None) -> None:
        """Run all events with timestamp strictly < *time* (a fork barrier).

        Unlike :meth:`run_until` this never executes an event *at* *time*
        and never advances the clock past the last executed event, so a
        run split as ``run_before(t)`` + ``run_until_complete(done)``
        executes exactly the same event sequence as an unsplit
        ``run_until_complete(done)`` -- the property the warm-start fork
        point relies on.  When *completion* is given the loop also stops
        as soon as it fires (matching ``run_until_complete``, which stops
        mid-heap when its completion is done).
        """
        heap = self._heap
        while heap:
            if completion is not None and completion._done:
                return
            entry = heap[0]
            handle = entry[2]
            if handle.cancelled:
                heappop(heap)
                continue
            when = entry[0]
            if when >= time:
                return
            heappop(heap)
            self.now = when
            self._executed += 1
            handle.fn(*handle.args)

    def run(self, max_events: int | None = None) -> None:
        """Run until the heap drains (or *max_events* fire)."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; likely livelock"
                )

    def run_until_complete(self, completion: Completion,
                           max_events: int | None = None) -> Any:
        """Run until *completion* fires; returns its value."""
        heap = self._heap
        count = 0
        while not completion._done:
            while True:
                if not heap:
                    raise RuntimeError(
                        "event heap drained before completion fired"
                    )
                when, _seq, handle = heappop(heap)
                if not handle.cancelled:
                    break
            self.now = when
            self._executed += 1
            handle.fn(*handle.args)
            count += 1
            if max_events is not None and count >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; likely livelock"
                )
        return completion.value
