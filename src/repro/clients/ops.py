"""Metadata operation types exchanged between clients and MDS ranks."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional


class OpKind(str, Enum):
    """The namespace operations the simulated clients issue."""

    CREATE = "create"
    MKDIR = "mkdir"
    STAT = "stat"
    LOOKUP = "lookup"
    OPEN = "open"
    READDIR = "readdir"
    UNLINK = "unlink"
    RENAME = "rename"

    @property
    def is_write(self) -> bool:
        return IS_WRITE[self]

    @property
    def counter_kind(self) -> str:
        """Which decayed counter this op bumps (paper Table 2 metrics)."""
        return COUNTER_KIND[self]


#: Precomputed per-kind lookups; hot paths index these directly instead of
#: going through the property descriptors.
IS_WRITE = {
    kind: kind in (OpKind.CREATE, OpKind.MKDIR, OpKind.UNLINK, OpKind.RENAME)
    for kind in OpKind
}
COUNTER_KIND = {
    kind: ("IWR" if IS_WRITE[kind]
           else "READDIR" if kind is OpKind.READDIR else "IRD")
    for kind in OpKind
}


_REQ_IDS = itertools.count(1)


@dataclass(slots=True)
class MetaRequest:
    """One client metadata request as it travels through the cluster."""

    kind: OpKind
    path: str
    client_id: int
    req_id: int = field(default_factory=lambda: next(_REQ_IDS))
    #: Ranks that already handled (and forwarded) this request.
    hops: list[int] = field(default_factory=list)
    issued_at: float = 0.0
    payload: dict[str, Any] = field(default_factory=dict)

    @property
    def forwards(self) -> int:
        return max(0, len(self.hops) - 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetaRequest({self.kind.value}, {self.path!r}, "
                f"client={self.client_id}, hops={self.hops})")


@dataclass(slots=True)
class MetaReply:
    """Reply delivered back to the client.

    Real CephFS replies carry the directory's fragtree and the MDS map so
    clients can route follow-up requests directly; ``dir_path``/``frag_map``
    model that (``frag_map`` is a tuple of ``(bits, value, rank)``).
    """

    req_id: int
    kind: OpKind
    path: str
    served_by: int
    forwards: int
    latency: float
    result: Optional[Any] = None
    error: Optional[str] = None
    #: Destination path echoed back for renames (trace replay needs it).
    dst: Optional[str] = None
    dir_path: Optional[str] = None
    frag_map: Optional[tuple[tuple[int, int, int], ...]] = None

    @property
    def ok(self) -> bool:
        return self.error is None
