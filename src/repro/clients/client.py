"""Simulated CephFS clients.

Clients are closed-loop with a small pipeline of outstanding requests
(Ceph clients issue asynchronous dirops).  Each client keeps its own
mapping of directories to MDS ranks, learned lazily from replies -- so
after a migration the first requests land on the wrong rank and get
forwarded, exactly the staleness the paper describes for client-side
subtree maps (§2, "the client builds up its own mapping of subtrees to MDS
nodes").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..metrics.collectors import ClusterMetrics
from ..namespace.dirfrag import name_hash
from ..namespace.tree import dirname_of, split_path
from ..sim.engine import SimEngine
from ..sim.network import Network
from .ops import MetaReply, MetaRequest, OpKind

if TYPE_CHECKING:  # pragma: no cover
    from ..mds.server import MdsServer

#: A workload hands each client an iterator of these.
WorkloadOp = tuple[OpKind, str]


class Client:
    """One client mount: an op stream, a subtree map, pipeline workers."""

    def __init__(self, engine: SimEngine, client_id: int,
                 network: Network, mdss: list["MdsServer"],
                 metrics: ClusterMetrics,
                 ops: Iterator[WorkloadOp],
                 pipeline: int = 2,
                 think_time: float = 0.0,
                 start_delay: float = 0.0,
                 cap_switch_time: float = 0.0) -> None:
        self.engine = engine
        self.client_id = client_id
        self.network = network
        self.mdss = mdss
        self.metrics = metrics
        self.ops = iter(ops)
        self.pipeline = max(1, pipeline)
        self.think_time = think_time
        self.start_delay = start_delay
        #: directory path -> believed MDS rank (subtree map).
        self.mds_map: dict[str, int] = {}
        self.cap_switch_time = cap_switch_time
        self._last_rank: int | None = None
        self.cap_switches = 0
        #: directory path -> fragtree, ((bits, value, rank), ...).  Real
        #: CephFS replies carry the fragtree so clients route directly to
        #: the rank holding the right dirfrag; this goes stale after a
        #: migration until the next reply refreshes it.
        self.frag_maps: dict[str, tuple[tuple[int, int, int], ...]] = {}
        self.ops_completed = 0
        self.errors = 0
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._workers_left = 0
        self._exhausted = False
        self.done = engine.completion()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self.engine.schedule(self.start_delay, self._launch)

    def _launch(self) -> None:
        self.started_at = self.engine.now
        self._workers_left = self.pipeline
        for worker in range(self.pipeline):
            self.engine.process(
                self._worker(), name=f"client{self.client_id}.w{worker}"
            )

    def _worker(self):
        while True:
            try:
                op = next(self.ops)
            except StopIteration:
                break
            kind, path = op[0], op[1]
            dst = op[2] if len(op) > 2 else None
            issued_at, completion = self._issue(kind, path, dst=dst)
            reply = yield completion
            # Same simulated instant as the reply delivery (the worker
            # resumes via a zero-delay event), so the measured latency is
            # unchanged by recording it here instead of in a callback.
            self.metrics.latencies.record(self.client_id,
                                          self.engine.now - issued_at)
            self.ops_completed += 1
            if reply.error is not None:
                self.errors += 1
            self._learn(path, reply)
            if self.think_time > 0:
                yield self.think_time
        self._workers_left -= 1
        if self._workers_left == 0:
            self._finish()

    def _finish(self) -> None:
        self.finished_at = self.engine.now
        self.metrics.client_finish_times[self.client_id] = self.engine.now
        self.metrics.client_op_counts[self.client_id] = self.ops_completed
        if not self.done.done:
            self.done.succeed(self.client_id)

    # -- request issue ------------------------------------------------------
    def _issue(self, kind: OpKind, path: str, dst: str | None = None):
        """Send one request; returns ``(issued_at, completion)``.

        The completion fires with the :class:`MetaReply`; the worker that
        yields on it records the latency itself, so no wrapper completion
        or callback is allocated per op.
        """
        issued_at = self.engine.now
        req = MetaRequest(kind=kind, path=path, client_id=self.client_id,
                          issued_at=issued_at)
        if dst is not None:
            req.payload["dst"] = dst
        completion = self.engine.completion()
        rank = self._guess(path, kind)
        # _cap_switch_delay's common case (feature off / same rank) inlined;
        # the method re-does the _last_rank swap, so undo it before calling.
        previous = self._last_rank
        self._last_rank = rank
        if (self.cap_switch_time <= 0 or previous is None
                or previous == rank):
            delay = 0.0
        else:
            self._last_rank = previous
            delay = self._cap_switch_delay(path, kind, rank)
        if delay > 0:
            self.engine.schedule(
                delay, self.network.deliver,
                self.mdss[rank].receive_request, req, completion,
            )
        else:
            self.network.deliver(self.mdss[rank].receive_request, req,
                                 completion)
        return issued_at, completion

    def _cap_switch_delay(self, path: str, kind: OpKind, rank: int) -> float:
        """Cap revalidation when consecutive requests alternate ranks.

        Exclusive capabilities on *unshared* directories must be handed
        over when the client's traffic jumps to another rank; shared
        (dirfrag-spread) directories already run with degraded caps, so
        crossing costs nothing there.
        """
        previous, self._last_rank = self._last_rank, rank
        if (self.cap_switch_time <= 0 or previous is None
                or previous == rank):
            return 0.0
        frag_map = self.frag_maps.get(self._dir_of(path, kind))
        if frag_map and len({r for _b, _v, r in frag_map}) > 1:
            return 0.0  # shared directory: caps already degraded
        self.cap_switches += 1
        return self.cap_switch_time

    # -- the client-side subtree map ----------------------------------------
    def _dir_of(self, path: str, kind: OpKind) -> str:
        if kind is OpKind.READDIR:
            return path.rstrip("/") or "/"
        return dirname_of(path)

    def _guess(self, path: str, kind: OpKind) -> int:
        """Route via the cached fragtree if known, else the most specific
        subtree mapping along the path, else rank 0."""
        if kind is OpKind.READDIR:
            directory = path.rstrip("/") or "/"
        else:
            directory = dirname_of(path)
        if kind is not OpKind.READDIR:
            frag_map = self.frag_maps.get(directory)
            if frag_map:
                parts = split_path(path)
                leaf = parts[-1] if parts else ""
                hashed = name_hash(leaf)
                for bits, value, rank in frag_map:
                    if (hashed & ((1 << bits) - 1)) == value:
                        return rank
        parts = split_path(directory)
        for depth in range(len(parts), -1, -1):
            prefix = "/" + "/".join(parts[:depth]) if depth else "/"
            rank = self.mds_map.get(prefix)
            if rank is not None:
                return rank
        return 0

    def _learn(self, path: str, reply: MetaReply) -> None:
        if reply.kind is OpKind.READDIR:
            directory = path.rstrip("/") or "/"
        else:
            directory = dirname_of(path)
        self.mds_map[directory] = reply.served_by
        if reply.dir_path is not None and reply.frag_map is not None:
            self.frag_maps[reply.dir_path] = reply.frag_map


def build_clients(engine: SimEngine, network: Network,
                  mdss: list["MdsServer"], metrics: ClusterMetrics,
                  op_streams: dict[int, Iterator[WorkloadOp]],
                  pipeline: int = 2, think_time: float = 0.0,
                  stagger: float = 0.0,
                  cap_switch_time: float = 0.0) -> list[Client]:
    """Create one client per op stream, optionally staggering their starts."""
    clients = []
    for index, (client_id, ops) in enumerate(sorted(op_streams.items())):
        clients.append(
            Client(engine, client_id, network, mdss, metrics, ops,
                   pipeline=pipeline, think_time=think_time,
                   start_delay=stagger * index,
                   cap_switch_time=cap_switch_time)
        )
    return clients
