"""Simulated clients and the metadata operations they issue."""

from .client import Client, WorkloadOp, build_clients
from .ops import MetaReply, MetaRequest, OpKind

__all__ = [
    "Client",
    "MetaReply",
    "MetaRequest",
    "OpKind",
    "WorkloadOp",
    "build_clients",
]
