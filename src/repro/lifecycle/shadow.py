"""Shadow evaluation: dry-run a candidate policy against live bindings.

Pre-injection validation (:mod:`repro.core.validator`) answers "does this
policy parse and stay inside its budget?".  The shadow evaluator answers
the operational question: *what would it have done, tick by tick, on the
live cluster?*  On every balancing tick the live balancer stashes the
exact inputs it decided on -- the per-rank metric dicts and the counter
snapshots -- and the shadow re-runs the candidate's ``mdsload`` and
``when``/``where`` hooks over copies of them, recording whether the
candidate would have migrated and where.  Nothing it computes ever touches
the cluster.

Passivity is load-bearing: counter snapshots decay counters *in place*, so
the shadow never takes its own snapshots (a shadowed run would then decay
differently from an unshadowed one and the reports would diverge).  It
reuses the live tick's dicts read-only and keeps a private
:class:`BalancerState` so candidate ``WRstate`` writes stay invisible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.api import MantlePolicy
from ..core.environment import build_decision_bindings, extract_targets
from ..core.state import BalancerState
from ..luapolicy.errors import LuaError


@dataclass(frozen=True)
class ShadowTick:
    """Divergence record of one balancing tick."""

    time: float
    rank: int
    live_went: bool
    shadow_went: bool = False
    live_targets: dict[int, float] = field(default_factory=dict)
    shadow_targets: dict[int, float] = field(default_factory=dict)
    #: Per-rank target deltas (shadow minus live), only for ranks where
    #: the two disagree.
    target_deltas: dict[int, float] = field(default_factory=dict)
    diverged: bool = False
    error: Optional[str] = None
    skipped: Optional[str] = None


class ShadowEvaluator:
    """Runs a candidate policy's hooks beside the live one, never applying
    its decisions."""

    def __init__(self, policy: MantlePolicy) -> None:
        policy.compile_all()
        self.policy = policy
        self.state = BalancerState()
        self.metaload_fn = policy.metaload_fn()
        self.mdsload_fn = policy.mdsload_fn()
        self.log: list[ShadowTick] = []
        self.errors = 0
        self.divergences = 0

    def observe(self, now: float, rank: int, live_decision,
                inputs) -> ShadowTick:
        """Evaluate the candidate on one tick's exact binding inputs.

        *inputs* is ``(mds_metrics, local_counters, auth_counters,
        all_counters)`` stashed by the live balancer, or ``None`` when the
        live tick never built bindings (skipped, or errored while scoring)
        -- the shadow then skips too, for the same reason.
        """
        if inputs is None:
            tick = ShadowTick(
                time=now, rank=rank, live_went=live_decision.went,
                skipped=live_decision.skipped or "live tick errored",
            )
            self.log.append(tick)
            return tick
        mds_metrics, local_counters, auth_counters, all_counters = inputs
        # Copies: the candidate's mdsload must not clobber the live
        # "load" values other components may still read.
        metrics = [dict(m) for m in mds_metrics]
        try:
            for i, entry in enumerate(metrics):
                if entry.get("alive"):
                    entry["load"] = self.mdsload_fn(metrics, i)
                else:
                    entry["load"] = 0.0
            wrstate, rdstate = self.state.bound_functions(rank)
            bindings = build_decision_bindings(
                whoami=rank,
                mds_metrics=metrics,
                local_counters=local_counters,
                auth_metaload=self.metaload_fn(auth_counters),
                all_metaload=self.metaload_fn(all_counters),
                wrstate=wrstate,
                rdstate=rdstate,
            )
            result = self.policy.decision_chunk().run(bindings)
        except LuaError as exc:
            self.errors += 1
            tick = ShadowTick(
                time=now, rank=rank, live_went=live_decision.went,
                live_targets=dict(live_decision.targets),
                diverged=live_decision.went, error=str(exc),
            )
            if tick.diverged:
                self.divergences += 1
            self.log.append(tick)
            return tick
        go = result.global_value("go")
        targets: dict[int, float] = {}
        if go is not None and go is not False:
            raw_targets = result.python_value("targets")
            targets = extract_targets(raw_targets, len(metrics))
            targets.pop(rank, None)
            # Mirror the live filter: never target a dead rank.
            targets = {r: load for r, load in targets.items()
                       if metrics[r].get("alive")}
        went = bool(targets)
        live_targets = dict(live_decision.targets)
        deltas = {
            r: targets.get(r, 0.0) - live_targets.get(r, 0.0)
            for r in sorted(set(targets) | set(live_targets))
            if targets.get(r, 0.0) != live_targets.get(r, 0.0)
        }
        diverged = went != live_decision.went or bool(deltas)
        if diverged:
            self.divergences += 1
        tick = ShadowTick(
            time=now, rank=rank, live_went=live_decision.went,
            shadow_went=went, live_targets=live_targets,
            shadow_targets=targets, target_deltas=deltas,
            diverged=diverged,
        )
        self.log.append(tick)
        return tick

    # -- reporting ------------------------------------------------------
    def summary(self) -> dict:
        evaluated = [t for t in self.log if t.skipped is None]
        return {
            "policy": self.policy.name,
            "ticks": len(self.log),
            "evaluated": len(evaluated),
            "would_migrate": sum(1 for t in evaluated if t.shadow_went),
            "live_migrated": sum(1 for t in evaluated if t.live_went),
            "divergences": self.divergences,
            "errors": self.errors,
        }
