"""Online stability guard: live ping-pong damping.

:mod:`repro.core.inspector` detects thrash *post hoc* -- a unit that moved
A->B->A shows up in the finished report.  The paper's Greedy Spill scenario
(§6, Fig 10 bottom) shows why that is not enough: a policy that keeps
bouncing the same subtree between two ranks melts the cluster long before
anyone reads a report.  The :class:`StabilityGuard` lifts the same
detection into the live path: it remembers every export decision inside a
sliding window and vetoes a re-export whose reversal count inside that
window reaches the configured bounce budget.

Determinism: the guard consults only the decision log it was fed (unit
path, source, target, decision time) -- all pure simulator state -- so
guarded runs stay bit-identical across serial, ``--jobs N`` and warm-start
execution.
"""

from __future__ import annotations

from typing import Callable, Optional


class StabilityGuard:
    """Veto re-exports of units that keep bouncing between ranks.

    One guard serves the whole cluster (every balancer consults the same
    move history -- a bounce is a cluster-wide property, not a per-rank
    one).  ``events`` is an optional ``(time, kind, rank, detail)`` sink,
    normally :meth:`ClusterMetrics.record_lifecycle`.
    """

    def __init__(self, window: float = 60.0, max_bounces: int = 2,
                 events: Optional[Callable[[float, str, int, str], None]]
                 = None) -> None:
        if window <= 0:
            raise ValueError("guard window must be positive")
        if max_bounces < 1:
            raise ValueError("max_bounces must be >= 1")
        self.window = window
        self.max_bounces = max_bounces
        self.events = events
        #: path -> [(time, source, target), ...] inside the window.
        self._moves: dict[str, list[tuple[float, int, int]]] = {}
        self.vetoes = 0
        #: Vetoes since the given cursor (for canary health windows).
        self._veto_log: list[tuple[float, str, int, int]] = []

    # -- the live-path check -------------------------------------------
    def allow(self, path: str, source: int, target: int,
              now: float) -> bool:
        """May *source* export the unit at *path* to *target* right now?

        Returns False (and records a veto) when the proposed move is a
        reversal and the unit's reversal count inside the window --
        counting the proposed move itself -- reaches ``max_bounces``.
        """
        history = self._pruned(path, now)
        if not history:
            return True
        last_src, last_dst = history[-1][1], history[-1][2]
        if (source, target) != (last_dst, last_src):
            return True  # not a reversal of the unit's last move
        bounces = 1  # the proposed reversal
        for earlier, later in zip(history, history[1:]):
            if (later[1], later[2]) == (earlier[2], earlier[1]):
                bounces += 1
        if bounces < self.max_bounces:
            return True
        self.vetoes += 1
        self._veto_log.append((now, path, source, target))
        if self.events is not None:
            self.events(now, "guard-veto", source,
                        f"{path}: mds{source}->mds{target} bounce "
                        f"{bounces} within {self.window:g}s")
        return False

    def record(self, path: str, source: int, target: int,
               now: float) -> None:
        """Log an export the balancer actually decided."""
        self._pruned(path, now).append((now, source, target))

    def _pruned(self, path: str, now: float) -> list[tuple[float, int, int]]:
        history = self._moves.setdefault(path, [])
        floor = now - self.window
        if history and history[0][0] < floor:
            self._moves[path] = history = [move for move in history
                                           if move[0] >= floor]
        return history

    # -- health-window views -------------------------------------------
    def vetoes_since(self, t0: float) -> int:
        return sum(1 for time, _path, _s, _t in self._veto_log
                   if time >= t0)
