"""Safe policy lifecycle: versioned store, shadow, canary, stability guard.

The paper injects balancers into a *running* cluster and stores versions
in RADOS (§4.4); this package manages what happens after injection:

* :class:`PolicyStore` -- append-only, RADOS-mirrored version log; every
  injection is a recorded transition and rollback re-commits a prior
  version;
* :class:`ShadowEvaluator` -- dry-runs a candidate policy against the live
  balancer's exact tick bindings, recording divergence without ever
  touching the cluster;
* :class:`CanaryController` -- stages a candidate on one rank, watches a
  health window, then promotes it everywhere or rolls back automatically;
* :class:`StabilityGuard` -- vetoes live re-exports of subtrees that keep
  bouncing between ranks (online ping-pong damping).

Everything here derives from simulator state only, keeping runs
bit-identical across serial, ``--jobs N`` and warm-start execution.
"""

from .canary import CanaryController
from .guard import StabilityGuard
from .shadow import ShadowEvaluator, ShadowTick
from .store import PolicyStore, PolicyVersion

__all__ = [
    "CanaryController",
    "PolicyStore",
    "PolicyVersion",
    "ShadowEvaluator",
    "ShadowTick",
    "StabilityGuard",
]
