"""Canary rollout: stage a policy on one rank, promote or roll back.

The paper's injection path (``ceph tell mds.* ...``) swaps the balancer on
every rank at once; a bad policy therefore melts the whole cluster (the
Greedy Spill scenario).  The canary controller stages the rollout instead:

1. at ``at`` seconds the candidate policy replaces the live one on a
   single *canary rank* (the rest of the cluster keeps the live policy);
2. for ``window`` seconds the controller watches deterministic health
   signals -- Lua error count, breaker state, migration count, ping-pong
   moves, guard vetoes, and p99 request latency against the pre-rollout
   baseline;
3. on a healthy window the candidate is promoted to every rank; on a
   violation the canary rank reverts to the live policy and the version
   store rolls back to the pre-canary head.

The controller is driven from the canary rank's own heartbeat ticks (no
private timers), and every signal it reads is simulator state, so runs
stay bit-identical across serial, ``--jobs N`` and warm-start execution.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

import numpy as np

from ..core.api import MantlePolicy
from ..core.balancer import MantleBalancer


class CanaryController:
    """Stages one candidate policy through canary -> promote/rollback."""

    def __init__(self, cluster, candidate: MantlePolicy,
                 rank: Optional[int] = None,
                 at: float = 30.0, window: float = 20.0,
                 max_errors: int = 0,
                 max_migrations: Optional[int] = None,
                 max_ping_pongs: int = 0,
                 latency_factor: float = 2.0) -> None:
        if cluster.balancer is None:
            raise RuntimeError("inject a live policy before arming a canary")
        if window <= 0:
            raise ValueError("canary window must be positive")
        candidate.compile_all()
        self.cluster = cluster
        self.candidate = candidate
        #: Default canary: the highest rank (root subtrees live on rank 0,
        #: so the blast radius of a bad candidate is smallest there).
        self.rank = (len(cluster.mdss) - 1) if rank is None else rank
        if not 0 <= self.rank < len(cluster.mdss):
            raise ValueError(f"no such rank {self.rank}")
        self.at = at
        self.window = window
        self.max_errors = max_errors
        self.max_migrations = max_migrations
        self.max_ping_pongs = max_ping_pongs
        self.latency_factor = latency_factor
        self.primary = cluster.balancer
        #: The candidate runs in its own balancer with its own state (its
        #: WRstate writes must not leak into the live policy's), but it
        #: shares the cluster guard and event sink.
        self.balancer = MantleBalancer(
            candidate,
            error_threshold=cluster.config.policy_error_threshold,
            guard=cluster.guard,
            events=cluster.metrics.record_lifecycle,
        )
        #: armed -> watching -> promoted | rolled-back.
        self.phase = "armed"
        self.started_at: Optional[float] = None
        self.violations: list[str] = []
        self._latency_marks: Optional[dict[int, int]] = None
        self._baseline_p99 = 0.0
        head = cluster.policy_store.head
        self.baseline_version = head.version if head is not None else None
        # Record the candidate in the version store up front (the paper
        # stores the balancer version in RADOS before injection).  Time 0.0:
        # arming is pre-run bookkeeping -- see repro.lifecycle.store.
        self.candidate_version = cluster.policy_store.commit(
            candidate, 0.0, note=f"canary candidate for mds{self.rank}"
        ).version

    # -- heartbeat-driven state machine ---------------------------------
    def on_heartbeat(self, mds, now: float) -> None:
        """Called by the canary rank's MdsServer on each heartbeat tick."""
        if mds.rank != self.rank:
            return
        if self.phase == "armed" and now >= self.at:
            self._start(mds, now)
        elif (self.phase == "watching"
                and now >= self.started_at + self.window):
            self._evaluate(mds, now)

    def _start(self, mds, now: float) -> None:
        self.phase = "watching"
        self.started_at = now
        latencies = self.cluster.metrics.latencies
        self._latency_marks = latencies.marks()
        self._baseline_p99 = latencies.percentile(99.0)
        mds.balancer = self.balancer
        self.cluster.metrics.record_lifecycle(
            now, "canary-start", self.rank,
            f"policy '{self.candidate.name}' "
            f"(v{self.candidate_version}) on mds{self.rank}, "
            f"window {self.window:g}s",
        )

    def _evaluate(self, mds, now: float) -> None:
        self.violations = self.health_violations()
        if self.violations:
            self._rollback(mds, now)
        else:
            self._promote(now)

    # -- health signals (all pure simulator state) ----------------------
    def health_violations(self) -> list[str]:
        reasons: list[str] = []
        balancer = self.balancer
        if balancer.errors > self.max_errors:
            reasons.append(
                f"lua errors {balancer.errors} > {self.max_errors}"
            )
        if balancer.tripped:
            reasons.append("circuit breaker tripped")
        migrations = balancer.migrations_decided()
        if (self.max_migrations is not None
                and migrations > self.max_migrations):
            reasons.append(
                f"migrations {migrations} > {self.max_migrations}"
            )
        ping_pongs = self._ping_pong_moves()
        if ping_pongs > self.max_ping_pongs:
            reasons.append(
                f"ping-pong moves {ping_pongs} > {self.max_ping_pongs}"
            )
        vetoes = sum(len(d.vetoes) for d in balancer.decisions)
        if vetoes > 0:
            reasons.append(f"{vetoes} stability-guard vetoes")
        if self._baseline_p99 > 0 and self._latency_marks is not None:
            window_lat = self.cluster.metrics.latencies.since(
                self._latency_marks
            )
            if window_lat.size:
                p99 = float(np.percentile(window_lat, 99.0))
                ceiling = self.latency_factor * self._baseline_p99
                if p99 > ceiling:
                    reasons.append(
                        f"p99 latency {p99 * 1e3:.1f}ms > "
                        f"{self.latency_factor:g}x baseline "
                        f"{self._baseline_p99 * 1e3:.1f}ms"
                    )
        return reasons

    def _ping_pong_moves(self) -> int:
        """Re-exports of the same path by the candidate inside the window
        (the unit came back and was shipped out again)."""
        counts = Counter(
            path
            for decision in self.balancer.decisions
            for (path, _load, _target) in decision.exports
        )
        return sum(count - 1 for count in counts.values() if count > 1)

    # -- outcomes -------------------------------------------------------
    def _promote(self, now: float) -> None:
        self.phase = "promoted"
        for mds in self.cluster.mdss:
            mds.balancer = self.balancer
        self.cluster.balancer = self.balancer
        self.cluster.metrics.record_lifecycle(
            now, "canary-promote", -1,
            f"policy '{self.candidate.name}' "
            f"(v{self.candidate_version}) promoted to all ranks",
        )

    def _rollback(self, mds, now: float) -> None:
        self.phase = "rolled-back"
        mds.balancer = self.primary
        detail = "; ".join(self.violations)
        if self.baseline_version is not None:
            restored = self.cluster.policy_store.rollback(
                self.baseline_version, now,
                note=f"canary failed: {detail}",
            )
            detail += (f"; store rolled back to v{self.baseline_version}"
                       f" (as v{restored.version})")
        self.cluster.metrics.record_lifecycle(
            now, "canary-rollback", self.rank,
            f"policy '{self.candidate.name}' rolled back: {detail}",
        )
