"""Versioned policy store backed by simulated RADOS objects.

The paper (§4.4) keeps balancer versions in RADOS so that operators can
inject a new policy and fall back to a known-good one.  This store records
every ``SimulatedCluster.set_policy`` as an append-only version log:

* ``mantle.balancer.v<N>`` -- the serialised policy source (the sectioned
  ``-- @name/...`` format from :mod:`repro.core.policyfile`);
* ``mantle.balancer.index`` -- head pointer plus the version log metadata.

A *rollback* never rewrites history: it commits the old version's source
again as a new head, exactly like re-injecting the old balancer.

Determinism note: commits write the RADOS payload dict directly and never
schedule simulated I/O.  Warm-started runs replay ``set_policy`` at the
fork barrier rather than at t=0, so a timed write here would shift the
event sequence and break bit-identity; callers therefore also pass an
explicit *now* (0.0 for pre-run injection) instead of reading the engine
clock.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Optional

from ..core.api import MantlePolicy
from ..core.policyfile import dump_policy, parse_policy_source

#: RADOS object names (mirroring the paper's "store in RADOS" design).
VERSION_OBJ = "mantle.balancer.v{version}"
INDEX_OBJ = "mantle.balancer.index"


@dataclass(frozen=True)
class PolicyVersion:
    """One entry of the append-only version log."""

    version: int
    name: str
    source: str
    time: float
    note: str = ""
    #: Static-analysis summary at commit time ("lint:clean", "lint:2E,1W",
    #: or "" for commits that bypassed/preceded the linter).
    lint: str = ""


class PolicyStore:
    """Append-only, RADOS-mirrored log of injected balancer versions."""

    def __init__(self, rados=None) -> None:
        self.rados = rados
        self._versions: list[PolicyVersion] = []

    # -- log access -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._versions)

    @property
    def head(self) -> Optional[PolicyVersion]:
        return self._versions[-1] if self._versions else None

    def get(self, version: int) -> PolicyVersion:
        for record in self._versions:
            if record.version == version:
                return record
        raise KeyError(f"no policy version {version}")

    def log(self) -> tuple[PolicyVersion, ...]:
        return tuple(self._versions)

    def policy_at(self, version: int) -> MantlePolicy:
        """Re-materialise the policy stored as *version*."""
        record = self.get(version)
        return parse_policy_source(record.source, name=record.name)

    # -- mutation -------------------------------------------------------
    def commit(self, policy: MantlePolicy, now: float,
               note: str = "", lint: str = "") -> PolicyVersion:
        """Record *policy* as the new head version."""
        record = PolicyVersion(
            version=len(self._versions) + 1,
            name=policy.name,
            source=dump_policy(policy),
            time=now,
            note=note,
            lint=lint,
        )
        self._versions.append(record)
        self._mirror(record)
        return record

    def rollback(self, to_version: int, now: float,
                 note: str = "") -> PolicyVersion:
        """Commit *to_version*'s source again as the new head."""
        old = self.get(to_version)
        policy = parse_policy_source(old.source, name=old.name)
        return self.commit(
            policy, now, note=note or f"rollback to v{to_version}"
        )

    def _mirror(self, record: PolicyVersion) -> None:
        # Direct payload writes: versioning is bookkeeping, not simulated
        # I/O (see module docstring).
        if self.rados is None:
            return
        self.rados.payloads[
            VERSION_OBJ.format(version=record.version)
        ] = record.source
        self.rados.payloads[INDEX_OBJ] = {
            "head": record.version,
            "log": [
                {"version": r.version, "name": r.name,
                 "time": r.time, "note": r.note, "lint": r.lint}
                for r in self._versions
            ],
        }

    # -- (de)serialisation for the CLI `store` subcommand ---------------
    def to_json(self) -> str:
        return json.dumps(
            {"versions": [asdict(r) for r in self._versions]},
            indent=2, sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "PolicyStore":
        data = json.loads(text)
        store = cls()
        for raw in data.get("versions", []):
            store._versions.append(PolicyVersion(**raw))
        return store
