"""repro: a full Python reproduction of *Mantle: A Programmable Metadata
Load Balancer for the Ceph File System* (Sevilla et al., SC '15).

The package provides:

* :mod:`repro.core` -- Mantle itself: the policy API, the Table-2
  environment, the balancer driver, dirfrag selectors, the stock policies
  of Table 1 and Listings 1-4, and the pre-injection validator;
* :mod:`repro.luapolicy` -- a sandboxed Lua-subset interpreter so policies
  are injected as source, as in the paper;
* the CephFS substrate it balances: :mod:`repro.namespace`,
  :mod:`repro.mds`, :mod:`repro.rados`, :mod:`repro.clients`,
  :mod:`repro.sim`;
* :mod:`repro.workloads` and :mod:`repro.cluster` to run the paper's
  experiments end to end.

Quick start::

    from repro import ClusterConfig, SimulatedCluster
    from repro.core.policies import greedy_spill_policy
    from repro.workloads import CreateWorkload

    config = ClusterConfig(num_mds=2, num_clients=4, dir_split_size=2000)
    cluster = SimulatedCluster(config, policy=greedy_spill_policy())
    report = cluster.run_workload(
        CreateWorkload(num_clients=4, files_per_client=5000,
                       shared_dir=True))
    print(report.summary_line())
"""

from .cluster import SimReport, SimulatedCluster, run_experiment, run_seeds
from .config import ClusterConfig, ServiceTimes
from .core import MantleBalancer, MantlePolicy, validate_policy

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "MantleBalancer",
    "MantlePolicy",
    "ServiceTimes",
    "SimReport",
    "SimulatedCluster",
    "run_experiment",
    "run_seeds",
    "validate_policy",
    "__version__",
]
