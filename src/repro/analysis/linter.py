"""The mantle-lint driver: run every analysis pass over a policy.

:func:`lint_policy` is the single entry point used by the CLI
(``mantle-sim lint``), the validator, and the ``set_policy`` injection
gate.  It parses each hook exactly the way the runtime does (load hooks
expression-first, falling back to a statement chunk; when/where as the
combined decision chunk of :meth:`MantlePolicy.decision_source`) and runs
four passes:

1. CFG + reaching-definitions / liveness  (M101-M106),
2. abstract interpretation of the hook contracts (M107, M201-M205),
3. loop-bound / instruction-cost analysis (M301-M303),
4. determinism / purity against the live sandbox whitelist (M401-M402).

Findings come back as a :class:`LintReport` of structured
:class:`Diagnostic` records with positions inside the offending hook's
source text.
"""

from __future__ import annotations

from typing import Optional

from ..core.environment import (
    DECISION_BINDINGS,
    METALOAD_BINDINGS,
    MDSLOAD_BINDINGS,
)
from ..luapolicy import lua_ast as ast
from ..luapolicy.errors import LuaSyntaxError
from ..luapolicy.parser import parse_chunk, parse_expression
from .absint import AbstractInterp
from .cfg import build_cfg, build_decision_cfg
from .defuse import check_defuse
from .diagnostics import Diagnostic, LintReport, finalize
from .loops import check_loops
from .purity import check_purity

#: Mirrors ``VALIDATION_BUDGET`` in :mod:`repro.core.validator`; imported
#: lazily there to keep this package free of circular imports.
_DEFAULT_BUDGET = 200_000

#: Dry-run cluster size -- the same default the §4.4 validator uses, so
#: ``targets`` range proofs match what the dry run would observe.
DEFAULT_LINT_RANKS = 4


def _parse_load_hook(source: str, hook: str,
                     diagnostics: list[Diagnostic]
                     ) -> Optional[ast.Block]:
    """Parse a load formula the way ``compile_load_expression`` does."""
    text = source.strip()
    try:
        expr = parse_expression(text)
        return ast.Block((ast.Return(getattr(expr, "line", 1), (expr,)),))
    except LuaSyntaxError:
        pass
    try:
        return parse_chunk(text)
    except LuaSyntaxError as exc:
        diagnostics.append(Diagnostic(
            "M001", hook, _strip_position(str(exc)),
            exc.line, exc.column))
        return None


def _parse_chunk_hook(source: str, hook: str,
                      diagnostics: list[Diagnostic]
                      ) -> Optional[ast.Block]:
    try:
        return parse_chunk(source)
    except LuaSyntaxError as exc:
        diagnostics.append(Diagnostic(
            "M001", hook, _strip_position(str(exc)),
            exc.line, exc.column))
        return None


def _strip_position(message: str) -> str:
    """Drop the trailing ``(line L, column C)`` -- Diagnostic carries it."""
    if message.endswith(")") and " (line " in message:
        return message[:message.rindex(" (line ")]
    return message


def _lint_load_hook(source: str, hook: str, output_global: str,
                    env_names: frozenset[str], num_ranks: int,
                    budget: int,
                    diagnostics: list[Diagnostic]) -> None:
    block = _parse_load_hook(source, hook, diagnostics)
    if block is None:
        return
    cfg = build_cfg(block, hook)
    check_defuse(cfg, env_names, frozenset({output_global}), diagnostics)
    interp = AbstractInterp(num_ranks, diagnostics)
    if hook == "metaload":
        interp.seed_metaload_env()
    else:
        interp.seed_mdsload_env()
    interp.run_block(block, hook)
    interp.check_load_result(hook, output_global)
    check_loops(block, hook, diagnostics, budget)
    check_purity(block, hook, env_names, diagnostics)


def _lint_decision(when: str, where: str, num_ranks: int, budget: int,
                   diagnostics: list[Diagnostic]) -> None:
    when_block = _parse_chunk_hook(when, "when", diagnostics)
    where_block = _parse_chunk_hook(where, "where", diagnostics)
    if when_block is None or where_block is None:
        return
    cfg = build_decision_cfg(when_block, where_block)
    check_defuse(cfg, DECISION_BINDINGS, frozenset({"go"}), diagnostics)

    interp = AbstractInterp(num_ranks, diagnostics)
    interp.seed_decision_env()
    interp.run_block(when_block, "when")
    interp.check_go()
    interp.run_block(where_block, "where")
    interp.check_targets()

    check_loops(when_block, "when", diagnostics, budget)
    check_loops(where_block, "where", diagnostics, budget)
    check_purity(when_block, "when", DECISION_BINDINGS, diagnostics)
    check_purity(where_block, "where", DECISION_BINDINGS, diagnostics)


def lint_policy(policy, num_ranks: int = DEFAULT_LINT_RANKS,
                budget: int = _DEFAULT_BUDGET) -> LintReport:
    """Statically analyze a :class:`MantlePolicy`.

    *num_ranks* is the cluster size used for range proofs (``targets``
    indices, ``#MDSs``); it defaults to the validator's dry-run size so
    "provably out of range" means "the dry run would drop it".
    """
    diagnostics: list[Diagnostic] = []
    _lint_load_hook(policy.metaload, "metaload", "metaload",
                    METALOAD_BINDINGS, num_ranks, budget, diagnostics)
    _lint_load_hook(policy.mdsload, "mdsload", "mdsload",
                    MDSLOAD_BINDINGS, num_ranks, budget, diagnostics)
    _lint_decision(policy.when, policy.where, num_ranks, budget,
                   diagnostics)
    return finalize(policy.name, diagnostics)
