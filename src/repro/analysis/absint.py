"""Abstract interpretation of policy hooks over types + intervals.

The analyzer executes a hook chunk structurally with abstract values: a
set of possible Lua types, a numeric interval, and -- when the value is an
exact linear combination of the Mantle load symbols (``myload`` for
``MDSs[whoami]["load"]``, ``total``, ``allmetaload``, ``authmetaload``) --
its linear form.  Loops are iterated twice and widened, so the pass always
terminates.

This is what proves the hook contracts:

* M201 hook-return-type -- ``metaload``/``mdsload`` must produce a number;
* M202 go-not-boolean   -- ``when`` should leave ``go`` boolean-ish
  (``go = 1`` is flagged: the driver treats any non-nil as "migrate");
* M203 go-never-set     -- ``when`` never assigns ``go`` at all;
* M204 targets-index-range -- a ``targets[i]`` write provably outside
  ``1..#MDSs`` (checked at the dry-run cluster size, like the validator);
* M205 load-conservation -- the provable sum of ``targets`` writes
  exceeds ``MDSs[whoami]["load"]``, the classic ping-pong source;
* M107 unknown-metric-key -- ``MDSs[i]["lod"]`` against
  ``MDS_METRIC_KEYS``.
"""

from __future__ import annotations

import difflib
import math
from dataclasses import dataclass, field
from typing import Optional

from ..core.environment import MDS_METRIC_KEYS
from ..luapolicy import lua_ast as ast
from ..namespace.counters import OP_KINDS
from .diagnostics import Diagnostic

INF = math.inf
ALL_TYPES = frozenset(
    {"nil", "boolean", "number", "string", "table", "function"})
_NUMBER = frozenset({"number"})
_EPSILON = 1e-9


@dataclass(frozen=True)
class AValue:
    """One abstract value: possible types, numeric range, linear form."""

    types: frozenset[str]
    lo: float = -INF
    hi: float = INF
    #: Exact linear form ``sum(coeff * symbol) + terms[""]`` over the load
    #: symbols, or None when the value is not provably linear.
    terms: Optional[tuple[tuple[str, float], ...]] = None

    def terms_dict(self) -> Optional[dict[str, float]]:
        return dict(self.terms) if self.terms is not None else None


TOP = AValue(ALL_TYPES)
A_NIL = AValue(frozenset({"nil"}))
A_BOOL = AValue(frozenset({"boolean"}))
A_STRING = AValue(frozenset({"string"}))
A_TABLE = AValue(frozenset({"table"}))
A_FUNCTION = AValue(frozenset({"function"}))


def a_number(lo: float = -INF, hi: float = INF,
             terms: Optional[dict[str, float]] = None) -> AValue:
    packed = tuple(sorted(terms.items())) if terms is not None else None
    return AValue(_NUMBER, lo, hi, packed)


def a_const(value: float) -> AValue:
    return a_number(value, value, {"": value})


def a_symbol(name: str, lo: float = 0.0, hi: float = INF) -> AValue:
    return a_number(lo, hi, {name: 1.0})


def join(a: AValue, b: AValue) -> AValue:
    return AValue(a.types | b.types, min(a.lo, b.lo), max(a.hi, b.hi),
                  a.terms if a.terms == b.terms else None)


def widen(value: AValue) -> AValue:
    return AValue(value.types, -INF, INF, None)


def _mul_bound(a: float, b: float) -> float:
    if (a == 0 and math.isinf(b)) or (b == 0 and math.isinf(a)):
        return 0.0
    return a * b


def _arith(op: str, a: AValue, b: AValue) -> AValue:
    """Interval arithmetic; exact linear forms where they survive."""
    terms: Optional[dict[str, float]] = None
    ta, tb = a.terms_dict(), b.terms_dict()
    if op == "+":
        lo, hi = a.lo + b.lo, a.hi + b.hi
        if ta is not None and tb is not None:
            terms = dict(ta)
            for key, coeff in tb.items():
                terms[key] = terms.get(key, 0.0) + coeff
    elif op == "-":
        lo, hi = a.lo - b.hi, a.hi - b.lo
        if ta is not None and tb is not None:
            terms = dict(ta)
            for key, coeff in tb.items():
                terms[key] = terms.get(key, 0.0) - coeff
    elif op == "*":
        candidates = [_mul_bound(x, y)
                      for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
        lo, hi = min(candidates), max(candidates)
        const_a = ta.get("", None) if ta is not None and len(ta) == 1 \
            else None
        const_b = tb.get("", None) if tb is not None and len(tb) == 1 \
            else None
        if const_b is not None and ta is not None:
            terms = {key: coeff * const_b for key, coeff in ta.items()}
        elif const_a is not None and tb is not None:
            terms = {key: coeff * const_a for key, coeff in tb.items()}
    elif op == "/":
        if b.lo > 0 or b.hi < 0:
            candidates = [x / y for x in (a.lo, a.hi)
                          for y in (b.lo, b.hi) if y != 0]
            lo, hi = min(candidates), max(candidates)
        else:
            lo, hi = -INF, INF  # the divisor range includes zero
        const_b = tb.get("", None) if tb is not None and len(tb) == 1 \
            else None
        if const_b not in (None, 0.0) and ta is not None:
            terms = {key: coeff / const_b for key, coeff in ta.items()}
    elif op == "%":
        if b.hi < INF and b.lo > -INF:
            bound = max(abs(b.lo), abs(b.hi))
            lo, hi = -bound, bound
        else:
            lo, hi = -INF, INF
    else:  # '^'
        lo, hi = -INF, INF
    if math.isnan(lo) or math.isnan(hi):
        lo, hi = -INF, INF
    if terms is not None:
        # an exact form pins the interval exactly only when constant
        if len(terms) == 1 and "" in terms:
            lo = hi = terms[""]
    return a_number(lo, hi, terms)


@dataclass
class TargetWrite:
    key: AValue
    value: AValue
    line: int
    column: int
    in_loop: bool
    hook: str


@dataclass
class AbstractState:
    env: dict[str, AValue] = field(default_factory=dict)

    def copy(self) -> "AbstractState":
        return AbstractState(dict(self.env))


def _join_states(states: list[AbstractState]) -> AbstractState:
    merged: dict[str, AValue] = {}
    names = set()
    for state in states:
        names.update(state.env)
    for name in names:
        values = []
        for state in states:
            value = state.env.get(name)
            # absent in one branch: the global is (still) nil there
            values.append(value if value is not None else A_NIL)
        result = values[0]
        for value in values[1:]:
            result = join(result, value)
        merged[name] = result
    return AbstractState(merged)


class AbstractInterp:
    """Structural abstract executor for one hook (or hook pair)."""

    def __init__(self, num_ranks: int,
                 diagnostics: list[Diagnostic]) -> None:
        self.num_ranks = num_ranks
        self.diagnostics = diagnostics
        self.state = AbstractState()
        self.target_writes: list[TargetWrite] = []
        self.returns: list[tuple[AValue, int, int]] = []
        self.last_def_pos: dict[str, tuple[int, int]] = {}
        self._loop_depth = 0
        self._hook = "policy"

    # -- hook environments ---------------------------------------------
    def seed_decision_env(self) -> None:
        n = float(self.num_ranks)
        env = self.state.env
        env["whoami"] = a_number(1.0, n, {"whoami": 1.0})
        env["MDSs"] = A_TABLE
        env["total"] = a_symbol("total")
        env["authmetaload"] = a_symbol("authmetaload")
        env["allmetaload"] = a_symbol("allmetaload")
        env["targets"] = A_TABLE
        env["WRstate"] = A_FUNCTION
        env["RDstate"] = A_FUNCTION
        for kind in OP_KINDS:
            env[kind] = a_number(0.0, INF)

    def seed_metaload_env(self) -> None:
        for kind in OP_KINDS:
            self.state.env[kind] = a_number(0.0, INF)

    def seed_mdsload_env(self) -> None:
        self.state.env["MDSs"] = A_TABLE
        self.state.env["i"] = a_number(1.0, float(self.num_ranks))

    # -- execution ------------------------------------------------------
    def run_block(self, block: ast.Block, hook: str) -> None:
        self._hook = hook
        self._exec_block(block, self.state)

    def _exec_block(self, block: ast.Block, state: AbstractState) -> None:
        for stmt in block.statements:
            self._exec(stmt, state)

    def _exec(self, stmt: ast.Stmt, state: AbstractState) -> None:
        if isinstance(stmt, ast.Assign):
            values = [self._eval(v, state) for v in stmt.values]
            while len(values) < len(stmt.targets):
                values.append(A_NIL)
            for target, value in zip(stmt.targets, values):
                self._assign(target, value, state)
        elif isinstance(stmt, ast.LocalAssign):
            values = [self._eval(v, state) for v in stmt.values]
            while len(values) < len(stmt.names):
                values.append(A_NIL)
            for name, value in zip(stmt.names, values):
                state.env[name] = value
                self.last_def_pos[name] = (stmt.line, stmt.column)
        elif isinstance(stmt, ast.CallStmt):
            self._eval(stmt.call, state)
        elif isinstance(stmt, ast.Return):
            value = (self._eval(stmt.values[0], state)
                     if stmt.values else A_NIL)
            self.returns.append((value, stmt.line, stmt.column))
        elif isinstance(stmt, ast.If):
            branches: list[AbstractState] = []
            for condition, body in stmt.branches:
                self._eval(condition, state)
                branch = state.copy()
                self._exec_block(body, branch)
                branches.append(branch)
            orelse = state.copy()
            self._exec_block(stmt.orelse, orelse)
            branches.append(orelse)
            state.env = _join_states(branches).env
        elif isinstance(stmt, ast.While):
            self._eval(stmt.condition, state)
            self._loop_body(stmt.body, state)
        elif isinstance(stmt, ast.Repeat):
            self._loop_body(stmt.body, state, always_runs=True)
            self._eval(stmt.condition, state)
        elif isinstance(stmt, ast.NumericFor):
            start = self._eval(stmt.start, state)
            stop = self._eval(stmt.stop, state)
            if stmt.step is not None:
                self._eval(stmt.step, state)
            lo = start.lo if start.lo > -INF else -INF
            hi = stop.hi if stop.hi < INF else INF
            var = a_number(min(lo, hi), max(lo, hi))
            self._loop_body(stmt.body, state,
                            bind={stmt.var: var})
        elif isinstance(stmt, ast.GenericFor):
            self._eval(stmt.iterable, state)
            self._loop_body(stmt.body, state,
                            bind={name: TOP for name in stmt.names})
        elif isinstance(stmt, ast.FunctionDecl):
            state.env[stmt.name] = A_FUNCTION
            self.last_def_pos[stmt.name] = (stmt.line, stmt.column)
        elif isinstance(stmt, ast.Do):
            self._exec_block(stmt.body, state)
        # Break: no state effect beyond what joining already models

    def _loop_body(self, body: ast.Block, state: AbstractState,
                   bind: Optional[dict[str, AValue]] = None,
                   always_runs: bool = False) -> None:
        pre = state.copy()
        self._loop_depth += 1
        try:
            iterated = state.copy()
            for _ in range(2):
                if bind:
                    iterated.env.update(bind)
                self._exec_block(body, iterated)
        finally:
            self._loop_depth -= 1
        merged = (_join_states([pre, iterated]) if not always_runs
                  else iterated)
        # widen every name the loop changed: its fixpoint is unknown
        for name, value in merged.env.items():
            if pre.env.get(name) != value:
                merged.env[name] = widen(value)
        if bind:
            for name in bind:
                merged.env[name] = widen(merged.env[name])
        state.env = merged.env

    def _assign(self, target: ast.Expr, value: AValue,
                state: AbstractState) -> None:
        if isinstance(target, ast.Name):
            state.env[target.name] = value
            self.last_def_pos[target.name] = (target.line, target.column)
            return
        if isinstance(target, ast.Index):
            key = self._eval(target.key, state)
            self._eval(target.obj, state)
            if isinstance(target.obj, ast.Name) and \
                    target.obj.name == "targets":
                self.target_writes.append(TargetWrite(
                    key, value, target.line, target.column,
                    self._loop_depth > 0, self._hook))

    # -- expressions ----------------------------------------------------
    def _eval(self, expr: ast.Expr, state: AbstractState) -> AValue:
        if isinstance(expr, ast.NilLiteral):
            return A_NIL
        if isinstance(expr, ast.BoolLiteral):
            return A_BOOL
        if isinstance(expr, ast.NumberLiteral):
            return a_const(expr.value)
        if isinstance(expr, ast.StringLiteral):
            return A_STRING
        if isinstance(expr, ast.Name):
            return state.env.get(expr.name, A_NIL)
        if isinstance(expr, ast.Index):
            return self._eval_index(expr, state)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, state)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, state)
        if isinstance(expr, ast.TableConstructor):
            for tfield in expr.fields:
                if tfield.key is not None:
                    self._eval(tfield.key, state)
                self._eval(tfield.value, state)
            return A_TABLE
        if isinstance(expr, ast.FunctionExpr):
            return A_FUNCTION
        return TOP

    def _eval_index(self, expr: ast.Index, state: AbstractState) -> AValue:
        self._eval(expr.key, state)
        # MDSs[k]["metric"] -- check the metric key and recover the exact
        # linear form for MDSs[whoami]["load"].
        if isinstance(expr.obj, ast.Index) and \
                isinstance(expr.obj.obj, ast.Name) and \
                expr.obj.obj.name == "MDSs" and \
                isinstance(expr.key, ast.StringLiteral):
            metric = expr.key.value
            if metric not in MDS_METRIC_KEYS:
                close = difflib.get_close_matches(
                    metric, MDS_METRIC_KEYS, n=1, cutoff=0.6)
                hint = (f"did you mean {close[0]!r}?" if close else
                        "known keys: " + ", ".join(MDS_METRIC_KEYS))
                self.diagnostics.append(Diagnostic(
                    "M107", self._hook,
                    f"unknown MDS metric key {metric!r}",
                    expr.key.line, expr.key.column, hint=hint))
                return TOP
            inner_key = self._eval(expr.obj.key, state)
            if metric == "load" and \
                    inner_key.terms == (("whoami", 1.0),):
                return a_symbol("myload", lo=-INF)
            if metric == "alive":
                return a_number(0.0, 1.0)
            return a_number(-INF, INF)
        self._eval(expr.obj, state)
        return TOP

    def _eval_call(self, expr: ast.Call, state: AbstractState) -> AValue:
        args = [self._eval(arg, state) for arg in expr.args]
        func = expr.func
        if isinstance(func, ast.Name):
            name = func.name
            if name in ("max", "min") and args:
                agg = max if name == "max" else min
                return a_number(agg(a.lo for a in args),
                                agg(a.hi for a in args))
            if name == "tonumber":
                return AValue(frozenset({"number", "nil"}))
            if name == "tostring":
                return A_STRING
            if name == "type":
                return A_STRING
            if name == "WRstate":
                return A_NIL
            if name == "RDstate":
                return TOP
            if name == "assert" and args:
                return args[0]
            return TOP
        if isinstance(func, ast.Index) and \
                isinstance(func.obj, ast.Name) and \
                isinstance(func.key, ast.StringLiteral):
            root, member = func.obj.name, func.key.value
            if root == "math":
                if member in ("floor", "ceil"):
                    if args:
                        lo = math.floor(args[0].lo) \
                            if args[0].lo > -INF else -INF
                        hi = math.ceil(args[0].hi) \
                            if args[0].hi < INF else INF
                        return a_number(lo, hi)
                    return a_number()
                if member in ("max", "min") and args:
                    agg = max if member == "max" else min
                    return a_number(agg(a.lo for a in args),
                                    agg(a.hi for a in args))
                if member == "abs":
                    return a_number(0.0, INF)
                return a_number()
            if root == "string":
                if member in ("len", "byte"):
                    return AValue(frozenset({"number", "nil"}), 0.0, INF)
                if member == "find":
                    return AValue(frozenset({"number", "nil"}))
                return A_STRING
            if root == "table":
                if member == "concat":
                    return A_STRING
                if member == "remove":
                    return TOP
                return A_NIL
        self._eval(func, state)
        return TOP

    def _eval_unary(self, expr: ast.UnaryOp,
                    state: AbstractState) -> AValue:
        operand = self._eval(expr.operand, state)
        if expr.op == "-":
            terms = operand.terms_dict()
            if terms is not None:
                terms = {key: -coeff for key, coeff in terms.items()}
            return a_number(-operand.hi, -operand.lo, terms)
        if expr.op == "not":
            return A_BOOL
        # '#': exact cluster size for #MDSs, else a non-negative count
        if isinstance(expr.operand, ast.Name) and \
                expr.operand.name == "MDSs":
            return a_const(float(self.num_ranks))
        return a_number(0.0, INF)

    def _eval_binary(self, expr: ast.BinaryOp,
                     state: AbstractState) -> AValue:
        op = expr.op
        left = self._eval(expr.left, state)
        right = self._eval(expr.right, state)
        if op in ("==", "~=", "<", "<=", ">", ">="):
            return A_BOOL
        if op == "..":
            return A_STRING
        if op == "and":
            # value is right, or left when left is falsy (nil/false)
            types = right.types | (left.types & frozenset(
                {"nil", "boolean"}))
            return AValue(types, min(left.lo, right.lo),
                          max(left.hi, right.hi), right.terms)
        if op == "or":
            types = (left.types - frozenset({"nil"})) | right.types
            return AValue(types, min(left.lo, right.lo),
                          max(left.hi, right.hi), None)
        return _arith(op, left, right)

    # -- contract checks ------------------------------------------------
    def check_load_result(self, hook: str, output_global: str) -> None:
        """M201: the hook must produce a number."""
        if self.returns:
            result, line, column = self.returns[0]
            for value, _l, _c in self.returns[1:]:
                result = join(result, value)
        else:
            result = self.state.env.get(output_global, A_NIL)
            line, column = self.last_def_pos.get(output_global, (None, None))
        if "number" not in result.types:
            produced = "/".join(sorted(result.types))
            if result.types == frozenset({"nil"}) and not self.returns \
                    and output_global not in self.state.env:
                message = (f"hook never returns a value and never assigns "
                           f"the {output_global!r} global; the driver "
                           "will reject it at run time")
            else:
                message = (f"hook must produce a number, but it "
                           f"produces {produced}")
            self.diagnostics.append(Diagnostic(
                "M201", hook, message, line, column,
                hint="end the formula with a numeric expression "
                     f"or assign {output_global} = <number>"))

    def check_go(self) -> None:
        """M202/M203 on the when hook's exit state."""
        go = self.state.env.get("go")
        if go is None:
            self.diagnostics.append(Diagnostic(
                "M203", "when",
                "'go' is never assigned; the policy can never migrate",
                None, None,
                hint="assign go = <boolean> in the when hook"))
            return
        if not (go.types & frozenset({"boolean", "nil"})):
            line, column = self.last_def_pos.get("go", (None, None))
            produced = "/".join(sorted(go.types))
            self.diagnostics.append(Diagnostic(
                "M202", "when",
                f"'go' is always a {produced}, never a boolean -- the "
                "driver treats any non-nil value (even 0) as \"migrate\"",
                line, column,
                hint="convert with go = (go == 1) or a comparison"))

    def check_targets(self) -> None:
        """M204/M205 over the collected targets writes."""
        n = float(self.num_ranks)
        provable_sum: Optional[dict[str, float]] = {}
        first_write: Optional[TargetWrite] = None
        for write in self.target_writes:
            key = write.key
            if "number" not in key.types and key.types != ALL_TYPES:
                self.diagnostics.append(Diagnostic(
                    "M204", write.hook,
                    "targets index is never a number (the driver drops "
                    "non-numeric keys)", write.line, write.column))
            elif key.hi < 1.0 or key.lo > n:
                bound = ("< 1" if key.hi < 1.0 else f"> #MDSs ({n:g})")
                self.diagnostics.append(Diagnostic(
                    "M204", write.hook,
                    f"targets index is provably {bound} -- the write "
                    "can never select a rank "
                    f"(index range [{key.lo:g}, {key.hi:g}])",
                    write.line, write.column,
                    hint="rank indices are 1..#MDSs"))
            elif key.lo == key.hi and key.lo != int(key.lo):
                self.diagnostics.append(Diagnostic(
                    "M204", write.hook,
                    f"targets index is the non-integer constant "
                    f"{key.lo:g} (the driver drops it)",
                    write.line, write.column))
            # conservation: only provable outside loops with exact forms
            if provable_sum is None:
                continue
            terms = write.value.terms_dict()
            if write.in_loop or terms is None:
                provable_sum = None
                continue
            for key_name, coeff in terms.items():
                provable_sum[key_name] = \
                    provable_sum.get(key_name, 0.0) + coeff
        if provable_sum and first_write is None and self.target_writes:
            first_write = self.target_writes[0]
        if provable_sum and first_write is not None:
            myload = provable_sum.get("myload", 0.0)
            others = {key: coeff for key, coeff in provable_sum.items()
                      if key not in ("myload",) and coeff}
            # other symbols (total, allmetaload...) are non-negative, so a
            # non-positive coefficient can only lower the sum
            others_bounded = all(coeff <= 0 for key, coeff in others.items()
                                 if key != "")
            const = others.pop("", 0.0) if "" in others else 0.0
            if myload > 1.0 + _EPSILON and others_bounded and const >= 0:
                self.diagnostics.append(Diagnostic(
                    "M205", first_write.hook,
                    f"the provable sum of targets is {myload:g}x "
                    "MDSs[whoami][\"load\"]"
                    + (f" + {const:g}" if const else "")
                    + " -- the policy exports more load than this rank "
                    "has (ping-pong risk)",
                    first_write.line, first_write.column,
                    hint="scale the targets so they sum to at most "
                         "this rank's load"))
