"""Reaching definitions and liveness over the policy CFG.

Implements the def-use family of lint rules:

* M101 undefined-global -- a name that is read but never bound anywhere
  (not a hook binding, not sandbox stdlib, not defined in the chunk);
* M102 misspelled-binding -- as M101, but close enough to a real binding
  that a did-you-mean hint applies;
* M103 use-before-def -- the name *is* defined in the chunk, but some
  path reaches the read before any definition has executed;
* M104 dead-write -- an assignment whose value can never be read;
* M105 binding-overwrite -- assigning over a Mantle environment binding
  or a sandbox builtin;
* M106 shadowed-builtin-call -- calling a builtin name after every path
  rebound it to a non-function value (paper Listing 4's ``max=0`` bug).
"""

from __future__ import annotations

import difflib

from ..luapolicy import lua_ast as ast
from ..luapolicy.stdlib import SANDBOX_GLOBALS
from .cfg import Cfg, Def
from .diagnostics import Diagnostic

#: Pseudo-definition sites in the reaching-defs lattice.
_ENV = -1    # bound by the hook environment / stdlib before the chunk runs
_UNDEF = -2  # "no definition has executed yet" (the entry state)


def _collect_defs(cfg: Cfg) -> dict[str, set[tuple[int, int]]]:
    """name -> set of (node_id, def_index) real definition sites."""
    sites: dict[str, set[tuple[int, int]]] = {}
    for node in cfg.nodes:
        for i, definition in enumerate(node.defs):
            sites.setdefault(definition.name, set()).add((node.id, i))
    return sites


def _reaching(cfg: Cfg, env_names: frozenset[str],
              def_sites: dict[str, set[tuple[int, int]]]
              ) -> list[dict[str, set]]:
    """IN[node] for every node: name -> reaching def sites.

    Sites are (node_id, def_index) pairs, or the ``_ENV``/``_UNDEF``
    pseudo-sites.  Forward worklist to fixpoint.
    """
    entry_state: dict[str, set] = {}
    for name in env_names:
        entry_state[name] = {_ENV}
    for name in SANDBOX_GLOBALS:
        entry_state.setdefault(name, set()).add(_ENV)
    for name in def_sites:
        entry_state.setdefault(name, set()).add(_UNDEF)

    ins: list[dict[str, set]] = [{} for _ in cfg.nodes]
    ins[cfg.entry] = entry_state
    preds = cfg.preds()
    worklist = list(range(len(cfg.nodes)))
    while worklist:
        node_id = worklist.pop(0)
        if node_id == cfg.entry:
            state = entry_state
        else:
            state = {}
            for pred in preds[node_id]:
                pred_out = _transfer(cfg.nodes[pred], ins[pred])
                for name, sites in pred_out.items():
                    state.setdefault(name, set()).update(sites)
        if state != ins[node_id] or node_id == cfg.entry:
            ins[node_id] = state
            for succ in cfg.nodes[node_id].succs:
                if succ not in worklist:
                    worklist.append(succ)
    return ins


def _transfer(node, in_state: dict[str, set]) -> dict[str, set]:
    if not node.defs:
        return in_state
    out = dict(in_state)
    for i, definition in enumerate(node.defs):
        out[definition.name] = {(node.id, i)}
    return out


def _liveness(cfg: Cfg, outputs: frozenset[str]) -> list[set[str]]:
    """LIVE-OUT[node] for every node.  Backward worklist to fixpoint."""
    live_out: list[set[str]] = [set() for _ in cfg.nodes]
    live_in: list[set[str]] = [set() for _ in cfg.nodes]
    live_out[cfg.exit] = set(outputs)
    live_in[cfg.exit] = set(outputs)
    preds = cfg.preds()
    worklist = list(range(len(cfg.nodes)))
    while worklist:
        node_id = worklist.pop()
        node = cfg.nodes[node_id]
        out = set(outputs) if node_id == cfg.exit else set()
        for succ in node.succs:
            out |= live_in[succ]
        uses = {use.name for use in node.uses}
        defs = {d.name for d in node.defs}
        new_in = uses | (out - defs)
        if out != live_out[node_id] or new_in != live_in[node_id]:
            live_out[node_id] = out
            live_in[node_id] = new_in
            for pred in preds[node_id]:
                if pred not in worklist:
                    worklist.append(pred)
    return live_out


_NON_FUNCTION_VALUES = (ast.NilLiteral, ast.BoolLiteral, ast.NumberLiteral,
                        ast.StringLiteral, ast.BinaryOp, ast.UnaryOp,
                        ast.TableConstructor)


def _provably_non_function(definition: Def) -> bool:
    value = definition.value
    if definition.kind == "for":
        return True  # loop variables are numbers (or iterator values)
    return isinstance(value, _NON_FUNCTION_VALUES)


def check_defuse(cfg: Cfg, env_names: frozenset[str],
                 outputs: frozenset[str],
                 diagnostics: list[Diagnostic]) -> None:
    """Run reaching-defs + liveness and emit M101..M106."""
    def_sites = _collect_defs(cfg)
    ins = _reaching(cfg, env_names, def_sites)
    known = set(env_names) | set(SANDBOX_GLOBALS)
    suggestion_pool = sorted(known)

    for node in cfg.nodes:
        if node.synthetic:
            continue
        state = ins[node.id]
        for use in node.uses:
            name = use.name
            reaching = state.get(name, set())
            if name not in def_sites and name not in known:
                close = difflib.get_close_matches(
                    name, suggestion_pool, n=1, cutoff=0.75)
                if close:
                    diagnostics.append(Diagnostic(
                        "M102", node.hook,
                        f"unknown name {name!r}",
                        use.line, use.column,
                        hint=f"did you mean {close[0]!r}?"))
                else:
                    diagnostics.append(Diagnostic(
                        "M101", node.hook,
                        f"{name!r} is never defined and is not a "
                        f"{node.hook} binding (it reads as nil)",
                        use.line, use.column))
                continue
            if name in def_sites and name not in known:
                real = {site for site in reaching
                        if site not in (_ENV, _UNDEF)}
                if _UNDEF in reaching:
                    if real:
                        message = (f"{name!r} may be read before it is "
                                   "assigned (some paths skip its "
                                   "definition)")
                    else:
                        message = (f"{name!r} is read before any of its "
                                   "assignments can have run")
                    diagnostics.append(Diagnostic(
                        "M103", node.hook, message, use.line, use.column))
            if use.is_call and name in SANDBOX_GLOBALS:
                real = {site for site in reaching
                        if site not in (_ENV, _UNDEF)}
                if real and _ENV not in reaching:
                    defs = [cfg.nodes[nid].defs[i] for nid, i in real]
                    if all(_provably_non_function(d) for d in defs):
                        diagnostics.append(Diagnostic(
                            "M106", node.hook,
                            f"call to {name!r}, but every reaching "
                            "assignment rebinds it to a non-function "
                            "value (the sandbox builtin is shadowed)",
                            use.line, use.column,
                            hint=f"rename the variable shadowing "
                                 f"{name!r}"))

    live_out = _liveness(cfg, outputs)
    for node in cfg.nodes:
        for definition in node.defs:
            name = definition.name
            if name in env_names or name in SANDBOX_GLOBALS:
                diagnostics.append(Diagnostic(
                    "M105", node.hook,
                    f"assignment overwrites the {node.hook} binding "
                    f"{name!r}" if name in env_names else
                    f"assignment overwrites the sandbox builtin {name!r}",
                    definition.line, definition.column,
                    hint="pick a different variable name"))
            if definition.kind == "for" or name.startswith("_"):
                continue
            if name in outputs or name in env_names or \
                    name in SANDBOX_GLOBALS:
                continue
            if name not in live_out[node.id]:
                diagnostics.append(Diagnostic(
                    "M104", node.hook,
                    f"value assigned to {name!r} is never read",
                    definition.line, definition.column))
