"""Loop-bound and cost analysis for policy hooks.

Policies run under instruction budgets (``VALIDATION_BUDGET`` during the
dry run, ``DEFAULT_BUDGET`` in production), so a loop that is not bounded
by ``#MDSs`` or a constant is either an injection-time failure waiting to
happen or -- worse -- a budget blowup on the first real heartbeat.  Three
rules:

* M301 infinite-loop -- a ``while``/``repeat`` whose condition is a
  constant truthy value with no ``break`` in the body;
* M302 loop-bound-unprovable -- no monotone self-update of any variable
  the condition depends on (directly, or through one assignment hop, so
  GIGA+'s ``depth = depth*2; target = whoami + depth`` passes);
* M303 loop-budget -- the provable trip count times the estimated body
  cost exceeds ``VALIDATION_BUDGET``, so the §4.4 dry run itself would
  reject the policy.
"""

from __future__ import annotations

from ..luapolicy import lua_ast as ast
from .diagnostics import Diagnostic

#: Assumed trip counts for cost estimation when the exact count is
#: unknown: loops bounded by ``#MDSs`` (clusters in this repo are small),
#: and everything else that at least looks terminating.
TRIP_MDS_BOUND = 16
TRIP_UNKNOWN = 8


def _is_const_truthy(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.BoolLiteral):
        return expr.value
    # any number (including 0) and any string are truthy in Lua
    return isinstance(expr, (ast.NumberLiteral, ast.StringLiteral))


def _mentions_mds_count(expr: ast.Expr) -> bool:
    """Does the expression contain ``#MDSs`` (or read MDSs at all)?"""
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "#" and isinstance(expr.operand, ast.Name) and \
                expr.operand.name == "MDSs":
            return True
        return _mentions_mds_count(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        return _mentions_mds_count(expr.left) or \
            _mentions_mds_count(expr.right)
    if isinstance(expr, ast.Index):
        return _mentions_mds_count(expr.obj) or \
            _mentions_mds_count(expr.key)
    if isinstance(expr, ast.Call):
        return any(_mentions_mds_count(arg) for arg in expr.args)
    return False


def _expr_names(expr: ast.Expr, out: set[str]) -> None:
    if isinstance(expr, ast.Name):
        out.add(expr.name)
    elif isinstance(expr, ast.Index):
        _expr_names(expr.obj, out)
        _expr_names(expr.key, out)
    elif isinstance(expr, ast.Call):
        _expr_names(expr.func, out)
        for arg in expr.args:
            _expr_names(arg, out)
    elif isinstance(expr, ast.UnaryOp):
        _expr_names(expr.operand, out)
    elif isinstance(expr, ast.BinaryOp):
        _expr_names(expr.left, out)
        _expr_names(expr.right, out)
    elif isinstance(expr, ast.TableConstructor):
        for tfield in expr.fields:
            if tfield.key is not None:
                _expr_names(tfield.key, out)
            _expr_names(tfield.value, out)


def _contains_break(block: ast.Block) -> bool:
    for stmt in block.statements:
        if isinstance(stmt, ast.Break):
            return True
        if isinstance(stmt, ast.If):
            if any(_contains_break(body) for _c, body in stmt.branches):
                return True
            if _contains_break(stmt.orelse):
                return True
        elif isinstance(stmt, ast.Do):
            if _contains_break(stmt.body):
                return True
        # breaks inside nested loops belong to those loops
    return False


def _is_monotone_update(name: str, value: ast.Expr) -> bool:
    """``name = name +/- c``, ``name = name * c`` (c>1), ``name = name / c``
    (c>1) -- the self-updates that make progress toward a comparison."""
    if not isinstance(value, ast.BinaryOp):
        return False
    left, right, op = value.left, value.right, value.op
    refs_self = (isinstance(left, ast.Name) and left.name == name) or \
        (isinstance(right, ast.Name) and right.name == name)
    if not refs_self:
        return False
    if op in ("+", "-"):
        other = right if isinstance(left, ast.Name) and left.name == name \
            else left
        return isinstance(other, ast.NumberLiteral) and other.value != 0
    if op in ("*", "/"):
        other = right if isinstance(left, ast.Name) and left.name == name \
            else left
        return isinstance(other, ast.NumberLiteral) and \
            abs(other.value) > 1
    return False


def _body_assignments(block: ast.Block,
                      out: list[tuple[str, ast.Expr]]) -> None:
    """All ``name = expr`` assignments anywhere in the loop body."""
    for stmt in block.statements:
        if isinstance(stmt, ast.Assign):
            n_values = len(stmt.values)
            for i, target in enumerate(stmt.targets):
                if isinstance(target, ast.Name) and i < n_values:
                    out.append((target.name, stmt.values[i]))
        elif isinstance(stmt, ast.LocalAssign):
            for i, name in enumerate(stmt.names):
                if i < len(stmt.values):
                    out.append((name, stmt.values[i]))
        elif isinstance(stmt, ast.If):
            for _cond, body in stmt.branches:
                _body_assignments(body, out)
            _body_assignments(stmt.orelse, out)
        elif isinstance(stmt, (ast.While, ast.Repeat, ast.NumericFor,
                               ast.GenericFor)):
            _body_assignments(stmt.body, out)
        elif isinstance(stmt, ast.Do):
            _body_assignments(stmt.body, out)


def _check_condition_progress(condition: ast.Expr, body: ast.Block,
                              hook: str, line: int, column: int,
                              diagnostics: list[Diagnostic]) -> None:
    """M301/M302 for a while/repeat loop."""
    has_break = _contains_break(body)
    if _is_const_truthy(condition):
        if not has_break:
            diagnostics.append(Diagnostic(
                "M301", hook,
                "loop condition is a constant truthy value and the body "
                "has no break -- the loop can never terminate",
                line, column,
                hint="bound the loop by #MDSs or add a break"))
        return
    if has_break:
        return  # a data-dependent break is an exit we cannot disprove
    cond_vars: set[str] = set()
    _expr_names(condition, cond_vars)
    assignments: list[tuple[str, ast.Expr]] = []
    _body_assignments(body, assignments)
    # relevant vars: condition vars, plus anything feeding an assignment
    # *to* a condition var inside the body (one hop of indirection)
    relevant = set(cond_vars)
    for name, value in assignments:
        if name in cond_vars:
            feed: set[str] = set()
            _expr_names(value, feed)
            relevant |= feed
    if any(name in relevant and _is_monotone_update(name, value)
           for name, value in assignments):
        return
    if not any(name in relevant for name, _value in assignments):
        diagnostics.append(Diagnostic(
            "M302", hook,
            "no variable the loop condition depends on is assigned in "
            "the body -- the loop cannot make progress",
            line, column,
            hint="update a condition variable (e.g. i = i + 1) or bound "
                 "the loop by #MDSs"))
        return
    diagnostics.append(Diagnostic(
        "M302", hook,
        "cannot prove the loop terminates: no condition variable has a "
        "monotone update (i = i + c, i = i * c) in the body",
        line, column,
        hint="drive the condition with a counted update or bound the "
             "loop by #MDSs"))


def _block_cost(block: ast.Block, hook: str,
                diagnostics: list[Diagnostic],
                budget: int) -> int:
    """Estimated interpreter instruction cost of one pass over the block,
    emitting M301/M302/M303 for loops found along the way."""
    cost = 0
    for stmt in block.statements:
        cost += _stmt_cost(stmt, hook, diagnostics, budget)
    return cost


def _expr_cost(expr: ast.Expr) -> int:
    if isinstance(expr, (ast.BinaryOp,)):
        return 1 + _expr_cost(expr.left) + _expr_cost(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return 1 + _expr_cost(expr.operand)
    if isinstance(expr, ast.Index):
        return 1 + _expr_cost(expr.obj) + _expr_cost(expr.key)
    if isinstance(expr, ast.Call):
        return 2 + _expr_cost(expr.func) + \
            sum(_expr_cost(arg) for arg in expr.args)
    if isinstance(expr, ast.TableConstructor):
        return 1 + sum(_expr_cost(f.value) +
                       (_expr_cost(f.key) if f.key is not None else 0)
                       for f in expr.fields)
    return 1


def _stmt_cost(stmt: ast.Stmt, hook: str,
               diagnostics: list[Diagnostic], budget: int) -> int:
    if isinstance(stmt, ast.Assign):
        return 1 + sum(_expr_cost(v) for v in stmt.values) + \
            sum(_expr_cost(t) for t in stmt.targets)
    if isinstance(stmt, ast.LocalAssign):
        return 1 + sum(_expr_cost(v) for v in stmt.values)
    if isinstance(stmt, ast.CallStmt):
        return _expr_cost(stmt.call)
    if isinstance(stmt, ast.Return):
        return 1 + sum(_expr_cost(v) for v in stmt.values)
    if isinstance(stmt, ast.If):
        body_costs = [_block_cost(body, hook, diagnostics, budget)
                      for _c, body in stmt.branches]
        body_costs.append(_block_cost(stmt.orelse, hook, diagnostics,
                                      budget))
        return sum(_expr_cost(c) for c, _b in stmt.branches) + \
            max(body_costs)
    if isinstance(stmt, ast.While):
        _check_condition_progress(stmt.condition, stmt.body, hook,
                                  stmt.line, stmt.column, diagnostics)
        body = _block_cost(stmt.body, hook, diagnostics, budget)
        trips = TRIP_MDS_BOUND if _mentions_mds_count(stmt.condition) \
            else TRIP_UNKNOWN
        return trips * (body + _expr_cost(stmt.condition))
    if isinstance(stmt, ast.Repeat):
        _check_condition_progress(stmt.condition, stmt.body, hook,
                                  stmt.line, stmt.column, diagnostics)
        body = _block_cost(stmt.body, hook, diagnostics, budget)
        trips = TRIP_MDS_BOUND if _mentions_mds_count(stmt.condition) \
            else TRIP_UNKNOWN
        return trips * (body + _expr_cost(stmt.condition))
    if isinstance(stmt, ast.NumericFor):
        body = _block_cost(stmt.body, hook, diagnostics, budget)
        trips = _numeric_for_trips(stmt, hook, diagnostics)
        total = trips * (body + 2) + _expr_cost(stmt.start) + \
            _expr_cost(stmt.stop)
        if total > budget:
            diagnostics.append(Diagnostic(
                "M303", hook,
                f"estimated loop cost ~{total} instructions exceeds the "
                f"validation budget ({budget}); the dry run will reject "
                "this policy", stmt.line, stmt.column,
                hint="shrink the iteration count -- policies should "
                     "iterate over #MDSs, not large constants"))
        return min(total, budget)
    if isinstance(stmt, ast.GenericFor):
        body = _block_cost(stmt.body, hook, diagnostics, budget)
        return TRIP_MDS_BOUND * (body + 2) + _expr_cost(stmt.iterable)
    if isinstance(stmt, ast.Do):
        return _block_cost(stmt.body, hook, diagnostics, budget)
    if isinstance(stmt, ast.FunctionDecl):
        return 1
    return 1  # Break


def _numeric_for_trips(stmt: ast.NumericFor, hook: str,
                       diagnostics: list[Diagnostic]) -> int:
    start = stmt.start.value if isinstance(stmt.start, ast.NumberLiteral) \
        else None
    stop = stmt.stop.value if isinstance(stmt.stop, ast.NumberLiteral) \
        else None
    step = 1.0
    if stmt.step is not None:
        if isinstance(stmt.step, ast.NumberLiteral):
            step = stmt.step.value
        else:
            step = None
    if stop is not None and start is not None and step not in (None, 0):
        return max(0, int((stop - start) / step) + 1)
    if _mentions_mds_count(stmt.stop) or _mentions_mds_count(stmt.start):
        return TRIP_MDS_BOUND
    diagnostics.append(Diagnostic(
        "M302", hook,
        f"the bound of the for loop over {stmt.var!r} is neither a "
        "constant nor derived from #MDSs",
        stmt.line, stmt.column,
        hint="iterate for i=1,#MDSs (the validator budget assumes "
             "cluster-sized loops)"))
    return TRIP_UNKNOWN


def check_loops(block: ast.Block, hook: str,
                diagnostics: list[Diagnostic], budget: int) -> int:
    """Run the loop rules over one hook chunk; returns the cost estimate."""
    return _block_cost(block, hook, diagnostics, budget)
