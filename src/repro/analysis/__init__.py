"""mantle-lint: static analysis of Mantle Lua policies.

The analyses run over the :mod:`repro.luapolicy` AST before a policy is
ever executed -- a static counterpart to the §4.4 dry-run validator:

* :mod:`repro.analysis.cfg` / :mod:`repro.analysis.defuse` -- control
  flow, reaching definitions, liveness (undefined globals, misspelled
  Mantle bindings, dead writes, use-before-def);
* :mod:`repro.analysis.absint` -- abstract interpretation over types and
  intervals proving hook contracts (numeric load results, boolean ``go``,
  in-range ``targets`` writes, load conservation);
* :mod:`repro.analysis.loops` -- loop-bound and instruction-cost checks
  against the validation budget;
* :mod:`repro.analysis.purity` -- determinism rules tied to the live
  sandbox whitelist.

Entry point: :func:`lint_policy`.  Wired into ``mantle-sim lint``, the
validator, and the ``set_policy`` injection gate (bypass with
``lint=False`` / ``--no-lint``).
"""

from .diagnostics import (
    RULES,
    Diagnostic,
    LintReport,
    PolicyLintError,
    rule_severity,
    rule_slug,
)
from .linter import DEFAULT_LINT_RANKS, lint_policy

__all__ = [
    "RULES",
    "Diagnostic",
    "LintReport",
    "PolicyLintError",
    "DEFAULT_LINT_RANKS",
    "lint_policy",
    "rule_severity",
    "rule_slug",
]
