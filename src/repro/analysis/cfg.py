"""Control-flow graph over the Mantle-Lua AST.

Each :class:`CfgNode` is one *simple* unit of execution -- an assignment,
a call statement, a return, or a branch/loop condition -- annotated with
the names it defines and uses (with source positions).  Structured
statements (``if``/``while``/``for``...) become edges.  The graph is the
substrate for the reaching-definitions and liveness passes in
:mod:`repro.analysis.defuse`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..luapolicy import lua_ast as ast


@dataclass
class Use:
    name: str
    line: int
    column: int
    is_call: bool = False  # the name is the callee of a call


@dataclass
class Def:
    name: str
    line: int
    column: int
    kind: str = "assign"  # assign | local | for | func | param
    #: The assigned value expression when statically known (used by the
    #: shadowed-builtin-call rule to tell ``max = 0`` from ``max = f``).
    value: Optional[ast.Expr] = None


@dataclass
class IndexWrite:
    """``base[key] = value`` -- tracked separately from name defs."""

    base: str
    key: ast.Expr
    value: ast.Expr
    line: int
    column: int


@dataclass
class CfgNode:
    id: int
    kind: str  # entry | exit | stmt | cond | forhead | join
    hook: str
    stmt: Optional[object] = None
    uses: list[Use] = field(default_factory=list)
    defs: list[Def] = field(default_factory=list)
    index_writes: list[IndexWrite] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    #: Synthetic nodes (the implicit ``if go`` between when and where)
    #: participate in data flow but produce no diagnostics themselves.
    synthetic: bool = False


class Cfg:
    def __init__(self) -> None:
        self.nodes: list[CfgNode] = []
        self.entry: int = 0
        self.exit: int = 0

    def node(self, kind: str, hook: str, stmt: object = None,
             synthetic: bool = False) -> CfgNode:
        node = CfgNode(len(self.nodes), kind, hook, stmt,
                       synthetic=synthetic)
        self.nodes.append(node)
        return node

    def link(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)

    def preds(self) -> list[list[int]]:
        preds: list[list[int]] = [[] for _ in self.nodes]
        for node in self.nodes:
            for succ in node.succs:
                preds[succ].append(node.id)
        return preds


def expr_uses(expr: ast.Expr, out: list[Use]) -> None:
    """Collect name reads (and callee reads) from an expression tree.

    Function-expression bodies are deliberately *not* walked: their reads
    happen at call time under a different scope, and the purity pass
    inspects them separately.
    """
    if isinstance(expr, ast.Name):
        out.append(Use(expr.name, expr.line, expr.column))
    elif isinstance(expr, ast.Index):
        expr_uses(expr.obj, out)
        expr_uses(expr.key, out)
    elif isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Name):
            out.append(Use(expr.func.name, expr.func.line,
                           expr.func.column, is_call=True))
        else:
            expr_uses(expr.func, out)
        for arg in expr.args:
            expr_uses(arg, out)
    elif isinstance(expr, ast.UnaryOp):
        expr_uses(expr.operand, out)
    elif isinstance(expr, ast.BinaryOp):
        expr_uses(expr.left, out)
        expr_uses(expr.right, out)
    elif isinstance(expr, ast.TableConstructor):
        for tfield in expr.fields:
            if tfield.key is not None:
                expr_uses(tfield.key, out)
            expr_uses(tfield.value, out)
    # literals, varargs, function expressions: no direct uses


class _Builder:
    def __init__(self, cfg: Cfg) -> None:
        self.cfg = cfg
        #: Per-loop lists of break-node ids waiting for their loop exit.
        self._loop_breaks: list[list[int]] = []
        self._return_nodes: list[int] = []

    # -- plumbing -------------------------------------------------------
    def _simple(self, kind: str, hook: str, stmt: object,
                preds: list[int]) -> CfgNode:
        node = self.cfg.node(kind, hook, stmt)
        for pred in preds:
            self.cfg.link(pred, node.id)
        return node

    def block(self, block: ast.Block, hook: str,
              preds: list[int]) -> list[int]:
        """Wire a block's statements; returns the fall-through frontier."""
        for stmt in block.statements:
            preds = self.statement(stmt, hook, preds)
            if not preds:
                break  # unreachable code after return/break
        return preds

    # -- statements -----------------------------------------------------
    def statement(self, stmt: ast.Stmt, hook: str,
                  preds: list[int]) -> list[int]:
        if isinstance(stmt, ast.Assign):
            node = self._simple("stmt", hook, stmt, preds)
            for value in stmt.values:
                expr_uses(value, node.uses)
            n_values = len(stmt.values)
            for i, target in enumerate(stmt.targets):
                value = stmt.values[i] if i < n_values else None
                if isinstance(target, ast.Name):
                    node.defs.append(Def(target.name, target.line,
                                         target.column, "assign", value))
                elif isinstance(target, ast.Index):
                    expr_uses(target.obj, node.uses)
                    expr_uses(target.key, node.uses)
                    if isinstance(target.obj, ast.Name) and value is not None:
                        node.index_writes.append(IndexWrite(
                            target.obj.name, target.key, value,
                            target.line, target.column))
            return [node.id]
        if isinstance(stmt, ast.LocalAssign):
            node = self._simple("stmt", hook, stmt, preds)
            for value in stmt.values:
                expr_uses(value, node.uses)
            for i, name in enumerate(stmt.names):
                value = stmt.values[i] if i < len(stmt.values) else None
                node.defs.append(Def(name, stmt.line, stmt.column,
                                     "local", value))
            return [node.id]
        if isinstance(stmt, ast.CallStmt):
            node = self._simple("stmt", hook, stmt, preds)
            expr_uses(stmt.call, node.uses)
            return [node.id]
        if isinstance(stmt, ast.Return):
            node = self._simple("stmt", hook, stmt, preds)
            for value in stmt.values:
                expr_uses(value, node.uses)
            self._return_nodes.append(node.id)
            return []
        if isinstance(stmt, ast.Break):
            node = self._simple("stmt", hook, stmt, preds)
            if self._loop_breaks:
                self._loop_breaks[-1].append(node.id)
            return []
        if isinstance(stmt, ast.FunctionDecl):
            node = self._simple("stmt", hook, stmt, preds)
            node.defs.append(Def(stmt.name, stmt.line, stmt.column,
                                 "func", stmt.func))
            return [node.id]
        if isinstance(stmt, ast.Do):
            return self.block(stmt.body, hook, preds)
        if isinstance(stmt, ast.If):
            frontier: list[int] = []
            for condition, body in stmt.branches:
                cond = self._simple("cond", hook, condition, preds)
                expr_uses(condition, cond.uses)
                frontier.extend(self.block(body, hook, [cond.id]))
                preds = [cond.id]  # the false edge of this condition
            frontier.extend(self.block(stmt.orelse, hook, preds))
            return frontier
        if isinstance(stmt, ast.While):
            cond = self._simple("cond", hook, stmt.condition, preds)
            expr_uses(stmt.condition, cond.uses)
            self._loop_breaks.append([])
            body_exits = self.block(stmt.body, hook, [cond.id])
            for exit_id in body_exits:
                self.cfg.link(exit_id, cond.id)  # back edge
            breaks = self._loop_breaks.pop()
            return [cond.id] + breaks
        if isinstance(stmt, ast.Repeat):
            head = self.cfg.node("join", hook)
            for pred in preds:
                self.cfg.link(pred, head.id)
            self._loop_breaks.append([])
            body_exits = self.block(stmt.body, hook, [head.id])
            cond = self._simple("cond", hook, stmt.condition, body_exits)
            expr_uses(stmt.condition, cond.uses)
            self.cfg.link(cond.id, head.id)  # back edge (until false)
            breaks = self._loop_breaks.pop()
            return [cond.id] + breaks
        if isinstance(stmt, ast.NumericFor):
            bounds = self._simple("stmt", hook, stmt, preds)
            expr_uses(stmt.start, bounds.uses)
            expr_uses(stmt.stop, bounds.uses)
            if stmt.step is not None:
                expr_uses(stmt.step, bounds.uses)
            head = self.cfg.node("forhead", hook, stmt)
            head.defs.append(Def(stmt.var, stmt.line, stmt.column, "for"))
            self.cfg.link(bounds.id, head.id)
            self._loop_breaks.append([])
            body_exits = self.block(stmt.body, hook, [head.id])
            for exit_id in body_exits:
                self.cfg.link(exit_id, head.id)
            breaks = self._loop_breaks.pop()
            return [head.id] + breaks
        if isinstance(stmt, ast.GenericFor):
            bounds = self._simple("stmt", hook, stmt, preds)
            expr_uses(stmt.iterable, bounds.uses)
            head = self.cfg.node("forhead", hook, stmt)
            for name in stmt.names:
                head.defs.append(Def(name, stmt.line, stmt.column, "for"))
            self.cfg.link(bounds.id, head.id)
            self._loop_breaks.append([])
            body_exits = self.block(stmt.body, hook, [head.id])
            for exit_id in body_exits:
                self.cfg.link(exit_id, head.id)
            breaks = self._loop_breaks.pop()
            return [head.id] + breaks
        raise TypeError(f"unknown statement {type(stmt).__name__}"
                        )  # pragma: no cover - parser emits known nodes


def build_cfg(block: ast.Block, hook: str) -> Cfg:
    """CFG of a single hook chunk."""
    cfg = Cfg()
    entry = cfg.node("entry", hook)
    builder = _Builder(cfg)
    frontier = builder.block(block, hook, [entry.id])
    exit_node = cfg.node("exit", hook)
    cfg.exit = exit_node.id
    for node_id in frontier + builder._return_nodes:
        cfg.link(node_id, exit_node.id)
    return cfg


def build_decision_cfg(when_block: ast.Block,
                       where_block: ast.Block) -> Cfg:
    """CFG of the combined decision chunk.

    Mirrors :meth:`MantlePolicy.decision_source`: the ``when`` statements
    run, then a synthetic ``if go`` guards the ``where`` statements.  The
    synthetic condition reads ``go`` (so a final ``go = ...`` is never a
    dead write) but is excluded from use-site diagnostics.
    """
    cfg = Cfg()
    entry = cfg.node("entry", "when")
    builder = _Builder(cfg)
    frontier = builder.block(when_block, "when", [entry.id])
    go_cond = cfg.node("cond", "when", synthetic=True)
    go_cond.uses.append(Use("go", 0, 0))
    for node_id in frontier:
        cfg.link(node_id, go_cond.id)
    where_frontier = builder.block(where_block, "where", [go_cond.id])
    exit_node = cfg.node("exit", "where")
    cfg.exit = exit_node.id
    cfg.link(go_cond.id, exit_node.id)  # the ``go`` false edge
    for node_id in where_frontier + builder._return_nodes:
        cfg.link(node_id, exit_node.id)
    return cfg
