"""Determinism and purity rules.

The sandbox rejects non-whitelisted stdlib names at run time; the fast
path memoizes ``metaload`` results per counter snapshot, which is only
sound when the hook is a pure function of its counters.  Two rules keep
the static view in lock-step with both:

* M401 forbidden-call -- calling anything outside the sandbox whitelist
  (``os.time``, ``math.random``, ``print``...).  The whitelist here is
  *derived from the live sandbox* (:data:`SANDBOX_GLOBALS` /
  :data:`SANDBOX_TABLE_MEMBERS` are built from ``_stdlib_vars()``), so
  the static rule cannot drift from the runtime behaviour.
* M402 impure-load-hook -- ``metaload``/``mdsload`` touching the
  persistent ``WRstate``/``RDstate`` store.  Load hooks are memoized by
  the fast path and replayed by the validator; both assume purity.
"""

from __future__ import annotations

from ..core.environment import DECISION_FUNCTIONS
from ..luapolicy import lua_ast as ast
from ..luapolicy.stdlib import (
    FORBIDDEN_STDLIB_GLOBALS,
    SANDBOX_GLOBALS,
    SANDBOX_TABLE_MEMBERS,
)
from .diagnostics import Diagnostic

#: Hooks whose results are memoized / replayed and must stay pure.
LOAD_HOOKS = frozenset({"metaload", "mdsload"})


def _chunk_defined_names(block: ast.Block, out: set[str]) -> None:
    for stmt in block.statements:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.add(target.name)
        elif isinstance(stmt, ast.LocalAssign):
            out.update(stmt.names)
        elif isinstance(stmt, ast.FunctionDecl):
            out.add(stmt.name)
            _chunk_defined_names(stmt.func.body, out)
        elif isinstance(stmt, ast.If):
            for _cond, body in stmt.branches:
                _chunk_defined_names(body, out)
            _chunk_defined_names(stmt.orelse, out)
        elif isinstance(stmt, (ast.While, ast.Repeat)):
            _chunk_defined_names(stmt.body, out)
        elif isinstance(stmt, ast.NumericFor):
            out.add(stmt.var)
            _chunk_defined_names(stmt.body, out)
        elif isinstance(stmt, ast.GenericFor):
            out.update(stmt.names)
            _chunk_defined_names(stmt.body, out)
        elif isinstance(stmt, ast.Do):
            _chunk_defined_names(stmt.body, out)


class _PurityWalker:
    """Visits every call (and state read) in a chunk, including inside
    function-expression bodies that the CFG pass deliberately skips."""

    def __init__(self, hook: str, env_names: frozenset[str],
                 defined: set[str],
                 diagnostics: list[Diagnostic]) -> None:
        self.hook = hook
        self.env_names = env_names
        self.defined = defined
        self.diagnostics = diagnostics

    # -- statements -----------------------------------------------------
    def block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self.statement(stmt)

    def statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Index):
                    self.expr(target.obj)
                    self.expr(target.key)
            for value in stmt.values:
                self.expr(value)
        elif isinstance(stmt, ast.LocalAssign):
            for value in stmt.values:
                self.expr(value)
        elif isinstance(stmt, ast.CallStmt):
            self.expr(stmt.call)
        elif isinstance(stmt, ast.Return):
            for value in stmt.values:
                self.expr(value)
        elif isinstance(stmt, ast.If):
            for condition, body in stmt.branches:
                self.expr(condition)
                self.block(body)
            self.block(stmt.orelse)
        elif isinstance(stmt, (ast.While, ast.Repeat)):
            self.expr(stmt.condition)
            self.block(stmt.body)
        elif isinstance(stmt, ast.NumericFor):
            self.expr(stmt.start)
            self.expr(stmt.stop)
            if stmt.step is not None:
                self.expr(stmt.step)
            self.block(stmt.body)
        elif isinstance(stmt, ast.GenericFor):
            self.expr(stmt.iterable)
            self.block(stmt.body)
        elif isinstance(stmt, ast.FunctionDecl):
            self.block(stmt.func.body)
        elif isinstance(stmt, ast.Do):
            self.block(stmt.body)

    # -- expressions ----------------------------------------------------
    def expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Call):
            self._check_call(expr)
            if not isinstance(expr.func, (ast.Name, ast.Index)):
                self.expr(expr.func)
            for arg in expr.args:
                self.expr(arg)
        elif isinstance(expr, ast.Name):
            self._check_state_read(expr)
        elif isinstance(expr, ast.Index):
            self.expr(expr.obj)
            self.expr(expr.key)
        elif isinstance(expr, ast.UnaryOp):
            self.expr(expr.operand)
        elif isinstance(expr, ast.BinaryOp):
            self.expr(expr.left)
            self.expr(expr.right)
        elif isinstance(expr, ast.TableConstructor):
            for tfield in expr.fields:
                if tfield.key is not None:
                    self.expr(tfield.key)
                self.expr(tfield.value)
        elif isinstance(expr, ast.FunctionExpr):
            self.block(expr.body)

    def _check_state_read(self, name: ast.Name) -> None:
        if self.hook in LOAD_HOOKS and name.name in DECISION_FUNCTIONS:
            self.diagnostics.append(Diagnostic(
                "M402", self.hook,
                f"{name.name!r} touches the persistent policy state -- "
                f"{self.hook} must be a pure function of its counters "
                "(its results are memoized)",
                name.line, name.column,
                hint="move stateful logic into the when/where hooks"))

    def _check_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.name
            if name in self.defined:
                return
            if name in DECISION_FUNCTIONS:
                if self.hook in LOAD_HOOKS:
                    self._check_state_read(func)
                return
            if name in self.env_names or name in SANDBOX_GLOBALS:
                return
            if name in FORBIDDEN_STDLIB_GLOBALS:
                self.diagnostics.append(Diagnostic(
                    "M401", self.hook,
                    f"call to {name!r}, which the sandbox removes -- "
                    "policies must be deterministic and side-effect "
                    "free", func.line, func.column,
                    hint="only the whitelisted stdlib subset "
                         "(max, min, math.floor, ...) is available"))
            else:
                self.diagnostics.append(Diagnostic(
                    "M401", self.hook,
                    f"call to unknown function {name!r} (not a sandbox "
                    "builtin and never defined in this chunk)",
                    func.line, func.column))
            return
        if isinstance(func, ast.Index) and \
                isinstance(func.obj, ast.Name) and \
                isinstance(func.key, ast.StringLiteral):
            root, member = func.obj.name, func.key.value
            if root in self.defined or root in self.env_names:
                return
            members = SANDBOX_TABLE_MEMBERS.get(root)
            if members is not None:
                if member not in members:
                    self.diagnostics.append(Diagnostic(
                        "M401", self.hook,
                        f"call to '{root}.{member}', which is not in the "
                        "sandbox whitelist",
                        func.key.line, func.key.column,
                        hint="available: " + ", ".join(
                            f"{root}.{m}" for m in sorted(members))))
                return
            if root in FORBIDDEN_STDLIB_GLOBALS:
                self.diagnostics.append(Diagnostic(
                    "M401", self.hook,
                    f"call to '{root}.{member}' -- the {root!r} library "
                    "is removed by the sandbox (non-deterministic or "
                    "side-effecting)", func.obj.line, func.obj.column,
                    hint="policies cannot touch the OS, files, or "
                         "wall-clock time"))
            return
        self.expr(func)


def check_purity(block: ast.Block, hook: str,
                 env_names: frozenset[str],
                 diagnostics: list[Diagnostic]) -> None:
    """Run M401/M402 over one hook chunk."""
    defined: set[str] = set()
    _chunk_defined_names(block, defined)
    _PurityWalker(hook, env_names, defined, diagnostics).block(block)
