"""Structured lint findings for Mantle policies.

A :class:`Diagnostic` is one finding of the static analyzer: a rule id, a
severity, the hook it was found in, a source position (line/column are
1-based and relative to that hook's source text) and a fix hint.  The rule
catalogue below is the single source of truth for ids and severities; the
full prose catalogue with examples lives in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: rule id -> (slug, severity).  Severities: ``error`` blocks injection
#: (unless explicitly bypassed), ``warning`` is advisory.
RULES: dict[str, tuple[str, str]] = {
    # syntax / structure
    "M001": ("syntax-error", "error"),
    # CFG / def-use (repro.analysis.defuse)
    "M101": ("undefined-global", "error"),
    "M102": ("misspelled-binding", "error"),
    "M103": ("use-before-def", "warning"),
    "M104": ("dead-write", "warning"),
    "M105": ("binding-overwrite", "warning"),
    "M106": ("shadowed-builtin-call", "error"),
    "M107": ("unknown-metric-key", "error"),
    # hook contracts (repro.analysis.absint)
    "M201": ("hook-return-type", "error"),
    "M202": ("go-not-boolean", "warning"),
    "M203": ("go-never-set", "warning"),
    "M204": ("targets-index-range", "error"),
    "M205": ("load-conservation", "warning"),
    # loop bounds / cost (repro.analysis.loops)
    "M301": ("infinite-loop", "error"),
    "M302": ("loop-bound-unprovable", "warning"),
    "M303": ("loop-budget", "warning"),
    # determinism / purity (repro.analysis.purity)
    "M401": ("forbidden-call", "error"),
    "M402": ("impure-load-hook", "error"),
}

_SEVERITY_ORDER = {"error": 0, "warning": 1, "info": 2}
_HOOK_ORDER = {"policy": 0, "metaload": 1, "mdsload": 2, "when": 3,
               "where": 4, "howmuch": 5}


def rule_severity(rule: str) -> str:
    return RULES[rule][1]


def rule_slug(rule: str) -> str:
    return RULES[rule][0]


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``line``/``column`` are 1-based positions *within the hook's source
    text* (the way policy files and ``MantlePolicy`` fields carry hooks),
    or None when the finding has no single position.
    """

    rule: str
    hook: str
    message: str
    line: Optional[int] = None
    column: Optional[int] = None
    hint: str = ""
    severity: str = field(default="")

    def __post_init__(self) -> None:
        if not self.severity:
            object.__setattr__(self, "severity", rule_severity(self.rule))

    @property
    def slug(self) -> str:
        return rule_slug(self.rule)

    def location(self) -> str:
        if self.line is None:
            return self.hook
        if not self.column:
            return f"{self.hook}:{self.line}"
        return f"{self.hook}:{self.line}:{self.column}"

    def format(self) -> str:
        text = f"{self.severity}[{self.rule}] {self.location()}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "slug": self.slug,
            "severity": self.severity,
            "hook": self.hook,
            "message": self.message,
            "line": self.line,
            "column": self.column,
            "hint": self.hint,
        }

    def sort_key(self) -> tuple:
        return (
            _HOOK_ORDER.get(self.hook, 99),
            self.line if self.line is not None else 0,
            self.column if self.column is not None else 0,
            self.rule,
        )


@dataclass(frozen=True)
class LintReport:
    """All findings for one policy, ordered by hook then position."""

    policy_name: str
    diagnostics: tuple[Diagnostic, ...] = ()

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    @property
    def ok(self) -> bool:
        """True when nothing error-severity fired (warnings are advisory)."""
        return not self.errors

    def summary(self) -> str:
        """Short one-line summary, e.g. for ``store log``."""
        errors, warnings = len(self.errors), len(self.warnings)
        if not errors and not warnings:
            return "lint:clean"
        parts = []
        if errors:
            parts.append(f"{errors}E")
        if warnings:
            parts.append(f"{warnings}W")
        return "lint:" + ",".join(parts)

    def render(self) -> str:
        """Multi-line human-readable report."""
        if not self.diagnostics:
            return f"{self.policy_name}: clean"
        lines = [d.format() for d in self.diagnostics]
        errors, warnings = len(self.errors), len(self.warnings)
        lines.append(f"{self.policy_name}: {errors} error(s), "
                     f"{warnings} warning(s)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "policy": self.policy_name,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


class PolicyLintError(ValueError):
    """Raised by the injection path when a policy fails an error-severity
    lint rule and lint was not explicitly bypassed."""

    def __init__(self, report: LintReport) -> None:
        first = report.errors[0].format() if report.errors else ""
        super().__init__(
            f"policy {report.policy_name!r} failed lint with "
            f"{len(report.errors)} error(s); first: {first} "
            "(pass lint=False / --no-lint to inject anyway)"
        )
        self.report = report


def finalize(policy_name: str,
             diagnostics: list[Diagnostic]) -> LintReport:
    """De-duplicate, apply suppressions, sort, and build the report.

    Suppressions: an M401/M402/M107 finding at a position also flagged as
    an undefined/misspelled name (M101/M102) keeps only the more specific
    rule.
    """
    specific = {(d.hook, d.line, d.column)
                for d in diagnostics if d.rule in ("M401", "M402", "M107")}
    kept: list[Diagnostic] = []
    seen: set[tuple] = set()
    for diag in diagnostics:
        if diag.rule in ("M101", "M102") and \
                (diag.hook, diag.line, diag.column) in specific:
            continue
        key = (diag.rule, diag.hook, diag.line, diag.column, diag.message)
        if key in seen:
            continue
        seen.add(key)
        kept.append(diag)
    kept.sort(key=lambda d: (_SEVERITY_ORDER.get(d.severity, 9),) +
              d.sort_key())
    return LintReport(policy_name, tuple(kept))
