"""MDS heartbeats.

Every 10 seconds each MDS packages its metrics and sends them to every
other rank (paper Fig 2, "send HB"/"recv HB").  Heartbeats take time to
pack, cross the network, and unpack, so every rank balances on a *stale*
view of the cluster -- the paper blames exactly this staleness for
non-reproducible balancing (§2.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class HeartBeat:
    """One rank's metrics snapshot, as shipped to its peers.

    Field names mirror the Mantle environment (paper Table 2):
    ``auth``/``all`` metadata loads, ``cpu``/``mem`` utilisation, ``q``
    queue length, ``req`` request rate.
    """

    rank: int
    sent_at: float
    auth_metaload: float
    all_metaload: float
    cpu: float        # percent, 0-100
    mem: float        # percent, 0-100
    queue_length: float
    request_rate: float
    epoch: int = 0

    def as_metrics(self) -> dict[str, float]:
        return {
            "auth": self.auth_metaload,
            "all": self.all_metaload,
            "cpu": self.cpu,
            "mem": self.mem,
            "q": self.queue_length,
            "req": self.request_rate,
        }


@dataclass
class HeartbeatTable:
    """Latest heartbeat received from each rank (including self).

    Entries do not live forever: :meth:`evict_stale` drops ranks whose
    heartbeats stopped arriving (they are remembered in :attr:`down`, the
    MDSMap-style failure knowledge), so balancers stop shipping load to
    ranks that went silent.  A fresh beat from a down rank revives it.
    """

    received: dict[int, HeartBeat] = field(default_factory=dict)
    received_at: dict[int, float] = field(default_factory=dict)
    #: Ranks declared dead -- either evicted for staleness or marked down
    #: explicitly (the monitor noticing a missed beacon).
    down: set[int] = field(default_factory=set)

    def store(self, beat: HeartBeat, now: float) -> None:
        current = self.received.get(beat.rank)
        if current is None or beat.sent_at >= current.sent_at:
            self.received[beat.rank] = beat
            self.received_at[beat.rank] = now
            self.down.discard(beat.rank)

    def get(self, rank: int) -> HeartBeat | None:
        return self.received.get(rank)

    def staleness(self, rank: int, now: float) -> float:
        beat = self.received.get(rank)
        return now - beat.sent_at if beat else float("inf")

    def have_all(self, num_ranks: int) -> bool:
        return all(rank in self.received for rank in range(num_ranks))

    # -- liveness -------------------------------------------------------
    def evict_stale(self, now: float, timeout: float) -> list[int]:
        """Evict ranks whose last beat arrived more than *timeout* ago.

        Evicted ranks move to :attr:`down`; returns the ranks evicted.
        """
        evicted = [rank for rank, at in self.received_at.items()
                   if now - at > timeout]
        for rank in evicted:
            del self.received[rank]
            del self.received_at[rank]
            self.down.add(rank)
        return evicted

    def alive_ranks(self, now: float, timeout: float) -> list[int]:
        """Ranks with a beat fresher than *timeout* and not declared down."""
        return sorted(
            rank for rank, at in self.received_at.items()
            if now - at <= timeout and rank not in self.down
        )

    def mark_down(self, rank: int) -> None:
        """Declare *rank* dead (failure detected out of band)."""
        self.received.pop(rank, None)
        self.received_at.pop(rank, None)
        self.down.add(rank)

    def is_down(self, rank: int) -> bool:
        return rank in self.down
