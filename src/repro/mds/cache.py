"""Per-MDS inode cache.

MDS nodes cache inodes and path prefixes so lookups/getattrs resolve
locally (paper §2, "CephFS's Client-Server Metadata Protocols").  A miss on
a directory object means fetching it from RADOS (a FETCH, with real
latency).  Spreading metadata forces every rank to replicate parent-prefix
inodes, which is one of the memory/communication costs of distribution the
paper calls out in §2.1.
"""

from __future__ import annotations

from collections import OrderedDict


class InodeCache:
    """LRU cache of inode numbers held in one MDS's memory."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, ino: int) -> bool:
        return ino in self._entries

    def touch(self, ino: int) -> bool:
        """Look up *ino*, inserting it on miss.  Returns True on a hit."""
        if ino in self._entries:
            self._entries.move_to_end(ino)
            self.hits += 1
            return True
        self.misses += 1
        self.insert(ino)
        return False

    def insert(self, ino: int) -> None:
        if ino in self._entries:
            self._entries.move_to_end(ino)
            return
        self._entries[ino] = None
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def drop(self, ino: int) -> None:
        self._entries.pop(ino, None)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def fill_fraction(self) -> float:
        return len(self._entries) / self.capacity

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
