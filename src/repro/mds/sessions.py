"""Client sessions at an MDS.

Sessions carry coherency/consistency state (permissions, capabilities).
The paper measures that distributing metadata multiplies session count and
that sessions are *flushed* when slave MDS ranks rename or migrate
directories -- 157 sessions with 1 MDS vs 936 with 4 ranks spilled evenly
(§4.1).  Each flush stalls the session's client briefly; in aggregate this
is a big part of why migration can cost more than parallelism buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Session:
    """One client's session with one MDS rank."""

    client_id: int
    rank: int
    opened_at: float
    requests: int = 0
    flushes: int = 0
    #: Paths of subtrees this session holds capabilities on (directory
    #: paths the client has recently operated in).
    cap_paths: set[str] = field(default_factory=set)


class SessionTable:
    """All sessions at one MDS rank."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._sessions: dict[int, Session] = {}
        self.sessions_opened = 0
        self.total_flushes = 0

    def get_or_open(self, client_id: int, now: float) -> Session:
        session = self._sessions.get(client_id)
        if session is None:
            session = Session(client_id=client_id, rank=self.rank,
                              opened_at=now)
            self._sessions[client_id] = session
            self.sessions_opened += 1
        return session

    def record_request(self, client_id: int, dir_path: str,
                       now: float) -> Session:
        session = self.get_or_open(client_id, now)
        session.requests += 1
        session.cap_paths.add(dir_path)
        return session

    def sessions_with_caps_under(self, path: str) -> list[Session]:
        """Sessions holding caps on *path* or anything below it."""
        prefix = path.rstrip("/")
        out = []
        for session in self._sessions.values():
            for cap in session.cap_paths:
                if cap == prefix or cap.startswith(prefix + "/") or prefix == "":
                    out.append(session)
                    break
        return out

    def flush_under(self, path: str) -> int:
        """Flush every session with caps under *path*; returns the count."""
        flushed = self.sessions_with_caps_under(path)
        for session in flushed:
            session.flushes += 1
        self.total_flushes += len(flushed)
        return len(flushed)

    def reset(self) -> int:
        """Drop every session (an MDS crash kills its session table).

        Clients re-open sessions lazily on their next request.  Returns the
        number of sessions dropped.
        """
        dropped = len(self._sessions)
        self._sessions.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def all_sessions(self) -> list[Session]:
        return list(self._sessions.values())
