"""The MDS service: servers, caches, sessions, heartbeats, migration.

These are the *mechanisms* of dynamic subtree partitioning; the injectable
*policies* that drive them live in :mod:`repro.core`.
"""

from .cache import InodeCache
from .heartbeat import HeartBeat, HeartbeatTable
from .migration import ExportUnit, Migrator
from .server import FREEZE_RETRY_DELAY, MAX_HOPS, MdsServer
from .sessions import Session, SessionTable

__all__ = [
    "ExportUnit",
    "FREEZE_RETRY_DELAY",
    "HeartBeat",
    "HeartbeatTable",
    "InodeCache",
    "MAX_HOPS",
    "MdsServer",
    "Migrator",
    "Session",
    "SessionTable",
]
