"""The metadata server (MDS) rank.

Implements the mechanism side of dynamic subtree partitioning (paper Fig 2):
request service with a FIFO CPU, path-traversal hits vs. forwards, inode
caching with RADOS fetches on miss, journalling, directory fragmentation,
client sessions, heartbeats, and the migration two-phase commit.  All
*policy* lives in the attached balancer (:mod:`repro.core`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..clients.ops import (COUNTER_KIND, IS_WRITE, MetaReply, MetaRequest,
                           OpKind)
from ..config import ClusterConfig
from ..metrics.collectors import ClusterMetrics, MdsMetrics
from ..namespace.counters import LoadCounters
from ..namespace.directory import Directory
from ..namespace.tree import Namespace, parent_and_leaf
from ..rados.cluster import RadosCluster
from ..rados.journal import MdsJournal
from ..sim.engine import Completion, SimEngine
from ..sim.network import Network
from ..sim.rng import ServiceTime
from ..sim.stations import FifoStation
from .cache import InodeCache
from .heartbeat import HeartBeat, HeartbeatTable
from .migration import Migrator
from .sessions import SessionTable

if TYPE_CHECKING:  # pragma: no cover
    from ..core.balancer import MantleBalancer
    from ..faults.injector import FaultState

#: A frozen dirfrag makes requests retry after this long.
FREEZE_RETRY_DELAY = 0.002
#: Give up forwarding after this many hops (authority changed under us).
MAX_HOPS = 16


class MdsServer:
    """One MDS rank."""

    def __init__(self, engine: SimEngine, rank: int,
                 namespace: Namespace, network: Network,
                 rados: RadosCluster, config: ClusterConfig,
                 rng, metrics: ClusterMetrics) -> None:
        self.engine = engine
        self.rank = rank
        self.namespace = namespace
        self.network = network
        self.rados = rados
        self.config = config
        self.rng = rng
        self.cluster_metrics = metrics
        self.metrics: MdsMetrics = metrics.mds(rank)
        self.station = FifoStation(engine, f"mds{rank}", rng,
                                   executor=self._execute)
        self.journal = MdsJournal(engine, rados, rank,
                                  segment_bytes=config.journal_segment_bytes,
                                  entry_bytes=config.journal_entry_bytes)
        self.cache = InodeCache(config.cache_capacity)
        self.sessions = SessionTable(rank)
        self.migrator = Migrator(self)
        self.hb_table = HeartbeatTable()
        self.peers: list["MdsServer"] = []  # set by the cluster assembly
        self.balancer: Optional["MantleBalancer"] = None
        #: Policy-lifecycle hook (e.g. a CanaryController) driven from this
        #: rank's heartbeat ticks; may swap ``self.balancer``.
        self.lifecycle = None
        #: Decayed load this rank served as the authority ("auth") and
        #: touched at all, including forwards ("all") -- Table 2 metrics.
        self.auth_load = LoadCounters(half_life=config.decay_half_life)
        self.all_load = LoadCounters(half_life=config.decay_half_life)
        self._service = {
            kind: ServiceTime(config.service.mean_for(kind.value),
                              config.service.cv)
            for kind in OpKind
        }
        self._forward_service = ServiceTime(config.service.forward,
                                            config.service.cv)
        self._hb_epoch = 0
        self._stores_pending: dict[int, int] = {}
        # Fault state.
        #: False while this rank is down (crashed, not yet restarted).
        self.alive = True
        #: Service-time multiplier; >1.0 models a degraded ("limping") CPU.
        self.cpu_factor = 1.0
        #: Shared per-cluster fault state (set when faults are armed).
        self.fault_state: Optional["FaultState"] = None
        self.crashed_at: Optional[float] = None
        self.recovered_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def receive_request(self, req: MetaRequest, done: Completion,
                        count_hop: bool = True) -> None:
        """Entry point for a request arriving over the network."""
        if not self.alive:
            # The client (or a forwarding peer) sent to a dead rank: bounce
            # and retry once authority has been re-resolved.
            self._retry_dead(req, done)
            return
        if count_hop:
            req.hops.append(self.rank)
        self.metrics.reqs_in_window += 1
        service = self._sample_service(req) * self.cpu_factor
        self.station.submit((req, done), service, want_completion=False)

    def _retry_dead(self, req: MetaRequest, done: Completion) -> None:
        """Park a request that hit a dead rank; redeliver after a delay.

        Redelivery re-resolves authority from the namespace, so once a
        standby has taken over the subtree the request lands there; while
        the rank stays dead the request keeps waiting (clients simply see
        high latency during the outage, as they would against real CephFS).
        """
        self.metrics.dead_letters += 1

        def redeliver() -> None:
            if done.done:
                return
            try:
                auth = self.namespace.authority_for_path(req.path)
            except (FileNotFoundError, NotADirectoryError):
                auth = self.rank
            target = self.peers[auth] if self.peers else self
            if not target.alive:
                self.engine.schedule(self.config.dead_rank_retry_delay,
                                     redeliver)
                return
            # Bounces do not count as forward hops (MAX_HOPS is for
            # authority ping-pong, not for waiting out an outage).
            target.receive_request(req, done, count_hop=False)

        self.engine.schedule(self.config.dead_rank_retry_delay, redeliver)

    def _sample_service(self, req: MetaRequest) -> float:
        """CPU time this request will take at this rank.

        Forwarded requests only cost the recognition/forward slice; local
        requests cost the op's service time, inflated by the coherency
        surcharge when the target directory is spread over several ranks.
        """
        resolved = self._resolve(req)
        if resolved is None:
            return self._forward_service.sample(self.rng)
        parent, _leaf, frag = resolved
        if frag is not None and frag.authority() != self.rank:
            return self._forward_service.sample(self.rng)
        base = self._service[req.kind].sample(self.rng)
        if req.kind is OpKind.READDIR:
            # Service scales gently with directory size.
            entries = parent.entry_count()
            base *= 1.0 + min(8.0, entries / 20_000.0)
        spread = parent.effective_spread()
        if spread > 1.0 and IS_WRITE[req.kind]:
            base *= 1.0 + self.config.sync_penalty * (spread - 1.0) ** 0.5
        return base

    @staticmethod
    def _effective_spread(directory: Directory) -> float:
        """Effective number of ranks sharing this directory's dirfrags
        (inverse participation ratio; cached per authority epoch)."""
        return directory.effective_spread()

    def _resolve(self, req: MetaRequest):
        """(parent directory, leaf name, dirfrag) for the request, or None."""
        try:
            if req.kind is OpKind.READDIR:
                directory = self.namespace.resolve_dir(req.path)
                return directory, None, next(iter(directory.frags.values()))
            split = parent_and_leaf(req.path)
            if split is None:
                directory = self.namespace.root
                return directory, None, next(iter(directory.frags.values()))
            parent = self.namespace.resolve_dir(split[0])
            return parent, split[1], parent.frag_for_name(split[1])
        except (FileNotFoundError, NotADirectoryError):
            return None

    def _execute(self, task) -> None:
        req, done = task
        if not isinstance(req, MetaRequest):
            # Internal work (fragmentation, session flushes): the CPU time
            # was the point; there is nothing to apply.
            return
        resolved = self._resolve(req)
        if resolved is None:
            self._reply(req, done, error="ENOENT")
            return
        parent, leaf, frag = resolved
        if frag is not None and frag.frozen:
            # Unit mid-migration: stall and retry (requests queue behind the
            # two-phase commit, which is the freeze cost clients observe).
            self.engine.schedule(
                FREEZE_RETRY_DELAY, self.receive_request, req, done, False
            )
            return
        auth = frag.authority() if frag is not None else self.rank
        self.all_load.hit(COUNTER_KIND[req.kind], self.engine.now)
        if auth != self.rank and len(req.hops) < MAX_HOPS:
            self.metrics.forwards += 1
            self.network.deliver(self.peers[auth].receive_request, req, done)
            return
        self.metrics.traversal_hits += 1
        self._serve(req, done, parent, leaf)

    # -- local service ---------------------------------------------------
    def _serve(self, req: MetaRequest, done: Completion,
               parent: Directory, leaf: Optional[str]) -> None:
        now = self.engine.now
        rank = self.rank
        self.sessions.record_request(req.client_id, parent.path(), now)
        # Mark this rank active along the path: active ranks take part in
        # each ancestor's coherency and keep their replicas fresh.
        node = parent
        while node is not None:
            node.server_activity[rank] = now
            node = node.parent
        needs_fetch, remote_prefixes = self._touch_cache(parent)
        delay = 0.0
        if needs_fetch and parent.authority() != self.rank:
            # The directory inode's authority is elsewhere: refresh the
            # replica from the authoritative MDS, not from RADOS.
            remote_prefixes += 1
            needs_fetch = False
        if remote_prefixes:
            # Stale/uncached ancestor inodes whose authority is elsewhere:
            # the serving MDS must traverse the prefix remotely (§2.1 --
            # "requests involving prefix path traversals").
            self.metrics.prefix_traversals += remote_prefixes
            delay += remote_prefixes * self.config.prefix_traversal_time
        if needs_fetch:
            # Authoritative directory object not in memory: fetch it from
            # RADOS, then apply.
            self.metrics.fetches += 1
            self.namespace.record_hit(parent, leaf, "FETCH", now)
            obj = f"dir.{parent.inode.ino}"
            fetched = self.rados.read(obj, self.config.dir_object_bytes)
            fetched.add_callback(
                lambda _c: self._apply(req, done, parent, leaf)
            )
            return
        if delay > 0:
            self.engine.schedule(delay, self._apply, req, done, parent, leaf)
            return
        self._apply(req, done, parent, leaf)

    def _touch_cache(self, directory: Directory) -> tuple[bool, int]:
        """Touch the path prefix in the cache.

        Returns (parent missed -> RADOS fetch needed, number of *remote*
        ancestor inodes that missed -> cross-rank prefix traversals).
        """
        # InodeCache.touch inlined over the ancestor chain: three-plus
        # touches per op.  The hit path only reorders the LRU.
        cache = self.cache
        entries = cache._entries
        rank = self.rank
        ino = directory.inode.ino
        if ino in entries:
            entries.move_to_end(ino)
            cache.hits += 1
            missed = False
        else:
            cache.misses += 1
            cache.insert(ino)
            missed = True
        remote_misses = 0
        node = directory.parent
        while node is not None:
            ino = node.inode.ino
            if ino in entries:
                entries.move_to_end(ino)
                cache.hits += 1
            else:
                cache.misses += 1
                cache.insert(ino)
                if node.authority() != rank:
                    remote_misses += 1
            node = node.parent
        return missed, remote_misses

    def _maybe_invalidate_replicas(self, parent: Directory) -> None:
        """A write dirties the parent (and grandparent) fragstats; lazily
        propagated, this occasionally invalidates the inode replicas other
        ranks hold, forcing them into remote prefix traversals."""
        if len(self.peers) <= 1:
            return
        if self.rng.random() >= self.config.parent_inval_prob:
            return
        now = self.engine.now
        window = self.config.coherency_window
        node: Optional[Directory] = parent
        for _level in range(self.config.parent_inval_levels):
            if node is None:
                break
            # Ranks recently active under this directory take part in its
            # coherency protocol and keep their replica fresh (they pay
            # through the scatter-gather path instead); only passive
            # cachers go stale.
            for peer in self.peers:
                if peer.rank == self.rank:
                    continue
                if now - node.server_activity.get(peer.rank,
                                                  -float("inf")) < window:
                    continue
                peer.cache.drop(node.inode.ino)
            node = node.parent

    def _apply(self, req: MetaRequest, done: Completion,
               parent: Directory, leaf: Optional[str]) -> None:
        now = self.engine.now
        kind = req.kind
        result = None
        try:
            if kind is OpKind.CREATE:
                existing = parent.lookup(leaf) if leaf is not None else None
                if existing is not None and not existing.is_dir:
                    # O_CREAT on an existing file: truncate/update in place
                    # (compiles recreate .o files all the time).
                    existing.touch(now, write=True)
                    existing.size = 0
                    self.cache.touch(existing.ino)
                else:
                    inode = self.namespace.create(req.path, now=now)
                    self.cache.insert(inode.ino)
                self.journal.log("create")
                self._maybe_store(parent, leaf, now)
            elif kind is OpKind.MKDIR:
                directory = self.namespace.mkdir(req.path, now=now)
                self.cache.insert(directory.inode.ino)
                self.journal.log("mkdir")
            elif kind is OpKind.UNLINK:
                self.namespace.unlink(req.path, now=now)
                self.journal.log("unlink")
            elif kind is OpKind.RENAME:
                dst = req.payload.get("dst")
                if not dst:
                    self._reply(req, done, error="EINVAL")
                    return
                dst_auth = self.namespace.authority_for_path(dst)
                self.namespace.rename(req.path, dst, now=now)
                self.journal.log("rename")
                if dst_auth != self.rank:
                    # Cross-MDS rename: §4.1 -- "client sessions ... are
                    # flushed when slave MDS nodes rename or migrate
                    # directories".
                    dst_dir = dst.rsplit("/", 1)[0] or "/"
                    flushed = self.sessions.flush_under(parent.path())
                    flushed += self.peers[dst_auth].sessions.flush_under(
                        dst_dir)
                    self.metrics.session_flushes += flushed
                    stall = flushed * self.config.session_flush_time
                    if stall > 0:
                        self.station.submit(("rename-flush", req.path),
                                            stall, want_completion=False)
            elif kind is OpKind.READDIR:
                entries = parent.readdir()
                result = len(entries)
            else:  # STAT / LOOKUP / OPEN
                inode = (parent.lookup(leaf) if leaf is not None
                         else parent.inode)
                if inode is None:
                    raise FileNotFoundError(req.path)
                inode.touch(now)
                self.cache.touch(inode.ino)
                result = inode.ino
        except FileExistsError:
            self._reply(req, done, error="EEXIST")
            return
        except (FileNotFoundError, NotADirectoryError):
            self._reply(req, done, error="ENOENT")
            return
        except ValueError:
            self._reply(req, done, error="EINVAL")
            return
        counter_kind = COUNTER_KIND[kind]
        self.namespace.record_hit(parent, leaf, counter_kind, now)
        self.auth_load.hit(counter_kind, now)
        self.metrics.ops_served += 1
        self.cluster_metrics.timeline.record(self.rank, now)
        self._maybe_fragment(parent)
        if IS_WRITE[kind]:
            self._maybe_scatter_gather(parent)
            self._maybe_invalidate_replicas(parent)
        self._reply(req, done, result=result, parent=parent)

    def _maybe_scatter_gather(self, directory: Directory) -> None:
        """Slave writes on a spread directory occasionally trigger a full
        scatter-gather: updates on the directory halt while stats travel to
        the authoritative MDS and back (paper §4.1, footnote 3)."""
        spread = directory.effective_spread()
        if spread <= 1.0 or self.rank == directory.authority():
            return
        probability = (self.config.scatter_gather_prob
                       * ((spread - 1.0) / 3.0) ** 2)
        if self.rng.random() >= probability:
            return
        self.metrics.scatter_gathers += 1
        participants = len({frag.authority()
                            for frag in directory.frags.values()})
        # Halts grow superlinearly with the ranks involved: every extra
        # participant adds round trips and widens the halted scope.
        halt = self.config.scatter_gather_time * participants ** 1.5
        frozen = [frag for frag in directory.frags.values() if not frag.frozen]
        for frag in frozen:
            frag.frozen = True

        def unfreeze() -> None:
            for frag in frozen:
                frag.frozen = False

        self.engine.schedule(halt, unfreeze)

    def _maybe_store(self, parent: Directory, leaf: Optional[str],
                     now: float) -> None:
        """Every Nth write to a directory commits it back to RADOS."""
        key = parent.inode.ino
        count = self._stores_pending.get(key, 0) + 1
        if count >= self.config.store_every:
            self._stores_pending[key] = 0
            self.metrics.stores += 1
            self.namespace.record_hit(parent, leaf, "STORE", now)
            obj = f"dir.{parent.inode.ino}"
            self.rados.write(obj, self.config.dir_object_bytes)
        else:
            self._stores_pending[key] = count

    def _maybe_fragment(self, directory: Directory) -> None:
        if directory.needs_fragmentation():
            directory.fragment(now=self.engine.now)
            self.metrics.fragmentations += 1
            # Fragmentation is real work on this CPU.
            self.station.submit(("fragment", directory.path()), 0.001,
                                want_completion=False)

    def _record_all_load(self, req: MetaRequest) -> None:
        self.all_load.hit(COUNTER_KIND[req.kind], self.engine.now)

    def _reply(self, req: MetaRequest, done: Completion,
               result=None, error: Optional[str] = None,
               parent: Optional[Directory] = None) -> None:
        frag_map = None
        dir_path = None
        if parent is not None:
            dir_path = parent.path()
            frag_map = parent.frag_map()
        hops = len(req.hops)
        reply = MetaReply(
            req_id=req.req_id,
            kind=req.kind,
            path=req.path,
            served_by=self.rank,
            forwards=hops - 1 if hops > 1 else 0,
            latency=self.engine.now - req.issued_at,
            result=result,
            error=error,
            dst=req.payload.get("dst"),
            dir_path=dir_path,
            frag_map=frag_map,
        )
        if not done.done:
            self.network.deliver(done.succeed, reply)

    # ------------------------------------------------------------------
    # Crash & recovery
    # ------------------------------------------------------------------
    @property
    def beacon_grace(self) -> float:
        """Effective heartbeat-eviction timeout: never evict faster than
        beats can arrive, whatever the config says."""
        return max(self.config.mds_beacon_grace,
                   1.5 * self.config.heartbeat_interval)

    def crash(self) -> None:
        """Fail this rank: lose volatile state, abandon all work in flight.

        In-flight exports abort (their 2PC resolution decides rollback vs
        roll-forward); peers abort exports targeting us; queued metadata
        requests bounce back for retry; the unflushed journal tail,
        sessions and cache are lost.
        """
        if not self.alive:
            return
        self.alive = False
        self.crashed_at = self.engine.now
        self.recovered_at = None
        self.metrics.crashes += 1
        self.migrator.abort_all("exporter crashed")
        for peer in self.peers:
            if peer.rank != self.rank:
                peer.migrator.abort_targeting(self.rank)
        for job in self.station.drain():
            payload = job.payload
            if (isinstance(payload, tuple) and len(payload) == 2
                    and isinstance(payload[0], MetaRequest)):
                req, done = payload
                self._retry_dead(req, done)
            elif job.completion is not None and not job.completion.done:
                # Internal work (fragmentation, session flushes): anyone
                # still waiting on it was interrupted above; cancelling is
                # ignored by their stale wait tokens.
                job.completion.cancel()
        self.journal.drop_buffer()
        self.cache.clear()
        self.sessions.reset()
        self.hb_table = HeartbeatTable()

    def restart(self):
        """Bring the rank back: respawn, replay the journal, serve again.

        Returns the recovery :class:`~repro.sim.engine.Process`; its
        completion fires once the rank is serving.
        """
        if self.alive:
            raise RuntimeError(f"mds{self.rank} is not down")
        return self.engine.process(self._restart(),
                                   name=f"restart:mds{self.rank}")

    def _restart(self):
        yield self.config.restart_base_time
        # Journal replay: sequential scan of the trailing segments.
        yield from self.journal.replay_segments(
            self.config.replay_segment_window)
        self.alive = True
        self.recovered_at = self.engine.now
        self.metrics.restarts += 1
        self.cache.clear()
        self.station.resume()

    # ------------------------------------------------------------------
    # Heartbeats & balancing
    # ------------------------------------------------------------------
    def start_heartbeats(self) -> None:
        """Begin the 10-second heartbeat/balance loop (paper Fig 2)."""
        offset = self.config.heartbeat_interval * (
            1.0 + 0.003 * self.rank  # slight desynchronisation across ranks
        )
        self.engine.every(self.config.heartbeat_interval,
                          self.heartbeat_tick, start_after=offset)

    def heartbeat_tick(self) -> None:
        if not self.alive:
            return  # dead ranks do not beat (their silence IS the signal)
        now = self.engine.now
        if self.lifecycle is not None:
            # Before the metric snapshot: a balancer swap this tick must
            # already shape this tick's metaload views.
            self.lifecycle.on_heartbeat(self, now)
        self.hb_table.evict_stale(now, self.beacon_grace)
        beat = self._snapshot_metrics()
        self.hb_table.store(beat, now)
        for peer in self.peers:
            if peer.rank == self.rank:
                continue
            # Pack time + network + unpack time: the staleness of §2.2.2.
            delay = 2 * self.config.heartbeat_pack_time
            if self.fault_state is not None:
                extra = self.fault_state.heartbeat_link(self.rank, peer.rank,
                                                        now)
                if extra is None:
                    continue  # link down: the beat is dropped
                delay += extra
            self.network.deliver_after(delay, peer.receive_heartbeat, beat)
        if self.balancer is not None:
            # Rebalance after this round's heartbeats have (probably)
            # arrived: send HB -> recv HB -> rebalance (paper Fig 2).
            self.engine.schedule(self.config.rebalance_delay,
                                 self._run_balancer)

    def _run_balancer(self) -> None:
        if self.balancer is not None and self.alive:
            self.balancer.tick(self)

    def receive_heartbeat(self, beat: HeartBeat) -> None:
        if not self.alive:
            return
        self.hb_table.store(beat, self.engine.now)

    def _snapshot_metrics(self) -> HeartBeat:
        now = self.engine.now
        self._hb_epoch += 1
        metaload_fn = (self.balancer.metaload_fn if self.balancer is not None
                       else _default_metaload)
        cpu = self.station.utilization_since_mark() * 100.0
        noise = self.config.cpu_measure_noise
        if noise > 0:
            # Instantaneous measurement noise (§2.2.2, point 1).
            cpu = max(0.0, cpu * (1.0 + self.rng.normal(0.0, noise)))
        return HeartBeat(
            rank=self.rank,
            sent_at=now,
            auth_metaload=metaload_fn(self.auth_load.snapshot(now)),
            all_metaload=metaload_fn(self.all_load.snapshot(now)),
            cpu=min(100.0, cpu),
            mem=100.0 * self.cache.fill_fraction,
            queue_length=float(self.station.queue_length),
            request_rate=self.metrics.take_request_rate(
                self.config.heartbeat_interval
            ),
            epoch=self._hb_epoch,
        )


def _default_metaload(snapshot: dict) -> float:
    """Table 1 metaload: IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE."""
    return (snapshot["IRD"] + 2.0 * snapshot["IWR"] + snapshot["READDIR"]
            + 2.0 * snapshot["FETCH"] + 4.0 * snapshot["STORE"])
