"""Inode migration: the two-phase commit mechanism.

Paper §2, "Migrate": "inode migrations are performed as a two-phase commit,
where the importer journals metadata, the exporter logs the event, and the
importer journals the event."  While a unit is in flight it is frozen --
requests touching it are stalled -- and client sessions with capabilities on
it are flushed (§4.1), which is where the real cost of a migration comes
from.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator, Optional, Union

from ..namespace.directory import Directory
from ..namespace.dirfrag import DirFrag
from ..sim.engine import CancelledError, Process

if TYPE_CHECKING:  # pragma: no cover
    from .server import MdsServer


class MigrationAborted(Exception):
    """Thrown into a migration process to abort it mid-flight."""


class ExportUnit:
    """Something the balancer can ship: a whole subtree or one dirfrag."""

    def __init__(self, target: Union[Directory, DirFrag]) -> None:
        self.target = target

    @property
    def is_subtree(self) -> bool:
        return isinstance(self.target, Directory)

    def path(self) -> str:
        return self.target.path()

    def dir_path(self) -> str:
        """Path of the owning directory (for session-cap matching)."""
        if self.is_subtree:
            return self.target.path()
        return self.target.directory.path()

    def inode_count(self) -> int:
        if self.is_subtree:
            return sum(d.entry_count() for d in self.target.walk()) + 1
        return len(self.target)

    def frags(self) -> Iterator[DirFrag]:
        if self.is_subtree:
            for directory in self.target.walk():
                yield from directory.frags.values()
        else:
            yield self.target

    def freeze(self) -> None:
        for frag in self.frags():
            frag.frozen = True

    def unfreeze(self) -> None:
        for frag in self.frags():
            frag.frozen = False

    def current_auth(self) -> int:
        if self.is_subtree:
            return self.target.authority()
        return self.target.authority()

    def set_auth(self, rank: int) -> None:
        if self.is_subtree:
            self.target.set_auth(rank)
            # The whole subtree now inherits the importer's authority.
            self.target.clear_descendant_auth()
        else:
            self.target.set_auth(rank)

    def load(self, metaload_fn, now: float) -> float:
        """Policy-defined metadata load of this unit."""
        if self.is_subtree:
            return sum(
                metaload_fn(frag.load_snapshot(now)) for frag in self.frags()
            )
        return metaload_fn(self.target.load_snapshot(now))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "subtree" if self.is_subtree else "dirfrag"
        return f"ExportUnit({kind} {self.path()!r})"


class ExportRecord:
    """Book-keeping for one in-flight export (its 2PC progress)."""

    __slots__ = ("unit", "target_rank", "phase", "process", "started_at")

    def __init__(self, unit: ExportUnit, target_rank: int,
                 started_at: float) -> None:
        self.unit = unit
        self.target_rank = target_rank
        self.started_at = started_at
        self.phase = "init"
        self.process: Optional[Process] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ExportRecord({self.unit.path()!r}->mds{self.target_rank} "
                f"phase={self.phase})")


@contextlib.contextmanager
def frozen_scope(unit: ExportUnit):
    """Freeze *unit* for the duration of the block -- every exit path
    (commit, rollback, uncaught error) unfreezes all of its frags."""
    unit.freeze()
    try:
        yield unit
    finally:
        unit.unfreeze()


class Migrator:
    """Executes exports from one MDS rank.

    Exports can be *aborted* mid-flight (a fault, or the importer dying):
    the process is interrupted and the abort is resolved by the commit
    point of the two-phase commit.  Before ``EImport`` is durable in the
    importer's journal the export rolls back -- every frag is unfrozen and
    authority stays with the exporter.  After it, the export rolls forward
    -- authority flips to the importer even though the finish event was
    never logged (exactly how CephFS resolves an interrupted export).
    """

    def __init__(self, mds: "MdsServer") -> None:
        self.mds = mds
        self.exports_started = 0
        self.exports_completed = 0
        self.exports_aborted = 0
        self.inodes_exported = 0
        self.active: list[ExportRecord] = []

    @property
    def in_flight(self) -> int:
        return len(self.active)

    def export(self, unit: ExportUnit, target_rank: int):
        """Kick off a two-phase-commit export; returns the process."""
        if target_rank == self.mds.rank:
            raise ValueError("cannot export to self")
        if target_rank < 0 or target_rank >= len(self.mds.peers):
            raise ValueError(f"no such MDS rank {target_rank}")
        if any(frag.frozen for frag in unit.frags()):
            raise RuntimeError(f"{unit!r} is already migrating")
        self.exports_started += 1
        record = ExportRecord(unit, target_rank, self.mds.engine.now)
        self.active.append(record)
        process = self.mds.engine.process(
            self._run(record),
            name=f"export:{unit.path()}->mds{target_rank}",
        )
        record.process = process
        # Retire via the process completion, not a generator ``finally``:
        # an export interrupted before its generator first runs would never
        # reach a ``finally`` and would leak the in-flight slot.
        process.completion.add_callback(lambda _c: self._retire(record))
        return process

    def _retire(self, record: ExportRecord) -> None:
        if record in self.active:
            self.active.remove(record)

    # -- aborts ---------------------------------------------------------
    def abort_all(self, reason: str = "exporter fault") -> list[ExportRecord]:
        """Abort every in-flight export (the exporter itself crashed)."""
        aborted = []
        for record in list(self.active):
            if record.process is not None and record.process.interrupt(
                    MigrationAborted(reason)):
                aborted.append(record)
        return aborted

    def abort_targeting(self, rank: int) -> list[ExportRecord]:
        """Abort in-flight exports whose importer is *rank* (it died)."""
        aborted = []
        for record in list(self.active):
            if record.target_rank != rank:
                continue
            if record.process is not None and record.process.interrupt(
                    MigrationAborted(f"importer mds{rank} died")):
                aborted.append(record)
        return aborted

    # -- the 2PC itself -------------------------------------------------
    def _run(self, record: ExportRecord):
        mds = self.mds
        engine = mds.engine
        config = mds.config
        unit = record.unit
        target_rank = record.target_rank
        importer = mds.peers[target_rank]
        inodes = unit.inode_count()

        # Phase 0: freeze. Requests hitting the unit now stall (they retry
        # until the freeze lifts).
        with frozen_scope(unit):
            try:
                # Session flushes: every session with caps under the unit,
                # at both exporter and importer, pays a flush (§4.1).
                record.phase = "sessions"
                flushed = mds.sessions.flush_under(unit.dir_path())
                flushed += importer.sessions.flush_under(unit.dir_path())
                mds.metrics.session_flushes += flushed
                stall = flushed * config.session_flush_time
                if stall > 0:
                    # The coherency work occupies both CPUs.
                    done_local = mds.station.submit(("sessions", unit), stall)
                    done_remote = importer.station.submit(
                        ("sessions", unit), stall)
                    yield done_local
                    yield done_remote

                # Phase 1: exporter logs the export intent durably.
                record.phase = "export-log"
                yield mds.journal.log_sync(
                    "EExport",
                    size=config.migration_inode_bytes * max(1, inodes),
                )
                # Importer journals the incoming metadata (the bulk
                # transfer).
                record.phase = "transfer"
                transfer = (config.migration_base_time
                            + config.migration_per_inode * inodes)
                yield engine.timeout(transfer)
                record.phase = "import-log"
                yield importer.journal.log_sync(
                    "EImport",
                    size=config.migration_inode_bytes * max(1, inodes),
                )

                # Commit point: the importer's journal now holds the
                # metadata.  An abort from here on rolls *forward*.
                record.phase = "committed"
                unit.set_auth(target_rank)
                yield mds.journal.log_sync("EExportFinish")
            except (MigrationAborted, CancelledError):
                if record.phase == "committed":
                    # EImport is durable: the importer owns the metadata
                    # whether or not the finish event ever hit the log.
                    unit.set_auth(target_rank)
                    record.phase = "rolled-forward"
                    self._commit(record, importer, inodes)
                else:
                    # Pre-commit: authority never moved; lifting the
                    # freeze (the frozen_scope) is the whole rollback.
                    record.phase = "rolled-back"
                    self.exports_aborted += 1
                    mds.metrics.migrations_aborted += 1
                return

        record.phase = "done"
        self._commit(record, importer, inodes)

    def _commit(self, record: ExportRecord, importer: "MdsServer",
                inodes: int) -> None:
        self.exports_completed += 1
        self.inodes_exported += inodes
        self.mds.metrics.migrations += 1
        self.mds.metrics.inodes_migrated += inodes
        importer.metrics.imports += 1
