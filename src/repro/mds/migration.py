"""Inode migration: the two-phase commit mechanism.

Paper §2, "Migrate": "inode migrations are performed as a two-phase commit,
where the importer journals metadata, the exporter logs the event, and the
importer journals the event."  While a unit is in flight it is frozen --
requests touching it are stalled -- and client sessions with capabilities on
it are flushed (§4.1), which is where the real cost of a migration comes
from.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Union

from ..namespace.directory import Directory
from ..namespace.dirfrag import DirFrag

if TYPE_CHECKING:  # pragma: no cover
    from .server import MdsServer


class ExportUnit:
    """Something the balancer can ship: a whole subtree or one dirfrag."""

    def __init__(self, target: Union[Directory, DirFrag]) -> None:
        self.target = target

    @property
    def is_subtree(self) -> bool:
        return isinstance(self.target, Directory)

    def path(self) -> str:
        return self.target.path()

    def dir_path(self) -> str:
        """Path of the owning directory (for session-cap matching)."""
        if self.is_subtree:
            return self.target.path()
        return self.target.directory.path()

    def inode_count(self) -> int:
        if self.is_subtree:
            return sum(d.entry_count() for d in self.target.walk()) + 1
        return len(self.target)

    def frags(self) -> Iterator[DirFrag]:
        if self.is_subtree:
            for directory in self.target.walk():
                yield from directory.frags.values()
        else:
            yield self.target

    def freeze(self) -> None:
        for frag in self.frags():
            frag.frozen = True

    def unfreeze(self) -> None:
        for frag in self.frags():
            frag.frozen = False

    def current_auth(self) -> int:
        if self.is_subtree:
            return self.target.authority()
        return self.target.authority()

    def set_auth(self, rank: int) -> None:
        if self.is_subtree:
            self.target.set_auth(rank)
            # The whole subtree now inherits the importer's authority.
            self.target.clear_descendant_auth()
        else:
            self.target.set_auth(rank)

    def load(self, metaload_fn, now: float) -> float:
        """Policy-defined metadata load of this unit."""
        if self.is_subtree:
            return sum(
                metaload_fn(frag.load_snapshot(now)) for frag in self.frags()
            )
        return metaload_fn(self.target.load_snapshot(now))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "subtree" if self.is_subtree else "dirfrag"
        return f"ExportUnit({kind} {self.path()!r})"


class Migrator:
    """Executes exports from one MDS rank."""

    def __init__(self, mds: "MdsServer") -> None:
        self.mds = mds
        self.exports_started = 0
        self.exports_completed = 0
        self.inodes_exported = 0
        self.in_flight = 0

    def export(self, unit: ExportUnit, target_rank: int):
        """Kick off a two-phase-commit export; returns the process."""
        if target_rank == self.mds.rank:
            raise ValueError("cannot export to self")
        if target_rank < 0 or target_rank >= len(self.mds.peers):
            raise ValueError(f"no such MDS rank {target_rank}")
        if any(frag.frozen for frag in unit.frags()):
            raise RuntimeError(f"{unit!r} is already migrating")
        self.exports_started += 1
        self.in_flight += 1
        return self.mds.engine.process(
            self._run(unit, target_rank),
            name=f"export:{unit.path()}->mds{target_rank}",
        )

    def _run(self, unit: ExportUnit, target_rank: int):
        mds = self.mds
        engine = mds.engine
        config = mds.config
        importer = mds.peers[target_rank]
        inodes = unit.inode_count()

        # Phase 0: freeze. Requests hitting the unit now stall (they retry
        # until the freeze lifts).
        unit.freeze()
        try:
            # Session flushes: every session with caps under the unit, at
            # both exporter and importer, pays a flush (§4.1 session counts).
            flushed = mds.sessions.flush_under(unit.dir_path())
            flushed += importer.sessions.flush_under(unit.dir_path())
            mds.metrics.session_flushes += flushed
            stall = flushed * config.session_flush_time
            if stall > 0:
                # The coherency work occupies both CPUs.
                done_local = mds.station.submit(("sessions", unit), stall)
                done_remote = importer.station.submit(("sessions", unit), stall)
                yield done_local
                yield done_remote

            # Phase 1: exporter logs the export intent durably.
            yield mds.journal.log_sync(
                "EExport", size=config.migration_inode_bytes * max(1, inodes)
            )
            # Importer journals the incoming metadata (the bulk transfer).
            transfer = (config.migration_base_time
                        + config.migration_per_inode * inodes)
            yield engine.timeout(transfer)
            yield importer.journal.log_sync(
                "EImport", size=config.migration_inode_bytes * max(1, inodes)
            )

            # Phase 2: authority flips; importer acks; exporter logs finish.
            unit.set_auth(target_rank)
            yield mds.journal.log_sync("EExportFinish")
        finally:
            unit.unfreeze()
            self.in_flight -= 1

        self.exports_completed += 1
        self.inodes_exported += inodes
        mds.metrics.migrations += 1
        mds.metrics.inodes_migrated += inodes
        importer.metrics.imports += 1
