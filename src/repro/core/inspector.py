"""Decision-log analysis: study the emergent behaviour of a balancer.

The paper's goal is "a framework that allows users to study the emergent
behavior of different strategies".  This module turns a run's decision log
and throughput timeline into the quantities those studies need: migration
cadence, thrash (units that move repeatedly or ping-pong back), time to
first balance, settle time, and a balance-quality timeline (the per-window
coefficient of variation of per-rank throughput the paper's stacked
figures show visually).

Note: analysis is post-hoc (it reads a finished ``SimReport``); nothing
here influences the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import SimReport


@dataclass(frozen=True)
class Migration:
    """One export event from the decision log."""

    time: float
    source: int
    target: int
    path: str
    load: float


@dataclass
class ThrashReport:
    """Units that moved more than once, and A->B->A ping-pongs."""

    repeat_moves: dict[str, int] = field(default_factory=dict)
    ping_pongs: list[tuple[str, int, int]] = field(default_factory=list)

    @property
    def total_excess_moves(self) -> int:
        return sum(count - 1 for count in self.repeat_moves.values())

    @property
    def is_thrashing(self) -> bool:
        return bool(self.ping_pongs) or self.total_excess_moves > 0


class DecisionAnalysis:
    """Post-hoc analysis of one run's balancing behaviour."""

    def __init__(self, migrations: list[Migration], makespan: float,
                 num_ranks: int) -> None:
        self.migrations = sorted(migrations, key=lambda m: m.time)
        self.makespan = makespan
        self.num_ranks = num_ranks

    @classmethod
    def from_report(cls, report: "SimReport") -> "DecisionAnalysis":
        migrations = [
            Migration(time=decision.time, source=decision.rank,
                      target=target, path=path, load=load)
            for decision in report.decisions
            for (path, load, target) in decision.exports
        ]
        return cls(migrations, report.makespan,
                   num_ranks=report.config.num_mds)

    # -- cadence ------------------------------------------------------
    @property
    def migration_count(self) -> int:
        return len(self.migrations)

    def time_to_first_balance(self) -> float:
        """When the first export was decided (inf if never)."""
        return self.migrations[0].time if self.migrations else float("inf")

    def settle_time(self) -> float:
        """When the last export was decided (0 if never).

        A well-behaved balancer settles early (paper Fig 9: "moves the
        large subtrees ... and then stops migrating"); a thrashing one
        keeps going until the job ends (Fig 10 bottom).
        """
        return self.migrations[-1].time if self.migrations else 0.0

    def settle_fraction(self) -> float:
        """Settle time as a fraction of the makespan."""
        if not self.migrations or self.makespan <= 0:
            return 0.0
        return min(1.0, self.settle_time() / self.makespan)

    def load_moved(self) -> float:
        return sum(m.load for m in self.migrations)

    # -- thrash --------------------------------------------------------
    def thrash(self) -> ThrashReport:
        report = ThrashReport()
        history: dict[str, list[Migration]] = {}
        for migration in self.migrations:
            history.setdefault(migration.path, []).append(migration)
        for path, moves in history.items():
            if len(moves) > 1:
                report.repeat_moves[path] = len(moves)
            for first, second in zip(moves, moves[1:]):
                if (second.target == first.source
                        and second.source == first.target):
                    report.ping_pongs.append(
                        (path, first.source, first.target)
                    )
        return report

    # -- per-rank flow ---------------------------------------------------
    def exports_by_rank(self) -> dict[int, int]:
        out = {rank: 0 for rank in range(self.num_ranks)}
        for migration in self.migrations:
            out[migration.source] += 1
        return out

    def imports_by_rank(self) -> dict[int, int]:
        out = {rank: 0 for rank in range(self.num_ranks)}
        for migration in self.migrations:
            out[migration.target] += 1
        return out


def balance_timeline(report: "SimReport",
                     window: float = 10.0) -> list[tuple[float, float]]:
    """Per-window balance quality: (window end time, cv of per-rank rate).

    cv 0 means perfectly even service across ranks in that window; high cv
    means one rank did all the work.  Windows with no traffic are skipped.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    timeline = report.metrics.timeline
    horizon = report.makespan or timeline.end_time
    ranks = sorted(report.metrics.per_mds)
    if not ranks:
        return []
    series = {rank: timeline.series(rank, until=horizon) for rank in ranks}
    n = max(len(s) for s in series.values())
    out: list[tuple[float, float]] = []
    step = max(1, int(window / timeline.bucket))
    for start in range(0, n, step):
        rates = []
        for rank in ranks:
            chunk = series[rank][start:start + step]
            rates.append(float(chunk.sum()))
        total = sum(rates)
        if total <= 0:
            continue
        mean = total / len(rates)
        cv = float(np.std(rates) / mean) if mean else 0.0
        out.append(((start + step) * timeline.bucket, cv))
    return out


def summarize_behaviour(report: "SimReport") -> str:
    """A human-readable behaviour summary of one run."""
    analysis = DecisionAnalysis.from_report(report)
    thrash = analysis.thrash()
    balance = balance_timeline(report)
    final_cv = balance[-1][1] if balance else float("nan")
    lines = [
        f"policy: {report.policy_name}",
        f"makespan: {report.makespan:.1f}s, throughput "
        f"{report.throughput:.0f} req/s",
        f"migrations: {analysis.migration_count} "
        f"(first at {analysis.time_to_first_balance():.1f}s, settled at "
        f"{analysis.settle_time():.1f}s = "
        f"{analysis.settle_fraction():.0%} of the run)",
        f"load moved: {analysis.load_moved():.0f}",
        f"thrash: {analysis.thrash().total_excess_moves} excess moves, "
        f"{len(thrash.ping_pongs)} ping-pongs",
        f"final balance cv: {final_cv:.3f}",
    ]
    lines.extend(lifecycle_lines(report))
    return "\n".join(lines)


def lifecycle_lines(report: "SimReport") -> list[str]:
    """Lifecycle trace lines (guard vetoes, breaker, rollout events).

    Empty for runs with no lifecycle activity, so pre-lifecycle output is
    unchanged.
    """
    events = getattr(report, "lifecycle_events", None) or []
    # The version log is part of the lifecycle story too, but only worth
    # printing once something beyond the initial injection happened.
    interesting = [e for e in events if e.kind != "policy-commit"]
    if not interesting:
        return []
    kinds = [event.kind for event in events]
    vetoes = kinds.count("guard-veto")
    lines = [
        f"lifecycle: {len(interesting)} events "
        f"({vetoes} guard vetoes)",
    ]
    for event in interesting:
        who = "cluster" if event.rank < 0 else f"mds{event.rank}"
        lines.append(
            f"  {event.time:8.1f}s {event.kind:<18} {who}: {event.detail}"
        )
    log = getattr(report, "policy_log", None) or []
    if len(log) > 1:
        lines.append("policy versions:")
        for version in log:
            note = f" ({version.note})" if version.note else ""
            lines.append(
                f"  v{version.version} '{version.name}'"
                f" @ {version.time:.1f}s{note}"
            )
    return lines
