"""The Mantle policy API.

A :class:`MantlePolicy` is the unit of injection: four hooks (paper §3.2)
expressed as Mantle-Lua source plus a list of dirfrag-selector names.

* ``metaload`` -- formula scoring one dirfrag/subtree from its counters;
* ``mdsload`` -- formula scoring MDS *i* from ``MDSs[i][...]`` metrics;
* ``when`` -- chunk that must set ``go = <boolean>`` (migrate or not);
* ``where`` -- chunk that populates ``targets[i] = <load to send>``;
* ``howmuch`` -- names of dirfrag selectors to race against each other.

``when`` and ``where`` execute in the same environment in sequence (the
paper concatenates them into one injected block), so locals discovered by
``when`` -- e.g. the target rank search in Listing 2 -- are visible to
``where``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..luapolicy import DEFAULT_BUDGET
from ..luapolicy.sandbox import CompiledPolicy, compile_policy
from .environment import compile_mdsload, compile_metaload
from .selectors import get_selector

#: Table 1 scalarizations (the original CephFS balancer formulas).
CEPHFS_METALOAD = "IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE"
CEPHFS_MDSLOAD = ('0.8*MDSs[i]["auth"] + 0.2*MDSs[i]["all"]'
                  ' + MDSs[i]["req"] + 10*MDSs[i]["q"]')


@dataclass
class MantlePolicy:
    """An injectable balancer: the four hooks plus selector names."""

    name: str
    metaload: str = CEPHFS_METALOAD
    mdsload: str = CEPHFS_MDSLOAD
    when: str = "go = false"
    where: str = ""
    howmuch: Sequence[str] = field(default_factory=lambda: ("big_first",))
    #: Scale factor applied to each target load before shipping; the
    #: original balancer multiplies by mds_bal_need_min = 0.8 to tolerate
    #: measurement noise (§2.2.3).
    need_min_factor: float = 1.0
    #: Ignore export units whose load falls below this floor.
    min_unit_load: float = 1e-6
    #: A *subtree* whose load exceeds remaining_target * max_overshoot is
    #: too popular to move whole; the balancer drills into it instead
    #: (paper §3.2: "subtrees are divided and migrated only if their
    #: ancestors are too popular to migrate").  Dirfrags are never divided.
    max_overshoot: float = 1.25
    #: Instruction budget per hook execution.
    budget: int = DEFAULT_BUDGET

    def __post_init__(self) -> None:
        self._metaload_fn = None
        self._mdsload_fn = None
        self._decision_chunk: CompiledPolicy | None = None

    # -- compiled forms (lazy, cached) ------------------------------------
    def metaload_fn(self):
        if self._metaload_fn is None:
            self._metaload_fn = compile_metaload(self.metaload)
        return self._metaload_fn

    def mdsload_fn(self):
        if self._mdsload_fn is None:
            self._mdsload_fn = compile_mdsload(self.mdsload)
        return self._mdsload_fn

    def decision_source(self) -> str:
        """The combined when+where chunk actually executed each tick."""
        return (
            f"{self.when}\n"
            "if go then\n"
            f"{self.where}\n"
            "end\n"
        )

    def decision_chunk(self) -> CompiledPolicy:
        if self._decision_chunk is None:
            self._decision_chunk = compile_policy(
                self.decision_source(), budget=self.budget
            )
        return self._decision_chunk

    def compile_all(self) -> None:
        """Force-compile every hook (raises LuaSyntaxError on bad source)."""
        self.metaload_fn()
        self.mdsload_fn()
        self.decision_chunk()
        for selector_name in self.howmuch:
            get_selector(selector_name)

    def describe(self) -> str:
        return (
            f"MantlePolicy {self.name!r}\n"
            f"  mds_bal_metaload: {self.metaload}\n"
            f"  mds_bal_mdsload:  {self.mdsload}\n"
            f"  mds_bal_when:     {self.when.strip().splitlines()[0]}...\n"
            f"  mds_bal_howmuch:  {list(self.howmuch)}\n"
            f"  need_min_factor:  {self.need_min_factor}"
        )
