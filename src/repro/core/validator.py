"""Pre-injection policy validation.

Paper §4.4: "We wrote a simulator that checks the logic before injecting
policies in the running cluster."  This module is that simulator: it
compiles every hook, then dry-runs the policy against a synthetic cluster
snapshot under a small instruction budget.  A policy that fails here would
have aborted balancing ticks (or worse, under the original hard-coded
design, taken the MDS down).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..luapolicy.errors import LuaBudgetExceeded, LuaError, LuaSyntaxError
from ..luapolicy.parser import parse_chunk
from .api import MantlePolicy
from .environment import (
    build_decision_bindings,
    compile_mdsload,
    compile_metaload,
    extract_targets,
)
from .selectors import get_selector

#: Budget for validation dry-runs -- deliberately small so an expensive
#: policy is flagged before it slows real balancing ticks.
VALIDATION_BUDGET = 200_000


@dataclass
class ValidationReport:
    """Outcome of validating one policy."""

    policy_name: str
    problems: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    #: Structured static-analysis findings (see :mod:`repro.analysis`).
    diagnostics: tuple = ()
    #: Dry-run outputs, useful for eyeballing a new policy.
    sample_metaload: float | None = None
    sample_loads: list[float] = field(default_factory=list)
    sample_go: object = None
    sample_targets: dict[int, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.problems

    def add_problem(self, text: str) -> None:
        if text not in self.problems:
            self.problems.append(text)

    def add_warning(self, text: str) -> None:
        if text not in self.warnings:
            self.warnings.append(text)


def _attribute_decision_syntax(policy: MantlePolicy,
                               exc: LuaSyntaxError) -> str:
    """Name the hook (when vs where) a combined-chunk syntax error is in."""
    try:
        parse_chunk(policy.when)
    except LuaSyntaxError as when_exc:
        return f"when syntax: {when_exc}"
    try:
        parse_chunk(policy.where)
    except LuaSyntaxError as where_exc:
        return f"where syntax: {where_exc}"
    return f"when/where syntax: {exc}"


def _attribute_decision_runtime(policy: MantlePolicy,
                                exc: LuaError) -> str:
    """Map a combined-chunk runtime error line back to its hook.

    ``decision_source`` lays the chunk out as the ``when`` lines, one
    ``if go then`` guard line, then the ``where`` lines.
    """
    line = getattr(exc, "line", None)
    if line is None:
        return f"when/where runtime: {exc}"
    when_lines = len(policy.when.split("\n"))
    if line <= when_lines:
        return f"when runtime (when:{line}): {exc}"
    if line == when_lines + 1:  # the synthetic ``if go then`` guard
        return f"when runtime (evaluating go): {exc}"
    return f"where runtime (where:{line - when_lines - 1}): {exc}"


def _sample_counters() -> dict[str, float]:
    return {"IRD": 120.0, "IWR": 260.0, "READDIR": 8.0,
            "FETCH": 4.0, "STORE": 6.0}


def _sample_cluster(num_ranks: int) -> list[dict]:
    """A believably imbalanced cluster: rank 0 hot, the rest cool."""
    metrics = []
    for rank in range(num_ranks):
        hot = rank == 0
        metrics.append({
            "auth": 540.0 if hot else 0.0,
            "all": 600.0 if hot else 0.0,
            "cpu": 92.0 if hot else 2.0,
            "mem": 35.0 if hot else 10.0,
            "q": 22.0 if hot else 0.0,
            "req": 3400.0 if hot else 0.0,
            "alive": 1.0,
        })
    return metrics


def validate_policy(policy: MantlePolicy, num_ranks: int = 4,
                    lint: bool = True) -> ValidationReport:
    """Compile and dry-run *policy*; never raises on policy errors.

    With *lint* (the default) the static analyzer runs first and its
    findings land both as structured :attr:`ValidationReport.diagnostics`
    and as hook-attributed problem/warning strings.
    """
    report = ValidationReport(policy_name=policy.name)

    # 0. Static analysis (repro.analysis), ahead of any execution.
    if lint:
        from ..analysis import lint_policy
        lint_report = lint_policy(policy, num_ranks=num_ranks,
                                  budget=VALIDATION_BUDGET)
        report.diagnostics = lint_report.diagnostics
        for diag in lint_report.errors:
            report.add_problem(f"lint: {diag.format()}")
        for diag in lint_report.warnings:
            report.add_warning(f"lint: {diag.format()}")

    # 1. Selectors must exist.
    if not policy.howmuch:
        report.add_problem("howmuch lists no dirfrag selectors")
    for name in policy.howmuch:
        try:
            get_selector(name)
        except KeyError as exc:
            report.add_problem(f"howmuch: {exc}")

    # 2. Load formulas compile and produce numbers.
    try:
        metaload_fn = compile_metaload(policy.metaload)
        report.sample_metaload = metaload_fn(_sample_counters())
        if report.sample_metaload < 0:
            report.add_warning(
                "metaload is negative on the sample snapshot"
            )
    except (LuaError, Exception) as exc:  # noqa: BLE001 - report everything
        report.add_problem(f"metaload: {exc}")
        metaload_fn = None

    cluster = _sample_cluster(num_ranks)
    try:
        mdsload_fn = compile_mdsload(policy.mdsload)
        for rank in range(num_ranks):
            load = mdsload_fn(cluster, rank)
            cluster[rank]["load"] = load
            report.sample_loads.append(load)
    except (LuaError, Exception) as exc:  # noqa: BLE001
        report.add_problem(f"mdsload: {exc}")
        for rank in range(num_ranks):
            cluster[rank]["load"] = 0.0

    # 3. Decision chunk parses and dry-runs within budget.
    try:
        chunk = policy.decision_chunk()
    except LuaSyntaxError as exc:
        report.add_problem(_attribute_decision_syntax(policy, exc))
        return report

    state_slot: list = [None]

    def wrstate(value=None) -> None:
        state_slot[0] = value

    def rdstate():
        return state_slot[0]

    bindings = build_decision_bindings(
        whoami=0,
        mds_metrics=cluster,
        local_counters=_sample_counters(),
        auth_metaload=report.sample_metaload or 0.0,
        all_metaload=(report.sample_metaload or 0.0) * 1.1,
        wrstate=wrstate,
        rdstate=rdstate,
    )
    saved_budget = policy.budget
    try:
        chunk.budget = VALIDATION_BUDGET
        result = chunk.run(bindings)
    except LuaBudgetExceeded:
        report.add_problem(
            f"when/where: decision chunk exceeded {VALIDATION_BUDGET} "
            f"instructions on a {num_ranks}-rank dry run (unbounded loop?)"
        )
        return report
    except LuaError as exc:
        report.add_problem(_attribute_decision_runtime(policy, exc))
        return report
    finally:
        chunk.budget = saved_budget

    report.sample_go = result.global_value("go")
    if report.sample_go is None:
        report.add_warning(
            "when: the when chunk never set 'go'; the policy will never "
            "migrate"
        )
    report.sample_targets = extract_targets(
        result.python_value("targets"), num_ranks
    )
    if report.sample_go and not report.sample_targets:
        report.add_warning(
            "where: when fired on the sample cluster but where produced "
            "no targets"
        )
    total = sum(report.sample_targets.values())
    my_load = cluster[0]["load"]
    if my_load and total > my_load * 1.5:
        report.add_warning(
            f"where: targets ship {total:.1f} load but this rank only has "
            f"{my_load:.1f} (overshooting)"
        )
    return report
