"""Load Mantle policies from ``.lua`` policy files.

A policy file is plain Lua with section markers, mirroring how the paper's
listings are presented (and how upstream Ceph ended up shipping balancers
as single Lua files)::

    -- @name my-balancer
    -- @metaload
    IWR + IRD
    -- @mdsload
    MDSs[i]["all"]
    -- @when
    go = MDSs[whoami]["load"] > total/#MDSs
    -- @where
    targets[whoami+1] = MDSs[whoami]["load"]/2
    -- @howmuch
    big_first, big_small

Unknown sections are rejected; ``@name`` and ``@howmuch`` take their value
from the marker line / section body text rather than Lua source.  Optional
scalar tweaks: ``-- @need_min 0.8``, ``-- @min_unit_load 0.01``.
"""

from __future__ import annotations

import re
from pathlib import Path

from .api import MantlePolicy

_MARKER = re.compile(r"^\s*--\s*@(\w+)\s*(.*)$")

_HOOK_SECTIONS = {"metaload", "mdsload", "when", "where", "howmuch"}
_SCALAR_MARKERS = {"name", "need_min", "min_unit_load", "max_overshoot"}


class PolicyFileError(ValueError):
    """Malformed policy file."""


def parse_policy_source(text: str, name: str = "unnamed") -> MantlePolicy:
    """Parse the sectioned policy format from a string."""
    sections: dict[str, list[str]] = {}
    scalars: dict[str, str] = {}
    current: str | None = None
    for line_number, line in enumerate(text.splitlines(), start=1):
        match = _MARKER.match(line)
        if match:
            key, rest = match.group(1), match.group(2).strip()
            if key in _SCALAR_MARKERS:
                if not rest:
                    raise PolicyFileError(
                        f"line {line_number}: @{key} needs a value"
                    )
                scalars[key] = rest
                continue
            if key not in _HOOK_SECTIONS:
                raise PolicyFileError(
                    f"line {line_number}: unknown section @{key}"
                )
            if key in sections:
                raise PolicyFileError(
                    f"line {line_number}: duplicate section @{key}"
                )
            current = key
            sections[current] = []
            if rest:
                sections[current].append(rest)
            continue
        if current is not None:
            sections[current].append(line)

    missing = {"when", "where"} - sections.keys()
    if missing:
        raise PolicyFileError(
            f"policy file lacks required section(s): {sorted(missing)}"
        )

    def body(key: str, default: str = "") -> str:
        return "\n".join(sections.get(key, [default])).strip() or default

    howmuch_text = body("howmuch", "big_first")
    howmuch = tuple(
        token.strip() for token in re.split(r"[,\s]+", howmuch_text)
        if token.strip()
    )

    kwargs = {}
    if "need_min" in scalars:
        kwargs["need_min_factor"] = float(scalars["need_min"])
    if "min_unit_load" in scalars:
        kwargs["min_unit_load"] = float(scalars["min_unit_load"])
    if "max_overshoot" in scalars:
        kwargs["max_overshoot"] = float(scalars["max_overshoot"])

    policy = MantlePolicy(
        name=scalars.get("name", name),
        metaload=body("metaload", "IRD + 2*IWR + READDIR + 2*FETCH "
                                  "+ 4*STORE"),
        mdsload=body("mdsload",
                     '0.8*MDSs[i]["auth"] + 0.2*MDSs[i]["all"]'
                     ' + MDSs[i]["req"] + 10*MDSs[i]["q"]'),
        when=body("when"),
        where=body("where"),
        howmuch=howmuch,
        **kwargs,
    )
    return policy


def load_policy_file(path: str | Path) -> MantlePolicy:
    """Read and parse a ``.lua`` policy file."""
    path = Path(path)
    return parse_policy_source(path.read_text(), name=path.stem)


def dump_policy(policy: MantlePolicy) -> str:
    """Serialise a policy back into the sectioned file format."""
    parts = [
        f"-- @name {policy.name}",
        f"-- @need_min {policy.need_min_factor}",
        f"-- @min_unit_load {policy.min_unit_load}",
        f"-- @max_overshoot {policy.max_overshoot}",
        "-- @metaload",
        policy.metaload.strip(),
        "-- @mdsload",
        policy.mdsload.strip(),
        "-- @when",
        policy.when.strip(),
        "-- @where",
        policy.where.strip(),
        "-- @howmuch",
        ", ".join(policy.howmuch),
    ]
    return "\n".join(parts) + "\n"
