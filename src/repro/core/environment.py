"""The Mantle environment (paper Table 2).

Builds the global variables and functions injected policies see:

* current-MDS metrics: ``whoami``, ``authmetaload``, ``allmetaload``,
  ``IRD``/``IWR``/``READDIR``/``FETCH``/``STORE``;
* per-MDS metrics: ``MDSs[i]["auth"|"all"|"cpu"|"mem"|"q"|"req"|"load"]``
  and ``total``;
* functions: ``WRstate(s)``, ``RDstate()``, ``max``, ``min``.

Also compiles load formulas (``mds_bal_metaload``/``mds_bal_mdsload``) into
fast Python callables: simple arithmetic formulas are transpiled to native
closures (they run once per dirfrag per tick, which adds up), with the full
interpreter as the fallback for anything fancier.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping

from .. import fastpath
from ..luapolicy import lua_ast as ast
from ..luapolicy.errors import LuaRuntimeError, LuaSyntaxError
from ..luapolicy.parser import parse_expression
from ..luapolicy.sandbox import compile_load_expression
from ..namespace.counters import OP_KINDS

#: Keys every per-MDS metrics table carries (Table 2, plus the ``alive``
#: liveness flag: 1.0 for live ranks, 0.0 for ranks declared dead).
MDS_METRIC_KEYS = ("auth", "all", "cpu", "mem", "q", "req", "load", "alive")

#: Canonical binding sets per hook -- the global names each hook's chunk can
#: rely on, exactly as the builders below install them.  The static analyzer
#: (repro.analysis) checks policy reads against these, so a misspelling like
#: ``allmetalod`` is caught before injection instead of evaluating to nil.
METALOAD_BINDINGS: frozenset[str] = frozenset(OP_KINDS)
MDSLOAD_BINDINGS: frozenset[str] = frozenset({"MDSs", "i"})
DECISION_BINDINGS: frozenset[str] = frozenset({
    "whoami", "MDSs", "total", "authmetaload", "allmetaload", "targets",
    "WRstate", "RDstate", *OP_KINDS,
})
#: The decision bindings that are callables (persistent-state accessors).
DECISION_FUNCTIONS: frozenset[str] = frozenset({"WRstate", "RDstate"})


class _Unsupported(Exception):
    pass


class _FastPathMiss(Exception):
    """A transpiled mdsload hit a case whose semantics (nil propagation)
    only the interpreter models; the caller re-runs interpreted."""


#: Sentinel: "this subtree is not a compile-time constant".
_NOT_CONST = object()

_ARITH_OPS = ("+", "-", "*", "/", "%", "^")


def _fold_const(node: ast.Expr):
    """Value of a constant subtree, or ``_NOT_CONST``.

    Uses the same float operations the runtime closures would, so folding
    never changes a result bit.  Constant division by zero is deliberately
    *not* folded: its behaviour (raise vs IEEE inf) belongs to the caller's
    runtime semantics.
    """
    if isinstance(node, ast.NumberLiteral):
        return node.value
    if isinstance(node, ast.UnaryOp) and node.op == "-":
        value = _fold_const(node.operand)
        return _NOT_CONST if value is _NOT_CONST else -value
    if isinstance(node, ast.BinaryOp) and node.op in _ARITH_OPS:
        a = _fold_const(node.left)
        if a is _NOT_CONST:
            return _NOT_CONST
        b = _fold_const(node.right)
        if b is _NOT_CONST:
            return _NOT_CONST
        op = node.op
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return _NOT_CONST if b == 0 else a / b
        if op == "%":
            return math.nan if b == 0 else a - math.floor(a / b) * b
        return float(a) ** float(b)
    return _NOT_CONST


def _transpile(node: ast.Expr) -> Callable[[Mapping[str, float]], float]:
    """Compile a pure-arithmetic expression over named scalars to a closure."""
    folded = _fold_const(node)
    if folded is not _NOT_CONST:
        return lambda env, _value=folded: _value
    if isinstance(node, ast.Name):
        name = node.name
        def lookup(env: Mapping[str, float], _name=name) -> float:
            try:
                return float(env[_name])
            except KeyError as exc:
                raise LuaRuntimeError(
                    f"unknown metric {_name!r} in load formula"
                ) from exc
        return lookup
    if isinstance(node, ast.UnaryOp) and node.op == "-":
        inner = _transpile(node.operand)
        return lambda env: -inner(env)
    if isinstance(node, ast.BinaryOp) and node.op in _ARITH_OPS:
        left = _transpile(node.left)
        right = _transpile(node.right)
        op = node.op
        if op == "+":
            return lambda env: left(env) + right(env)
        if op == "-":
            return lambda env: left(env) - right(env)
        if op == "*":
            return lambda env: left(env) * right(env)
        if op == "%":
            def modulo(env: Mapping[str, float]) -> float:
                b = right(env)
                if b == 0:
                    return math.nan  # Lua modulo semantics
                a = left(env)
                return a - math.floor(a / b) * b
            return modulo
        if op == "^":
            return lambda env: float(left(env)) ** float(right(env))
        def divide(env: Mapping[str, float]) -> float:
            denominator = right(env)
            if denominator == 0:
                raise LuaRuntimeError("division by zero in load formula")
            return left(env) / denominator
        return divide
    raise _Unsupported(type(node).__name__)


def compile_metaload(source: str) -> Callable[[Mapping[str, float]], float]:
    """Compile a metaload formula into ``fn(counter_snapshot) -> float``.

    The snapshot maps the five op-kind counters (and nothing else) to their
    decayed values, exactly what :meth:`LoadCounters.snapshot` returns.
    """
    text = source.strip()
    try:
        expr = parse_expression(text)
        fast = _transpile(expr)
    except (_Unsupported, LuaSyntaxError):
        fast = None
    if fast is not None:
        return fast
    compiled = compile_load_expression(text)

    def slow(snapshot: Mapping[str, float]) -> float:
        bindings = {kind: float(snapshot.get(kind, 0.0)) for kind in OP_KINDS}
        result = compiled.run(bindings)
        if result.returned:
            value = result.returned[0]
        else:
            value = result.global_value("metaload")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise LuaRuntimeError(
                f"metaload formula produced {value!r}, expected a number"
            )
        return float(value)

    return slow


def _transpile_mds(node: ast.Expr) -> Callable[[list[dict], int], float]:
    """Compile an ``MDSs[i]["key"]`` arithmetic formula to a closure.

    The closure reads the live metric dicts -- the same values the
    interpreter path would copy into Lua tables at call time -- and applies
    the *interpreter's* arithmetic semantics (IEEE division, Lua modulo),
    so results are bit-identical.  Anything touching nil (missing keys,
    out-of-range ranks) raises :class:`_FastPathMiss` and the caller
    re-runs the interpreter for its exact error behaviour.
    """
    folded = _fold_const(node)
    if folded is not _NOT_CONST:
        return lambda mdss, i0, _value=folded: _value
    if isinstance(node, ast.Name):
        if node.name == "i":
            return lambda mdss, i0: float(i0 + 1)
        raise _Unsupported(node.name)
    if isinstance(node, ast.UnaryOp) and node.op == "-":
        inner = _transpile_mds(node.operand)
        return lambda mdss, i0: -inner(mdss, i0)
    if isinstance(node, ast.Index):
        key = node.key
        obj = node.obj
        if (isinstance(key, ast.StringLiteral) and isinstance(obj, ast.Index)
                and isinstance(obj.obj, ast.Name) and obj.obj.name == "MDSs"):
            index_fn = _transpile_mds(obj.key)
            key_name = key.value

            def fetch(mdss: list[dict], i0: int) -> float:
                index = index_fn(mdss, i0)
                rank = int(index)
                if rank != index or not 1 <= rank <= len(mdss):
                    raise _FastPathMiss()
                try:
                    return float(mdss[rank - 1][key_name])
                except KeyError:
                    raise _FastPathMiss() from None

            return fetch
        raise _Unsupported("Index")
    if isinstance(node, ast.BinaryOp) and node.op in _ARITH_OPS:
        left = _transpile_mds(node.left)
        right = _transpile_mds(node.right)
        op = node.op
        if op == "+":
            return lambda mdss, i0: left(mdss, i0) + right(mdss, i0)
        if op == "-":
            return lambda mdss, i0: left(mdss, i0) - right(mdss, i0)
        if op == "*":
            return lambda mdss, i0: left(mdss, i0) * right(mdss, i0)
        if op == "/":
            def divide(mdss: list[dict], i0: int) -> float:
                a = left(mdss, i0)
                b = right(mdss, i0)
                if b == 0:
                    # Interpreter semantics: IEEE doubles, never raise.
                    return math.nan if a == 0 else math.copysign(math.inf, a)
                return a / b
            return divide
        if op == "%":
            def modulo(mdss: list[dict], i0: int) -> float:
                a = left(mdss, i0)
                b = right(mdss, i0)
                if b == 0:
                    return math.nan
                return a - math.floor(a / b) * b
            return modulo
        return lambda mdss, i0: float(left(mdss, i0)) ** float(right(mdss, i0))
    raise _Unsupported(type(node).__name__)


def compile_mdsload(source: str) -> Callable[[list[dict], int], float]:
    """Compile an MDS-load formula into ``fn(mds_metrics, i) -> float``.

    *mds_metrics* is the list of per-rank metric dicts (0-based);
    *i* is the 0-based rank being scored.  Inside the formula, ``MDSs`` and
    ``i`` are 1-based as in Lua.
    """
    text = source.strip()
    fast = None
    try:
        fast = _transpile_mds(parse_expression(text))
    except (_Unsupported, LuaSyntaxError):
        fast = None
    compiled = compile_load_expression(text)

    def score(mds_metrics: list[dict], i: int) -> float:
        if fast is not None and fastpath.ENABLED:
            try:
                return fast(mds_metrics, i)
            except _FastPathMiss:
                pass  # nil semantics: let the interpreter produce them
        mdss = [dict(metrics) for metrics in mds_metrics]
        result = compiled.run({"MDSs": mdss, "i": i + 1})
        if result.returned:
            value = result.returned[0]
        else:
            value = result.global_value("mdsload")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise LuaRuntimeError(
                f"mdsload formula produced {value!r}, expected a number"
            )
        return float(value)

    return score


def build_decision_bindings(
    whoami: int,
    mds_metrics: list[dict],
    local_counters: Mapping[str, float],
    auth_metaload: float,
    all_metaload: float,
    wrstate: Callable[..., Any],
    rdstate: Callable[[], Any],
) -> dict[str, Any]:
    """Globals for the when/where decision chunk (paper Table 2).

    *whoami* and the metrics list are 0-based on the Python side; the
    bindings are 1-based Lua style.
    """
    total = sum(float(metrics.get("load", 0.0)) for metrics in mds_metrics)
    bindings: dict[str, Any] = {
        "whoami": whoami + 1,
        "MDSs": [dict(metrics) for metrics in mds_metrics],
        "total": total,
        "authmetaload": float(auth_metaload),
        "allmetaload": float(all_metaload),
        "targets": {},
        "WRstate": wrstate,
        "RDstate": rdstate,
    }
    for kind in OP_KINDS:
        bindings[kind] = float(local_counters.get(kind, 0.0))
    return bindings


def extract_targets(raw: Any, num_ranks: int) -> dict[int, float]:
    """Convert the policy's 1-based ``targets`` table to {0-based: load}.

    Non-numeric, non-positive and out-of-range entries are dropped -- a bad
    policy must not crash the balancer (§4.4 safety).
    """
    if raw is None:
        return {}
    if isinstance(raw, list):
        raw = {i + 1: value for i, value in enumerate(raw)}
    if not isinstance(raw, dict):
        return {}
    targets: dict[int, float] = {}
    for key, value in raw.items():
        if isinstance(key, bool) or not isinstance(key, (int, float)):
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        rank = int(key) - 1
        if key != int(key) or rank < 0 or rank >= num_ranks:
            continue
        if value <= 0:
            continue
        targets[rank] = float(value)
    return targets
