"""Mantle: the programmable metadata load balancer (the paper's contribution).

Decouples balancing *policy* from the MDS migration *mechanisms*: policies
are small Mantle-Lua programs injected through :class:`MantlePolicy`, run by
:class:`MantleBalancer` against the Table-2 environment on every heartbeat
tick, validated before injection by :func:`validate_policy`.
"""

from .api import CEPHFS_MDSLOAD, CEPHFS_METALOAD, MantlePolicy
from .balancer import BalanceDecision, MantleBalancer
from .environment import (
    MDS_METRIC_KEYS,
    build_decision_bindings,
    compile_mdsload,
    compile_metaload,
    extract_targets,
)
from .selectors import (
    REGISTRY as SELECTOR_REGISTRY,
    SelectorOutcome,
    big_first,
    big_small,
    choose_best,
    get_selector,
    half,
    register_selector,
    small_first,
)
from .inspector import (
    DecisionAnalysis,
    Migration,
    ThrashReport,
    balance_timeline,
    summarize_behaviour,
)
from .policyfile import dump_policy, load_policy_file, parse_policy_source
from .state import BalancerState, RadosBalancerState
from .validator import ValidationReport, validate_policy

__all__ = [
    "BalanceDecision",
    "DecisionAnalysis",
    "Migration",
    "ThrashReport",
    "balance_timeline",
    "summarize_behaviour",
    "BalancerState",
    "RadosBalancerState",
    "CEPHFS_MDSLOAD",
    "CEPHFS_METALOAD",
    "MDS_METRIC_KEYS",
    "MantleBalancer",
    "MantlePolicy",
    "SELECTOR_REGISTRY",
    "SelectorOutcome",
    "ValidationReport",
    "big_first",
    "big_small",
    "build_decision_bindings",
    "choose_best",
    "compile_mdsload",
    "compile_metaload",
    "dump_policy",
    "load_policy_file",
    "parse_policy_source",
    "extract_targets",
    "get_selector",
    "half",
    "register_selector",
    "small_first",
    "validate_policy",
]
