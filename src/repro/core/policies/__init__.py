"""Stock Mantle policies: the paper's Table 1 and Listings 1-4."""

from .advanced import (
    capacity_model_policy,
    feedback_policy,
    giga_autonomous_policy,
)
from .adaptable import (
    adaptable_conservative_policy,
    adaptable_policy,
    adaptable_too_aggressive_policy,
)
from .fill_spill import fill_spill_policy
from .greedy_spill import greedy_spill_even_policy, greedy_spill_policy
from .original import original_capped_policy, original_policy

#: Registry of the stock policies by name.
STOCK_POLICIES = {
    "cephfs-original": original_policy,
    "greedy-spill": greedy_spill_policy,
    "greedy-spill-even": greedy_spill_even_policy,
    "fill-and-spill": fill_spill_policy,
    "adaptable": adaptable_policy,
    "adaptable-conservative": adaptable_conservative_policy,
    "adaptable-too-aggressive": adaptable_too_aggressive_policy,
    "cephfs-original-capped": original_capped_policy,
    "giga-autonomous": giga_autonomous_policy,
    "capacity-model": capacity_model_policy,
    "feedback-controller": feedback_policy,
}

__all__ = [
    "STOCK_POLICIES",
    "capacity_model_policy",
    "feedback_policy",
    "giga_autonomous_policy",
    "adaptable_conservative_policy",
    "adaptable_policy",
    "adaptable_too_aggressive_policy",
    "fill_spill_policy",
    "greedy_spill_even_policy",
    "greedy_spill_policy",
    "original_capped_policy",
    "original_policy",
]
