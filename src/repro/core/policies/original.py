"""The original CephFS balancer, expressed as a Mantle policy (Table 1).

Hard-coded CephFS policy, verbatim from the paper:

==============  ============================================================
metaload        inode reads + 2*(inode writes) + read dirs + 2*fetches
                + 4*stores
MDSload         0.8*(metaload on auth) + 0.2*(metaload on all)
                + request rate + 10*(queue length)
when            if my load > (total load)/#MDSs
where           for each MDS: if load > target add to exporters else
                importers; match large importers to large exporters
how-much        while load already sent < target load: export largest
                dirfrag (``big_first``), with the target scaled by
                mds_bal_need_min = 0.8 to tolerate measurement noise
==============  ============================================================
"""

from __future__ import annotations

from ..api import CEPHFS_MDSLOAD, CEPHFS_METALOAD, MantlePolicy

#: mds_bal_need_min: the original balancer scales its target by 0.8, which
#: is why it shipped only 3 of 8 hot dirfrags in the §2.2.3 example.
NEED_MIN = 0.8

WHEN = """
-- Table 1 "when": migrate if my load exceeds the cluster average.
go = MDSs[whoami]["load"] > total/#MDSs
"""

WHERE = """
-- Table 1 "where": partition the cluster into exporters and importers and
-- assign every importer a target that would even the cluster out.  Note:
-- like the original, each exporter computes these targets independently
-- and does NOT cap them by its own surplus -- concurrent exporters can
-- therefore over-commit, which is one source of the non-reproducible
-- behaviour Fig 4 documents.
targetLoad = total/#MDSs
for i=1,#MDSs do
  if i ~= whoami and MDSs[i]["load"] < targetLoad then
    targets[i] = targetLoad - MDSs[i]["load"]
  end
end
"""

WHERE_CAPPED = """
-- A stabilised variant of the Table 1 "where": targets are scaled down so
-- their sum never exceeds this rank's surplus.  Useful as a Mantle policy
-- experiment: one injectable change that removes the over-commit source of
-- Fig 4's variance.
targetLoad = total/#MDSs
mySurplus = MDSs[whoami]["load"] - targetLoad
need = 0
for i=1,#MDSs do
  if i ~= whoami and MDSs[i]["load"] < targetLoad then
    targets[i] = targetLoad - MDSs[i]["load"]
    need = need + targets[i]
  end
end
if need > mySurplus and need > 0 then
  for i=1,#MDSs do
    if targets[i] then
      targets[i] = targets[i] * mySurplus / need
    end
  end
end
"""


def original_policy(need_min: float = NEED_MIN) -> MantlePolicy:
    """The CephFS adaptable load sharing policy (paper Table 1)."""
    return MantlePolicy(
        name="cephfs-original",
        metaload=CEPHFS_METALOAD,
        mdsload=CEPHFS_MDSLOAD,
        when=WHEN,
        where=WHERE,
        howmuch=("big_first",),
        need_min_factor=need_min,
        min_unit_load=0.01,
    )


def original_capped_policy(need_min: float = NEED_MIN) -> MantlePolicy:
    """Table 1 with surplus-capped targets (a stabilised variant)."""
    return MantlePolicy(
        name="cephfs-original-capped",
        metaload=CEPHFS_METALOAD,
        mdsload=CEPHFS_MDSLOAD,
        when=WHEN,
        where=WHERE_CAPPED,
        howmuch=("big_first",),
        need_min_factor=need_min,
        min_unit_load=0.01,
    )
