"""Advanced balancers from the paper's future-work section (§4.4).

The paper closes by listing balancers Mantle *should* be able to express:
GIGA+-style autonomous load splitting, and "balancers that use request
cost and statistical modeling, control feedback loops".  These policies
demonstrate that the injectable API is rich enough for them:

* :func:`giga_autonomous_policy` -- GIGA+'s autonomous splitting: each
  rank that crosses a per-rank load threshold independently sheds half of
  its *own* load to the rank that hashing designates next, with no global
  view needed beyond "is my designated target still idle";
* :func:`capacity_model_policy` -- a statistical capacity model: tracks an
  exponentially-weighted estimate of this rank's saturation point using
  WRstate, and spills exactly the excess over the model's capacity
  estimate;
* :func:`feedback_policy` -- a proportional controller: spills an amount
  proportional to the distance between this rank's utilisation and a
  setpoint, damped by the previous tick's action (stored via WRstate).
"""

from __future__ import annotations

from ..api import MantlePolicy

MDSLOAD_ALL = 'MDSs[i]["all"]'


def giga_autonomous_policy(threshold: float = 200.0) -> MantlePolicy:
    """GIGA+-style autonomous splitting (paper §4.4 future work).

    Every rank acts purely on local knowledge: once its own load crosses
    *threshold*, it halves itself into the next rank in a binary-split
    order (rank r splits into r + 2^depth), regardless of global balance.
    """
    when = f"""
    -- Autonomous split: find my next split target by doubling depth.
    myLoad = MDSs[whoami]["load"]
    depth = 1
    target = whoami + depth
    while target <= #MDSs and MDSs[target] ~= nil
          and MDSs[target]["load"] > {threshold}/2 do
      depth = depth * 2
      target = whoami + depth
    end
    go = myLoad > {threshold} and target <= #MDSs
    """
    where = """
    targets[target] = MDSs[whoami]["load"]/2
    """
    return MantlePolicy(
        name="giga-autonomous",
        metaload="IWR",
        mdsload=MDSLOAD_ALL,
        when=when,
        where=where,
        howmuch=("half",),
        min_unit_load=1e-4,
    )


def capacity_model_policy(initial_capacity: float = 30_000.0,
                          alpha: float = 0.25) -> MantlePolicy:
    """Statistical capacity model (paper §4.4: "request cost and
    statistical modeling").

    WRstate holds an EWMA estimate of this rank's capacity: whenever the
    rank runs hot (cpu > 90), the estimate contracts toward the current
    load; when it runs cool, it relaxes upward.  The rank spills exactly
    the load the model says it cannot handle.
    """
    when = f"""
    cap = RDstate() or {initial_capacity}
    myLoad = MDSs[whoami]["load"]
    cpu = MDSs[whoami]["cpu"]
    if cpu > 90 then
      -- saturated below the estimate: contract it
      cap = (1-{alpha})*cap + {alpha}*myLoad*0.9
    elseif cpu < 50 then
      -- comfortable: relax the estimate upward
      cap = (1-{alpha})*cap + {alpha}*(myLoad + {initial_capacity})
    end
    WRstate(cap)
    excess = myLoad - cap
    go = excess > 0.05*cap
    """
    where = """
    -- Give the excess to the coolest rank.
    best, bestload = whoami, math.huge
    for i = 1, #MDSs do
      if i ~= whoami and MDSs[i]["load"] < bestload then
        best, bestload = i, MDSs[i]["load"]
      end
    end
    if best ~= whoami then targets[best] = excess end
    """
    return MantlePolicy(
        name="capacity-model",
        metaload="IRD + IWR",
        mdsload=MDSLOAD_ALL,
        when=when,
        where=where,
        howmuch=("big_small", "small_first"),
        min_unit_load=1e-4,
    )


def feedback_policy(setpoint: float = 70.0, gain: float = 0.02,
                    damping: float = 0.5) -> MantlePolicy:
    """Proportional feedback controller (paper §4.4: "control feedback
    loops").

    error = cpu - setpoint; the spilled fraction is gain*error, smoothed
    against the previous tick's action (stored with WRstate) so the
    controller does not chatter.
    """
    when = f"""
    cpu = MDSs[whoami]["cpu"]
    err = cpu - {setpoint}
    prev = RDstate() or 0
    action = {damping}*prev + (1-{damping})*({gain}*err)
    WRstate(action)
    go = action > 0.01 and MDSs[whoami]["load"] > 0
    """
    where = """
    -- Spread the controller's output over the cooler half of the cluster.
    share = MDSs[whoami]["load"] * math.min(0.5, action)
    count = 0
    for i = 1, #MDSs do
      if i ~= whoami and MDSs[i]["cpu"] < cpu then count = count + 1 end
    end
    if count > 0 then
      for i = 1, #MDSs do
        if i ~= whoami and MDSs[i]["cpu"] < cpu then
          targets[i] = share/count
        end
      end
    end
    """
    return MantlePolicy(
        name="feedback-controller",
        metaload="IRD + IWR",
        mdsload=MDSLOAD_ALL,
        when=when,
        where=where,
        howmuch=("big_small", "half"),
        min_unit_load=1e-4,
    )
