"""Greedy Spill balancers (paper §4.1, Listings 1 and 2).

Aggressively sheds half the load to a neighbour as soon as there is any --
the Mantle rendering of GIGA+'s uniform hashing strategy.  The paper runs
it with 4 clients creating files in one shared directory over up to 4 MDS
ranks.

Paper Listing 1 (verbatim)::

    -- Metadata load
    metaload = IWR
    -- Metadata server load
    mdsload = MDSs[i]["all"]
    -- When policy
    if MDSs[whoami]["load"]>.01 and
       MDSs[whoami+1]["load"]<.01 then
    -- Where policy
    targets[whoami+1]=allmetaload/2
    -- Howmuch policy
    {"half"}

Our rendering differs only cosmetically: the ``when`` condition guards
``MDSs[whoami+1]`` against ``nil`` (the last rank has no right-hand
neighbour; Lua would raise "attempt to index a nil value", which Mantle
would swallow as a failed tick -- guarding keeps the tick clean), and the
condition assigns ``go`` instead of being an unterminated ``if`` header.
"""

from __future__ import annotations

from ..api import MantlePolicy

METALOAD = "IWR"
MDSLOAD = 'MDSs[i]["all"]'

#: The spill threshold from Listing 1: any load above this is worth
#: spilling, any neighbour below it counts as idle.
THRESHOLD = 0.01

WHEN = f"""
-- Listing 1 "when": spill if I have load and my right neighbour is idle.
go = MDSs[whoami+1] ~= nil
     and MDSs[whoami]["load"]>{THRESHOLD}
     and MDSs[whoami+1]["load"]<{THRESHOLD}
"""

WHERE = """
-- Listing 1 "where": send half my metadata load to the next rank.
targets[whoami+1] = allmetaload/2
"""

WHEN_EVEN = f"""
-- Listing 2 "when": search the far half of the cluster for an idle rank.
t = math.floor((#MDSs-whoami+1)/2)+whoami
if t > #MDSs then t = whoami end
while t ~= whoami and MDSs[t]["load"] >= {THRESHOLD} do t = t-1 end
go = t ~= whoami
     and MDSs[whoami]["load"]>{THRESHOLD}
     and MDSs[t]["load"]<{THRESHOLD}
"""

WHERE_EVEN = """
-- Listing 2 "where": send half my load to the rank found by "when".
targets[t] = MDSs[whoami]["load"]/2
"""


def greedy_spill_policy() -> MantlePolicy:
    """Listing 1: spill half to the next rank (uneven for >2 ranks)."""
    return MantlePolicy(
        name="greedy-spill",
        metaload=METALOAD,
        mdsload=MDSLOAD,
        when=WHEN,
        where=WHERE,
        howmuch=("half",),
        min_unit_load=1e-4,
    )


def greedy_spill_even_policy() -> MantlePolicy:
    """Listing 2: binary-search the cluster so load splits evenly."""
    return MantlePolicy(
        name="greedy-spill-even",
        metaload=METALOAD,
        mdsload=MDSLOAD,
        when=WHEN_EVEN,
        where=WHERE_EVEN,
        howmuch=("half",),
        min_unit_load=1e-4,
    )
