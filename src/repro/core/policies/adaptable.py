"""Adaptable balancer (paper §4.3, Listing 4) and its Fig 10 variants.

A simplified version of the original balancer's adaptable load sharing:
migrate only when a single rank holds the majority of the cluster load,
then assign every underloaded rank a target that evens things out, racing
the full selector family for accuracy.

Paper Listing 4 (verbatim)::

    -- Metadata load
    metaload = IWR + IRD
    -- When policy
    max=0
    for i=1,#MDSs do
      max = max(MDSs[i]["load"], max)
    end
    myLoad = MDSs[whoami]["load"]
    if myLoad>total/2 and myLoad>=max then
    -- Balancer where policy
    targetLoad=total/#MDSs
    for i=1,#MDSs do
      if MDSs[i]["load"]<targetLoad then
        targets[i]=targetLoad-MDSs[i]["load"]
      end
    end
    -- Howmuch policy
    {"half","small","big","big_small"}

Cosmetic difference: the listing shadows the builtin ``max`` function with
a number and then calls it -- real Lua would raise "attempt to call a
number value" -- so the accumulator is named ``maxv`` here.

Fig 10 explores three aggressiveness levels of this policy:

* ``conservative`` -- adds a minimum-offload threshold, so metadata stays
  on one MDS until a load spike forces distribution;
* ``aggressive`` -- Listing 4 as written: distributes as soon as one rank
  has the majority of cluster load;
* ``too_aggressive`` -- drops the majority requirement and constantly
  chases perfect balance, which fragments the namespace, multiplies
  forwards (the paper measured 60x) and hurts runtime and stability.
"""

from __future__ import annotations

from ..api import MantlePolicy

METALOAD = "IWR + IRD"
MDSLOAD = 'MDSs[i]["all"]'

SELECTORS = ("half", "small", "big", "big_small")

WHEN_AGGRESSIVE = """
-- Listing 4 "when": migrate only if I hold the majority of cluster load.
maxv = 0
for i=1,#MDSs do
  maxv = max(MDSs[i]["load"], maxv)
end
myLoad = MDSs[whoami]["load"]
go = myLoad > total/2 and myLoad >= maxv
"""

_WHEN_CONSERVATIVE_TEMPLATE = """
-- Fig 10 "conservative": as Listing 4, plus hysteresis via WRstate --
-- metadata stays on one MDS until it has been overloaded for
-- {patience_plus_one} straight iterations (the §3.1 example of using
-- WRstate/RDstate to make migration decisions more conservative).
maxv = 0
for i=1,#MDSs do
  maxv = max(MDSs[i]["load"], maxv)
end
myLoad = MDSs[whoami]["load"]
overloaded = myLoad > total/2 and myLoad >= maxv
             and (myLoad - total/#MDSs) > {min_offload}
wait = RDstate() or {patience}
go = false
if overloaded then
  if wait > 0 then WRstate(wait-1)
  else WRstate({patience}); go = true end
else WRstate({patience}) end
"""

WHEN_TOO_AGGRESSIVE = """
-- Fig 10 "too aggressive": chase perfect balance -- migrate whenever I am
-- at all above the cluster average.
maxv = 0
for i=1,#MDSs do
  maxv = max(MDSs[i]["load"], maxv)
end
myLoad = MDSs[whoami]["load"]
go = myLoad > total/#MDSs and myLoad >= maxv
"""

WHERE = """
-- Listing 4 "where": even out every underloaded rank, scaled by how much
-- load the remote already has.
targetLoad = total/#MDSs
for i=1,#MDSs do
  if MDSs[i]["load"] < targetLoad then
    targets[i] = targetLoad - MDSs[i]["load"]
  end
end
"""


def adaptable_policy() -> MantlePolicy:
    """Listing 4 as written (the "aggressive" middle line of Fig 10)."""
    return MantlePolicy(
        name="adaptable",
        metaload=METALOAD,
        mdsload=MDSLOAD,
        when=WHEN_AGGRESSIVE,
        where=WHERE,
        howmuch=SELECTORS,
        min_unit_load=1e-4,
    )


def adaptable_conservative_policy(min_offload: float = 50.0,
                                  patience: int = 2) -> MantlePolicy:
    """Fig 10 top: hold metadata local until the overload persists.

    *patience* extra overloaded ticks are required before migrating (so
    distribution happens ``patience+1`` heartbeats into a sustained spike);
    *min_offload* additionally ignores surpluses that are not worth moving.
    """
    return MantlePolicy(
        name="adaptable-conservative",
        metaload=METALOAD,
        mdsload=MDSLOAD,
        when=_WHEN_CONSERVATIVE_TEMPLATE.format(
            min_offload=min_offload, patience=patience,
            patience_plus_one=patience + 1,
        ),
        where=WHERE,
        howmuch=SELECTORS,
        min_unit_load=1e-4,
    )


def adaptable_too_aggressive_policy() -> MantlePolicy:
    """Fig 10 bottom: constantly chase perfect balance (it hurts)."""
    return MantlePolicy(
        name="adaptable-too-aggressive",
        metaload=METALOAD,
        mdsload=MDSLOAD,
        when=WHEN_TOO_AGGRESSIVE,
        where=WHERE,
        howmuch=SELECTORS,
        min_unit_load=1e-4,
    )
