"""Fill & Spill balancer (paper §4.2, Listing 3).

A LARD-style policy: fill the first MDS up to a known capacity, and only
spill a slice of load when it has been overloaded for 3 straight
iterations.  The capacity threshold (48 % CPU) comes from the paper's
single-MDS scaling study: 3 clients put the MDS at about 48 % utilisation,
and 5+ clients clearly overload it (§2.2.3, Fig 5).

Paper Listing 3 (verbatim)::

    -- When policy
    wait=RDState(); go = 0;
    if MDSs[whoami]["cpu"]>48 then
      if wait>0 then WRState(wait-1)
      else WRState(2); go=1; end
    else WRState(2) end
    if go==1 then
    -- Where policy
    targets[whoami+1] = MDSs[whoami]["load"]/4

Cosmetic differences here: ``RDstate()`` starts as ``nil`` so we default it
with ``or 0``; the final ``go`` is converted to a boolean (in Lua ``0`` is
truthy, so Mantle's driver keys on ``go = (go==1)``); and the neighbour
index is guarded against running off the cluster.
"""

from __future__ import annotations

from ..api import MantlePolicy

METALOAD = "IRD + IWR"
MDSLOAD = 'MDSs[i]["all"]'

#: §4.2: the CPU utilisation of an MDS serving 3 clients -- the "fill"
#: level beyond which this balancer starts spilling.
CPU_THRESHOLD = 48.0
#: §4.2: the balancer waits 3 straight overloaded iterations before
#: spilling again (WRstate(2) = 2 more ticks of waiting).
PATIENCE = 2
#: §4.2: "spilling 25% of the load has the best performance".
DEFAULT_SPILL_FRACTION = 0.25

_WHEN_TEMPLATE = """
-- Listing 3 "when": spill only after {patience_plus_one} straight
-- overloaded iterations (CPU > {cpu}%).  The state slot starts at the
-- full patience so the very first hot tick never spills.
wait = RDstate() or {patience}
go = 0
if MDSs[whoami]["cpu"] > {cpu} then
  if wait > 0 then WRstate(wait-1)
  else WRstate({patience}); go = 1 end
else WRstate({patience}) end
go = (go == 1) and MDSs[whoami+1] ~= nil
"""

_WHERE_TEMPLATE = """
-- Listing 3 "where": spill a fixed fraction to the next rank.
targets[whoami+1] = MDSs[whoami]["load"] * {fraction}
"""


def fill_spill_policy(spill_fraction: float = DEFAULT_SPILL_FRACTION,
                      cpu_threshold: float = CPU_THRESHOLD,
                      patience: int = PATIENCE) -> MantlePolicy:
    """Listing 3, parameterised by spill fraction for the §4.2 sweep."""
    if not 0 < spill_fraction <= 1:
        raise ValueError("spill_fraction must be in (0, 1]")
    when = _WHEN_TEMPLATE.format(
        cpu=cpu_threshold, patience=patience,
        patience_plus_one=patience + 1,
    )
    where = _WHERE_TEMPLATE.format(fraction=spill_fraction)
    return MantlePolicy(
        name=f"fill-and-spill-{int(spill_fraction * 100)}pct",
        metaload=METALOAD,
        mdsload=MDSLOAD,
        when=when,
        where=where,
        howmuch=("small_first",),
        min_unit_load=1e-4,
    )
