"""The Mantle balancer driver.

Runs once per heartbeat tick on each MDS (paper Fig 2's "migrate?" box):

1. score every rank with the policy's ``mds_bal_mdsload`` formula over the
   (stale) heartbeat table;
2. execute the ``when``/``where`` decision chunk in the Mantle environment;
3. if the policy produced ``targets``, partition the namespace -- walking
   from this rank's subtree roots downward, racing the policy's dirfrag
   selectors against each target load (§3.2 "How Much");
4. hand the chosen export units to the migration mechanism.

Any Lua error or budget blow-up in injected code aborts the tick without
touching the cluster -- the decoupling safety property the paper argues
for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from .. import fastpath
from ..luapolicy.errors import LuaError
from ..mds.migration import ExportUnit
from ..namespace.directory import Directory
from .api import MantlePolicy
from .environment import build_decision_bindings, extract_targets
from .selectors import choose_best
from .state import BalancerState

if TYPE_CHECKING:  # pragma: no cover
    from ..mds.server import MdsServer


@dataclass(slots=True)
class BalanceDecision:
    """Record of one balancing tick (for tests, reports and debugging)."""

    time: float
    rank: int
    went: bool
    targets: dict[int, float] = field(default_factory=dict)
    exports: list[tuple[str, float, int]] = field(default_factory=list)
    error: Optional[str] = None
    skipped: Optional[str] = None
    #: True when this tick ran on the fallback (circuit-breaker) policy.
    fallback: bool = False
    #: True when this tick re-tried the injected policy on probation
    #: (half-open breaker).
    probation: bool = False
    #: Exports vetoed by the stability guard: ``(path, target_rank)``.
    vetoes: list[tuple[str, int]] = field(default_factory=list)


class MantleBalancer:
    """Attaches a :class:`MantlePolicy` to the MDS mechanisms.

    A *circuit breaker* guards against persistently-broken injected code:
    after ``error_threshold`` consecutive Lua errors the balancer trips and
    swaps in the built-in original CephFS policy (Table 1) instead of
    silently idling forever -- the cluster keeps balancing even when the
    injected policy is garbage.  A clean tick before the threshold resets
    the counter.

    The breaker is *half-open*: with ``probation_ticks > 0``, after that
    many consecutive clean (non-skipped) fallback ticks the balancer
    re-tries the injected policy once on probation.  A clean probation
    tick closes the breaker; a second failure trips it permanently.
    States: ``closed -> open -> probation -> closed | permanent``.

    Optional lifecycle collaborators:

    * ``guard`` -- a :class:`repro.lifecycle.StabilityGuard` consulted
      before every export (live ping-pong damping);
    * ``shadow`` -- a :class:`repro.lifecycle.ShadowEvaluator` fed each
      tick's exact binding inputs, never affecting decisions;
    * ``events`` -- ``(time, kind, rank, detail)`` sink for breaker
      transitions, normally :meth:`ClusterMetrics.record_lifecycle`.
    """

    def __init__(self, policy: MantlePolicy,
                 state: BalancerState | None = None,
                 error_threshold: int = 3,
                 probation_ticks: int = 0,
                 guard=None,
                 shadow=None,
                 events: Optional[Callable[[float, str, int, str], None]]
                 = None) -> None:
        policy.compile_all()
        self.policy = policy
        self.state = state or BalancerState()
        self.metaload_fn = policy.metaload_fn()
        self.mdsload_fn = policy.mdsload_fn()
        self.decisions: list[BalanceDecision] = []
        self.errors = 0
        self.error_threshold = error_threshold
        self.probation_ticks = probation_ticks
        self.consecutive_errors = 0
        #: Breaker state: closed | open | probation | permanent.
        self.breaker = "closed"
        self._clean_fallback_ticks = 0
        self.guard = guard
        self.shadow = shadow
        self.events = events
        self._active = policy
        self._tick_inputs = None
        # Per-tick metaload memos.  Within one tick `now` is fixed and the
        # first counter snapshot decays the counters in place, so repeated
        # evaluations return bit-identical values -- caching them skips
        # re-walking subtrees once per target rank.
        self._dir_load_memo: dict[int, float] = {}
        self._unit_load_memo: dict[int, float] = {}

    # -- circuit breaker ------------------------------------------------
    @property
    def tripped(self) -> bool:
        """Is the fallback policy in charge right now?"""
        return self.breaker in ("open", "permanent")

    def active_policy(self) -> MantlePolicy:
        """The policy actually in charge (the fallback once tripped)."""
        return self._active

    def _emit(self, now: float, kind: str, rank: int, detail: str) -> None:
        if self.events is not None:
            self.events(now, kind, rank, detail)

    def _record_error(self, now: float, rank: int) -> None:
        self.errors += 1
        if self.breaker == "probation":
            self._trip(now, rank, permanent=True)
            return
        self.consecutive_errors += 1
        if (self.breaker == "closed"
                and self.consecutive_errors >= self.error_threshold):
            self._trip(now, rank)

    def _trip(self, now: float, rank: int, permanent: bool = False) -> None:
        # Imported lazily: policies -> balancer would be a cycle.
        from .policies.original import original_policy
        fallback = original_policy()
        fallback.compile_all()
        self.breaker = "permanent" if permanent else "open"
        self._clean_fallback_ticks = 0
        self._active = fallback
        self.metaload_fn = fallback.metaload_fn()
        self.mdsload_fn = fallback.mdsload_fn()
        if permanent:
            self._emit(now, "breaker-permanent", rank,
                       f"policy '{self.policy.name}' failed probation; "
                       "fallback is permanent")
        else:
            self._emit(now, "breaker-open", rank,
                       f"policy '{self.policy.name}' tripped after "
                       f"{self.consecutive_errors} consecutive errors")

    def _enter_probation(self, now: float, rank: int) -> None:
        self.breaker = "probation"
        self._active = self.policy
        self.metaload_fn = self.policy.metaload_fn()
        self.mdsload_fn = self.policy.mdsload_fn()
        self._emit(now, "breaker-probation", rank,
                   f"re-trying policy '{self.policy.name}' after "
                   f"{self._clean_fallback_ticks} clean fallback ticks")

    def _after_clean_tick(self, decision: BalanceDecision, now: float,
                          rank: int) -> None:
        """Bookkeeping for an error-free tick (possibly skipped)."""
        if self.breaker == "closed":
            self.consecutive_errors = 0
        elif self.breaker == "open" and decision.skipped is None:
            self._clean_fallback_ticks += 1
        elif self.breaker == "probation" and decision.skipped is None:
            self.breaker = "closed"
            self.consecutive_errors = 0
            self._emit(now, "breaker-close", rank,
                       f"policy '{self.policy.name}' survived probation; "
                       "breaker closed")

    # ------------------------------------------------------------------
    def tick(self, mds: "MdsServer") -> BalanceDecision:
        now = mds.engine.now
        self._dir_load_memo.clear()
        self._unit_load_memo.clear()
        self._tick_inputs = None
        if (self.breaker == "open" and self.probation_ticks > 0
                and self._clean_fallback_ticks >= self.probation_ticks):
            self._enter_probation(now, mds.rank)
        decision = BalanceDecision(time=now, rank=mds.rank, went=False,
                                   fallback=self.tripped,
                                   probation=self.breaker == "probation")
        self.decisions.append(decision)
        self._tick_inner(mds, decision)
        if decision.error is None:
            self._after_clean_tick(decision, now, mds.rank)
        if self.shadow is not None:
            self.shadow.observe(now, mds.rank, decision, self._tick_inputs)
            self._tick_inputs = None
        return decision

    def _tick_inner(self, mds: "MdsServer",
                    decision: BalanceDecision) -> None:
        now = mds.engine.now
        num_ranks = len(mds.peers)
        if num_ranks < 2:
            decision.skipped = "single MDS"
            return
        if mds.migrator.in_flight > 0:
            decision.skipped = "migration in flight"
            return
        alive = set(mds.hb_table.alive_ranks(now, mds.beacon_grace))
        alive.add(mds.rank)
        missing = [rank for rank in range(num_ranks)
                   if rank not in alive and not mds.hb_table.is_down(rank)]
        if missing:
            decision.skipped = "heartbeats incomplete"
            return
        if len(alive) < 2:
            decision.skipped = "no live peers"
            return

        mds_metrics = self._score_ranks(mds, num_ranks, alive, decision)
        if mds_metrics is None:
            return

        targets = self._run_decision(mds, mds_metrics, alive, decision)
        if not targets:
            return
        decision.went = True
        decision.targets = dict(targets)

        self._ship(mds, targets, decision)

    # -- step 1: score all ranks ------------------------------------------
    def _score_ranks(self, mds: "MdsServer", num_ranks: int,
                     alive: set[int],
                     decision: BalanceDecision) -> Optional[list[dict]]:
        metrics_list: list[dict] = []
        for rank in range(num_ranks):
            beat = mds.hb_table.get(rank)
            if rank in alive and beat is not None:
                metrics = beat.as_metrics()
                metrics["alive"] = 1.0
            else:
                # Dead rank: zeroed metrics, flagged for the policy.
                metrics = {"auth": 0.0, "all": 0.0, "cpu": 0.0, "mem": 0.0,
                           "q": 0.0, "req": 0.0, "alive": 0.0}
            metrics_list.append(metrics)
        try:
            for rank, metrics in enumerate(metrics_list):
                if metrics["alive"]:
                    metrics["load"] = self.mdsload_fn(metrics_list, rank)
                else:
                    metrics["load"] = 0.0
        except LuaError as exc:
            self._record_error(mds.engine.now, mds.rank)
            decision.error = f"mdsload: {exc}"
            return None
        return metrics_list

    # -- step 2: when/where decision ---------------------------------------
    def _run_decision(self, mds: "MdsServer", mds_metrics: list[dict],
                      alive: set[int],
                      decision: BalanceDecision) -> dict[int, float]:
        now = mds.engine.now
        wrstate, rdstate = self.state.bound_functions(mds.rank)
        # Snapshot once and share; within one tick `now` is fixed, so the
        # repeated snapshots the old code took were bit-identical anyway.
        local_counters = mds.all_load.snapshot(now)
        auth_counters = mds.auth_load.snapshot(now)
        all_counters = mds.all_load.snapshot(now)
        if self.shadow is not None:
            # Stash the *exact* inputs this tick decided on, so the shadow
            # evaluates its candidate against identical bindings without
            # touching (and re-decaying) any live counter.
            self._tick_inputs = (mds_metrics, local_counters,
                                 auth_counters, all_counters)
        bindings = build_decision_bindings(
            whoami=mds.rank,
            mds_metrics=mds_metrics,
            local_counters=local_counters,
            auth_metaload=self.metaload_fn(auth_counters),
            all_metaload=self.metaload_fn(all_counters),
            wrstate=wrstate,
            rdstate=rdstate,
        )
        try:
            result = self._active.decision_chunk().run(bindings)
        except LuaError as exc:
            self._record_error(now, mds.rank)
            decision.error = f"decision: {exc}"
            return {}
        go = result.global_value("go")
        if go is None or go is False:
            return {}
        raw_targets = result.python_value("targets")
        targets = extract_targets(raw_targets, len(mds_metrics))
        targets.pop(mds.rank, None)
        # Never ship anything to a dead rank, whatever the policy says.
        return {rank: load for rank, load in targets.items()
                if rank in alive}

    # -- step 3+4: partition the namespace and export -----------------------
    def _ship(self, mds: "MdsServer", targets: dict[int, float],
              decision: BalanceDecision) -> None:
        now = mds.engine.now
        # Serve the biggest target first, consuming export units as we go.
        taken: set[int] = set()
        for rank, raw_target in sorted(targets.items(),
                                       key=lambda kv: kv[1], reverse=True):
            target = raw_target * self._active.need_min_factor
            if target <= self._active.min_unit_load:
                continue
            units = self._partition_namespace(mds, target, now, taken)
            for unit, load in units:
                path = unit.path()
                if (self.guard is not None
                        and not self.guard.allow(path, mds.rank, rank, now)):
                    decision.vetoes.append((path, rank))
                    continue
                if self.guard is not None:
                    self.guard.record(path, mds.rank, rank, now)
                decision.exports.append((path, load, rank))
                mds.migrator.export(unit, rank)

    def _partition_namespace(
        self, mds: "MdsServer", target: float, now: float,
        taken: set[int],
    ) -> list[tuple[ExportUnit, float]]:
        """Walk from this rank's subtree roots, racing dirfrag selectors.

        Paper §2.2.3 / §3.2: start at the root subtrees; at each directory
        consider its child subtrees and dirfrags as candidate units; ship
        the selector-chosen subset; if the target is not met, drill down
        into the hottest remaining directory.
        """
        exports: list[tuple[ExportUnit, float]] = []
        remaining = target
        frontier = self._roots(mds)
        visited: set[int] = {id(d) for d in frontier}
        while frontier and remaining > self._active.min_unit_load:
            frontier.sort(
                key=lambda d: self._dir_metaload(d, now),
                reverse=True,
            )
            directory = frontier.pop(0)
            units = self._candidates(mds, directory, now, taken)
            # Subtrees too popular to move whole are drilled into instead;
            # dirfrags cannot be divided further, so they always qualify.
            ceiling = remaining * self._active.max_overshoot
            fitting = [
                (unit, load) for unit, load in units
                if not unit.is_subtree or load <= ceiling
            ]
            chosen_dirs: set[int] = set()
            if fitting:
                outcome = choose_best(self._active.howmuch, fitting, remaining)
                for unit, load in outcome.chosen:
                    exports.append((unit, load))
                    remaining -= load
                    taken.add(id(unit.target))
                    if unit.is_subtree:
                        chosen_dirs.add(id(unit.target))
            # Drill down into unexported, owned subdirectories.
            for child in directory.subdirs.values():
                if id(child) in chosen_dirs or id(child) in taken:
                    continue
                if id(child) in visited:
                    continue
                if child.authority() == mds.rank:
                    visited.add(id(child))
                    frontier.append(child)
        return exports

    def _dir_metaload(self, directory: Directory, now: float) -> float:
        if not fastpath.ENABLED:
            return self.metaload_fn(directory.counters.snapshot(now))
        memo = self._dir_load_memo
        key = id(directory)
        value = memo.get(key)
        if value is None:
            value = self.metaload_fn(directory.counters.snapshot(now))
            memo[key] = value
        return value

    def _roots(self, mds: "MdsServer") -> list[Directory]:
        roots = mds.namespace.subtree_roots(mds.rank)
        # Nested subtree roots are reached by drill-down from their
        # outermost ancestor; keep only the outermost ones.
        outer: list[Directory] = []
        for root in roots:
            if not any(other is not root and _is_ancestor(other, root)
                       for other in roots):
                outer.append(root)
        # A rank that owns individual dirfrags (but no subtree) must still
        # be able to shed them: include the directories holding its frags.
        seen = {id(d) for d in outer}
        for directory in mds.namespace.root.walk():
            if id(directory) in seen:
                continue
            if directory.authority() == mds.rank:
                continue  # reached by drill-down from a root above
            if any(frag.explicit_auth == mds.rank
                   for frag in directory.frags.values()):
                seen.add(id(directory))
                outer.append(directory)
        return outer

    def _candidates(self, mds: "MdsServer", directory: Directory,
                    now: float, taken: set[int]):
        units: list[tuple[ExportUnit, float]] = []
        for child in directory.subdirs.values():
            if id(child) in taken:
                continue
            if self._fully_owned(child, mds.rank) and not self._frozen(child):
                unit = ExportUnit(child)
                load = self._unit_load(unit, now)
                if load > self._active.min_unit_load:
                    units.append((unit, load))
        # Dirfrags are atomic export units: offered even when the directory
        # has a single frag (a hot leaf directory can only move whole, as
        # CephFS's biggest-first heuristic does -- overshooting if need be).
        for frag in directory.frags.values():
            if id(frag) in taken or frag.frozen:
                continue
            if frag.authority() != mds.rank:
                continue
            load = self._frag_metaload(frag, now)
            if load > self._active.min_unit_load:
                units.append((ExportUnit(frag), load))
        return units

    def _unit_load(self, unit: ExportUnit, now: float) -> float:
        if not fastpath.ENABLED:
            return unit.load(self.metaload_fn, now)
        memo = self._unit_load_memo
        key = id(unit.target)
        value = memo.get(key)
        if value is None:
            value = unit.load(self.metaload_fn, now)
            memo[key] = value
        return value

    def _frag_metaload(self, frag, now: float) -> float:
        if not fastpath.ENABLED:
            return self.metaload_fn(frag.load_snapshot(now))
        memo = self._unit_load_memo
        key = id(frag)
        value = memo.get(key)
        if value is None:
            value = self.metaload_fn(frag.load_snapshot(now))
            memo[key] = value
        return value

    @staticmethod
    def _fully_owned(directory: Directory, rank: int) -> bool:
        if directory.authority() != rank:
            return False
        for node in directory.walk():
            if node.explicit_auth not in (None, rank):
                return False
            for frag in node.frags.values():
                if frag.explicit_auth not in (None, rank):
                    return False
        return True

    @staticmethod
    def _frozen(directory: Directory) -> bool:
        return any(
            frag.frozen
            for node in directory.walk()
            for frag in node.frags.values()
        )

    # -- reporting ------------------------------------------------------
    def migrations_decided(self) -> int:
        return sum(len(decision.exports) for decision in self.decisions)

    def last_decision(self) -> Optional[BalanceDecision]:
        return self.decisions[-1] if self.decisions else None


def _is_ancestor(ancestor: Directory, node: Directory) -> bool:
    current = node.parent
    while current is not None:
        if current is ancestor:
            return True
        current = current.parent
    return False
