"""Dirfrag selectors (paper §3.2, "How Much").

When Mantle walks the namespace deciding which dirfrags/subtrees to ship
toward a target load, it runs every strategy in the policy's
``mds_bal_howmuch`` list and keeps the one whose shipped load lands closest
to the target.  The paper's §2.2.3 example (dirfrag loads 12.7, 13.3, 13.3,
14.6, 15.7, 13.5, 13.7, 14.6 against target 55.6) is reproduced in the
tests: ``big_small`` wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

Unit = TypeVar("Unit")
#: A selector takes [(unit, load)] and a target load, returns chosen units.
SelectorFn = Callable[[Sequence[tuple[Unit, float]], float],
                      list[tuple[Unit, float]]]

EPSILON = 1e-9


def _take_until(ordered: list[tuple[Unit, float]],
                target: float) -> list[tuple[Unit, float]]:
    """Take units in order until the cumulative load reaches the target."""
    chosen: list[tuple[Unit, float]] = []
    shipped = 0.0
    for unit, load in ordered:
        if load <= EPSILON:
            continue
        if shipped >= target - EPSILON:
            break
        chosen.append((unit, load))
        shipped += load
    return chosen


def big_first(units: Sequence[tuple[Unit, float]],
              target: float) -> list[tuple[Unit, float]]:
    """Biggest dirfrags until reaching the target (the CephFS default)."""
    ordered = sorted(units, key=lambda pair: pair[1], reverse=True)
    return _take_until(ordered, target)


def small_first(units: Sequence[tuple[Unit, float]],
                target: float) -> list[tuple[Unit, float]]:
    """Smallest dirfrags until reaching the target."""
    ordered = sorted(units, key=lambda pair: pair[1])
    return _take_until(ordered, target)


def big_small(units: Sequence[tuple[Unit, float]],
              target: float) -> list[tuple[Unit, float]]:
    """Alternate sending big and small dirfrags."""
    by_size = sorted(units, key=lambda pair: pair[1], reverse=True)
    interleaved: list[tuple[Unit, float]] = []
    low, high = 0, len(by_size) - 1
    take_big = True
    while low <= high:
        if take_big:
            interleaved.append(by_size[low])
            low += 1
        else:
            interleaved.append(by_size[high])
            high -= 1
        take_big = not take_big
    return _take_until(interleaved, target)


def half(units: Sequence[tuple[Unit, float]],
         target: float) -> list[tuple[Unit, float]]:
    """Send the first half of the dirfrags (ignores the target)."""
    usable = [pair for pair in units if pair[1] > EPSILON]
    return usable[: (len(usable) + 1) // 2]


REGISTRY: dict[str, SelectorFn] = {
    "big_first": big_first,
    "small_first": small_first,
    "big_small": big_small,
    "half": half,
    # Paper Listing 4 uses the short names.
    "big": big_first,
    "small": small_first,
}


def get_selector(name: str) -> SelectorFn:
    try:
        return REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown dirfrag selector {name!r}; "
            f"known: {sorted(REGISTRY)}"
        ) from exc


def register_selector(name: str, fn: SelectorFn) -> None:
    """Add a custom dirfrag selector (usable from any policy by name)."""
    if name in REGISTRY:
        raise ValueError(f"selector {name!r} already registered")
    REGISTRY[name] = fn


@dataclass(frozen=True)
class SelectorOutcome:
    """Result of running one selector against a unit list."""

    name: str
    chosen: tuple
    shipped: float
    distance: float


def choose_best(names: Sequence[str],
                units: Sequence[tuple[Unit, float]],
                target: float) -> SelectorOutcome:
    """Run every named selector; keep the one closest to the target.

    Mirrors the paper: "the balancer runs all the strategies, selecting the
    dirfrag selector that gets closest to the target load".  Empty
    selections lose to any non-empty one when the target is positive.
    """
    if not names:
        raise ValueError("howmuch policy lists no selectors")
    best: SelectorOutcome | None = None
    for name in names:
        selector = get_selector(name)
        chosen = selector(units, target)
        shipped = sum(load for _unit, load in chosen)
        outcome = SelectorOutcome(
            name=name,
            chosen=tuple(chosen),
            shipped=shipped,
            distance=abs(target - shipped),
        )
        if best is None:
            best = outcome
            continue
        # Prefer smaller distance; prefer shipping something over nothing.
        if (outcome.chosen and not best.chosen) or (
            bool(outcome.chosen) == bool(best.chosen)
            and outcome.distance < best.distance - EPSILON
        ):
            best = outcome
    assert best is not None
    return best
