"""Persistent balancer state: the ``WRstate``/``RDstate`` functions.

Paper §3.1: "The WRstate and RDstate functions help the balancer 'remember'
decisions from the past... These are implemented using temporary files but
future work will store them in RADOS objects."  We keep the state in an
in-process store keyed by MDS rank -- same semantics (one scalar per rank,
survives across balancing ticks), without the filesystem detour.
"""

from __future__ import annotations

from typing import Any


class BalancerState:
    """One scalar slot per MDS rank, persisted across ticks."""

    def __init__(self) -> None:
        self._slots: dict[int, Any] = {}
        self.writes = 0
        self.reads = 0

    def write(self, rank: int, value: Any) -> None:
        self.writes += 1
        self._slots[rank] = value

    def read(self, rank: int) -> Any:
        self.reads += 1
        return self._slots.get(rank)

    def clear(self, rank: int | None = None) -> None:
        if rank is None:
            self._slots.clear()
        else:
            self._slots.pop(rank, None)

    def bound_functions(self, rank: int):
        """(WRstate, RDstate) callables bound to *rank* for the Lua env."""

        def wrstate(value: Any = None) -> None:
            self.write(rank, value)

        def rdstate() -> Any:
            return self.read(rank)

        return wrstate, rdstate


class RadosBalancerState(BalancerState):
    """Balancer state persisted in RADOS objects.

    Paper §3.1: WRstate/RDstate "are implemented using temporary files but
    future work will store them in RADOS objects to improve scalability."
    This store writes each slot through to a per-rank RADOS object
    (asynchronously -- balancing ticks never block on the write) and can
    recover slots from RADOS after a restart.
    """

    def __init__(self, rados, prefix: str = "mantle.state") -> None:
        super().__init__()
        self.rados = rados
        self.prefix = prefix
        self.rados_writes = 0

    def _object_name(self, rank: int) -> str:
        return f"{self.prefix}.mds{rank}"

    def write(self, rank: int, value: Any) -> None:
        super().write(rank, value)
        self.rados_writes += 1
        self.rados.put_payload(self._object_name(rank), value)

    def recover(self, rank: int) -> Any:
        """Reload a slot from RADOS (e.g. after an MDS restart)."""
        value = self.rados.get_payload(self._object_name(rank))
        if value is not None:
            self._slots[rank] = value
        return value

    def recover_all(self, num_ranks: int) -> None:
        for rank in range(num_ranks):
            self.recover(rank)
