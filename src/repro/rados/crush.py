"""CRUSH-like deterministic placement.

Real Ceph uses CRUSH to map objects to OSDs pseudo-randomly but
deterministically ("calculate placement instead of looking it up").  We
reproduce the property that matters to the metadata path: any node can
compute, without coordination, which OSDs store an object, with a stable
uniform spread and support for replication.
"""

from __future__ import annotations

import hashlib


def _hash64(key: str) -> int:
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class CrushMap:
    """Maps object names to an ordered set of distinct OSD ids."""

    def __init__(self, num_osds: int, replicas: int = 3) -> None:
        if num_osds < 1:
            raise ValueError("need at least one OSD")
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.num_osds = num_osds
        self.replicas = min(replicas, num_osds)

    def primary(self, obj: str) -> int:
        return _hash64(obj) % self.num_osds

    def placement(self, obj: str) -> list[int]:
        """Ordered, distinct OSD ids for *obj* (primary first).

        Uses highest-random-weight (rendezvous) hashing, which is the
        textbook stand-in for straw-bucket CRUSH: stable under OSD count
        changes for all but the re-mapped objects.
        """
        scored = sorted(
            range(self.num_osds),
            key=lambda osd: _hash64(f"{obj}/{osd}"),
            reverse=True,
        )
        return scored[: self.replicas]
