"""The RADOS cluster: OSDs + CRUSH placement + replication."""

from __future__ import annotations

from ..sim.engine import Completion, SimEngine
from ..sim.network import Network
from ..sim.rng import RngStreams, ServiceTime
from .crush import CrushMap
from .osd import Osd

#: The paper's testbed: 18 OSDs (3 per physical server), SSD journals.
DEFAULT_NUM_OSDS = 18
DEFAULT_REPLICAS = 3


class RadosCluster:
    """Striped, replicated object store the MDS journals into."""

    def __init__(self, engine: SimEngine, network: Network,
                 rngs: RngStreams,
                 num_osds: int = DEFAULT_NUM_OSDS,
                 replicas: int = DEFAULT_REPLICAS,
                 journal_service: ServiceTime | None = None,
                 disk_service: ServiceTime | None = None) -> None:
        self.engine = engine
        self.network = network
        self.crush = CrushMap(num_osds, replicas)
        journal_service = journal_service or ServiceTime(0.00008, cv=0.3)
        disk_service = disk_service or ServiceTime(0.0006, cv=0.5)
        self.osds = [
            Osd(engine, osd_id, rngs.stream(f"osd{osd_id}"),
                journal_service, disk_service)
            for osd_id in range(num_osds)
        ]
        self.objects: dict[str, int] = {}  # name -> size (content elided)
        #: Small-object payload store (omap-style) for state objects.
        self.payloads: dict[str, object] = {}

    # -- object operations --------------------------------------------------
    def write(self, obj: str, size: int) -> Completion:
        """Replicated write: completes when all replicas have journalled.

        Models Ceph's primary-copy replication: client->primary hop, primary
        fans out to replicas, ack when the slowest replica lands.
        """
        self.objects[obj] = size
        placement = self.crush.placement(obj)
        done = self.engine.completion()
        pending = len(placement)
        latest = 0.0

        def one_done(_completion: Completion) -> None:
            nonlocal pending
            pending -= 1
            if pending == 0:
                # Ack travels back over the network.
                self.network.deliver(done.succeed, None)

        for osd_id in placement:
            self.osds[osd_id].write(obj, size).add_callback(one_done)
        del latest
        return done

    def read(self, obj: str, size: int | None = None) -> Completion:
        """Read from the primary OSD; completes with the object size."""
        if size is None:
            size = self.objects.get(obj, 4096)
        primary = self.crush.placement(obj)[0]
        done = self.engine.completion()

        def on_read(_completion: Completion) -> None:
            self.network.deliver(done.succeed, size)

        self.osds[primary].read(obj, size).add_callback(on_read)
        return done

    def exists(self, obj: str) -> bool:
        return obj in self.objects

    # -- small typed objects (omap-style) ---------------------------------
    def put_payload(self, obj: str, value: object,
                    size: int = 64) -> Completion:
        """Replicated write of a small typed payload (e.g. balancer
        state); readable back with :meth:`get_payload`."""
        self.payloads[obj] = value
        return self.write(obj, size)

    def get_payload(self, obj: str, default: object = None) -> object:
        return self.payloads.get(obj, default)

    # -- stats ------------------------------------------------------------
    def total_writes(self) -> int:
        return sum(osd.writes for osd in self.osds)

    def total_reads(self) -> int:
        return sum(osd.reads for osd in self.osds)
