"""The MDS journal.

Each MDS streams metadata updates into per-rank journal objects in RADOS
(paper Fig 2: "journal" arrow from the MDS cluster to RADOS).  Updates are
batched into segments; a segment flush is a replicated RADOS write.  The
migration two-phase commit journals its EExport/EImport events through this
path, which is where migration latency comes from.
"""

from __future__ import annotations

from ..sim.engine import Completion, SimEngine
from .cluster import RadosCluster

DEFAULT_SEGMENT_BYTES = 64 * 1024
DEFAULT_ENTRY_BYTES = 512


class MdsJournal:
    """Write-ahead journal of one MDS rank."""

    def __init__(self, engine: SimEngine, rados: RadosCluster, rank: int,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 entry_bytes: int = DEFAULT_ENTRY_BYTES) -> None:
        self.engine = engine
        self.rados = rados
        self.rank = rank
        self.segment_bytes = segment_bytes
        self.entry_bytes = entry_bytes
        self._segment_seq = 0
        self._buffered = 0
        self.entries_logged = 0
        self.segments_flushed = 0
        self.segments_replayed = 0

    def log(self, kind: str, size: int | None = None) -> Completion | None:
        """Append an entry.  Returns a completion only when the append
        triggered a segment flush (callers may ignore it -- journalling is
        normally asynchronous for regular ops)."""
        self.entries_logged += 1
        self._buffered += size if size is not None else self.entry_bytes
        if self._buffered >= self.segment_bytes:
            return self.flush()
        return None

    def log_sync(self, kind: str, size: int | None = None) -> Completion:
        """Append an entry and force it durable (two-phase-commit events).

        Completes when the containing segment has been replicated in RADOS.
        """
        self.entries_logged += 1
        self._buffered += size if size is not None else self.entry_bytes
        return self.flush()

    def flush(self) -> Completion:
        """Write the current segment out to RADOS."""
        size = max(self._buffered, self.entry_bytes)
        self._buffered = 0
        self._segment_seq += 1
        self.segments_flushed += 1
        obj = f"mds{self.rank}.journal.{self._segment_seq}"
        return self.rados.write(obj, size)

    # -- recovery -------------------------------------------------------
    def drop_buffer(self) -> int:
        """Discard unflushed entries (they die with a crash).

        Returns the number of bytes lost.
        """
        lost = self._buffered
        self._buffered = 0
        return lost

    def replay_segments(self, window: int):
        """Re-read the newest *window* flushed segments from RADOS.

        A generator suitable for ``yield from`` inside a recovery process:
        journal replay is a sequential scan, so each segment read completes
        before the next one is issued.
        """
        first = max(1, self._segment_seq - window + 1)
        for seq in range(first, self._segment_seq + 1):
            obj = f"mds{self.rank}.journal.{seq}"
            yield self.rados.read(obj, self.segment_bytes)
            self.segments_replayed += 1
