"""RADOS substrate: OSDs, CRUSH placement, replication, MDS journals.

CephFS decouples metadata from data; the MDS cluster's durable state (its
journals and cold directory objects) lives in RADOS.  This package models
that path: replicated object writes over OSD journal/disk stations, with a
deterministic CRUSH-like placement function.
"""

from .cluster import DEFAULT_NUM_OSDS, DEFAULT_REPLICAS, RadosCluster
from .crush import CrushMap
from .journal import MdsJournal
from .osd import Osd

__all__ = [
    "CrushMap",
    "DEFAULT_NUM_OSDS",
    "DEFAULT_REPLICAS",
    "MdsJournal",
    "Osd",
    "RadosCluster",
]
