"""Object storage daemons.

Each OSD owns one data disk (XFS in the paper's testbed) and an SSD journal
partition.  Writes hit the journal first (fast, sequential) and the data
disk asynchronously; reads hit the data disk.  Both devices are FIFO
stations so a busy OSD stretches metadata-journal latency, which is the
back-pressure path from RADOS into the MDS.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..sim.engine import Completion, SimEngine
from ..sim.rng import ServiceTime
from ..sim.stations import FifoStation


class Osd:
    """One OSD: SSD journal + data disk."""

    def __init__(self, engine: SimEngine, osd_id: int,
                 rng: np.random.Generator,
                 journal_service: ServiceTime,
                 disk_service: ServiceTime) -> None:
        self.engine = engine
        self.osd_id = osd_id
        self.journal_service = journal_service
        self.disk_service = disk_service
        self.journal = FifoStation(engine, f"osd{osd_id}.journal", rng)
        self.disk = FifoStation(engine, f"osd{osd_id}.disk", rng)
        self.bytes_written = 0
        self.bytes_read = 0
        self.writes = 0
        self.reads = 0

    def write(self, obj: str, size: int) -> Completion:
        """Durable write: completes when the journal write lands; the data
        disk write proceeds asynchronously (Ceph acks from the journal)."""
        self.writes += 1
        self.bytes_written += size
        service = self.journal_service.scaled(_size_factor(size))
        completion = self.journal.submit(("write", obj, size), service)
        # Async flush to the data disk; nobody waits on it, but it consumes
        # disk time and delays subsequent reads.
        self.disk.submit(("flush", obj, size),
                         self.disk_service.scaled(_size_factor(size)),
                         want_completion=False)
        return completion

    def read(self, obj: str, size: int) -> Completion:
        self.reads += 1
        self.bytes_read += size
        service = self.disk_service.scaled(_size_factor(size))
        return self.disk.submit(("read", obj, size), service)

    def stats(self) -> dict[str, Any]:
        return {
            "osd": self.osd_id,
            "writes": self.writes,
            "reads": self.reads,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "journal_queue": self.journal.queue_length,
            "disk_queue": self.disk.queue_length,
        }


def _size_factor(size: int) -> float:
    """Service time scales gently with object size (4 KiB baseline)."""
    return max(0.25, size / 4096.0) ** 0.5
