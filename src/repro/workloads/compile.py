"""The compile workload: building a Linux-like source tree.

Paper Fig 1 computes per-directory heat while compiling the Linux source;
Figs 9 and 10 run 1-5 clients compiling in separate directories.  The job
has three phases with very different metadata behaviour:

* **untar** -- sequential creates sweeping across all directories ("high,
  sequential metadata load across directories");
* **compile** -- stats/opens of headers and sources plus ``.o`` creates,
  with hotspots concentrated in ``arch``, ``kernel``, ``fs`` and ``mm``
  (Fig 1) and steady traffic in ``include``;
* **link** -- a flash crowd of readdirs sweeping the whole tree (Fig 10:
  "the clients shift to linking, which overloads 1 MDS with readdirs").
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..clients.ops import OpKind
from ..namespace.tree import Namespace
from .base import Workload, WorkloadOp

#: (top-level dir, #subdirs, files per subdir, compile heat weight).
#: Shapes mirror the Linux tree the paper compiles; Fig 1 names arch,
#: kernel, fs and mm as the compile-phase hotspots.
SOURCE_TREE: tuple[tuple[str, int, int, float], ...] = (
    ("arch", 12, 14, 5.0),
    ("kernel", 4, 20, 8.0),
    ("fs", 14, 12, 4.0),
    ("mm", 2, 18, 9.0),
    ("include", 16, 22, 3.0),
    ("drivers", 24, 16, 0.7),
    ("net", 12, 10, 0.6),
    ("lib", 3, 16, 1.0),
    ("sound", 8, 10, 0.3),
    ("tools", 6, 8, 0.2),
    ("scripts", 3, 8, 0.5),
    ("Documentation", 10, 12, 0.05),
)


class CompileWorkload(Workload):
    """Each client untars, compiles and links its own source tree."""

    def __init__(self, num_clients: int, scale: float = 1.0,
                 base: str = "/src", seed: int = 0,
                 compile_passes: float = 1.0,
                 link_passes: int = 4) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        if scale <= 0:
            raise ValueError("scale must be positive")
        if link_passes < 1:
            raise ValueError("link_passes must be >= 1")
        self.num_clients = num_clients
        self.scale = scale
        self.base = base.rstrip("/") or "/src"
        self.seed = seed
        self.compile_passes = compile_passes
        #: How many readdir sweeps the link phase makes (the linker walks
        #: object directories repeatedly); drives the Fig 10 flash crowd.
        self.link_passes = link_passes

    # -- tree shape ------------------------------------------------------
    def tree_dirs(self) -> list[tuple[str, int, float]]:
        """[(relative dir, files in it, heat weight)] after scaling."""
        out: list[tuple[str, int, float]] = []
        for top, subdirs, files, weight in SOURCE_TREE:
            n_sub = max(1, int(round(subdirs * min(1.0, self.scale * 2))))
            n_files = max(1, int(round(files * self.scale)))
            for sub in range(n_sub):
                out.append((f"{top}/d{sub:02d}", n_files, weight))
        return out

    def client_root(self, client_id: int) -> str:
        return f"{self.base}/client{client_id}"

    def prepare(self, namespace: Namespace) -> None:
        namespace.mkdirs(self.base)

    def construction_signature(self) -> tuple:
        # Only the base directory is pre-built; the untar phase creates the
        # tree during the run (measured, as in the paper's compile job).
        return ("compile", self.base)

    def total_ops(self) -> int:
        dirs = self.tree_dirs()
        total_files = sum(files for _d, files, _w in dirs)
        untar = 1 + len(dirs) + len({d.split("/")[0] for d, _f, _w in dirs}) \
            + total_files
        compile_units = int(total_files * self.compile_passes)
        compile_ops = compile_units * 4  # 2 header stats + 1 open + 1 create
        link = len(dirs) * self.link_passes + 1
        return (untar + compile_ops + link) * self.num_clients

    # -- op streams ------------------------------------------------------
    def client_ops(self, client_id: int) -> Iterator[WorkloadOp]:
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed,
                                   spawn_key=(client_id,))
        )
        root = self.client_root(client_id)
        dirs = self.tree_dirs()

        # Phase 1: untar -- a depth-first sweep of mkdirs and creates.
        yield (OpKind.MKDIR, root)
        seen_tops: set[str] = set()
        source_files: list[tuple[str, float]] = []  # (path, weight)
        for rel, files, weight in dirs:
            top = rel.split("/")[0]
            if top not in seen_tops:
                seen_tops.add(top)
                yield (OpKind.MKDIR, f"{root}/{top}")
            yield (OpKind.MKDIR, f"{root}/{rel}")
            for index in range(files):
                path = f"{root}/{rel}/src{index:03d}.c"
                source_files.append((path, weight))
                yield (OpKind.CREATE, path)

        # Phase 2: compile -- weighted hot-spot traffic.
        weights = np.asarray([w for _p, w in source_files], dtype=float)
        weights /= weights.sum()
        header_dirs = [rel for rel, _f, w in dirs if rel.startswith("include")]
        n_units = int(len(source_files) * self.compile_passes)
        order = rng.choice(len(source_files), size=n_units, p=weights)
        for unit in order:
            path, _weight = source_files[unit]
            directory = path.rsplit("/", 1)[0]
            # Header lookups (hot include/ traffic).
            for _ in range(2):
                hdir = header_dirs[int(rng.integers(len(header_dirs)))] \
                    if header_dirs else "include"
                yield (OpKind.STAT,
                       f"{root}/{hdir}/src{int(rng.integers(4)):03d}.c")
            yield (OpKind.OPEN, path)
            yield (OpKind.CREATE, path.replace(".c", f".o{unit % 7}"))

        # Phase 3: link -- the readdir flash crowd (the linker sweeps the
        # object directories repeatedly).
        for _sweep in range(self.link_passes):
            for rel, _files, _weight in dirs:
                yield (OpKind.READDIR, f"{root}/{rel}")
        yield (OpKind.CREATE, f"{root}/vmlinux")
