"""File-create workloads.

The paper's primary stress test: "we use file-create workloads because they
stress the system, are the focus of other state-of-the-art metadata
systems, and they are a common HPC problem (checkpoint/restart)".

Two variants:

* separate directories -- each client creates N files in its own directory
  (Figs 4, 5: "creating 100,000 files in separate directories");
* shared directory -- every client creates into one directory, which
  fragments into dirfrags once it crosses the split threshold (Figs 7, 8:
  "4 clients each creating 100,000 files in the same directory").
"""

from __future__ import annotations

from typing import Iterator

from ..clients.ops import OpKind
from ..namespace.tree import Namespace
from .base import Workload, WorkloadOp


class CreateWorkload(Workload):
    """N file creates per client, in private or shared directories."""

    def __init__(self, num_clients: int, files_per_client: int,
                 shared_dir: bool = False, base: str = "/work",
                 stat_every: int = 0) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        if files_per_client < 1:
            raise ValueError("need at least one file per client")
        self.num_clients = num_clients
        self.files_per_client = files_per_client
        self.shared_dir = shared_dir
        self.base = base.rstrip("/") or "/work"
        #: Optionally stat every Nth created file (adds IRD load).
        self.stat_every = stat_every

    def prepare(self, namespace: Namespace) -> None:
        namespace.mkdirs(self.base)
        if self.shared_dir:
            namespace.mkdirs(self.target_dir(0))

    def construction_signature(self) -> tuple:
        # prepare() builds the base (and shared) directory only; files are
        # created by the clients, so neither the file count nor the seed
        # matters here.
        return ("create", self.base, self.shared_dir)

    def target_dir(self, client_id: int) -> str:
        if self.shared_dir:
            return f"{self.base}/shared"
        return f"{self.base}/client{client_id}"

    def client_ops(self, client_id: int) -> Iterator[WorkloadOp]:
        directory = self.target_dir(client_id)
        if not self.shared_dir:
            yield (OpKind.MKDIR, directory)
        for index in range(self.files_per_client):
            path = f"{directory}/f{client_id}_{index:07d}"
            yield (OpKind.CREATE, path)
            if self.stat_every and (index + 1) % self.stat_every == 0:
                yield (OpKind.STAT, path)

    def total_ops(self) -> int:
        per_client = self.files_per_client
        if self.stat_every:
            per_client += self.files_per_client // self.stat_every
        if not self.shared_dir:
            per_client += 1
        return per_client * self.num_clients
