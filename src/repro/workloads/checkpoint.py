"""Checkpoint/restart workload.

Paper §4 motivates create storms as "a common HPC problem
(checkpoint/restart)".  This workload models it directly: N ranks of a
parallel job periodically dump checkpoint files (a synchronized create
storm into one directory per round), then later read a checkpoint back
(stat+open storm).  The barrier between rounds means the slowest client
gates everyone -- exactly the pattern that punishes unbalanced metadata
service.

Since client processes in the simulator are independent, the barrier is
expressed in the op stream: each client's round r ops are identical in
count, so rounds stay roughly aligned; the report's per-client runtimes
expose straggling.
"""

from __future__ import annotations

from typing import Iterator

from ..clients.ops import OpKind
from ..namespace.tree import Namespace
from .base import Workload, WorkloadOp


class CheckpointWorkload(Workload):
    """N application ranks checkpointing every round.

    Per round: every client creates ``files_per_round`` checkpoint chunks
    into the round's shared directory, then stats its previous round's
    chunks (restart-readiness verification).
    """

    def __init__(self, num_clients: int, rounds: int = 4,
                 files_per_round: int = 1000,
                 base: str = "/ckpt", verify: bool = True) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        if rounds < 1:
            raise ValueError("need at least one round")
        if files_per_round < 1:
            raise ValueError("need at least one file per round")
        self.num_clients = num_clients
        self.rounds = rounds
        self.files_per_round = files_per_round
        self.base = base.rstrip("/") or "/ckpt"
        self.verify = verify

    def round_dir(self, round_index: int) -> str:
        return f"{self.base}/round{round_index:04d}"

    def prepare(self, namespace: Namespace) -> None:
        namespace.mkdirs(self.base)
        for round_index in range(self.rounds):
            namespace.mkdirs(self.round_dir(round_index))

    def construction_signature(self) -> tuple:
        # prepare() builds the per-round directories; chunk files are
        # created by the clients.
        return ("checkpoint", self.base, self.rounds)

    def chunk_path(self, round_index: int, client_id: int,
                   chunk: int) -> str:
        return (f"{self.round_dir(round_index)}/"
                f"ckpt.r{client_id:04d}.c{chunk:05d}")

    def client_ops(self, client_id: int) -> Iterator[WorkloadOp]:
        for round_index in range(self.rounds):
            for chunk in range(self.files_per_round):
                yield (OpKind.CREATE,
                       self.chunk_path(round_index, client_id, chunk))
            if self.verify and round_index > 0:
                # Restart-readiness: spot-check last round's chunks.
                step = max(1, self.files_per_round // 10)
                for chunk in range(0, self.files_per_round, step):
                    yield (OpKind.STAT,
                           self.chunk_path(round_index - 1, client_id,
                                           chunk))

    def total_ops(self) -> int:
        per_round_creates = self.files_per_round
        verifies = 0
        if self.verify:
            step = max(1, self.files_per_round // 10)
            per_verify = len(range(0, self.files_per_round, step))
            verifies = per_verify * (self.rounds - 1)
        return (per_round_creates * self.rounds + verifies) \
            * self.num_clients
