"""Access-pattern helpers and trace replay.

``ZipfWorkload`` issues stats/opens over an existing file population with a
Zipf popularity skew -- the "skewed workload" shape §1 of the paper cites
as the reason metadata services fall over.  ``TraceWorkload`` replays an
explicit per-client op list (useful for regression tests and for feeding
recorded traces through different balancers).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..clients.ops import OpKind
from ..namespace.tree import Namespace
from .base import Workload, WorkloadOp


def zipf_weights(n: int, alpha: float = 1.1) -> np.ndarray:
    """Normalised Zipf weights for ranks 1..n."""
    if n < 1:
        raise ValueError("need at least one item")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


class ZipfWorkload(Workload):
    """Read-mostly traffic over a pre-created population of files."""

    def __init__(self, num_clients: int, num_files: int, ops_per_client: int,
                 alpha: float = 1.1, write_fraction: float = 0.1,
                 num_dirs: int = 16, base: str = "/data",
                 seed: int = 0) -> None:
        if not 0 <= write_fraction <= 1:
            raise ValueError("write_fraction must be a probability")
        self.num_clients = num_clients
        self.num_files = num_files
        self.ops_per_client = ops_per_client
        self.alpha = alpha
        self.write_fraction = write_fraction
        self.num_dirs = max(1, num_dirs)
        self.base = base.rstrip("/") or "/data"
        self.seed = seed

    def _file_path(self, index: int) -> str:
        return (f"{self.base}/d{index % self.num_dirs:03d}/"
                f"f{index:07d}")

    def prepare(self, namespace: Namespace) -> None:
        namespace.mkdirs(self.base)
        for d in range(self.num_dirs):
            namespace.mkdirs(f"{self.base}/d{d:03d}")
        for index in range(self.num_files):
            namespace.create(self._file_path(index))

    def construction_signature(self) -> tuple:
        # prepare() builds the directory fan-out and the file population;
        # the seed only shapes the (lazy) op streams, so cells that differ
        # in seed can still share one population build.
        return ("zipf", self.base, self.num_dirs, self.num_files)

    def client_ops(self, client_id: int) -> Iterator[WorkloadOp]:
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed,
                                   spawn_key=(client_id,))
        )
        weights = zipf_weights(self.num_files, self.alpha)
        choices = rng.choice(self.num_files, size=self.ops_per_client,
                             p=weights)
        writes = rng.random(self.ops_per_client) < self.write_fraction
        for op_index in range(self.ops_per_client):
            index = int(choices[op_index])
            if writes[op_index]:
                yield (OpKind.CREATE,
                       f"{self.base}/d{index % self.num_dirs:03d}/"
                       f"new{client_id}_{op_index:07d}")
            else:
                yield (OpKind.STAT, self._file_path(index))

    def total_ops(self) -> int:
        return self.ops_per_client * self.num_clients


class TraceWorkload(Workload):
    """Replay explicit per-client op lists."""

    def __init__(self, traces: dict[int, Sequence[WorkloadOp]]) -> None:
        if not traces:
            raise ValueError("empty trace set")
        expected = set(range(len(traces)))
        if set(traces) != expected:
            raise ValueError("trace client ids must be 0..n-1")
        self.traces = {cid: list(ops) for cid, ops in traces.items()}
        self.num_clients = len(traces)

    def prepare(self, namespace: Namespace) -> None:
        # Pre-create directories mentioned as parents so replay cannot
        # ENOENT -- except those the trace itself mkdirs (pre-creating
        # them would make the replayed mkdir fail with EEXIST).
        trace_mkdirs = {
            "/" + "/".join(part for part in op[1].split("/") if part)
            for ops in self.traces.values()
            for op in ops if op[0] is OpKind.MKDIR
        }
        for ops in self.traces.values():
            for op in ops:
                kind, path = op[0], op[1]
                if kind is OpKind.MKDIR or kind is OpKind.READDIR:
                    continue
                # Renames carry a destination whose parent must also exist.
                paths = [path] + ([op[2]] if len(op) > 2 else [])
                for target in paths:
                    parent = target.rsplit("/", 1)[0]
                    if not parent:
                        continue
                    node = ""
                    for part in (p for p in parent.split("/") if p):
                        node = f"{node}/{part}"
                        if (node not in trace_mkdirs
                                and not namespace.exists(node)):
                            namespace.mkdirs(node)

    def client_ops(self, client_id: int) -> Iterator[WorkloadOp]:
        return iter(self.traces[client_id])

    def total_ops(self) -> int:
        return sum(len(ops) for ops in self.traces.values())
