"""Workload protocol: op streams per client plus namespace preparation."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from ..clients.ops import OpKind
from ..namespace.tree import Namespace

WorkloadOp = tuple[OpKind, str]


class Workload(ABC):
    """A workload produces one lazy op stream per client.

    ``prepare`` pre-populates the namespace with whatever must exist before
    the clients start (shared base directories, a source tree to compile) --
    the simulated equivalent of setup steps outside the measured window.

    Workloads also carry *phase-boundary markers* for the warm-start cell
    server (:mod:`repro.perf.warmstart`): which part of a run is shared
    between grid cells that differ only in balancer policy, and which part
    of construction is shared between cells that differ only in seed.
    """

    num_clients: int

    #: True when the op streams are independent of balancer behaviour:
    #: migrations and forwards change *where* and *how fast* ops are
    #: served, never *which* ops the clients issue.  All stock workloads
    #: qualify; a workload that adapted its ops to observed placement or
    #: latency would have to opt out, which disables prefix sharing.
    policy_independent_ops: bool = True

    def prepare(self, namespace: Namespace) -> None:
        """Pre-create setup state directly in the namespace (unmeasured)."""

    def shared_prefix_end(self, config) -> float:
        """End of the policy-independent warmup phase, in sim seconds.

        Two runs of this workload that differ only in the injected Mantle
        policy are guaranteed byte-identical for every event strictly
        before this time.  The generic bound is the first heartbeat
        metaload snapshot (``config.heartbeat_interval``): before it no
        code path consults the balancer, at it the heartbeat packs
        policy-defined metaload values.  Returns 0.0 (no shareable
        prefix) when the op streams are policy-dependent.
        """
        if not self.policy_independent_ops:
            return 0.0
        return float(config.heartbeat_interval)

    def construction_signature(self) -> tuple | None:
        """Hashable identity of what :meth:`prepare` builds, or None.

        Cells whose workloads share a signature (and whose configs share
        the namespace-shape fields) can share one ``prepare`` pass even
        when their cluster seeds differ -- e.g. a Zipf population build or
        a source-tree untar is seed-independent.  ``None`` means "not
        shareable": every cell runs its own ``prepare``.
        """
        return None

    @abstractmethod
    def client_ops(self, client_id: int) -> Iterator[WorkloadOp]:
        """The (lazy) op stream of *client_id*."""

    def op_streams(self) -> dict[int, Iterator[WorkloadOp]]:
        return {cid: self.client_ops(cid) for cid in range(self.num_clients)}

    def total_ops(self) -> int | None:
        """Total op count, when cheaply known (None otherwise)."""
        return None
