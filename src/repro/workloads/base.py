"""Workload protocol: op streams per client plus namespace preparation."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from ..clients.ops import OpKind
from ..namespace.tree import Namespace

WorkloadOp = tuple[OpKind, str]


class Workload(ABC):
    """A workload produces one lazy op stream per client.

    ``prepare`` pre-populates the namespace with whatever must exist before
    the clients start (shared base directories, a source tree to compile) --
    the simulated equivalent of setup steps outside the measured window.
    """

    num_clients: int

    def prepare(self, namespace: Namespace) -> None:
        """Pre-create setup state directly in the namespace (unmeasured)."""

    @abstractmethod
    def client_ops(self, client_id: int) -> Iterator[WorkloadOp]:
        """The (lazy) op stream of *client_id*."""

    def op_streams(self) -> dict[int, Iterator[WorkloadOp]]:
        return {cid: self.client_ops(cid) for cid in range(self.num_clients)}

    def total_ops(self) -> int | None:
        """Total op count, when cheaply known (None otherwise)."""
        return None
