"""Workload generators: create storms, compile jobs, zipf traffic, traces."""

from .base import Workload, WorkloadOp
from .checkpoint import CheckpointWorkload
from .compile import SOURCE_TREE, CompileWorkload
from .create import CreateWorkload
from .patterns import TraceWorkload, ZipfWorkload, zipf_weights

__all__ = [
    "CheckpointWorkload",
    "CompileWorkload",
    "CreateWorkload",
    "SOURCE_TREE",
    "TraceWorkload",
    "Workload",
    "WorkloadOp",
    "ZipfWorkload",
    "zipf_weights",
]
