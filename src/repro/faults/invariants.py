"""Post-run safety invariants.

Whatever the fault schedule did, a finished run must leave the namespace
serviceable: no dirfrag still frozen (a frozen frag stalls every request
that touches it, forever), every dirfrag resolving to exactly one valid
authoritative rank, and no export still marked in flight.  The chaos
tests assert these after every scenario.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import SimulatedCluster  # noqa: F401 - docs only


def check_invariants(cluster) -> list[str]:
    """Return a list of invariant violations (empty = healthy)."""
    problems: list[str] = []
    num_ranks = len(cluster.mdss)
    for directory in cluster.namespace.root.walk():
        dir_auth = directory.authority()
        if not 0 <= dir_auth < num_ranks:
            problems.append(
                f"directory {directory.path()!r} has invalid authority "
                f"{dir_auth}"
            )
        for frag in directory.frags.values():
            if frag.frozen:
                problems.append(
                    f"frozen dirfrag {directory.path()!r} {frag.frag_id}"
                )
            auth = frag.authority()
            if not 0 <= auth < num_ranks:
                problems.append(
                    f"dirfrag {directory.path()!r} {frag.frag_id} has "
                    f"invalid authority {auth}"
                )
    for mds in cluster.mdss:
        if mds.migrator.in_flight:
            problems.append(
                f"mds{mds.rank} still has {mds.migrator.in_flight} "
                "exports in flight"
            )
    return problems
