"""The fault injector: executes a :class:`FaultSchedule` against a cluster.

Every fault and every recovery is recorded as a
:class:`~repro.metrics.collectors.FaultRecord` in the cluster metrics, so
reports can show when a rank died, when its authority moved, and when it
came back.

Determinism: the injector schedules its handlers on the cluster's event
engine (same heap, same tie-breaking) and draws randomness only from the
dedicated ``faults`` RNG stream, so a given (seed, schedule) pair always
replays the exact same run -- the property the chaos tests assert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .schedule import (
    AbortMigrations,
    CrashMds,
    DegradeCpu,
    FaultEvent,
    FaultSchedule,
    HeartbeatLoss,
    Partition,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import SimulatedCluster
    from ..mds.server import MdsServer


class FaultState:
    """Live fault conditions consulted by the mechanisms.

    Currently only heartbeat-link state: :meth:`heartbeat_link` is called
    by every rank for every beat it sends; ``None`` means the beat is
    dropped, a float is extra delay to add on top of the normal pack +
    network time.
    """

    def __init__(self, rng) -> None:
        self.rng = rng
        #: (active_until, src|None, dst|None, drop_prob, extra_delay)
        self._links: list[tuple[float, Optional[int], Optional[int],
                                float, float]] = []
        #: (active_until, frozenset(group_a), frozenset(group_b))
        self._partitions: list[tuple[float, frozenset, frozenset]] = []

    def add_link_fault(self, until: float, src: Optional[int],
                       dst: Optional[int], drop_prob: float,
                       extra_delay: float) -> None:
        self._links.append((until, src, dst, drop_prob, extra_delay))

    def add_partition(self, until: float, group_a: frozenset,
                      group_b: frozenset) -> None:
        self._partitions.append((until, group_a, group_b))

    def heartbeat_link(self, src: int, dst: int,
                       now: float) -> Optional[float]:
        """Fate of a heartbeat from *src* to *dst* sent at *now*.

        Returns None when the beat is dropped, else the extra delay (>= 0)
        to add to its delivery.
        """
        for until, group_a, group_b in self._partitions:
            if now < until and ((src in group_a and dst in group_b)
                                or (src in group_b and dst in group_a)):
                return None
        extra = 0.0
        for until, link_src, link_dst, drop_prob, extra_delay in self._links:
            if now >= until:
                continue
            if link_src is not None and link_src != src:
                continue
            if link_dst is not None and link_dst != dst:
                continue
            if drop_prob < 1.0 and self.rng.random() >= drop_prob:
                continue
            if extra_delay > 0:
                extra += extra_delay
            else:
                return None
        return extra

    def partitioned(self, src: int, dst: int, now: float) -> bool:
        return any(
            now < until and ((src in a and dst in b)
                             or (src in b and dst in a))
            for until, a, b in self._partitions
        )


class FaultInjector:
    """Arms a :class:`FaultSchedule` on a cluster's event engine."""

    def __init__(self, cluster: "SimulatedCluster",
                 schedule: FaultSchedule, rng) -> None:
        self.cluster = cluster
        self.schedule = schedule
        self.state = FaultState(rng)
        self.armed = False

    # -- lifecycle ------------------------------------------------------
    def arm(self) -> None:
        """Validate the schedule and put every event on the engine heap."""
        if self.armed:
            return
        self.armed = True
        self.schedule.validate(len(self.cluster.mdss))
        for mds in self.cluster.mdss:
            mds.fault_state = self.state
        engine = self.cluster.engine
        for event in self.schedule.events:
            engine.schedule_at(max(event.at, engine.now), self._fire, event)

    # -- dispatch -------------------------------------------------------
    def _fire(self, event: FaultEvent) -> None:
        if isinstance(event, CrashMds):
            self._crash(event)
        elif isinstance(event, HeartbeatLoss):
            self._heartbeat_loss(event)
        elif isinstance(event, Partition):
            self._partition(event)
        elif isinstance(event, DegradeCpu):
            self._degrade(event)
        elif isinstance(event, AbortMigrations):
            self._abort_migrations(event)
        else:  # pragma: no cover - schedule.validate rejects unknowns
            raise TypeError(f"unknown fault event {event!r}")

    def _record(self, kind: str, rank: int, detail: str = "") -> None:
        self.cluster.metrics.record_fault(
            self.cluster.engine.now, kind, rank, detail)

    # -- crash / restart / takeover -------------------------------------
    def _crash(self, event: CrashMds) -> None:
        mds = self.cluster.mdss[event.rank]
        if not mds.alive:
            return
        aborted = mds.migrator.in_flight
        mds.crash()
        self._record("crash", event.rank,
                     f"{aborted} exports in flight" if aborted else "")
        engine = self.cluster.engine
        grace = mds.beacon_grace
        # The monitor declares the rank dead after the beacon grace, so
        # live peers (which may never have heard a beat from it) stop
        # waiting for its heartbeats.
        engine.schedule(grace, self._declare_down, event.rank)
        if event.takeover_by is not None:
            delay = (event.takeover_after if event.takeover_after is not None
                     else grace)
            engine.schedule(delay, self._takeover, event.rank,
                            event.takeover_by)
        if event.restart_after is not None:
            engine.schedule(event.restart_after, self._restart, event.rank)

    def _declare_down(self, rank: int) -> None:
        mds = self.cluster.mdss[rank]
        if mds.alive:
            return  # came back before the grace expired
        for peer in self.cluster.mdss:
            if peer.rank != rank and peer.alive:
                peer.hb_table.mark_down(rank)
        self._record("declared-down", rank)

    def _takeover(self, dead_rank: int, standby_rank: int) -> None:
        dead = self.cluster.mdss[dead_rank]
        standby = self.cluster.mdss[standby_rank]
        if dead.alive or not standby.alive:
            return
        self._record("takeover-begin", standby_rank,
                     f"replaying mds{dead_rank} journal")
        self.cluster.engine.process(
            self._takeover_run(dead, standby),
            name=f"takeover:mds{dead_rank}->mds{standby_rank}",
        )

    def _takeover_run(self, dead: "MdsServer", standby: "MdsServer"):
        # The standby replays the dead rank's journal before it may serve
        # that rank's metadata.
        yield from dead.journal.replay_segments(
            dead.config.replay_segment_window)
        if dead.alive or not standby.alive:
            return  # the dead rank restarted mid-replay; it keeps its trees
        moved = self._reassign_authority(dead.rank, standby.rank)
        self._record("takeover", standby.rank,
                     f"mds{dead.rank}->mds{standby.rank}, "
                     f"{moved} authority entries")

    def _reassign_authority(self, dead_rank: int, to_rank: int) -> int:
        """Point every subtree/dirfrag authored by *dead_rank* at *to_rank*."""
        moved = 0
        root = self.cluster.namespace.root
        if root.authority() == dead_rank:
            root.set_auth(to_rank)
            moved += 1
        for directory in root.walk():
            if directory is not root and directory.explicit_auth == dead_rank:
                directory.set_auth(to_rank)
                moved += 1
            for frag in directory.frags.values():
                if frag.explicit_auth == dead_rank:
                    frag.set_auth(to_rank)
                    moved += 1
        return moved

    def _restart(self, rank: int) -> None:
        mds = self.cluster.mdss[rank]
        if mds.alive:
            return
        self._record("restart-begin", rank)
        process = mds.restart()

        def recovered(_completion) -> None:
            self._record("restart", rank,
                         f"replayed {mds.journal.segments_replayed} segments")

        process.completion.add_callback(recovered)

    # -- network --------------------------------------------------------
    def _heartbeat_loss(self, event: HeartbeatLoss) -> None:
        now = self.cluster.engine.now
        self.state.add_link_fault(now + event.duration, event.src, event.dst,
                                  event.drop_prob, event.extra_delay)
        src = "any" if event.src is None else f"mds{event.src}"
        dst = "any" if event.dst is None else f"mds{event.dst}"
        self._record("heartbeat-loss", event.src if event.src is not None
                     else -1,
                     f"{src}->{dst} p={event.drop_prob} "
                     f"delay={event.extra_delay} for {event.duration}s")

    def _partition(self, event: Partition) -> None:
        now = self.cluster.engine.now
        until = now + event.duration
        self.state.add_partition(until, frozenset(event.group_a),
                                 frozenset(event.group_b))
        self._record("partition", -1,
                     f"{sorted(event.group_a)} | {sorted(event.group_b)} "
                     f"for {event.duration}s")
        self.cluster.engine.schedule_at(until, self._record,
                                        "partition-heal", -1, "")

    # -- degradation & aborts -------------------------------------------
    def _degrade(self, event: DegradeCpu) -> None:
        mds = self.cluster.mdss[event.rank]
        mds.cpu_factor = event.factor
        self._record("degrade-cpu", event.rank, f"factor={event.factor}")
        if event.duration is not None:
            def restore() -> None:
                if mds.cpu_factor == event.factor:
                    mds.cpu_factor = 1.0
                    self._record("degrade-heal", event.rank)
            self.cluster.engine.schedule(event.duration, restore)

    def _abort_migrations(self, event: AbortMigrations) -> None:
        targets = (self.cluster.mdss if event.rank == -1
                   else [self.cluster.mdss[event.rank]])
        total = 0
        for mds in targets:
            total += len(mds.migrator.abort_all("injected abort"))
        self._record("abort-migrations", event.rank, f"{total} aborted")
