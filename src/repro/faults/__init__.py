"""Fault injection: deterministic, schedule-driven chaos for the cluster.

The paper's safety argument (§3, §4.4) is that injected policies and the
mechanisms they steer must never endanger the metadata service.  This
package supplies the failure side of that argument: a declarative
:class:`FaultSchedule` of crash / heartbeat-loss / partition /
degraded-CPU / migration-abort events, executed by a seeded
:class:`FaultInjector` so that the same seed and schedule always produce
the same run.  :mod:`~repro.faults.invariants` checks that a run ended in
a sane state (no frozen dirfrags, single authority everywhere).
"""

from .injector import FaultInjector, FaultState
from .invariants import check_invariants
from .schedule import (
    AbortMigrations,
    CrashMds,
    DegradeCpu,
    FaultEvent,
    FaultSchedule,
    HeartbeatLoss,
    Partition,
)

__all__ = [
    "AbortMigrations",
    "CrashMds",
    "DegradeCpu",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FaultState",
    "HeartbeatLoss",
    "Partition",
    "check_invariants",
]
