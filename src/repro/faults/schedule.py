"""Declarative fault schedules.

A schedule is a list of timestamped fault events.  Schedules are plain
data: they can be built in code, loaded from a JSON file (the CLI's
``--faults`` flag), validated against a cluster size, and round-tripped
through dicts.  Determinism note: the schedule carries *when* and *what*;
all randomness (e.g. probabilistic heartbeat drops) comes from the
cluster's dedicated ``faults`` RNG stream, so the same seed + schedule
replays identically.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class CrashMds:
    """Kill rank *rank* at time *at*.

    Optionally restart the same rank ``restart_after`` seconds later
    (journal replay, then back in service), and/or have standby rank
    ``takeover_by`` replay the dead rank's journal and assume authority
    over its subtrees ``takeover_after`` seconds after the crash
    (defaulting to the beacon grace -- a takeover cannot begin before the
    failure has been detected).
    """

    at: float
    rank: int
    restart_after: Optional[float] = None
    takeover_by: Optional[int] = None
    takeover_after: Optional[float] = None


@dataclass(frozen=True)
class HeartbeatLoss:
    """Drop (or delay) heartbeats on a link for a while.

    ``src``/``dst`` of ``None`` match any rank.  With ``extra_delay`` of 0
    a matching beat is dropped outright (with probability ``drop_prob``);
    with a positive ``extra_delay`` it is delayed instead.
    """

    at: float
    duration: float
    src: Optional[int] = None
    dst: Optional[int] = None
    drop_prob: float = 1.0
    extra_delay: float = 0.0


@dataclass(frozen=True)
class Partition:
    """Full network partition between two rank groups for *duration*.

    Heartbeats between the groups are dropped in both directions; each
    side keeps beating within itself, so after the beacon grace the two
    sides consider each other dead.
    """

    at: float
    duration: float
    group_a: tuple[int, ...]
    group_b: tuple[int, ...]


@dataclass(frozen=True)
class DegradeCpu:
    """Multiply rank *rank*'s service times by *factor* (a limping CPU).

    With a *duration* the factor reverts to 1.0 afterwards; without one
    the rank limps for the rest of the run.
    """

    at: float
    rank: int
    factor: float
    duration: Optional[float] = None


@dataclass(frozen=True)
class AbortMigrations:
    """Abort every in-flight export at *rank* (-1 = every rank)."""

    at: float
    rank: int = -1


FaultEvent = Union[CrashMds, HeartbeatLoss, Partition, DegradeCpu,
                   AbortMigrations]

_KINDS: dict[str, type] = {
    "crash": CrashMds,
    "heartbeat_loss": HeartbeatLoss,
    "partition": Partition,
    "degrade_cpu": DegradeCpu,
    "abort_migrations": AbortMigrations,
}
_NAMES = {cls: name for name, cls in _KINDS.items()}


class FaultSchedule:
    """An ordered set of fault events."""

    def __init__(self, events: list[FaultEvent] | None = None) -> None:
        self.events: list[FaultEvent] = sorted(events or [],
                                               key=lambda e: e.at)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def add(self, event: FaultEvent) -> "FaultSchedule":
        self.events.append(event)
        self.events.sort(key=lambda e: e.at)
        return self

    # -- (de)serialisation ----------------------------------------------
    @classmethod
    def from_dicts(cls, raw: list[dict]) -> "FaultSchedule":
        events: list[FaultEvent] = []
        for index, entry in enumerate(raw):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            event_cls = _KINDS.get(kind)
            if event_cls is None:
                raise ValueError(
                    f"fault #{index}: unknown kind {kind!r} "
                    f"(expected one of {sorted(_KINDS)})"
                )
            if event_cls is Partition:
                entry["group_a"] = tuple(entry.get("group_a", ()))
                entry["group_b"] = tuple(entry.get("group_b", ()))
            try:
                events.append(event_cls(**entry))
            except TypeError as exc:
                raise ValueError(f"fault #{index} ({kind}): {exc}") from exc
        return cls(events)

    @classmethod
    def from_file(cls, path: str) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        if isinstance(raw, dict):
            raw = raw.get("faults", [])
        if not isinstance(raw, list):
            raise ValueError(f"{path}: expected a JSON list of fault events")
        return cls.from_dicts(raw)

    def to_dicts(self) -> list[dict]:
        out = []
        for event in self.events:
            entry = {"kind": _NAMES[type(event)]}
            entry.update({k: (list(v) if isinstance(v, tuple) else v)
                          for k, v in asdict(event).items()
                          if v is not None})
            out.append(entry)
        return out

    # -- validation -----------------------------------------------------
    def validate(self, num_mds: int) -> None:
        """Raise ValueError if any event cannot apply to *num_mds* ranks."""
        for event in self.events:
            if event.at < 0:
                raise ValueError(f"{event!r}: negative time")
            if isinstance(event, CrashMds):
                self._check_rank(event.rank, num_mds, event)
                if event.takeover_by is not None:
                    self._check_rank(event.takeover_by, num_mds, event)
                    if event.takeover_by == event.rank:
                        raise ValueError(
                            f"{event!r}: a rank cannot take over from itself"
                        )
            elif isinstance(event, HeartbeatLoss):
                for rank in (event.src, event.dst):
                    if rank is not None:
                        self._check_rank(rank, num_mds, event)
                if not 0.0 <= event.drop_prob <= 1.0:
                    raise ValueError(f"{event!r}: drop_prob not a probability")
                if event.duration <= 0:
                    raise ValueError(f"{event!r}: duration must be positive")
            elif isinstance(event, Partition):
                if not event.group_a or not event.group_b:
                    raise ValueError(f"{event!r}: empty partition group")
                for rank in (*event.group_a, *event.group_b):
                    self._check_rank(rank, num_mds, event)
                if set(event.group_a) & set(event.group_b):
                    raise ValueError(f"{event!r}: groups overlap")
                if event.duration <= 0:
                    raise ValueError(f"{event!r}: duration must be positive")
            elif isinstance(event, DegradeCpu):
                self._check_rank(event.rank, num_mds, event)
                if event.factor <= 0:
                    raise ValueError(f"{event!r}: factor must be positive")
            elif isinstance(event, AbortMigrations):
                if event.rank != -1:
                    self._check_rank(event.rank, num_mds, event)

    @staticmethod
    def _check_rank(rank: int, num_mds: int, event: FaultEvent) -> None:
        if not 0 <= rank < num_mds:
            raise ValueError(f"{event!r}: rank {rank} out of range "
                             f"(cluster has {num_mds} ranks)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule({len(self.events)} events)"
